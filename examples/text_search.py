#!/usr/bin/env python3
"""Domain scenario: a text-search kernel across the whole hardware ladder.

The paper's motivation in one picture: non-numerical code (here, substring
search — the `grep` shape) has small basic blocks and branchy control, so a
wider machine buys nothing until the compiler can speculate across branches.
This example compiles the same search kernel for every rung of the ladder —
scalar, 2-issue without speculation, the four boosting models, and the
dynamically-scheduled machine — and prints where the cycles went.

Run:  python examples/text_search.py
"""

import random

from repro import (
    ALL_MODELS, CompileConfig, SCALAR_CONFIG, SUPERSCALAR, compile_minic,
    run_dynamic,
)
from repro.harness.pipeline import make_input_image

SOURCE = """
bytes text[2048];
global textlen = 0;
bytes needle[8];
global needlelen = 0;

func main() {
    var hits = 0;
    var i = 0;
    var limit = textlen - needlelen;
    var first = needle[0];
    var nlen = needlelen;
    while (i <= limit) {
        if (text[i] == first) {
            var j = 1;
            while (j < nlen) {
                if (text[i + j] != needle[j]) { break; }
                j = j + 1;
            }
            if (j == nlen) { hits = hits + 1; }
        }
        i = i + 1;
    }
    print(hits);
}
"""


def make_inputs(seed: int):
    rng = random.Random(seed)
    words = ["lorem", "ipsum", "boost", "trace", "dolor", "cycle"]
    text = " ".join(rng.choice(words) for _ in range(330)).encode()[:2048]
    return {"text": text, "textlen": len(text),
            "needle": b"boost", "needlelen": 5}


def main() -> None:
    train, evalin = make_inputs(1), make_inputs(2)

    base = compile_minic(SOURCE, SCALAR_CONFIG, train)
    scalar = base.run(evalin)
    reference = base.run_functional(evalin).output
    print(f"searching ~2KB of text: {reference[0]} matches\n")
    print(f"{'machine':34s} {'cycles':>8s} {'speedup':>8s} {'boosted':>8s}")
    print(f"{'scalar R2000':34s} {scalar.cycle_count:>8,} {'1.00x':>8s} "
          f"{'—':>8s}")

    bb = compile_minic(SOURCE, CompileConfig(machine=SUPERSCALAR,
                                             scheduler="bb"), train)
    res = bb.run(evalin)
    print(f"{'2-issue, basic-block sched':34s} {res.cycle_count:>8,} "
          f"{scalar.cycle_count / res.cycle_count:>7.2f}x {'—':>8s}")

    for model in ALL_MODELS:
        cfg = CompileConfig(machine=SUPERSCALAR, model=model)
        cp = compile_minic(SOURCE, cfg, train)
        res = cp.run(evalin)
        assert res.output == reference
        label = f"2-issue, global sched, {model.name}"
        print(f"{label:34s} {res.cycle_count:>8,} "
              f"{scalar.cycle_count / res.cycle_count:>7.2f}x "
              f"{cp.stats.boosted:>8d}")

    image = make_input_image(base.program, evalin)
    res = run_dynamic(base.program, input_image=image)
    assert res.output == reference
    print(f"{'dynamic (RS + ROB + BTB)':34s} {res.cycle_count:>8,} "
          f"{scalar.cycle_count / res.cycle_count:>7.2f}x {'—':>8s}")


if __name__ == "__main__":
    main()
