#!/usr/bin/env python3
"""Boosted exceptions, squash, and precise recovery (Section 2.3).

Builds a program whose *predicted* path loads through a pointer that is
sometimes null.  The global scheduler boosts that load above its branch
(the motion is unsafe — exactly the case boosting hardware exists for), and
the demo then shows the three behaviours of the exception machinery:

1. wrong path taken  → the speculative fault is squashed, nothing happens;
2. right path, valid pointer → the boosted load commits normally;
3. right path, null pointer → the machine pays the ~10-cycle recovery
   overhead, runs the compiler-generated recovery code, and the fault
   re-occurs *precisely* on a sequential instruction.

Run:  python examples/exception_recovery.py
"""

from repro import ProcBuilder, Program, Reg, SUPERSCALAR, MINBOOST3
from repro.hw.superscalar import SuperscalarSim
from repro.isa import ZERO
from repro.sched.globalsched import schedule_program_global

T0, T1, T2, T3, T4 = (Reg.named(f"t{i}") for i in range(5))


def build(take_branch: int, pointer_symbol: str | None) -> Program:
    program = Program()
    program.data.words("value", [31415])
    b = ProcBuilder("main", data=program.data)
    b.label("entry")
    b.li(T4, take_branch)
    if pointer_symbol is None:
        b.li(T0, 0)                  # null pointer
    else:
        b.la(T0, pointer_symbol)     # valid pointer
    b.bne(T4, ZERO, "cold")
    b.label("hot")
    b.lw(T2, T0, 0)                  # unsafe: boosted above the bne
    b.print_(T2)
    b.halt()
    b.label("cold")
    b.li(T3, -1)
    b.print_(T3)
    b.halt()
    program.add(b.build())
    program.proc("main").block("entry").terminator.predict_taken = False
    return program


def main() -> None:
    # --- 1. wrong path: the boosted fault evaporates --------------------
    program = build(take_branch=1, pointer_symbol=None)
    sched, stats = schedule_program_global(program, SUPERSCALAR, MINBOOST3)
    print(f"compiler boosted {stats.boosted} instruction(s); recovery "
          f"blocks: {sum(len(p.recovery) for p in sched.procedures.values())}")
    sim = SuperscalarSim(sched)
    result = sim.run()
    print(f"[mispredicted path]  output={result.output}  trap={result.trap}  "
          f"recoveries={sim.recovery_invocations}")

    # --- 2. right path, valid pointer: normal commit ---------------------
    program = build(take_branch=0, pointer_symbol="value")
    sched, _ = schedule_program_global(program, SUPERSCALAR, MINBOOST3)
    sim = SuperscalarSim(sched)
    result = sim.run()
    print(f"[valid pointer]      output={result.output}  "
          f"cycles={result.cycle_count}  recoveries={sim.recovery_invocations}")

    # --- 3. right path, null pointer: precise fault through recovery -----
    program = build(take_branch=0, pointer_symbol=None)
    sched, _ = schedule_program_global(program, SUPERSCALAR, MINBOOST3)
    faults = []
    sim = SuperscalarSim(sched, trap_handler=lambda t: faults.append(t) or 0)
    result = sim.run()
    print(f"[null pointer]       output={result.output}  "
          f"cycles={result.cycle_count}  recoveries={sim.recovery_invocations}")
    print(f"                     precise fault: {faults[0]}")
    print("\nthe recovery code the compiler generated:")
    for uid, recov in sim.sched.proc("main").recovery.items():
        print(f"  on commit of branch {uid} -> resume at {recov.resume_label}:")
        for instr in recov.instructions:
            print(f"      {instr}")


if __name__ == "__main__":
    main()
