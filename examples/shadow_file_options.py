#!/usr/bin/env python3
"""Figure 6 and Figure 7, live: how much shadow register file do you need?

Drives the three shadow-register-file organisations directly (the hardware
objects the superscalar simulator uses) through the schedules of Figure 6,
then prints the Section-4.3.2 transistor-cost comparison.

Run:  python examples/shadow_file_options.py
"""

from repro.hw.cost import boosting_file, plain_file, section_432_comparison
from repro.hw.shadow import (
    MultiLevelShadowFile, ShadowConflictError, SingleShadowFile,
)
from repro.sched.boostmodel import BOOST1, BOOST7, MINBOOST3

R3, R4 = 3, 4


def figure_6b_multiple_files() -> None:
    print("Figure 6b — multiple shadow register files (Boost7-style):")
    f = MultiLevelShadowFile(2)
    f.write(R3, 2, 3)          # r3.B2 = 3
    f.write(R3, 1, 2)          # r3.B1 = 2  — both live at once
    print("  r3.B1 = 2 and r3.B2 = 3 coexist")
    committed = f.commit()     # first branch correctly predicted
    print(f"  first commit  -> sequential r3 = {committed[R3]}")
    committed = f.commit()
    print(f"  second commit -> sequential r3 = {committed[R3]}")


def figure_6_single_file_conflict() -> None:
    print("\nFigure 6 — a single shadow file cannot hold both:")
    f = SingleShadowFile(2)
    f.write(R3, 1, 2)
    try:
        f.write(R3, 2, 3)
    except ShadowConflictError as e:
        print(f"  hardware refuses: {e}")


def figure_6c_single_file_schedule() -> None:
    print("\nFigure 6c — the schedule the single file supports:")
    f = SingleShadowFile(2)
    f.write(R3, 1, 2)
    committed = f.commit()                 # r3.B1 commits first ...
    print(f"  commit r3.B1 -> sequential r3 = {committed[R3]}")
    f.write(R3, 2, 3)                      # ... then r3.B2 may issue
    f.commit()
    committed = f.commit()
    print(f"  two commits later -> sequential r3 = {committed[R3]}")


def figure_7_costs() -> None:
    print("\nSection 4.3.2 — hardware cost of the register files:")
    base = plain_file(64)
    print(f"  plain 64-reg file : {base.rows} rows × {base.gate_inputs}-input"
          f" decode gates = {base.decoder} transistors")
    for model in (BOOST1, MINBOOST3, BOOST7):
        cost = boosting_file(model)
        print(f"  {model.name:10s}        : {cost.rows} rows × "
              f"{cost.gate_inputs}-input gates = {cost.decoder} transistors "
              f"({100 * cost.overhead_vs(base):+.0f}% vs plain 64)")
    ratios = section_432_comparison()
    print(f"\n  paper's quotes reproduced: Boost1 "
          f"+{100 * ratios['Boost1']:.0f}% (paper: +33%), MinBoost3 "
          f"+{100 * ratios['MinBoost3']:.0f}% (paper: +50%)")


if __name__ == "__main__":
    figure_6b_multiple_files()
    figure_6_single_file_conflict()
    figure_6c_single_file_schedule()
    figure_7_costs()
