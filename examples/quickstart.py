#!/usr/bin/env python3
"""Quickstart: compile a small program and watch boosting earn its cycles.

Compiles one Minic kernel four ways — the scalar R2000-like baseline, the
2-issue superscalar with basic-block scheduling, with global scheduling, and
with global scheduling plus MinBoost3 boosting hardware — then prints the
cycle counts, the speedups, and the boosted schedule of the hot loop so you
can see the ``.Bn`` annotations the compiler emitted.

Run:  python examples/quickstart.py
"""

from repro import (
    CompileConfig, MINBOOST3, NO_BOOST, SCALAR_CONFIG, SUPERSCALAR,
    compile_minic,
)

SOURCE = """
global data[64];
global n = 0;

func main() {
    var heavy = 0;
    var light = 0;
    for (var i = 0; i < n; i = i + 1) {
        var v = data[i];
        if (v > 100) { heavy = heavy + v; }
        else { light = light + 1; }
    }
    print(heavy);
    print(light);
}
"""

TRAIN = {"data": [(i * 37) % 200 for i in range(64)], "n": 64}
EVAL = {"data": [(i * 53 + 11) % 200 for i in range(64)], "n": 64}


def main() -> None:
    configs = [
        ("scalar (R2000)", SCALAR_CONFIG),
        ("2-issue, bb sched", CompileConfig(machine=SUPERSCALAR,
                                            model=NO_BOOST, scheduler="bb")),
        ("2-issue, global sched", CompileConfig(machine=SUPERSCALAR,
                                                model=NO_BOOST)),
        ("2-issue, MinBoost3", CompileConfig(machine=SUPERSCALAR,
                                             model=MINBOOST3)),
    ]
    scalar_cycles = None
    reference = None
    minboost = None
    print(f"{'configuration':24s} {'cycles':>8s} {'speedup':>8s}")
    for name, config in configs:
        cp = compile_minic(SOURCE, config, TRAIN)
        result = cp.run(EVAL)
        if reference is None:
            reference = cp.run_functional(EVAL).output
        assert result.output == reference, "machines must agree!"
        if scalar_cycles is None:
            scalar_cycles = result.cycle_count
        if config.model is MINBOOST3:
            minboost = cp
        print(f"{name:24s} {result.cycle_count:>8,} "
              f"{scalar_cycles / result.cycle_count:>7.2f}x")

    print(f"\nprogram output: {reference}")
    print(f"boosted instructions in the MinBoost3 schedule: "
          f"{minboost.stats.boosted}")
    print("\nthe scheduled loop (look for the .Bn boosting suffixes):\n")
    main_proc = minboost.sched.proc("main")
    for block in main_proc.blocks:
        if any(i.is_boosted for i in block.instructions()):
            print(block.dump())
            print()


if __name__ == "__main__":
    main()
