#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation (Section 4.3).

Runs the seven workloads through all machine configurations — the scalar
baseline, basic-block and global scheduling on the 2-issue superscalar, the
four boosting hardware models, the infinite-register variants, and the
dynamically-scheduled comparator — and prints Table 1, Figure 8, Table 2,
and Figure 9 side by side with the paper's published numbers.

This is the full evaluation: expect a few minutes of simulation.

Run:  python examples/paper_experiments.py [workload ...]
"""

import sys
import time

from repro import Lab, all_workloads, render_all


def main() -> None:
    selected = sys.argv[1:]
    workloads = all_workloads()
    if selected:
        workloads = [w for w in workloads if w.name in selected]
        if not workloads:
            names = ", ".join(w.name for w in all_workloads())
            raise SystemExit(f"unknown workload; choose from: {names}")
    t0 = time.time()
    lab = Lab(workloads)
    print(render_all(lab))
    print(f"\n[{time.time() - t0:.0f}s of simulation]")


if __name__ == "__main__":
    main()
