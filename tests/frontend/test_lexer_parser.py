"""Tests for the Minic lexer and parser."""

import pytest

from repro.frontend import ast
from repro.frontend.lexer import LexError, string_bytes, tokenize
from repro.frontend.parser import ParseError, parse


class TestLexer:
    def test_numbers_and_hex(self):
        toks = tokenize("12 0x1F")
        assert [t.value for t in toks[:2]] == [12, 31]

    def test_char_literals(self):
        toks = tokenize(r"'a' '\n' '\0'")
        assert [t.value for t in toks[:3]] == [97, 10, 0]

    def test_keywords_vs_names(self):
        toks = tokenize("while whilex")
        assert toks[0].kind == "keyword"
        assert toks[1].kind == "name"

    def test_two_char_operators(self):
        toks = tokenize("<= >= == != && || << >>")
        assert [t.text for t in toks[:-1]] == [
            "<=", ">=", "==", "!=", "&&", "||", "<<", ">>"]

    def test_comments_skipped(self):
        toks = tokenize("a // comment\n b")
        assert [t.text for t in toks[:-1]] == ["a", "b"]

    def test_string_bytes(self):
        toks = tokenize(r'"hi\n"')
        assert string_bytes(toks[0]) == b"hi\n"

    def test_bad_character(self):
        with pytest.raises(LexError):
            tokenize("a ` b")

    def test_line_numbers(self):
        toks = tokenize("a\nb\n\nc")
        assert [t.line for t in toks[:3]] == [1, 2, 4]


class TestParser:
    def test_globals(self):
        m = parse("global x = 5; global xs[3] = {1, 2, -3}; bytes s = \"ab\";")
        assert m.globals_[0] == ast.GlobalDecl("x", None, False, 5)
        assert m.globals_[1].size == 3
        assert m.globals_[1].init == [1, 2, -3]
        assert m.globals_[2].is_bytes and m.globals_[2].init == b"ab"

    def test_precedence(self):
        m = parse("func main() { var x = 1 + 2 * 3; }")
        init = m.function("main").body[0].init
        assert isinstance(init, ast.Binary) and init.op == "+"
        assert isinstance(init.rhs, ast.Binary) and init.rhs.op == "*"

    def test_comparison_binds_looser_than_shift(self):
        m = parse("func main() { var x = 1 << 2 < 3; }")
        init = m.function("main").body[0].init
        assert init.op == "<"

    def test_unary(self):
        m = parse("func main() { var x = -~!1; }")
        e = m.function("main").body[0].init
        assert (e.op, e.operand.op, e.operand.operand.op) == ("-", "~", "!")

    def test_else_if_chain(self):
        m = parse("""
func main() {
    var x = 0;
    if (x == 1) { x = 10; } else if (x == 2) { x = 20; } else { x = 30; }
}""")
        stmt = m.function("main").body[1]
        assert isinstance(stmt, ast.If)
        assert isinstance(stmt.orelse[0], ast.If)
        assert stmt.orelse[0].orelse  # final else present

    def test_for_loop_desugar_parts(self):
        m = parse("func main() { for (var i = 0; i < 4; i = i + 1) { } }")
        loop = m.function("main").body[0]
        assert isinstance(loop, ast.For)
        assert isinstance(loop.init, ast.VarDecl)
        assert isinstance(loop.cond, ast.Binary)
        assert isinstance(loop.step, ast.Assign)

    def test_index_expression_vs_assign(self):
        m = parse("""
global xs[4];
func main() { xs[1] = xs[2] + 1; }
""")
        stmt = m.function("main").body[0]
        assert isinstance(stmt, ast.IndexAssign)
        assert isinstance(stmt.value.lhs, ast.Index)

    def test_call_args(self):
        m = parse("func f(a, b) { return a; } func main() { f(1, 2); }")
        call = m.function("main").body[0].expr
        assert isinstance(call, ast.Call) and len(call.args) == 2

    def test_five_params_rejected(self):
        with pytest.raises(ParseError):
            parse("func f(a, b, c, d, e) { }")

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("func main() { var x = 1 }")

    def test_junk_toplevel(self):
        with pytest.raises(ParseError):
            parse("var x = 1;")
