"""Codegen semantics tests: compile Minic, run the functional reference,
compare against the equivalent Python computation."""

import pytest

from repro.frontend import CodegenError, compile_source
from repro.hw.functional import run_functional


def run(source: str):
    return run_functional(compile_source(source)).output


def test_arithmetic_operators():
    out = run("""
func main() {
    print(7 + 3); print(7 - 3); print(7 * 3); print(7 / 3); print(7 % 3);
    print(-7 / 3); print(-7 % 3);
    print(7 & 3); print(7 | 8); print(7 ^ 5);
    print(1 << 4); print(-16 >> 2);
}""")
    assert out == [10, 4, 21, 2, 1, -2, -1, 3, 15, 2, 16, -4]


def test_comparisons_as_values():
    out = run("""
func main() {
    print(3 < 5); print(5 < 3); print(3 <= 3); print(3 > 5);
    print(5 >= 5); print(3 == 3); print(3 != 3);
}""")
    assert out == [1, 0, 1, 0, 1, 1, 0]


def test_short_circuit_evaluation():
    # The right operand must not execute when the left decides; a trapping
    # division proves it.
    out = run("""
global zero = 0;
func boom() { return 1 / zero; }
func main() {
    if (0 && boom()) { print(1); } else { print(2); }
    if (1 || boom()) { print(3); } else { print(4); }
    print(0 && 1); print(2 && 3); print(0 || 0); print(0 || 9);
}""")
    assert out == [2, 3, 0, 1, 0, 1]


def test_while_break_continue():
    out = run("""
func main() {
    var s = 0;
    var i = 0;
    while (i < 10) {
        i = i + 1;
        if (i == 3) { continue; }
        if (i == 7) { break; }
        s = s + i;
    }
    print(s);
    print(i);
}""")
    assert out == [1 + 2 + 4 + 5 + 6, 7]


def test_for_loop():
    out = run("""
func main() {
    var s = 0;
    for (var i = 1; i <= 5; i = i + 1) { s = s + i * i; }
    print(s);
}""")
    assert out == [55]


def test_globals_and_arrays():
    out = run("""
global counter = 10;
global xs[4] = {5, 6, 7, 8};
bytes raw = "AB";
func main() {
    counter = counter + xs[2];
    xs[0] = counter;
    print(xs[0]);
    print(raw[1]);
    raw[0] = 'z';
    print(raw[0]);
}""")
    assert out == [17, 66, 122]


def test_memory_builtins():
    out = run("""
global xs[2] = {100, 200};
func main() {
    var p = addr(xs);
    print(loadw(p + 4));
    storew(p, 7);
    print(xs[0]);
    print(size(xs));
    storeb(p, 255);
    print(loadb(p));
    print(loadbu(p));
}""")
    assert out == [200, 7, 2, -1, 255]


def test_recursion():
    out = run("""
func fact(n) {
    if (n < 2) { return 1; }
    return n * fact(n - 1);
}
func main() { print(fact(6)); }""")
    assert out == [720]


def test_mutual_recursion():
    out = run("""
func is_even(n) {
    if (n == 0) { return 1; }
    return is_odd(n - 1);
}
func is_odd(n) {
    if (n == 0) { return 0; }
    return is_even(n - 1);
}
func main() { print(is_even(10)); print(is_odd(10)); }""")
    assert out == [1, 0]


def test_args_preserved_across_inner_calls():
    out = run("""
func g(x) { return x * 2; }
func f(a, b) { return g(a) + b; }
func main() { print(f(3, 4)); }""")
    assert out == [10]


def test_local_live_across_call_in_loop():
    # Regression: a named local passed as an argument must be saved around
    # the call when it lives across loop iterations.
    out = run("""
func id(x) { return x; }
func main() {
    var key = 5;
    var s = 0;
    var i = 0;
    while (i < 3) {
        s = s + id(key);
        i = i + 1;
    }
    print(s);
    print(key);
}""")
    assert out == [15, 5]


def test_unknown_variable_rejected():
    with pytest.raises(CodegenError):
        compile_source("func main() { print(nope); }")


def test_unknown_function_rejected():
    with pytest.raises(CodegenError):
        compile_source("func main() { nope(); }")


def test_array_without_index_rejected():
    with pytest.raises(CodegenError):
        compile_source("global xs[2]; func main() { print(xs); }")


def test_duplicate_local_rejected():
    with pytest.raises(CodegenError):
        compile_source("func main() { var x = 1; var x = 2; }")


def test_break_outside_loop_rejected():
    with pytest.raises(CodegenError):
        compile_source("func main() { break; }")


def test_main_required():
    with pytest.raises(CodegenError):
        compile_source("func f() { return 0; }")
