"""Campaign orchestration and the broken-hardware self-test."""

from __future__ import annotations

import pytest

from repro.verify.campaign import VerifyCampaign, run_selftest


def test_small_campaign_is_clean():
    campaign = VerifyCampaign(workload_names=["grep"],
                              model_keys=["boost1"], seeds=3)
    summary = campaign.run()
    assert summary.ok
    assert summary.runs == 3
    assert not summary.divergences and not summary.oracle_errors
    (result,) = summary.results
    assert result.workload == "grep" and result.config == "boost1"
    assert result.runs == 3
    assert result.trapped + result.clean == 3
    text = summary.format()
    assert "grep" in text and "boost1" in text


def test_unknown_names_rejected():
    with pytest.raises(ValueError):
        VerifyCampaign(workload_names=["no-such-workload"])
    with pytest.raises(ValueError):
        VerifyCampaign(model_keys=["no-such-model"])


def test_selftest_catches_broken_shift_buffer():
    result = run_selftest()
    assert result.caught
    assert result.seed is not None
    assert result.seeds_tried >= 1
    assert "PASSED" in result.format()
