"""The seeded Minic generator: validity, termination, determinism."""

from __future__ import annotations

import hashlib
import subprocess
import sys

from repro.frontend import compile_source
from repro.harness.pipeline import make_input_image
from repro.hw.functional import FunctionalSim
from repro.verify.fuzz.generator import (
    GenConfig, SIZE_PROFILES, generate_program,
)

#: the generator's contract is *every* seed, so the test sweeps many
N_SEEDS = 200
#: execution fuel: a generated "small" program that needs more than this
#: has lost its termination guarantee
FUEL = 3_000_000


def _digest(seed: int, config: GenConfig = GenConfig()) -> str:
    gp = generate_program(seed, config)
    blob = repr((gp.name, gp.seed, gp.source, sorted(gp.train.items()),
                 sorted(gp.eval.items()))).encode()
    return hashlib.sha256(blob).hexdigest()


def test_200_seeds_compile_and_terminate():
    for seed in range(N_SEEDS):
        gp = generate_program(seed)
        program = compile_source(gp.source)  # must not raise
        image = make_input_image(program, gp.eval)
        sim = FunctionalSim(program, max_steps=FUEL, input_image=image,
                            backend="interp")
        result = sim.run()  # a Trap or fuel exhaustion fails the test
        assert result.trap is None, f"seed {seed} trapped: {result.trap}"
        assert result.instr_count > 0
        assert result.output, f"seed {seed} printed nothing"


def test_generation_is_deterministic_per_seed():
    for seed in (0, 7, 123, 199):
        a = generate_program(seed)
        b = generate_program(seed)
        assert a == b
    assert generate_program(3).source != generate_program(4).source


def test_generation_is_byte_identical_across_processes():
    seeds = (0, 57, 123, 199)
    here = [_digest(s) for s in seeds]
    # A fresh interpreter with a different hash seed: string-seeded RNGs
    # and ordered containers must make generation process-independent.
    script = (
        "from tests.verify.test_generator import _digest\n"
        f"print('\\n'.join(_digest(s) for s in {seeds!r}))\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", script], capture_output=True, text=True,
        check=True, env={"PYTHONPATH": "src:.", "PYTHONHASHSEED": "12345"})
    assert proc.stdout.split() == here


def test_train_and_eval_inputs_differ():
    gp = generate_program(11)
    assert gp.train != gp.eval
    assert set(gp.train) == set(gp.eval) == {"inp0"}


def test_size_profiles_scale_the_program():
    small = generate_program(5, GenConfig(size="small"))
    large = generate_program(5, GenConfig(size="large"))
    assert len(large.source) > len(small.source)
    n = 1 << SIZE_PROFILES["large"]["arr_pow2"]
    assert f"inp0[{n}]" in large.source


def test_grammar_emits_the_adversarial_features():
    """Div/rem, raw-memory aliasing, and calls all appear across seeds —
    a generator that stopped emitting trap candidates would quietly
    neuter every fault plan downstream."""
    joined = "".join(generate_program(s).source for s in range(40))
    assert " / " in joined or " % " in joined
    assert "storew(addr(" in joined and "loadw(addr(" in joined
    assert "fn0(" in joined
    assert "while (" in joined and "for (" in joined
