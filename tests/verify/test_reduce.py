"""Delta-debugging reducer: round-trips, convergence, determinism."""

from __future__ import annotations

import pytest

from repro.frontend import compile_source
from repro.frontend.parser import parse
from repro.verify.fuzz.fuzzcampaign import FuzzCampaign
from repro.verify.fuzz.generator import generate_program
from repro.verify.fuzz.reduce import reduce_source, unparse


def test_unparse_round_trips_generated_programs():
    for seed in range(25):
        src = generate_program(seed).source
        once = unparse(parse(src))
        assert unparse(parse(once)) == once  # unparse is a fixpoint
        compile_source(once)                 # and still compiles


def test_reducer_rejects_non_reproducing_predicate():
    with pytest.raises(ValueError):
        reduce_source("func main() { print(1); }", lambda src: False)


def test_reduction_shrinks_under_simple_predicate():
    src = generate_program(2).source
    # predicate: source still compiles and still contains a print —
    # a stand-in signature any tiny program can satisfy
    def predicate(candidate: str) -> bool:
        try:
            compile_source(candidate)
        except Exception:
            return False
        return "print" in candidate

    result = reduce_source(src, predicate)
    assert predicate(result.source)
    assert result.reduced_lines < result.original_lines
    assert result.reduced_lines <= 6


def _sabotaged_campaign() -> FuzzCampaign:
    return FuzzCampaign(count=1, seed_start=0, plans=1,
                        model_keys=["boost7"], backends=["reference"],
                        sabotage="drop-print")


def test_reduction_preserves_divergence_signature():
    """The planted drop-print bug must reduce to a tiny Minic repro whose
    cell still shows byte-for-byte the same signature."""
    campaign = _sabotaged_campaign()
    summary = campaign.run()
    assert summary.divergences, "sabotage escaped the campaign"
    campaign.finalize(summary, triage_dir=None, reduce=True)
    fd = summary.divergences[0]
    assert fd.reduced_source is not None
    assert len(fd.reduced_source.splitlines()) <= 15
    # the reduced source still reproduces the exact signature
    assert campaign._cell_signature(fd.reduced_source, fd) == fd.signature
    assert "reduced" in fd.reduce_note


def test_reduction_is_deterministic():
    reduced = []
    for _ in range(2):
        campaign = _sabotaged_campaign()
        summary = campaign.run()
        campaign.finalize(summary, triage_dir=None, reduce=True)
        reduced.append(summary.divergences[0].reduced_source)
    assert reduced[0] == reduced[1]
