"""The differential fuzz campaign: cells, parallel merge, triage."""

from __future__ import annotations

import json

import pytest

from repro.harness.resilience import Journal
from repro.verify.fuzz.fuzzcampaign import (
    FuzzCampaign, SABOTAGES, fuzz_repro_cmd,
)
from repro.verify.fuzz.generator import GenConfig


def _mini() -> FuzzCampaign:
    return FuzzCampaign(count=3, seed_start=0, plans=2,
                        model_keys=["boost7"],
                        backends=["reference", "translate"])


def test_clean_mini_campaign():
    summary = _mini().run()
    assert summary.ok
    stats = summary.stats()
    assert stats.programs == 3
    assert stats.plans == 6
    assert stats.backend_cells == 3 * 2      # translate cell per plan
    assert stats.model_cells == 3 * 2 * 2    # 1 model x 2 backends x 2 plans
    assert stats.dynamic_cells == 3 * 5      # five LSQ/rename variants, benign plan
    assert stats.runs == (stats.backend_cells + stats.model_cells
                          + stats.dynamic_cells)
    text = summary.format()
    assert "divergences: 0" in text


def test_parallel_merge_is_byte_identical():
    serial = _mini().run(jobs=1).format()
    parallel = _mini().run(jobs=2).format()
    assert serial == parallel


def test_journal_resume_restores_results(tmp_path):
    campaign = _mini()
    fingerprint = Journal.make_fingerprint(**campaign.facets())
    path = tmp_path / "fuzz.journal"
    j1 = Journal(path, fingerprint)
    full = campaign.run(journal=j1).format()
    j1.close()
    # resume from the complete journal: nothing re-runs, output identical
    j2 = Journal(path, fingerprint, resume=True)
    assert len(j2.completed) == 3
    resumed = _mini().run(journal=j2).format()
    j2.close()
    assert resumed == full


def test_invalid_configuration_rejected():
    with pytest.raises(ValueError):
        FuzzCampaign(model_keys=["no-such-model"])
    with pytest.raises(ValueError):
        FuzzCampaign(backends=["no-such-backend"])
    with pytest.raises(ValueError):
        FuzzCampaign(sabotage="no-such-sabotage")
    with pytest.raises(ValueError):
        FuzzCampaign(plans=0)
    assert set(SABOTAGES) == {"shiftbuf", "drop-print"}


def test_sabotage_is_caught_reduced_and_triaged(tmp_path):
    campaign = FuzzCampaign(count=2, seed_start=0, plans=2,
                            model_keys=["boost7"], backends=["reference"],
                            sabotage="drop-print")
    summary = campaign.run()
    assert not summary.ok
    assert summary.divergences
    # every divergence names the sabotaged cell and embeds a one-line repro
    for fd in summary.divergences:
        assert fd.machine == "superscalar"
        assert fd.signature.startswith("superscalar/boost7/reference/output")
        assert fd.repro_cmd.startswith("python -m repro fuzz --count 1 ")
        assert f"--seed-start {fd.seed}" in fd.repro_cmd
        assert "--sabotage drop-print" in fd.repro_cmd
        assert fd.repro_cmd in fd.describe()
    campaign.finalize(summary, triage_dir=tmp_path, reduce=True)
    (entry,) = summary.triage  # one signature -> one bucket
    assert entry.occurrences == len(summary.divergences)
    bucket = tmp_path / entry.bucket
    record = json.loads((bucket / "record.json").read_text())
    assert record["schema"] == "repro-triage/1"
    assert record["repro"].startswith("python -m repro fuzz ")
    assert record["signature"] == entry.signature
    reduced = (bucket / "repro.mc").read_text()
    assert len(reduced.splitlines()) <= 15
    assert (bucket / "original.mc").read_text() != reduced


def test_repro_cmd_names_every_knob():
    config = GenConfig(size="medium", pred_lo=0.6)
    cmd = fuzz_repro_cmd(41, config, 5, model="squashing",
                         backend="translate", sabotage="shiftbuf")
    assert cmd == ("python -m repro fuzz --count 1 --seed-start 41 "
                   "--plans 5 --size medium --pred-lo 0.6 "
                   "--models squashing --backends translate "
                   "--sabotage shiftbuf")
