"""Fault-plan generation and application."""

from __future__ import annotations

from repro.frontend import compile_source
from repro.harness.pipeline import prepare_ir
from repro.hw.exceptions import TrapKind
from repro.program.procedure import clone_program
from repro.verify.campaign import CAMPAIGN_CONFIGS
from repro.verify.faults import (
    FaultInjector, FaultPlan, TrapInjection, apply_flips, flip_candidates,
    make_plan, trap_candidates,
)

SOURCE = """
global xs[8];

func main() {
    var s = 0;
    var i = 0;
    while (i < 16) {
        if (i % 2 == 0) { s = s + xs[i % 8]; }
        print(s);
        i = i + 1;
    }
}
"""


def _prepared():
    return prepare_ir(compile_source(SOURCE),
                      CAMPAIGN_CONFIGS["minboost3"], None)


def test_make_plan_is_deterministic():
    prog = _prepared()
    for seed in range(10):
        assert make_plan(prog, seed) == make_plan(prog, seed)


def test_plans_vary_across_seeds():
    prog = _prepared()
    plans = {make_plan(prog, seed) for seed in range(16)}
    assert len(plans) > 4


def test_traps_target_excepting_instructions_only():
    prog = _prepared()
    excepting = {i.origin or i.uid for i in trap_candidates(prog)}
    assert excepting, "the test program must contain excepting instructions"
    for seed in range(32):
        plan = make_plan(prog, seed)
        assert len(plan.traps) <= 1
        for trap in plan.traps:
            assert trap.target_uid in excepting
            if trap.kind is TrapKind.DIV_ZERO:
                assert trap.addr is None
            else:
                assert trap.addr is not None
            if trap.kind is TrapKind.UNALIGNED:
                assert trap.addr % 4 != 0


def test_apply_flips_inverts_prediction_and_probability():
    prog = _prepared()
    branches = flip_candidates(prog)
    assert branches
    target = branches[0]
    before_pred = target.predict_taken
    block = next(b for p in prog.procedures.values() for b in p.blocks
                 if b.terminator is target)
    before_prob = block.taken_prob

    clone = clone_program(prog)
    assert apply_flips(clone, frozenset({target.uid})) == 1
    flipped = next(b.terminator for p in clone.procedures.values()
                   for b in p.blocks
                   if b.terminator is not None
                   and b.terminator.uid == target.uid)
    assert flipped.predict_taken == (not before_pred)
    if before_prob is not None:
        flipped_block = next(b for p in clone.procedures.values()
                             for b in p.blocks
                             if b.terminator is flipped)
        assert abs(flipped_block.taken_prob - (1.0 - before_prob)) < 1e-9
    # the original program is untouched
    assert target.predict_taken == before_pred


def test_injector_matches_architectural_identity():
    prog = _prepared()
    target = trap_candidates(prog)[0]
    plan = FaultPlan(seed=0, traps=(TrapInjection(
        target_uid=target.origin or target.uid, kind=TrapKind.ADDRESS_ERROR,
        addr=0xFA000000, mnemonic=target.op.mnemonic),))
    injector = FaultInjector(plan)

    copy = target.copy(boost=1)          # a boosted duplicate, new uid
    assert copy.uid != target.uid and copy.origin == target.uid
    t1 = injector(target)
    t2 = injector(copy)
    assert t1 is not None and t2 is not None and t1 is not t2
    assert injector.total_hits == 2
    other = flip_candidates(prog)[0]
    assert injector(other) is None


def test_plan_describe_mentions_everything():
    prog = _prepared()
    for seed in range(16):
        plan = make_plan(prog, seed)
        text = plan.describe()
        if plan.benign:
            assert text == "(benign)"
        for trap in plan.traps:
            assert str(trap.target_uid) in text
        if plan.flips:
            assert "flip predictions" in text
