"""Differential checker: end-to-end runs and comparison-policy units."""

from __future__ import annotations

import pytest

from repro.frontend import compile_source
from repro.harness.pipeline import prepare_ir
from repro.hw.exceptions import Trap, TrapKind
from repro.program.procedure import clone_program
from repro.sched.globalsched import schedule_program_global
from repro.sched.machine import SUPERSCALAR
from repro.verify.campaign import CAMPAIGN_CONFIGS, BrokenShiftBuffer
from repro.verify.differential import DifferentialChecker, RunOutcome
from repro.verify.errors import DivergenceError
from repro.verify.faults import FaultPlan, TrapInjection, trap_candidates

SOURCE = """
global buf[8] = { 3, 1, 4, 1, 5, 9, 2, 6 };

func main() {
    var acc = 0;
    var i = 0;
    while (i < 24) {
        var v = 0 - 1;
        if (i % 8 < 7) {
            v = buf[i % 8];
        }
        acc = acc + v;
        print(acc);
        i = i + 1;
    }
}
"""


def _prepare(model_key: str = "minboost3"):
    config = CAMPAIGN_CONFIGS[model_key]
    prog = prepare_ir(compile_source(SOURCE), config, None)
    reference = clone_program(prog)
    sched, _ = schedule_program_global(prog, SUPERSCALAR, config.model)
    return sched, reference


# ------------------------------------------------------------- end-to-end
def test_benign_plan_agrees():
    sched, reference = _prepare()
    report = DifferentialChecker().check(
        sched, reference, FaultPlan(seed=0), workload="micro")
    assert report.ok and not report.trapped
    assert report.reference.output == report.superscalar.output != []
    assert report.reference.memory == report.superscalar.memory


@pytest.mark.parametrize("model_key", ["squashing", "boost1", "minboost3"])
def test_injected_trap_surfaces_identically(model_key):
    sched, reference = _prepare(model_key)
    target = trap_candidates(reference)[0]
    plan = FaultPlan(seed=0, traps=(TrapInjection(
        target_uid=target.origin or target.uid,
        kind=TrapKind.ADDRESS_ERROR, addr=0xFA000040,
        mnemonic=target.op.mnemonic),))
    report = DifferentialChecker().check(
        sched, reference, plan, workload="micro", config=model_key)
    assert report.ok and report.trapped
    ref_trap, ssc_trap = report.reference.trap, report.superscalar.trap
    assert ssc_trap is not None
    assert (ssc_trap.kind, ssc_trap.instr_uid, ssc_trap.addr) == \
        (ref_trap.kind, ref_trap.instr_uid, ref_trap.addr)
    assert report.superscalar.injected_hits >= 1


def test_broken_shift_buffer_is_convicted():
    """With sabotaged hardware the same plan must raise DivergenceError."""
    for seed in range(64):
        sched, reference = _prepare()
        plan_src = clone_program(reference)
        from repro.verify.faults import make_plan
        plan = make_plan(plan_src, seed)
        if not plan.traps or plan.flips:
            continue
        healthy = DifferentialChecker().compare_only(sched, reference, plan)
        if not healthy.ok or not healthy.trapped:
            continue
        if healthy.superscalar.recoveries == 0 \
                and healthy.superscalar.boosted_squashed == 0:
            continue  # fault never travelled through the shift buffer
        broken = DifferentialChecker(
            shiftbuf_factory=lambda levels: BrokenShiftBuffer(levels))
        with pytest.raises(DivergenceError) as exc:
            broken.check(sched, reference, plan, workload="micro",
                         config="minboost3")
        assert exc.value.divergences
        assert "verify" in exc.value.repro
        return
    pytest.fail("no seed exercised the shift buffer on the micro program")


# --------------------------------------------------------- compare() units
def _clean(machine: str, output, memory=b"\x00\x01") -> RunOutcome:
    return RunOutcome(machine=machine, output=list(output), memory=memory)


def test_compare_machine_error_is_divergence():
    ref = _clean("functional", [1, 2])
    ssc = RunOutcome(machine="superscalar", error="StoreBufferError: full")
    (d,) = DifferentialChecker.compare(ref, ssc)
    assert d.observable == "machine-error"


def test_compare_trap_mismatch():
    ref = _clean("functional", [1])
    ref.trap = Trap(TrapKind.DIV_ZERO, instr_uid=5)
    ssc = _clean("superscalar", [1])
    (d,) = DifferentialChecker.compare(ref, ssc)
    assert d.observable == "trap"

    ssc.trap = Trap(TrapKind.DIV_ZERO, instr_uid=6)
    (d,) = DifferentialChecker.compare(ref, ssc)
    assert d.observable == "trap" and "imprecisely" in d.detail


def test_compare_output_prefix_rule_at_traps():
    """At a trap, differing *lengths* are legal; differing prefixes are not."""
    ref = _clean("functional", [1, 2, 3])
    ref.trap = Trap(TrapKind.DIV_ZERO, instr_uid=5)
    ssc = _clean("superscalar", [1, 2])
    ssc.trap = Trap(TrapKind.DIV_ZERO, instr_uid=5)
    assert DifferentialChecker.compare(ref, ssc) == []

    ssc.output = [1, 9]
    (d,) = DifferentialChecker.compare(ref, ssc)
    assert d.observable == "output" and "position 1" in d.detail


def test_compare_clean_exit_is_strict():
    ref = _clean("functional", [1, 2, 3], memory=b"\x00\x01")
    ssc = _clean("superscalar", [1, 2], memory=b"\x00\x02")
    divs = DifferentialChecker.compare(ref, ssc)
    assert {d.observable for d in divs} == {"output", "memory"}
    mem = next(d for d in divs if d.observable == "memory")
    assert "0x1" in mem.detail
