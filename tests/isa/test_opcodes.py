"""Tests for the opcode table."""

from repro.isa import BY_MNEMONIC, FU, Opcode


def test_every_opcode_has_unique_mnemonic():
    assert len(BY_MNEMONIC) == len(Opcode)


def test_loads_are_unsafe_and_long_latency():
    for op in (Opcode.LW, Opcode.LB, Opcode.LBU):
        assert op.can_except
        assert op.is_load
        assert op.latency == 2  # one delay slot, as on the R2000


def test_stores_except_but_write_nothing():
    for op in (Opcode.SW, Opcode.SB):
        assert op.can_except
        assert op.is_store
        assert not op.writes_dst


def test_div_excepts_add_does_not():
    assert Opcode.DIV.can_except
    assert Opcode.REM.can_except
    assert not Opcode.ADD.can_except  # addu semantics


def test_branch_classification():
    assert Opcode.BEQ.is_cond_branch and Opcode.BEQ.is_branch
    assert Opcode.J.is_jump and not Opcode.J.is_cond_branch
    assert Opcode.JAL.is_call and Opcode.JAL.writes_dst
    assert Opcode.JR.is_indirect


def test_fu_assignment_matches_paper_machine():
    # Section 4.3.1: shifter, branch unit, mul/div on side A; memory on side B.
    assert Opcode.SLL.fu is FU.SHIFT
    assert Opcode.BEQ.fu is FU.BRANCH
    assert Opcode.MUL.fu is FU.MULDIV
    assert Opcode.LW.fu is FU.MEM
    assert Opcode.ADD.fu is FU.ALU


def test_muldiv_longer_than_alu():
    assert Opcode.MUL.latency > Opcode.ADD.latency
    assert Opcode.DIV.latency > Opcode.MUL.latency
