"""Tests for Instruction and the boosting annotations."""

import pytest

from repro.isa import (
    BoostLabel, Direction, Instruction, Opcode, RA, Reg, ZERO,
)

T0, T1, T2 = Reg.named("t0"), Reg.named("t1"), Reg.named("t2")


def test_defs_and_uses():
    add = Instruction(Opcode.ADD, dst=T0, srcs=(T1, T2))
    assert add.defs() == (T0,)
    assert set(add.uses()) == {T1, T2}


def test_zero_register_never_defined_or_used():
    i = Instruction(Opcode.ADD, dst=ZERO, srcs=(ZERO, T1))
    assert i.defs() == ()
    assert i.uses() == (T1,)


def test_store_has_no_defs():
    sw = Instruction(Opcode.SW, srcs=(T0, T1), imm=4)
    assert sw.defs() == ()
    assert set(sw.uses()) == {T0, T1}


def test_jal_implicitly_writes_ra():
    jal = Instruction(Opcode.JAL, target="callee")
    assert jal.dst is RA
    assert jal.defs() == (RA,)


def test_missing_dst_rejected():
    with pytest.raises(ValueError):
        Instruction(Opcode.ADD, srcs=(T0, T1))


def test_negative_boost_rejected():
    with pytest.raises(ValueError):
        Instruction(Opcode.ADD, dst=T0, srcs=(T0, T1), boost=-1)


def test_uids_are_unique():
    a = Instruction(Opcode.NOP)
    b = Instruction(Opcode.NOP)
    assert a.uid != b.uid


def test_copy_gets_fresh_uid_and_origin():
    a = Instruction(Opcode.ADD, dst=T0, srcs=(T1, T2))
    b = a.copy(boost=2)
    assert b.uid != a.uid
    assert b.origin == a.uid
    assert b.boost == 2 and a.boost == 0
    c = b.copy()
    assert c.origin == a.uid  # origin chains back to the root


def test_boost_suffix_in_text():
    lw = Instruction(Opcode.LW, dst=T0, srcs=(T1,), imm=4, boost=2)
    assert ".B2" in str(lw)


def test_side_effect_free():
    assert Instruction(Opcode.ADD, dst=T0, srcs=(T1, T2)).side_effect_free
    assert Instruction(Opcode.LW, dst=T0, srcs=(T1,), imm=0).side_effect_free
    assert not Instruction(Opcode.SW, srcs=(T0, T1), imm=0).side_effect_free
    assert not Instruction(Opcode.PRINT, srcs=(T0,)).side_effect_free


def test_boost_label_general_form():
    # Figure 2: instruction boosted above two branches, both RIGHT.
    label = BoostLabel(("R", "R"))
    assert label.level == 2
    assert label.suffix == ".BRR"


def test_boost_label_dont_care():
    label = BoostLabel((Direction.RIGHT, Direction.DONT_CARE, Direction.LEFT))
    assert label.level == 2  # X does not count toward the level


def test_boost_label_parse_roundtrip():
    label = BoostLabel.parse("BRXL")
    assert label.dirs == ("R", "X", "L")
    assert BoostLabel.parse(label.suffix[1:]) == label


def test_boost_label_rejects_bad_direction():
    with pytest.raises(ValueError):
        BoostLabel(("Q",))
