"""Tests for the register model."""

import pytest

from repro.isa import ALLOCATABLE, NUM_ARCH_REGS, RA, SP, ZERO, Reg


def test_interning():
    assert Reg(5) is Reg(5)
    assert Reg.named("t0") is Reg(8)
    assert Reg.virtual(3) is Reg.virtual(3)


def test_named_lookup():
    assert Reg.named("zero") is ZERO
    assert Reg.named("sp") is SP
    assert Reg.named("ra") is RA
    assert Reg.named("r10").index == 10
    assert Reg.named("v7") is Reg.virtual(7)


def test_named_unknown():
    with pytest.raises(KeyError):
        Reg.named("bogus")


def test_negative_index_rejected():
    with pytest.raises(ValueError):
        Reg(-1)


def test_virtual_properties():
    v = Reg.virtual(0)
    assert v.is_virtual
    assert v.index == Reg.VIRTUAL_BASE
    assert v.name == "v0"
    assert not Reg(4).is_virtual


def test_zero_detection():
    assert ZERO.is_zero
    assert not SP.is_zero


def test_ordering_and_hash():
    assert Reg(3) < Reg(4)
    assert len({Reg(1), Reg(1), Reg(2)}) == 2


def test_allocatable_excludes_reserved():
    names = {r.name for r in ALLOCATABLE}
    for reserved in ("zero", "at", "sp", "gp", "fp", "ra", "k0", "k1"):
        assert reserved not in names
    assert len(ALLOCATABLE) == 24


def test_arch_reg_count():
    assert NUM_ARCH_REGS == 32
    assert all(Reg(i).name for i in range(NUM_ARCH_REGS))
