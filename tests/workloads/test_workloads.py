"""Workload-level tests: every Table-1 program compiles, runs, and gives the
same answer on every machine model."""

import pytest

from repro.harness.pipeline import (
    CompileConfig, SCALAR_CONFIG, compile_minic, make_input_image,
)
from repro.hw.dynamic import run_dynamic
from repro.sched.boostmodel import BOOST7, MINBOOST3
from repro.sched.machine import SUPERSCALAR
from repro.workloads import all_workloads, get

NAMES = ["awk", "compress", "eqntott", "espresso", "grep", "nroff", "xlisp",
         "fuzzalias", "branchmesh"]


def test_registry_has_the_table1_suite():
    assert [w.name for w in all_workloads()] == NAMES
    for w in all_workloads():
        assert w.paper_benchmark
        assert w.train.keys() == w.eval.keys()


def test_train_and_eval_inputs_differ():
    for w in all_workloads():
        assert w.train != w.eval, w.name


@pytest.mark.parametrize("name", NAMES)
def test_functional_and_scalar_agree(name):
    w = get(name)
    cp = compile_minic(w.source, SCALAR_CONFIG, w.train)
    ref = cp.run_functional(w.eval)
    scalar = cp.run(w.eval)
    assert scalar.output == ref.output
    assert ref.output, f"{name} must print something"
    assert scalar.ipc < 1.0


# The full 7×5 matrix lives in the benchmark harness; the unit suite checks
# the two most interesting hardware points on the three fastest workloads.
@pytest.mark.parametrize("name", ["awk", "eqntott", "grep"])
@pytest.mark.parametrize("model", [MINBOOST3, BOOST7], ids=lambda m: m.name)
def test_boosting_models_agree(name, model):
    w = get(name)
    base = compile_minic(w.source, SCALAR_CONFIG, w.train)
    ref = base.run_functional(w.eval).output
    cfg = CompileConfig(machine=SUPERSCALAR, model=model)
    cp = compile_minic(w.source, cfg, w.train)
    assert cp.run(w.eval).output == ref


@pytest.mark.parametrize("name", ["awk", "eqntott"])
def test_dynamic_machine_agrees(name):
    w = get(name)
    base = compile_minic(w.source, SCALAR_CONFIG, w.train)
    ref = base.run_functional(w.eval).output
    image = make_input_image(base.program, w.eval)
    assert run_dynamic(base.program, input_image=image).output == ref


def test_profile_comes_from_train_not_eval():
    # The prediction accuracy measured on eval must generally be *below*
    # what the same profile would achieve on its own training input —
    # i.e., the harness really is cross-input.
    w = get("eqntott")
    cp = compile_minic(w.source, SCALAR_CONFIG, w.train)
    on_train = cp.run(w.train)
    on_eval = cp.run(w.eval)
    assert on_train.prediction_accuracy >= on_eval.prediction_accuracy - 0.02
