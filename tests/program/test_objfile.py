"""Tests for the binary object-file format."""

import pytest

from repro.frontend import compile_source
from repro.hw.functional import run_functional
from repro.isa import Instruction, Opcode, Reg
from repro.opt import allocate_program, optimize_program
from repro.program import ProcBuilder, Program
from repro.program.objfile import (
    MAGIC, ObjFileError, load_program, save_program,
)

SOURCE = """
global xs[4] = {9, 8, 7, 6};
bytes tag = "ok";
func helper(v) { return v * 2; }
func main() {
    var s = 0;
    for (var i = 0; i < 4; i = i + 1) { s = s + helper(xs[i]); }
    print(s);
    print(tag[0]);
}
"""


def roundtrip(program: Program) -> Program:
    return load_program(save_program(program))


def test_semantic_roundtrip():
    prog = compile_source(SOURCE)
    expected = run_functional(prog).output
    assert run_functional(roundtrip(prog)).output == expected


def test_structural_roundtrip():
    prog = compile_source(SOURCE)
    optimize_program(prog)
    allocate_program(prog)
    again = roundtrip(prog)
    assert set(again.procedures) == set(prog.procedures)
    assert again.entry == prog.entry
    assert again.mem_size == prog.mem_size
    for name, proc in prog.procedures.items():
        other = again.proc(name)
        assert [b.label for b in other.blocks] == [b.label for b in proc.blocks]
        for b1, b2 in zip(proc.blocks, other.blocks):
            assert [str(i) for i in b1.instructions()] == \
                   [str(i) for i in b2.instructions()]


def test_boost_and_prediction_preserved():
    program = Program()
    b = ProcBuilder("main", data=program.data)
    t0 = Reg.named("t0")
    b.label("entry")
    b.emit(Instruction(Opcode.LW, dst=t0, srcs=(t0,), imm=4, boost=2))
    b.emit(Instruction(Opcode.BEQ, srcs=(t0, t0), target="entry",
                       predict_taken=True))
    program.add(b.build())
    again = roundtrip(program)
    block = again.proc("main").block("entry")
    assert block.body[0].boost == 2
    assert block.terminator.predict_taken is True


def test_data_segment_preserved():
    prog = compile_source(SOURCE)
    again = roundtrip(prog)
    assert again.data.symbols() == prog.data.symbols()
    assert sorted(again.data.initial_image()) == \
        sorted(prog.data.initial_image())


def test_bad_magic_rejected():
    with pytest.raises(ObjFileError):
        load_program(b"NOPE" + b"\x00" * 64)


def test_truncated_rejected():
    raw = save_program(compile_source(SOURCE))
    with pytest.raises(ObjFileError):
        load_program(raw[: len(raw) // 2])


def test_magic_is_stable():
    raw = save_program(compile_source(SOURCE))
    assert raw[:4] == MAGIC
