"""Round-trip tests for the textual assembly form."""

import pytest

from repro.isa import Opcode, Reg, ZERO
from repro.program import (
    ProcBuilder, Program, format_program, parse_instruction, parse_program,
)
from repro.program.asmtext import AsmSyntaxError

T0, T1 = Reg.named("t0"), Reg.named("t1")


def test_parse_simple_instruction():
    i = parse_instruction("add $t0, $t1, $zero")
    assert i.op is Opcode.ADD
    assert i.dst is T0
    assert i.srcs == (T1, ZERO)


def test_parse_load_store():
    lw = parse_instruction("lw $t0, 8($sp)")
    assert lw.op is Opcode.LW and lw.imm == 8
    sw = parse_instruction("sw $t0, -4($sp)")
    assert sw.op is Opcode.SW and sw.imm == -4


def test_parse_boosted_instruction():
    i = parse_instruction("lw.B2 $t0, 0($t1)")
    assert i.boost == 2
    assert i.op is Opcode.LW


def test_parse_branch_with_prediction():
    i = parse_instruction("beq $t0, $zero, exit <NT>")
    assert i.op is Opcode.BEQ
    assert i.target == "exit"
    assert i.predict_taken is False


def test_parse_unknown_mnemonic():
    with pytest.raises(AsmSyntaxError):
        parse_instruction("frobnicate $t0")


def test_parse_bad_memory_operand():
    with pytest.raises(AsmSyntaxError):
        parse_instruction("lw $t0, t1")


def test_program_roundtrip():
    program = Program()
    program.data.words("xs", [10, 20])
    b = ProcBuilder("main", data=program.data)
    b.label("entry")
    b.la(T0, "xs")
    b.lw(T1, T0, 4)
    b.print_(T1)
    b.halt()
    program.add(b.build())

    text = format_program(program)
    parsed = parse_program(text)
    assert set(parsed.procedures) == {"main"}
    main = parsed.proc("main")
    ops = [i.op for i in main.instructions()]
    assert ops == [Opcode.LI, Opcode.LW, Opcode.PRINT, Opcode.HALT]
    # And the reparsed program prints the same text.
    assert format_program(parsed) == text


def test_roundtrip_preserves_boost_and_prediction():
    text = """
.proc main
entry:
    li $t0, 3
    bne $t0, $zero, out <T>
body:
    lw.B1 $t1, 0($t0)
    halt
out:
    halt
"""
    program = parse_program(text)
    main = program.proc("main")
    assert main.block("entry").terminator.predict_taken is True
    assert main.block("body").body[0].boost == 1
    again = parse_program(format_program(program))
    assert again.proc("main").block("body").body[0].boost == 1
