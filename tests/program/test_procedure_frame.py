"""Tests for Procedure/Program plumbing and the FrameInfo contract."""

import pytest

from repro.frontend import compile_source
from repro.isa import Reg
from repro.program import ProcBuilder, Program
from repro.program.procedure import FrameInfo

T0 = Reg.named("t0")


def test_frame_bytes():
    frame = FrameInfo(base_slots=3, spill_slots=2)
    assert frame.frame_bytes == 20


def test_codegen_publishes_frame_info():
    prog = compile_source("""
func callee(x) { return x + 1; }
func main() { print(callee(1)); }
""")
    main = prog.proc("main")
    assert main.frame.prologue is not None      # main makes a call
    assert main.frame.base_slots >= 1           # at least the saved $ra
    callee = prog.proc("callee")
    assert callee.frame.prologue is not None    # non-main always has a frame
    assert callee.frame.epilogues               # restored before jr


def test_leaf_main_has_no_frame():
    prog = compile_source("func main() { print(1); }")
    assert prog.main.frame.prologue is None
    assert prog.main.frame.base_slots == 0


def test_layout_successor_and_instruction_count():
    b = ProcBuilder("p")
    b.label("a")
    b.li(T0, 1)
    b.label("b")
    b.halt()
    proc = b.build()
    assert proc.layout_successor("a").label == "b"
    assert proc.layout_successor("b") is None
    assert proc.instruction_count() == 2


def test_program_helpers():
    prog = compile_source("func main() { print(1); }")
    assert prog.main is prog.proc("main")
    assert prog.instruction_count() >= 2
    assert prog.max_register_index() >= 31
    # Before allocation the code generator works in virtual registers.
    assert any(r.is_virtual for r in prog.registers_used())


def test_duplicate_procedure_rejected():
    prog = Program()
    b = ProcBuilder("main")
    b.label("entry")
    b.halt()
    prog.add(b.build())
    b2 = ProcBuilder("main")
    b2.label("entry")
    b2.halt()
    with pytest.raises(ValueError):
        prog.add(b2.build())


def test_block_insertion_after():
    from repro.program import BasicBlock
    b = ProcBuilder("p")
    b.label("a")
    b.label("c")
    b.halt()
    proc = b.build()
    proc.add_block(BasicBlock("b"), after="a")
    assert [blk.label for blk in proc.blocks] == ["a", "b", "c"]
