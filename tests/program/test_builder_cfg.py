"""Tests for the IR builder, blocks, procedures, and the CFG."""

import pytest

from repro.isa import Opcode, Reg, ZERO
from repro.program import CFG, BasicBlock, DataSegment, ProcBuilder, Procedure

T0, T1 = Reg.named("t0"), Reg.named("t1")


def diamond() -> Procedure:
    """if (t0 == 0) t1 = 1 else t1 = 2; halt"""
    b = ProcBuilder("diamond")
    b.label("entry")
    b.beq(T0, ZERO, "then")
    b.label("else_")
    b.li(T1, 2)
    b.j("join")
    b.label("then")
    b.li(T1, 1)
    b.label("join")
    b.halt()
    return b.build()


def test_block_append_terminator_closes_block():
    block = BasicBlock("b")
    from repro.isa import Instruction
    block.append(Instruction(Opcode.LI, dst=T0, imm=1))
    block.append(Instruction(Opcode.HALT))
    assert block.is_terminated
    with pytest.raises(ValueError):
        block.append(Instruction(Opcode.NOP))


def test_builder_builds_blocks():
    proc = diamond()
    assert [b.label for b in proc.blocks] == ["entry", "else_", "then", "join"]
    assert proc.entry.label == "entry"
    assert proc.block("then").terminator is None  # falls through to join


def test_duplicate_label_rejected():
    b = ProcBuilder("p")
    b.label("x")
    with pytest.raises(ValueError):
        b.label("x")


def test_cfg_successors():
    proc = diamond()
    cfg = CFG(proc)
    assert cfg.succs("entry") == ["then", "else_"]
    assert cfg.succs("else_") == ["join"]
    assert cfg.succs("then") == ["join"]
    assert cfg.succs("join") == []
    assert sorted(cfg.preds("join")) == ["else_", "then"]


def test_cfg_taken_and_fall():
    cfg = CFG(diamond())
    assert cfg.taken_succ("entry") == "then"
    assert cfg.fall_succ("entry") == "else_"
    assert cfg.off_trace_succ("entry", "then") == "else_"


def test_predicted_succ_follows_annotation():
    proc = diamond()
    proc.block("entry").terminator.predict_taken = True
    cfg = CFG(proc)
    assert cfg.predicted_succ("entry") == "then"
    proc.block("entry").terminator.predict_taken = False
    assert cfg.predicted_succ("entry") == "else_"


def test_rpo_starts_at_entry_and_covers_reachable():
    cfg = CFG(diamond())
    order = cfg.rpo()
    assert order[0] == "entry"
    assert set(order) == {"entry", "else_", "then", "join"}
    # join must come after both predecessors
    assert order.index("join") > order.index("then")
    assert order.index("join") > order.index("else_")


def test_call_block_has_fallthrough_successor():
    b = ProcBuilder("caller")
    b.label("entry")
    b.jal("callee")
    b.label("after")
    b.halt()
    cfg = CFG(b.build())
    assert cfg.succs("entry") == ["after"]


def test_return_block_has_no_successors():
    b = ProcBuilder("leaf")
    b.label("entry")
    b.ret()
    cfg = CFG(b.build())
    assert cfg.succs("entry") == []


def test_fresh_label():
    proc = diamond()
    assert proc.fresh_label("new") == "new"
    assert proc.fresh_label("join") == "join.1"


def test_data_segment_layout():
    data = DataSegment()
    a = data.words("xs", [1, 2, 3])
    b = data.zeros("buf", 10)
    c = data.bytes_("msg", b"hi")
    assert a % 4 == 0 and b % 4 == 0 and c % 4 == 0
    assert b == a + 12
    assert data.address_of("xs") == a
    assert data.size_of("buf") == 10
    assert "msg" in data
    image = dict(data.initial_image())
    assert image[a][:4] == (1).to_bytes(4, "little")


def test_data_segment_duplicate_symbol():
    data = DataSegment()
    data.zeros("x", 4)
    with pytest.raises(ValueError):
        data.zeros("x", 4)
