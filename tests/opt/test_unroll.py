"""Tests for the loop unroller."""

from repro.frontend import compile_source
from repro.hw.functional import run_functional
from repro.opt import optimize_program, unroll_program
from repro.program import CFG
from repro.analysis import RegionTree

SOURCE = """
global xs[10] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
func main() {
    var s = 0;
    var i = 0;
    while (i < 10) {
        s = s + xs[i];
        i = i + 1;
    }
    print(s);
    print(i);
}
"""


def test_unroll_preserves_semantics():
    prog = compile_source(SOURCE)
    optimize_program(prog)
    expected = run_functional(prog).output
    assert unroll_program(prog, factor=2) == 1
    assert run_functional(prog).output == expected


def test_unroll_by_four():
    prog = compile_source(SOURCE)
    optimize_program(prog)
    expected = run_functional(prog).output
    unroll_program(prog, factor=4)
    assert run_functional(prog).output == expected


def test_unroll_grows_the_loop():
    prog = compile_source(SOURCE)
    optimize_program(prog)
    before = prog.instruction_count()
    unroll_program(prog, factor=2)
    assert prog.instruction_count() > before


def test_unroll_keeps_all_exit_tests():
    # Every copy keeps its exit branch: odd trip counts stay correct.
    source = SOURCE.replace("i < 10", "i < 7")
    prog = compile_source(source)
    optimize_program(prog)
    expected = run_functional(prog).output
    unroll_program(prog, factor=4)
    assert run_functional(prog).output == expected
    assert expected[1] == 7


def test_factor_one_is_noop():
    prog = compile_source(SOURCE)
    optimize_program(prog)
    before = prog.instruction_count()
    assert unroll_program(prog, factor=1) == 0
    assert prog.instruction_count() == before


def test_oversized_loops_skipped():
    prog = compile_source(SOURCE)
    optimize_program(prog)
    assert unroll_program(prog, factor=2, max_body_instructions=2) == 0


def test_only_innermost_loops_unrolled():
    source = """
global xs[4] = {1, 2, 3, 4};
func main() {
    var total = 0;
    for (var r = 0; r < 3; r = r + 1) {
        for (var c = 0; c < 4; c = c + 1) {
            total = total + xs[c] * (r + 1);
        }
    }
    print(total);
}
"""
    prog = compile_source(source)
    optimize_program(prog)
    expected = run_functional(prog).output
    tree_before = RegionTree(CFG(prog.proc("main")))
    inner_before = sum(1 for r in tree_before.loops if not r.children)
    assert unroll_program(prog, factor=2) >= 1
    assert run_functional(prog).output == expected
    assert expected == [sum(x * (r + 1) for r in range(3)
                            for x in [1, 2, 3, 4])]
