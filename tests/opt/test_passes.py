"""Tests for the optimizer passes.

Each pass is checked two ways: the structural effect on a crafted snippet,
and semantic preservation (functional output unchanged) on a compiled
program.
"""

from repro.frontend import compile_source
from repro.hw.functional import run_functional
from repro.isa import Instruction, Opcode, Reg, ZERO
from repro.opt import (
    clean_cfg, cse_block, dce_procedure, fold_block, licm_procedure,
    optimize_program, propagate_block,
)
from repro.program import BasicBlock, ProcBuilder

T0, T1, T2, T3 = (Reg.named(f"t{i}") for i in range(4))


def block_of(*instrs) -> BasicBlock:
    b = BasicBlock("b")
    for i in instrs:
        b.append(i)
    return b


class TestConstFold:
    def test_fully_constant_op_becomes_li(self):
        blk = block_of(
            Instruction(Opcode.LI, dst=T0, imm=6),
            Instruction(Opcode.LI, dst=T1, imm=7),
            Instruction(Opcode.MUL, dst=T2, srcs=(T0, T1)),
        )
        fold_block(blk)
        assert blk.body[2].op is Opcode.LI and blk.body[2].imm == 42

    def test_add_zero_becomes_move(self):
        blk = block_of(
            Instruction(Opcode.LI, dst=T0, imm=0),
            Instruction(Opcode.ADD, dst=T2, srcs=(T1, T0)),
        )
        fold_block(blk)
        assert blk.body[1].op is Opcode.MOVE

    def test_reg_const_becomes_immediate_form(self):
        blk = block_of(
            Instruction(Opcode.LI, dst=T0, imm=8),
            Instruction(Opcode.ADD, dst=T2, srcs=(T1, T0)),
        )
        fold_block(blk)
        assert blk.body[1].op is Opcode.ADDI and blk.body[1].imm == 8

    def test_sllv_with_const_shamt(self):
        blk = block_of(
            Instruction(Opcode.LI, dst=T0, imm=3),
            Instruction(Opcode.SLLV, dst=T2, srcs=(T1, T0)),
        )
        fold_block(blk)
        assert blk.body[1].op is Opcode.SLL and blk.body[1].imm == 3

    def test_large_constant_not_immediate(self):
        blk = block_of(
            Instruction(Opcode.LI, dst=T0, imm=0x123456),
            Instruction(Opcode.ADD, dst=T2, srcs=(T1, T0)),
        )
        fold_block(blk)
        assert blk.body[1].op is Opcode.ADD  # out of 16-bit range

    def test_div_by_zero_not_folded(self):
        blk = block_of(
            Instruction(Opcode.LI, dst=T0, imm=1),
            Instruction(Opcode.LI, dst=T1, imm=0),
            Instruction(Opcode.DIV, dst=T2, srcs=(T0, T1)),
        )
        fold_block(blk)
        assert blk.body[2].op is Opcode.DIV  # trap must still happen

    def test_constant_branch_resolved(self):
        b = ProcBuilder("p")
        b.label("entry")
        b.li(T0, 1)
        b.bne(T0, ZERO, "away")
        b.label("mid")
        b.halt()
        b.label("away")
        b.halt()
        proc = b.build()
        fold_block(proc.block("entry"))
        assert proc.block("entry").terminator.op is Opcode.J


class TestCopyPropDceCse:
    def test_copy_propagated_through_move(self):
        blk = block_of(
            Instruction(Opcode.MOVE, dst=T1, srcs=(T0,)),
            Instruction(Opcode.ADD, dst=T2, srcs=(T1, T1)),
        )
        propagate_block(blk)
        assert blk.body[1].srcs == (T0, T0)

    def test_copy_killed_by_redefinition(self):
        blk = block_of(
            Instruction(Opcode.MOVE, dst=T1, srcs=(T0,)),
            Instruction(Opcode.LI, dst=T0, imm=9),
            Instruction(Opcode.ADD, dst=T2, srcs=(T1, T1)),
        )
        propagate_block(blk)
        assert blk.body[2].srcs == (T1, T1)

    def test_cse_reuses_pure_expression(self):
        blk = block_of(
            Instruction(Opcode.ADD, dst=T1, srcs=(T0, T0)),
            Instruction(Opcode.ADD, dst=T2, srcs=(T0, T0)),
        )
        cse_block(blk)
        assert blk.body[1].op is Opcode.MOVE

    def test_cse_load_killed_by_store(self):
        blk = block_of(
            Instruction(Opcode.LW, dst=T1, srcs=(T0,), imm=0),
            Instruction(Opcode.SW, srcs=(T2, T3), imm=0),
            Instruction(Opcode.LW, dst=T2, srcs=(T0,), imm=0),
        )
        cse_block(blk)
        assert blk.body[2].op is Opcode.LW  # store invalidates the load

    def test_dce_removes_dead_code(self):
        b = ProcBuilder("p")
        b.label("entry")
        b.li(T0, 1)     # dead
        b.li(T1, 2)
        b.print_(T1)
        b.halt()
        proc = b.build()
        dce_procedure(proc)
        ops = [i.op for i in proc.block("entry").body]
        assert ops == [Opcode.LI, Opcode.PRINT]

    def test_dce_keeps_stores_and_prints(self):
        b = ProcBuilder("p")
        b.label("entry")
        b.li(T0, 0x2000)
        b.sw(T0, T0, 0)
        b.halt()
        proc = b.build()
        dce_procedure(proc)
        assert any(i.op is Opcode.SW for i in proc.block("entry").body)


class TestCfgCleanAndLicm:
    def test_jump_to_next_removed(self):
        b = ProcBuilder("p")
        b.label("a")
        b.li(T0, 1)
        b.j("b")
        b.label("b")
        b.halt()
        proc = b.build()
        clean_cfg(proc)
        assert len(proc.blocks) == 1  # merged after the jump is dropped

    def test_unreachable_block_removed(self):
        b = ProcBuilder("p")
        b.label("a")
        b.halt()
        b.label("dead")
        b.li(T0, 1)
        b.halt()
        proc = b.build()
        clean_cfg(proc)
        assert not proc.has_block("dead")

    def test_jump_threading(self):
        b = ProcBuilder("p")
        b.label("a")
        b.beq(T0, ZERO, "trampoline")
        b.label("fall")
        b.halt()
        b.label("trampoline")
        b.j("final")
        b.label("final")
        b.halt()
        proc = b.build()
        clean_cfg(proc)
        assert proc.block("a").terminator.target == "final"

    def test_licm_hoists_invariant(self):
        b = ProcBuilder("p")
        v0, v1 = b.vreg(), b.vreg()
        b.label("entry")
        b.li(T0, 10)
        b.label("loop")
        b.li(v0, 1234)          # invariant
        b.add(T1, T1, v0)
        b.addi(T0, T0, -1)
        b.bgtz(T0, "loop")
        b.label("exit")
        b.halt()
        proc = b.build()
        assert licm_procedure(proc)
        loop_ops = [i.op for i in proc.block("loop").body]
        assert Opcode.LI not in loop_ops or all(
            i.imm != 1234 for i in proc.block("loop").body
            if i.op is Opcode.LI)

    def test_licm_skips_loop_with_call(self):
        b = ProcBuilder("p")
        v0 = b.vreg()
        b.label("entry")
        b.label("loop")
        b.li(v0, 1234)
        b.jal("callee")
        b.label("latch")
        b.bgtz(T0, "loop")
        b.label("exit")
        b.halt()
        proc = b.build()
        assert not licm_procedure(proc)


class TestEndToEnd:
    SOURCE = """
global xs[6] = {4, 8, 15, 16, 23, 42};
func main() {
    var s = 0;
    for (var i = 0; i < 6; i = i + 1) {
        s = s + xs[i] * 2 + 1;
    }
    print(s);
    print(3 * 4 + 0);
}
"""

    def test_optimizer_preserves_semantics(self):
        raw = compile_source(self.SOURCE)
        before = run_functional(raw).output
        optimize_program(raw)
        after = run_functional(raw).output
        assert before == after == [sum(x * 2 + 1 for x in
                                       [4, 8, 15, 16, 23, 42]), 12]

    def test_optimizer_shrinks_code(self):
        raw = compile_source(self.SOURCE)
        before = raw.instruction_count()
        optimize_program(raw)
        assert raw.instruction_count() < before
