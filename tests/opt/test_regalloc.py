"""Register allocator tests: colouring, coalescing, spilling, infinite
model."""

import pytest

from repro.frontend import compile_source
from repro.hw.functional import run_functional
from repro.isa import ALLOCATABLE, A0, V0
from repro.opt import (
    allocate_infinite_procedure, allocate_procedure, allocate_program,
    optimize_program, verify_no_virtuals,
)
from repro.program import ProcBuilder, Program


def test_simple_coloring():
    b = ProcBuilder("p")
    v0, v1 = b.vreg(), b.vreg()
    b.label("entry")
    b.li(v0, 1)
    b.li(v1, 2)
    b.add(v0, v0, v1)
    b.print_(v0)
    b.halt()
    proc = b.build()
    mapping = allocate_procedure(proc)
    assert mapping[v0] is not mapping[v1]  # simultaneously live
    assert all(r in ALLOCATABLE for r in mapping.values())


def test_dead_ranges_share_registers():
    b = ProcBuilder("p")
    v0, v1 = b.vreg(), b.vreg()
    b.label("entry")
    b.li(v0, 1)
    b.print_(v0)     # v0 dies here
    b.li(v1, 2)
    b.print_(v1)
    b.halt()
    proc = b.build()
    allocate_procedure(proc)
    # With round-robin the registers rotate, but reuse must be *possible*:
    # correctness is what matters.
    from repro.program import Program
    prog = Program()
    proc.name = "main"
    prog.add(proc)
    assert run_functional(prog).output == [1, 2]


def test_move_coalescing_preference():
    b = ProcBuilder("p")
    v0 = b.vreg()
    b.label("entry")
    b.move(v0, A0)      # prefer a0 for v0
    b.print_(v0)
    b.halt()
    proc = b.build()
    mapping = allocate_procedure(proc)
    assert mapping[v0] is A0


def test_interference_with_physical_register():
    # v0 is live across a write of $a0: it must not be allocated to $a0.
    b = ProcBuilder("p")
    v0 = b.vreg()
    b.label("entry")
    b.li(v0, 5)
    b.li(A0, 9)
    b.add(V0, v0, A0)
    b.print_(V0)
    b.halt()
    proc = b.build()
    mapping = allocate_procedure(proc)
    assert mapping[v0] is not A0


def test_spilling_under_extreme_pressure():
    # 30 simultaneously-live values cannot fit 24 registers: the allocator
    # must spill and stay correct.
    b = ProcBuilder("p")
    vregs = [b.vreg() for _ in range(30)]
    b.label("entry")
    for i, v in enumerate(vregs):
        b.li(v, i)
    acc = b.vreg()
    b.li(acc, 0)
    for v in vregs:
        b.add(acc, acc, v)
    b.print_(acc)
    b.halt()
    proc = b.build()
    proc.name = "main"
    allocate_procedure(proc)
    assert proc.frame.spill_slots > 0
    prog = Program()
    prog.add(proc)
    verify_no_virtuals(prog)
    assert run_functional(prog).output == [sum(range(30))]


def test_infinite_model_assigns_unique_indices():
    b = ProcBuilder("p")
    vregs = [b.vreg() for _ in range(40)]
    b.label("entry")
    for i, v in enumerate(vregs):
        b.li(v, i)
    b.print_(vregs[-1])
    b.halt()
    proc = b.build()
    mapping = allocate_infinite_procedure(proc)
    indices = [r.index for r in mapping.values()]
    assert len(set(indices)) == len(indices)
    assert all(32 <= i < 32 + 40 for i in indices)


def test_allocate_program_rejects_unknown_model():
    prog = Program()
    with pytest.raises(ValueError):
        allocate_program(prog, model="magic")


def test_allocation_preserves_program_output():
    source = """
global xs[8] = {1, 2, 3, 4, 5, 6, 7, 8};
func main() {
    var a = xs[0] + xs[1];
    var b = xs[2] * xs[3];
    var c = xs[4] - xs[5];
    var d = xs[6] ^ xs[7];
    print(a + b + c + d);
}
"""
    prog = compile_source(source)
    expected = run_functional(prog).output
    optimize_program(prog)
    allocate_program(prog)
    verify_no_virtuals(prog)
    assert run_functional(prog).output == expected
