"""Property-based tests.

The central invariant of the reproduction: **every machine model executes
every program to the same observable output** — the functional reference,
the scalar pipeline, the 2-issue superscalar under every boosting model, and
the dynamic scheduler.  Hypothesis generates random (guaranteed-terminating,
trap-free) Minic programs and random hardware op sequences to drive that
invariant far beyond the hand-written cases.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.harness.pipeline import (
    CompileConfig, SCALAR_CONFIG, compile_minic, make_input_image,
)
from repro.hw.dynamic import run_dynamic
from repro.hw.shadow import MultiLevelShadowFile, SingleShadowFile
from repro.hw.storebuf import ShadowStoreBuffer
from repro.hw.memory import Memory
from repro.sched.boostmodel import BOOST1, BOOST7, MINBOOST3, SQUASHING
from repro.sched.machine import SUPERSCALAR

# --------------------------------------------------------------- program gen

_VARS = ["a", "b", "c", "d"]


@st.composite
def expressions(draw, depth: int = 0):
    if depth >= 3 or draw(st.booleans()):
        choice = draw(st.integers(0, 2))
        if choice == 0:
            return str(draw(st.integers(-100, 100)))
        if choice == 1:
            return draw(st.sampled_from(_VARS))
        return f"xs[{draw(st.integers(0, 15))}]"
    op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^"]))
    lhs = draw(expressions(depth + 1))
    rhs = draw(expressions(depth + 1))
    return f"({lhs} {op} {rhs})"


@st.composite
def conditions(draw):
    op = draw(st.sampled_from(["<", "<=", ">", ">=", "==", "!="]))
    lhs = draw(expressions(2))
    rhs = draw(expressions(2))
    return f"({lhs}) {op} ({rhs})"


@st.composite
def statements(draw, names: list, depth: int = 0):
    kind = draw(st.integers(0, 4 if depth < 2 else 2))
    if kind <= 1:
        var = draw(st.sampled_from(_VARS))
        return [f"{var} = {draw(expressions())};"]
    if kind == 2:
        return [f"xs[{draw(st.integers(0, 15))}] = {draw(expressions())};"]
    if kind == 3:
        cond = draw(conditions())
        then = draw(st.lists(statements(names, depth + 1),
                             min_size=1, max_size=2))
        orelse = draw(st.lists(statements(names, depth + 1),
                               min_size=0, max_size=2))
        body = [line for group in then for line in group]
        lines = [f"if ({cond}) {{", *body, "}"]
        if orelse:
            else_body = [line for group in orelse for line in group]
            lines = [f"if ({cond}) {{", *body, "} else {",
                     *else_body, "}"]
        return lines
    # bounded loop; Minic locals are function-scoped, so loop variables
    # must be globally unique within one generated program
    loop_var = f"i{len(names)}"
    names.append(loop_var)
    body_groups = draw(st.lists(statements(names, depth + 1),
                                min_size=1, max_size=2))
    body = [line for group in body_groups for line in group]
    bound = draw(st.integers(1, 6))
    return [f"for (var {loop_var} = 0; {loop_var} < {bound}; "
            f"{loop_var} = {loop_var} + 1) {{", *body, "}"]


@st.composite
def programs(draw):
    names: list = []
    groups = draw(st.lists(statements(names), min_size=2, max_size=5))
    body = [line for group in groups for line in group]
    prints = "\n    ".join(f"print({v});" for v in _VARS)
    source = (
        "global xs[16];\n"
        "func main() {\n"
        + "\n".join(f"    var {v} = 0;" for v in _VARS) + "\n    "
        + "\n    ".join(body) + "\n    "
        + prints + "\n"
        + "    var q = 0;\n"
        + "    while (q < 16) { print(xs[q]); q = q + 1; }\n"
        + "}\n"
    )
    xs = draw(st.lists(st.integers(-1000, 1000), min_size=16, max_size=16))
    return source, {"xs": xs}


_ORACLE_SETTINGS = settings(
    max_examples=12, deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@given(programs())
@_ORACLE_SETTINGS
def test_every_machine_model_agrees(case):
    source, inputs = case
    base = compile_minic(source, SCALAR_CONFIG, inputs)
    ref = base.run_functional(inputs).output
    assert base.run(inputs).output == ref
    for model in (SQUASHING, BOOST1, MINBOOST3, BOOST7):
        cfg = CompileConfig(machine=SUPERSCALAR, model=model)
        cp = compile_minic(source, cfg, inputs)
        assert cp.run(inputs).output == ref, model.name
    image = make_input_image(base.program, inputs)
    assert run_dynamic(base.program, input_image=image).output == ref


@given(programs())
@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_infinite_registers_agree(case):
    source, inputs = case
    base = compile_minic(source, SCALAR_CONFIG, inputs)
    ref = base.run_functional(inputs).output
    cfg = CompileConfig(machine=SUPERSCALAR, model=MINBOOST3,
                        regalloc="infinite")
    assert compile_minic(source, cfg, inputs).run(inputs).output == ref


# --------------------------------------------------------- hardware property

_shadow_ops = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.integers(0, 3), st.integers(1, 3),
                  st.integers(0, 255)),
        st.tuples(st.just("commit")),
        st.tuples(st.just("squash")),
    ),
    max_size=40,
)


class _RefShadow:
    """Reference model: explicit per-level dicts."""

    def __init__(self, levels: int) -> None:
        self.levels = [dict() for _ in range(levels + 1)]

    def write(self, reg, level, value):
        self.levels[level][reg] = value

    def read(self, reg, level):
        for lvl in range(level, 0, -1):
            if reg in self.levels[lvl]:
                return self.levels[lvl][reg]
        return None

    def commit(self):
        out = self.levels[1]
        self.levels[1:] = self.levels[2:] + [{}]
        return out

    def squash(self):
        for lvl in range(1, len(self.levels)):
            self.levels[lvl] = {}


@given(_shadow_ops)
@settings(max_examples=200, deadline=None)
def test_multilevel_shadow_matches_reference(ops):
    dut = MultiLevelShadowFile(3)
    ref = _RefShadow(3)
    for op in ops:
        if op[0] == "write":
            _, reg, level, value = op
            dut.write(reg, level, value)
            ref.write(reg, level, value)
        elif op[0] == "commit":
            assert dut.commit() == ref.commit()
        else:
            dut.squash()
            ref.squash()
        for reg in range(4):
            for level in range(0, 4):
                assert dut.read(reg, level) == ref.read(reg, level)


@given(_shadow_ops)
@settings(max_examples=200, deadline=None)
def test_single_file_is_restriction_of_multilevel(ops):
    """Whenever the single file accepts a write sequence, it must agree with
    the general multi-level semantics."""
    from repro.hw.shadow import ShadowConflictError
    dut = SingleShadowFile(3)
    ref = _RefShadow(3)
    for op in ops:
        if op[0] == "write":
            _, reg, level, value = op
            try:
                dut.write(reg, level, value)
            except ShadowConflictError:
                # hardware refused: the register must already hold a value
                # at a different level
                assert any(reg in ref.levels[lvl]
                           for lvl in range(1, 4) if lvl != level)
                continue
            ref.write(reg, level, value)
            # single file holds one level per register: clear other levels
            for lvl in range(1, 4):
                if lvl != level:
                    ref.levels[lvl].pop(reg, None)
        elif op[0] == "commit":
            assert dut.commit() == ref.commit()
        else:
            dut.squash()
            ref.squash()
        for reg in range(4):
            for level in range(0, 4):
                assert dut.read(reg, level) == ref.read(reg, level)


_store_ops = st.lists(
    st.one_of(
        st.tuples(st.just("store"), st.integers(1, 2),
                  st.integers(0, 15), st.integers(0, 255)),
        st.tuples(st.just("commit")),
        st.tuples(st.just("squash")),
    ),
    max_size=40,
)


@given(_store_ops)
@settings(max_examples=200, deadline=None)
def test_store_buffer_matches_reference(ops):
    from repro.program.procedure import DATA_BASE
    mem = Memory(1 << 16)
    buf = ShadowStoreBuffer(2)
    ref_levels = [dict(), dict(), dict()]
    ref_mem = {}
    for op in ops:
        if op[0] == "store":
            _, level, off, byte = op
            addr = DATA_BASE + off
            buf.store(level, addr, bytes([byte]))
            ref_levels[level][addr] = byte
        elif op[0] == "commit":
            buf.commit(mem)
            ref_mem.update(ref_levels[1])
            ref_levels[1:] = ref_levels[2:] + [{}]
        else:
            buf.squash()
            ref_levels[1] = {}
            ref_levels[2] = {}
        for off in range(16):
            addr = DATA_BASE + off
            mem_byte = ref_mem.get(addr, 0)
            assert mem.load_byte(addr, signed=False) == mem_byte
            for level in range(0, 3):
                expect = mem_byte
                for lvl in range(1, level + 1):
                    if addr in ref_levels[lvl]:
                        expect = ref_levels[lvl][addr]
                got = buf.load(mem, addr, 1, level)[0]
                assert got == expect
