"""Wire-protocol unit tests: framing and admission-time validation."""

import pytest

from repro.service.protocol import (
    ALLOWED_PARAMS, JOB_KINDS, SERVICE_SCHEMA, decode, encode, response,
    validate_submit,
)


def test_encode_is_one_deterministic_line():
    line = encode({"b": 1, "a": 2})
    assert line == b'{"a": 2, "b": 1}\n'
    assert decode(line) == {"a": 2, "b": 1}


def test_decode_rejects_non_objects_and_garbage():
    with pytest.raises(ValueError):
        decode(b"[1, 2, 3]\n")
    with pytest.raises(ValueError):
        decode(b"definitely not json\n")


def test_response_carries_schema_and_event():
    obj = response("accepted", job="job-000001")
    assert obj["schema"] == SERVICE_SCHEMA
    assert obj["event"] == "accepted"
    assert obj["job"] == "job-000001"


def _submit(kind="verify", params=None, **extra):
    return {"op": "submit", "kind": kind, "params": params or {}, **extra}


def test_valid_submits_pass_for_every_kind():
    assert validate_submit(_submit("bench", {"workloads": ["awk"]})) is None
    assert validate_submit(_submit("verify", {"models": ["squashing"],
                                              "seeds": 3})) is None
    assert validate_submit(_submit("fuzz", {"count": 5,
                                            "seed_start": 100})) is None
    assert validate_submit(_submit("bench", deadline=1.5)) is None


@pytest.mark.parametrize("req, fragment", [
    (_submit(kind="compile"), "unknown kind"),
    (_submit(kind=None), "unknown kind"),
    ({"op": "submit", "kind": "bench", "params": ["awk"]},
     "params must be a JSON object"),
    (_submit("bench", {"seeds": 3}), "unknown bench parameter"),
    (_submit("verify", {"workloads": "awk"}), "list of strings"),
    (_submit("verify", {"models": [1, 2]}), "list of strings"),
    (_submit("verify", {"seeds": "three"}), "must be an integer"),
    (_submit("verify", {"seeds": True}), "must be an integer"),
    (_submit("fuzz", {"count": 2.5}), "must be an integer"),
    (_submit("bench", deadline=0), "positive number"),
    (_submit("bench", deadline=-3), "positive number"),
    (_submit("bench", deadline="soon"), "positive number"),
    (_submit("bench", deadline=True), "positive number"),
])
def test_malformed_submits_are_rejected_with_a_reason(req, fragment):
    reason = validate_submit(req)
    assert reason is not None
    assert fragment in reason


def test_allowed_params_cover_every_kind():
    assert set(ALLOWED_PARAMS) == set(JOB_KINDS)
