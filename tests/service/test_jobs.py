"""Job records, admission checks, breaker plumbing, and the runner child."""

import json

from repro.service.breaker import CircuitBreaker
from repro.service.daemon import CampaignService, ServiceChaosConfig
from repro.service.jobs import (
    JobRecord, admission_error, breaker_cells, cell_key, load_jobs,
    next_job_id, run_job,
)


# ------------------------------------------------------------- job records
def test_cell_key_is_the_configuration_axis():
    assert cell_key("awk/squashing") == "squashing"
    assert cell_key("grep/boost1") == "boost1"
    assert cell_key("squashing") == "squashing"


def test_job_record_round_trips(tmp_path):
    record = JobRecord(id="job-000007", kind="verify",
                       params={"workloads": ["awk"]}, deadline=12.5,
                       state="running", attempts=2, error=None)
    record.save(tmp_path)
    loaded = JobRecord.load(tmp_path)
    assert loaded == record


def test_job_record_load_survives_garbage(tmp_path):
    (tmp_path / "job.json").write_text("not json", encoding="utf-8")
    assert JobRecord.load(tmp_path) is None
    assert JobRecord.load(tmp_path / "missing") is None


def test_next_job_id_skips_existing_dirs(tmp_path):
    assert next_job_id(tmp_path) == 1
    (tmp_path / "jobs" / "job-000004").mkdir(parents=True)
    (tmp_path / "jobs" / "not-a-job").mkdir()
    assert next_job_id(tmp_path) == 5


def test_load_jobs_in_admission_order(tmp_path):
    for n in (3, 1):
        job_dir = tmp_path / "jobs" / f"job-{n:06d}"
        job_dir.mkdir(parents=True)
        JobRecord(id=f"job-{n:06d}", kind="bench").save(job_dir)
    assert [r.id for r in load_jobs(tmp_path)] == ["job-000001",
                                                   "job-000003"]


# --------------------------------------------------------------- admission
def test_admission_rejects_unknown_workloads_and_models():
    assert "unknown workload" in admission_error(
        "bench", {"workloads": ["awk", "nosuch"]})
    assert admission_error("bench", {"workloads": ["awk"]}) is None
    assert admission_error("verify", {"models": ["nosuch"]}) is not None
    assert admission_error(
        "verify", {"workloads": ["awk"], "models": ["squashing"]}) is None
    assert admission_error("fuzz", {"models": ["nosuch"]}) is not None
    assert admission_error("fuzz", {"count": 3}) is None


def test_breaker_cells_map_configs_to_journal_keys():
    cells = breaker_cells("verify", {"workloads": ["awk", "grep"],
                                     "models": ["squashing"]})
    assert cells == {"squashing": ["awk/squashing", "grep/squashing"]}
    bench = breaker_cells("bench", {"workloads": ["awk"]})
    assert all(keys == [f"awk/{config}"] for config, keys in bench.items())
    assert len(bench) >= 2  # one cell per bench config column
    assert breaker_cells("fuzz", {"count": 5}) == {}  # never gated


# ----------------------------------------------------- daemon breaker hooks
def _service(tmp_path):
    return CampaignService(str(tmp_path / "svc.sock"),
                           str(tmp_path / "state"), banner=False)


def test_breaker_skips_cover_every_key_of_an_open_cell(tmp_path):
    service = _service(tmp_path)
    for _ in range(service.breaker.threshold):
        service.breaker.record_failure("squashing", "timeout")
    record = JobRecord(id="job-000001", kind="verify",
                       params={"workloads": ["awk", "grep"],
                               "models": ["squashing", "boost1"]})
    assert service._breaker_skips(record) == ["awk/squashing",
                                              "grep/squashing"]


def test_account_breaker_trips_on_harness_failures_only(tmp_path):
    service = _service(tmp_path)
    report = {"failures": [{"key": "awk/squashing", "kind": "timeout"},
                           {"key": "awk/boost1", "kind": "error"}],
              "completed": ["grep/boost1"]}
    for _ in range(2):  # threshold 3 = one report short of opening
        service._account_breaker(report)
    assert service.breaker.state("squashing") == "closed"
    service._account_breaker(report)
    assert service.breaker.state("squashing") == "open"
    assert service.breaker.state("boost1") == "closed"  # error + success


def test_chaos_kill_schedule_is_a_pure_function_of_seed_job_attempt():
    chaos = ServiceChaosConfig(seed=11, max_faults=2)
    first = [chaos.kill_delay("job-000001", a) for a in (1, 2, 3, 4)]
    again = [chaos.kill_delay("job-000001", a) for a in (1, 2, 3, 4)]
    assert first == again
    assert first[2] is None and first[3] is None  # beyond max_faults
    lo, hi = chaos.kill_after
    for delay in first[:2]:
        assert delay is None or lo <= delay <= hi
    other = [ServiceChaosConfig(seed=12).kill_delay("job-000001", a)
             for a in (1, 2)]
    assert first[:2] != other  # the seed matters


# ------------------------------------------------------------------ runner
def test_run_job_with_every_cell_skipped_is_instant(tmp_path):
    # An all-open breaker degrades the whole job to structured skips —
    # no compilation, no simulation, just the report.
    runtime = {"jobs": 1, "no_cache": True, "skip": ["awk/squashing"]}
    run_job(str(tmp_path), "verify",
            {"workloads": ["awk"], "models": ["squashing"], "seeds": 1},
            runtime)
    report = json.loads((tmp_path / "report.json").read_text())
    assert report["state"] == "failed"
    assert not report["ok"]
    assert report["completed"] == []
    kinds = {f["kind"] for f in report["failures"]}
    assert kinds == {"breaker"}
    assert "circuit breaker open" in report["text"] \
        or "skipped" in report["text"]


def test_run_job_reports_exceptions_instead_of_raising(tmp_path):
    # Admission normally prevents this, but the runner must never die
    # with a traceback and no report — the daemon would burn its retry
    # budget re-running a deterministic failure.
    run_job(str(tmp_path), "verify", {"models": ["nosuch"]},
            {"jobs": 1, "no_cache": True})
    report = json.loads((tmp_path / "report.json").read_text())
    assert report["state"] == "failed"
    assert "nosuch" in report["error"]
