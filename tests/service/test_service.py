"""End-to-end tests of the campaign service daemon.

Each test spawns a real ``python -m repro serve`` subprocess and talks to
it over the Unix socket through the thin client library — the same path
``repro submit``/``status``/``drain`` take.  A module-scoped compile cache
is primed once so daemon jobs stay fast.
"""

import json
import os
import signal
import socket as socketmod
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.service import client
from repro.service.protocol import TERMINAL_STATES, encode

ROOT = Path(__file__).parents[2]

VERIFY1 = {"workloads": ["awk"], "models": ["squashing"], "seeds": 1}
#: heavy enough (~5s from a cold cache) that chaos kills and daemon
#: SIGKILLs reliably land *mid-campaign* — see the timing-sensitive tests
VERIFYBIG = {"workloads": ["awk", "grep", "compress"],
             "models": ["squashing", "boost1", "minboost3"], "seeds": 5}


def _oracle(cache_dir, params):
    """The clean serial oracle: exactly what the runner computes."""
    from repro.harness.cache import CompileCache
    from repro.verify import VerifyCampaign

    campaign = VerifyCampaign(workload_names=params["workloads"],
                              model_keys=params["models"],
                              seeds=params["seeds"],
                              cache=CompileCache(cache_dir))
    return campaign.run(jobs=1).format()


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("svc-cache"))
    _oracle(path, VERIFY1)  # prime the compile cache for the module
    return path


@pytest.fixture(scope="module")
def oracle1(cache_dir):
    return _oracle(cache_dir, VERIFY1)


@pytest.fixture(scope="module")
def oracle_big(cache_dir):
    return _oracle(cache_dir, VERIFYBIG)


class Daemon:
    """A ``repro serve`` subprocess in its own process group."""

    def __init__(self, tmp_path, *extra, cache_dir=None):
        self.socket_path = str(tmp_path / "svc.sock")
        self.state_dir = tmp_path / "state"
        cmd = [sys.executable, "-m", "repro", "serve",
               "--socket", self.socket_path,
               "--state-dir", str(self.state_dir)]
        if cache_dir is not None:
            cmd += ["--cache-dir", str(cache_dir)]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(ROOT / "src")]
            + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p])
        self.proc = subprocess.Popen(
            cmd + list(extra), cwd=str(ROOT), env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True,
            start_new_session=True)
        self._wait_ready()

    def _wait_ready(self, timeout=60.0):
        deadline = time.monotonic() + timeout
        while not os.path.exists(self.socket_path):
            if self.proc.poll() is not None:
                raise RuntimeError("daemon died on startup:\n"
                                   + (self.proc.stderr.read() or ""))
            if time.monotonic() > deadline:
                raise TimeoutError("daemon socket never appeared")
            time.sleep(0.02)

    def sigterm(self):
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)

    def hard_kill(self):
        """SIGKILL the daemon *and* any in-flight runner, as a machine
        death would."""
        try:
            os.killpg(os.getpgid(self.proc.pid), signal.SIGKILL)
        except (OSError, ProcessLookupError):
            pass
        self.proc.wait()
        self.proc.stderr.close()

    def wait(self):
        """Reap a daemon that is already exiting (e.g. after a drain op)."""
        try:
            _, err = self.proc.communicate(timeout=180)
        except subprocess.TimeoutExpired:
            self.hard_kill()
            raise
        assert self.proc.returncode == 0, err
        return err

    def stop(self):
        """SIGTERM if still alive, reap, return collected stderr."""
        self.sigterm()
        return self.wait()


def _wait_terminal(socket_path, job, timeout=180.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            reply = client.status(socket_path, job=job)
        except client.ServiceError:
            time.sleep(0.1)
            continue
        if reply.get("state") in TERMINAL_STATES:
            return reply
        time.sleep(0.1)
    raise TimeoutError(f"{job} never reached a terminal state")


def test_submit_runs_to_done_and_matches_the_serial_oracle(
        tmp_path, cache_dir, oracle1, capsys):
    daemon = Daemon(tmp_path, cache_dir=cache_dir)
    try:
        accepted, result = client.submit(daemon.socket_path, "verify",
                                         VERIFY1)
        assert accepted["event"] == "accepted"
        job = accepted["job"]
        assert result["state"] == "done"
        assert result["ok"]
        assert result["text"] == oracle1  # byte-identical to serial run
        assert result["failures"] == []

        # The CLI clients ride the same protocol.
        rc = main(["status", "--socket", daemon.socket_path])
        out, err = capsys.readouterr()
        assert rc == 0
        assert f"{job:12s} verify   done" in out
        assert "admitted=1" in err

        # The durable record agrees.
        record = json.loads((daemon.state_dir / "jobs" / job
                             / "job.json").read_text())
        assert record["state"] == "done"

        rc = main(["drain", "--socket", daemon.socket_path])
        out, _ = capsys.readouterr()
        assert rc == 0
        assert "drain: admitted=1" in out
    finally:
        err = daemon.wait()  # the drain op ends the daemon on its own
    assert "serve: socket=" in err      # startup banner
    assert "serve: drained" in err      # drain summary
    assert "completed=1" in err


def test_rejections_are_structured_and_jobs_survive_them(tmp_path,
                                                         cache_dir):
    # queue-bound 1 and a big cold-cache job: the first job is slow
    # enough that a second submit lands while it is still in flight.
    daemon = Daemon(tmp_path, "--queue-bound", "1",
                    cache_dir=tmp_path / "cold-cache")
    try:
        sock = daemon.socket_path
        first, _ = client.submit(sock, "verify", VERIFYBIG, wait=False)
        assert first["event"] == "accepted"

        busy, _ = client.submit(sock, "verify", VERIFY1)
        assert busy["event"] == "rejected"
        assert busy["reason"] == "busy"
        assert busy["bound"] == 1
        assert "admission queue full" in busy["message"]

        invalid, _ = client.submit(sock, "verify", {"models": ["nosuch"]})
        assert invalid["event"] == "rejected"
        assert invalid["reason"] == "invalid"
        assert "nosuch" in invalid["message"]

        badkind, _ = client.submit(sock, "compile", {})
        assert badkind["event"] == "rejected"
        assert "unknown kind" in badkind["message"]

        badop = next(client.request(sock, {"op": "bogus"}))
        assert badop["event"] == "error"

        # Raw garbage on the wire gets a structured error, not a hangup.
        raw = socketmod.socket(socketmod.AF_UNIX)
        raw.connect(sock)
        raw.sendall(b"this is not json\n")
        with raw.makefile("rb") as fh:
            assert json.loads(fh.readline())["event"] == "error"
        raw.close()

        # None of that disturbed the admitted job.
        reply = _wait_terminal(sock, first["job"])
        assert reply["state"] == "done"
    finally:
        err = daemon.stop()
    assert "completed=1" in err
    assert "rejected=3" in err  # busy + invalid model + unknown kind


def test_deadline_expiry_yields_a_structured_partial_report(tmp_path):
    # A big cold-cache campaign far outlasts a 0.5s budget.  The runner's
    # batch deadline fires and every unfinished cell degrades to a
    # `kind: deadline` failure — a report, not a corpse.
    daemon = Daemon(tmp_path, cache_dir=tmp_path / "cold-cache")
    try:
        accepted, result = client.submit(daemon.socket_path, "verify",
                                         VERIFYBIG, deadline=0.5)
        assert accepted["event"] == "accepted"
        assert result["state"] == "deadline"
        assert not result["ok"]
        kinds = {f["kind"] for f in result["failures"]}
        assert "deadline" in kinds
        assert "deadline expired" in result["text"]
    finally:
        err = daemon.stop()
    assert "deadline-expired=1" in err


def test_client_disconnect_abandons_the_stream_not_the_job(tmp_path,
                                                           cache_dir,
                                                           oracle1):
    daemon = Daemon(tmp_path, cache_dir=cache_dir)
    try:
        sock = socketmod.socket(socketmod.AF_UNIX)
        sock.connect(daemon.socket_path)
        sock.sendall(encode({"op": "submit", "kind": "verify",
                             "params": VERIFY1, "wait": True}))
        with sock.makefile("rb") as fh:
            accepted = json.loads(fh.readline())
        assert accepted["event"] == "accepted"
        sock.close()  # hang up before the result event

        reply = _wait_terminal(daemon.socket_path, accepted["job"])
        assert reply["state"] == "done"
        assert reply["text"] == oracle1
    finally:
        err = daemon.stop()
    assert "completed=1" in err


def test_chaos_kills_converge_to_the_clean_oracle(tmp_path, cache_dir,
                                                  oracle_big):
    # Seed 11 SIGKILLs job-000001's runner on attempts 1 and 2 (see
    # ServiceChaosConfig: the schedule is a pure function of the seed);
    # the big cold-cache campaign keeps those attempts alive long enough
    # to be hit.  Attempt 3 runs unkilled against the surviving journal
    # and must produce the byte-identical report.
    daemon = Daemon(tmp_path, "--chaos", "11",
                    cache_dir=tmp_path / "cold-cache")
    try:
        accepted, result = client.submit(daemon.socket_path, "verify",
                                         VERIFYBIG, timeout=600)
        assert accepted["event"] == "accepted"
        assert result["state"] == "done"
        assert result["attempts"] >= 2  # at least one runner was killed
        assert result["text"] == oracle_big
    finally:
        err = daemon.stop()
    assert "completed=1" in err


def test_chaos_kill_with_a_deadline_cannot_wedge_the_daemon(tmp_path):
    # Regression: a chaos SIGKILL of a runner whose supervised pool is
    # live orphans workers that inherit the runner's sentinel pipe, so
    # the daemon would wait forever on a dead runner.  The runner now
    # leads its own process group (killed whole) and the daemon falls
    # back to is_alive() polling, so the job must still terminate.
    daemon = Daemon(tmp_path, "--chaos", "11",
                    cache_dir=tmp_path / "cold-cache")
    try:
        accepted, result = client.submit(daemon.socket_path, "verify",
                                         VERIFYBIG, deadline=1.0,
                                         timeout=120)
        assert accepted["event"] == "accepted"
        assert result["state"] == "deadline"
        assert not result["ok"]
    finally:
        err = daemon.stop()
    assert "deadline-expired=1" in err


def test_sigterm_drains_in_flight_work_then_exits_zero(tmp_path,
                                                       cache_dir):
    daemon = Daemon(tmp_path, cache_dir=cache_dir)
    accepted, _ = client.submit(daemon.socket_path, "verify", VERIFY1,
                                wait=False)
    assert accepted["event"] == "accepted"
    daemon.sigterm()  # immediately: the job is still in flight
    err = daemon.stop()
    assert "serve: drained" in err
    assert "completed=1" in err
    record = json.loads((daemon.state_dir / "jobs" / accepted["job"]
                         / "job.json").read_text())
    assert record["state"] == "done"  # finished, not abandoned
    assert not os.path.exists(daemon.socket_path)


def test_resume_readopts_jobs_after_a_daemon_sigkill(tmp_path, cache_dir,
                                                     oracle_big):
    daemon = Daemon(tmp_path, cache_dir=tmp_path / "cold-cache")
    accepted, _ = client.submit(daemon.socket_path, "verify", VERIFYBIG,
                                wait=False)
    job = accepted["job"]
    time.sleep(0.5)  # let the runner get into the campaign
    daemon.hard_kill()  # daemon + runner die mid-job, journal survives

    revived = Daemon(tmp_path, "--resume", cache_dir=cache_dir)
    try:
        reply = _wait_terminal(revived.socket_path, job)
        assert reply["state"] == "done"
        assert reply["text"] == oracle_big  # byte-identical across lives
    finally:
        err = revived.stop()
    assert "resumed=1" in err
