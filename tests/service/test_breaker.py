"""Circuit-breaker state machine, driven by a fake monotonic clock."""

import pytest

from repro.service.breaker import TRIPPING_KINDS, CircuitBreaker


class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _breaker(threshold=3, cooldown=30.0):
    clock = _Clock()
    return CircuitBreaker(threshold=threshold, cooldown=cooldown,
                          clock=clock), clock


def test_unknown_cells_are_closed():
    breaker, _ = _breaker()
    assert breaker.allow("squashing")
    assert breaker.state("squashing") == "closed"
    assert breaker.open_cells() == []


def test_threshold_consecutive_failures_open_the_circuit():
    breaker, _ = _breaker(threshold=3)
    assert not breaker.record_failure("squashing", "timeout")
    assert not breaker.record_failure("squashing", "killed")
    assert breaker.allow("squashing")  # still closed at 2/3
    assert breaker.record_failure("squashing", "timeout")  # 3rd opens
    assert breaker.state("squashing") == "open"
    assert not breaker.allow("squashing")
    assert breaker.open_cells() == ["squashing"]
    assert breaker.opened_total == 1


def test_success_resets_the_consecutive_count():
    breaker, _ = _breaker(threshold=2)
    breaker.record_failure("boost1", "timeout")
    breaker.record_success("boost1")
    breaker.record_failure("boost1", "timeout")
    assert breaker.state("boost1") == "closed"  # never reached 2 in a row


def test_non_tripping_kinds_are_ignored():
    breaker, _ = _breaker(threshold=1)
    for kind in ("error", "breaker", "deadline", "exception"):
        assert kind not in TRIPPING_KINDS
        assert not breaker.record_failure("squashing", kind)
    assert breaker.state("squashing") == "closed"
    assert breaker.allow("squashing")


def test_open_refuses_until_the_cooldown_elapses():
    breaker, clock = _breaker(threshold=1, cooldown=30.0)
    breaker.record_failure("squashing", "killed")
    assert not breaker.allow("squashing")
    clock.advance(29.9)
    assert not breaker.allow("squashing")
    clock.advance(0.2)
    assert breaker.allow("squashing")  # the half-open probe
    assert breaker.state("squashing") == "half_open"


def test_half_open_admits_exactly_one_probe():
    breaker, clock = _breaker(threshold=1, cooldown=10.0)
    breaker.record_failure("squashing", "timeout")
    clock.advance(10.1)
    assert breaker.allow("squashing")       # probe slot consumed
    assert not breaker.allow("squashing")   # everyone else still refused
    assert not breaker.allow("squashing")
    assert breaker.half_open_probes == 1


def test_probe_success_closes_the_circuit():
    breaker, clock = _breaker(threshold=1, cooldown=10.0)
    breaker.record_failure("squashing", "timeout")
    clock.advance(10.1)
    assert breaker.allow("squashing")
    breaker.record_success("squashing")
    assert breaker.state("squashing") == "closed"
    assert breaker.allow("squashing")
    assert breaker.closed_total == 1


def test_probe_failure_reopens_for_a_fresh_cooldown():
    breaker, clock = _breaker(threshold=3, cooldown=10.0)
    for _ in range(3):
        breaker.record_failure("squashing", "timeout")
    clock.advance(10.1)
    assert breaker.allow("squashing")
    # One more failure re-opens immediately — no need for `threshold`
    # consecutive failures again; the probe was the test and it failed.
    assert breaker.record_failure("squashing", "killed")
    assert breaker.state("squashing") == "open"
    clock.advance(9.9)
    assert not breaker.allow("squashing")  # fresh cooldown from the reopen
    clock.advance(0.2)
    assert breaker.allow("squashing")
    assert breaker.opened_total == 2


def test_cells_are_independent():
    breaker, _ = _breaker(threshold=1)
    breaker.record_failure("squashing", "timeout")
    assert not breaker.allow("squashing")
    assert breaker.allow("boost1")
    assert breaker.open_cells() == ["squashing"]


def test_threshold_must_be_positive():
    with pytest.raises(ValueError):
        CircuitBreaker(threshold=0)
