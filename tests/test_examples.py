"""Smoke tests: every example script runs to completion and prints what its
docstring promises.  ``paper_experiments.py`` runs on a single workload to
stay fast."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 420) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout)
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "scalar (R2000)" in out
    assert "MinBoost3" in out
    assert ".B" in out  # a boosted schedule was printed


def test_shadow_file_options():
    out = run_example("shadow_file_options.py")
    assert "Figure 6b" in out
    assert "hardware refuses" in out
    assert "+33%" in out and "+50%" in out


def test_exception_recovery():
    out = run_example("exception_recovery.py")
    assert "[mispredicted path]" in out and "trap=None" in out
    assert "recoveries=1" in out
    assert "precise fault" in out


def test_text_search():
    out = run_example("text_search.py")
    assert "matches" in out
    assert "dynamic (RS + ROB + BTB)" in out


@pytest.mark.slow
def test_paper_experiments_single_workload():
    out = run_example("paper_experiments.py", "eqntott", timeout=500)
    assert "Table 1" in out and "Figure 9" in out
    assert "eqntott" in out
