"""Tests for the dynamically-scheduled machine (Figure 9's comparator)."""

import pytest

from repro.harness.pipeline import SCALAR_CONFIG, compile_minic, make_input_image
from repro.hw.dynamic import DynamicConfig, DynamicSim, run_dynamic
from repro.hw.exceptions import Trap, TrapKind
from repro.hw.functional import run_functional
from repro.frontend import compile_source
from repro.opt import allocate_program, optimize_program

SOURCE = """
global data[16];
global n = 0;
func main() {
    var total = 0;
    var odd = 0;
    for (var i = 0; i < n; i = i + 1) {
        var v = data[i];
        if (v & 1) { odd = odd + 1; }
        total = total + v;
    }
    print(total);
    print(odd);
}
"""
INPUTS = {"data": [(i * 13 + 5) % 64 for i in range(16)], "n": 16}


def prepared_program():
    prog = compile_source(SOURCE)
    optimize_program(prog)
    allocate_program(prog)
    return prog


def test_matches_functional_reference():
    prog = prepared_program()
    from repro.harness.pipeline import make_input_image
    image = make_input_image(prog, INPUTS)
    from repro.hw.functional import FunctionalSim
    ref = FunctionalSim(prog, input_image=image).run()
    for rename in (False, True):
        res = run_dynamic(prog, rename=rename, input_image=image)
        assert res.output == ref.output


def test_out_of_order_beats_tiny_window():
    prog = prepared_program()
    image = make_input_image(prog, INPUTS)
    big = DynamicSim(prog, DynamicConfig(rob_entries=16),
                     input_image=image).run()
    prog2 = prepared_program()
    tiny = DynamicSim(prog2, DynamicConfig(rob_entries=2),
                      input_image=image).run()
    assert big.cycle_count < tiny.cycle_count


def test_rename_roughly_matches_or_beats_no_rename():
    # Renaming removes WAW/WAR dispatch stalls.  It may occasionally *cost*
    # a little: deeper speculation contends for the single memory port and
    # makes loads wait on more unresolved store addresses — so the check
    # allows a small regression rather than demanding strict dominance.
    prog = prepared_program()
    image = make_input_image(prog, INPUTS)
    with_rename = DynamicSim(prog, DynamicConfig(rename=True),
                             input_image=image).run()
    without = DynamicSim(prepared_program(), DynamicConfig(rename=False),
                         input_image=image).run()
    assert with_rename.cycle_count <= without.cycle_count * 1.10


def test_branches_counted_and_predicted():
    prog = prepared_program()
    image = make_input_image(prog, INPUTS)
    res = run_dynamic(prog, input_image=image)
    assert res.branch_count >= 16          # at least one branch per element
    assert 0 < res.mispredict_count < res.branch_count


def test_mispredict_penalty_costs_cycles():
    prog = prepared_program()
    image = make_input_image(prog, INPUTS)
    cheap = DynamicSim(prog, DynamicConfig(mispredict_restart=0),
                       input_image=image).run()
    costly = DynamicSim(prepared_program(),
                        DynamicConfig(mispredict_restart=6),
                        input_image=image).run()
    assert costly.cycle_count > cheap.cycle_count


def test_trap_is_precise_at_commit():
    source = """
func main() {
    var p = 0;
    print(loadw(p));
}
"""
    prog = compile_source(source)
    optimize_program(prog)
    allocate_program(prog)
    with pytest.raises(Trap) as info:
        run_dynamic(prog)
    assert info.value.kind is TrapKind.ADDRESS_ERROR


def test_wrong_path_fault_never_surfaces():
    # A load behind a rarely-taken branch: speculation down the wrong path
    # may execute it, but no trap may escape if the branch goes the other
    # way.
    source = """
global flag = 1;
func main() {
    var p = 0;
    if (flag == 0) {
        print(loadw(p));
    }
    print(7);
}
"""
    prog = compile_source(source)
    optimize_program(prog)
    allocate_program(prog)
    res = run_dynamic(prog)
    assert res.output == [7]
    assert res.trap is None


def test_store_not_architectural_until_commit():
    # Calls and returns exercise the jr-prediction path with memory traffic.
    source = """
global slot = 0;
func bump(v) {
    slot = slot + v;
    return slot;
}
func main() {
    var a = bump(3);
    var b = bump(4);
    print(a);
    print(b);
    print(slot);
}
"""
    prog = compile_source(source)
    optimize_program(prog)
    allocate_program(prog)
    res = run_dynamic(prog)
    assert res.output == [3, 7, 7]


def test_decode_path_matches_reference_on_workload():
    """The pre-decoded cycle loop must agree with the functional reference
    on a real workload, and renaming must not change architectural
    results — only timing."""
    from repro.workloads import get

    w = get("eqntott")
    cp = compile_minic(w.source, SCALAR_CONFIG, w.train)
    image = make_input_image(cp.program, w.eval)
    expected = run_functional(cp.reference,
                              input_image=make_input_image(cp.reference,
                                                           w.eval)).output
    results = {}
    for rename in (False, True):
        r = DynamicSim(cp.program, config=DynamicConfig(rename=rename),
                       input_image=image).run()
        assert r.output == expected
        results[rename] = r
    # Same instruction stream either way; renaming only removes stalls.
    assert results[False].instr_count == results[True].instr_count
    assert results[False].branch_count == results[True].branch_count
    assert results[True].cycle_count <= results[False].cycle_count
