"""Differential oracle for the pre-decoded simulator fast paths.

The fast paths in :class:`FunctionalSim` and :class:`SuperscalarSim` must be
observably identical to the reference interpreters (``fast=False``) on every
workload: same output, same counters, same traps, same fault-injection and
recovery behavior.  These tests pin that equivalence.
"""

import pytest

from repro.harness.experiments import CONFIGS
from repro.harness.pipeline import compile_minic, make_input_image
from repro.hw.exceptions import Trap
from repro.hw.functional import FunctionalSim
from repro.hw.superscalar import SuperscalarSim
from repro.verify.faults import FaultInjector, make_plan
from repro.workloads import all_workloads, get

WORKLOADS = list(all_workloads())
WORKLOAD_NAMES = [w.name for w in WORKLOADS]


def _observables(result, sim=None):
    obs = {
        "output": result.output,
        "instr_count": result.instr_count,
        "cycle_count": result.cycle_count,
        "nop_count": result.nop_count,
        "branch_count": result.branch_count,
        "mispredict_count": result.mispredict_count,
    }
    if sim is not None:
        obs["boosted_executed"] = sim.boosted_executed
        obs["boosted_squashed"] = sim.boosted_squashed
        obs["recovery_invocations"] = sim.recovery_invocations
    return obs


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_functional_fast_matches_reference(name):
    wl = get(name)
    compiled = compile_minic(wl.source, CONFIGS["scalar"])
    image = make_input_image(compiled.program, wl.train)

    def run(fast):
        sim = FunctionalSim(compiled.program, input_image=image, fast=fast)
        return _observables(sim.run())

    assert run(True) == run(False)


@pytest.mark.parametrize("key", ["scalar", "bb", "global", "squashing",
                                 "boost1", "minboost3", "boost7"])
def test_superscalar_fast_matches_reference(key):
    wl = get("espresso")
    compiled = compile_minic(wl.source, CONFIGS[key])
    image = make_input_image(compiled.program, wl.train)

    def run(fast):
        sim = SuperscalarSim(compiled.sched, input_image=image, fast=fast)
        return _observables(sim.run(), sim)

    assert run(True) == run(False)


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_superscalar_fast_matches_reference_all_workloads(name):
    wl = get(name)
    compiled = compile_minic(wl.source, CONFIGS["minboost3"])
    image = make_input_image(compiled.program, wl.train)

    def run(fast):
        sim = SuperscalarSim(compiled.sched, input_image=image, fast=fast)
        return _observables(sim.run(), sim)

    assert run(True) == run(False)


@pytest.mark.parametrize("seed", range(4))
def test_superscalar_fast_matches_reference_under_faults(seed):
    """Injected traps, deferral, and recovery behave identically."""
    wl = get("compress")
    compiled = compile_minic(wl.source, CONFIGS["boost7"])
    image = make_input_image(compiled.program, wl.train)
    plan = make_plan(compiled.program, seed)

    def run(fast):
        injector = FaultInjector(plan)
        sim = SuperscalarSim(compiled.sched, input_image=image,
                             fault_hook=injector, fast=fast)
        trap = None
        try:
            result = sim.run()
        except Trap as t:
            trap = (t.kind, t.instr_uid, t.addr)
            result = sim.result
        obs = _observables(result, sim)
        obs["trap"] = trap
        obs["hits"] = injector.total_hits
        return obs

    assert run(True) == run(False)


def test_functional_fast_fuel_exhaustion_is_exact():
    """Block-granularity fuel accounting must trap on the same instruction
    as the per-instruction reference loop."""
    from repro.hw.errors import FuelExhausted

    wl = get("grep")
    compiled = compile_minic(wl.source, CONFIGS["scalar"])
    image = make_input_image(compiled.program, wl.train)

    full = FunctionalSim(compiled.program, input_image=image).run()
    for fuel in (1, 7, full.instr_count // 2, full.instr_count - 1):
        states = []
        for fast in (True, False):
            sim = FunctionalSim(compiled.program, input_image=image,
                                max_steps=fuel, fast=fast)
            with pytest.raises(FuelExhausted):
                sim.run()
            states.append((sim.result.instr_count, sim.result.nop_count,
                           list(sim.result.output)))
        assert states[0] == states[1]
