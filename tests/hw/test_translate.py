"""Differential oracle for the translating backend (``repro.hw.translate``).

The translated engines must be observably identical to the interpreters on
every workload — same output, same counters, same traps — including at fuel
boundaries and across the trace-reuse memo layer's legality edges (a trap
reached from a memoized superblock, a store aliasing a memoized load).
These tests pin that equivalence, plus the expression templates the code
generator inlines, the backend-selection knob, and the CompileCache
round-trip of generated-code artifacts.
"""

import os
import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro.harness.cache import CODE_VERSION, CompileCache
from repro.harness.experiments import CONFIGS
from repro.harness.pipeline import compile_minic, make_input_image
from repro.hw.alu import ALU_FUNCS, BRANCH_FUNCS, alu_expr, branch_expr
from repro.hw.backend import BACKENDS, backend_choice, resolve_backend
from repro.hw.errors import FuelExhausted
from repro.hw.exceptions import Trap
from repro.hw.functional import FunctionalSim
from repro.hw.superscalar import SuperscalarSim
from repro.hw.translate import (
    HOT_THRESHOLD, TranslationUnit, functional_unit, superscalar_unit,
)
from repro.obs.stats import SimStats
from repro.workloads import all_workloads, get

REPO_ROOT = Path(__file__).resolve().parents[2]
WORKLOAD_NAMES = [w.name for w in all_workloads()]


def _observables(result, sim=None):
    obs = {
        "output": result.output,
        "instr_count": result.instr_count,
        "cycle_count": result.cycle_count,
        "nop_count": result.nop_count,
        "branch_count": result.branch_count,
        "mispredict_count": result.mispredict_count,
    }
    if sim is not None:
        obs["boosted_executed"] = sim.boosted_executed
        obs["boosted_squashed"] = sim.boosted_squashed
        obs["recovery_invocations"] = sim.recovery_invocations
    return obs


# ------------------------------------------------- engine equivalence


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_functional_translate_matches_interpreters(name):
    wl = get(name)
    compiled = compile_minic(wl.source, CONFIGS["scalar"])
    image = make_input_image(compiled.program, wl.train)

    def run(backend):
        sim = FunctionalSim(compiled.program, input_image=image,
                            backend=backend)
        return _observables(sim.run())

    translated = run("translate")
    assert translated == run("interp")
    assert translated == run("reference")


@pytest.mark.parametrize("key", ["scalar", "bb", "global", "squashing",
                                 "boost1", "minboost3", "boost7"])
def test_superscalar_translate_matches_interpreters(key):
    """Sequential blocks run as generated code while boosted blocks (and
    the shadow/shift-buffer machinery between them) stay interpreted —
    every architectural observable must still match, model by model."""
    wl = get("espresso")
    compiled = compile_minic(wl.source, CONFIGS[key])
    image = make_input_image(compiled.program, wl.train)

    def run(backend):
        sim = SuperscalarSim(compiled.sched, input_image=image,
                             backend=backend)
        return _observables(sim.run(), sim)

    translated = run("translate")
    assert translated == run("interp")
    assert translated == run("reference")


def test_superscalar_translate_actually_translates():
    wl = get("grep")
    compiled = compile_minic(wl.source, CONFIGS["minboost3"], wl.train)
    unit = superscalar_unit(compiled.sched)
    assert unit is not None and unit.translated_blocks > 0
    sim = SuperscalarSim(compiled.sched,
                         input_image=make_input_image(compiled.program,
                                                      wl.train),
                         backend="translate")
    sim.run()
    assert sim.translate_counters["translated_blocks"] \
        == unit.translated_blocks


def test_functional_translate_fuel_exhaustion_is_exact():
    """Fuel handoff to the interpreter must exhaust on the same instruction
    the per-instruction reference loop does."""
    wl = get("grep")
    compiled = compile_minic(wl.source, CONFIGS["scalar"])
    image = make_input_image(compiled.program, wl.train)

    full = FunctionalSim(compiled.program, input_image=image).run()
    for fuel in (1, 7, full.instr_count // 2, full.instr_count - 1):
        states = []
        for backend in ("translate", "reference"):
            sim = FunctionalSim(compiled.program, input_image=image,
                                max_steps=fuel, backend=backend)
            with pytest.raises(FuelExhausted):
                sim.run()
            states.append((sim.result.instr_count, sim.result.nop_count,
                           list(sim.result.output)))
        assert states[0] == states[1]


# ------------------------------------------------- expression templates


_SAMPLES = [0, 1, 2, 3, 31, 32, 0x7FFFFFFF, 0x80000000, 0x80000001,
            0xFFFFFFFE, 0xFFFFFFFF]
_SAMPLES += [random.Random(0xB005).randrange(2 ** 32) for _ in range(16)]


def test_alu_expr_templates_match_table_functions():
    imms = [0, 1, -1, 5, 31, 32, 1000, -(2 ** 31), 2 ** 31 - 1, 0x1234]
    swept = 0
    for op, fn in ALU_FUNCS.items():
        for imm in imms:
            expr = alu_expr(op, "a", "b", imm)
            if expr is None:
                continue  # trapping / out-of-range: stays a table call
            code = compile(expr, f"<{op.name}>", "eval")
            for a in _SAMPLES:
                for b in _SAMPLES:
                    got = eval(code, {"a": a, "b": b})
                    assert got == fn(a, b, imm), (op, imm, a, b)
            swept += 1
    assert swept > 20  # the sweep must actually cover the table


def test_branch_expr_templates_match_table_functions():
    for op, fn in BRANCH_FUNCS.items():
        for negate in (False, True):
            code = compile(branch_expr(op, "a", "b", negate),
                           f"<{op.name}>", "eval")
            for a in _SAMPLES:
                for b in _SAMPLES:
                    got = bool(eval(code, {"a": a, "b": b}))
                    assert got == (fn(a, b) ^ negate), (op, negate, a, b)


def test_div_rem_stay_table_calls():
    assert alu_expr(next(iter(ALU_FUNCS)), "a", "b", 0) is not None
    from repro.isa.opcodes import Opcode
    assert alu_expr(Opcode.DIV, "a", "b", 0) is None
    assert alu_expr(Opcode.REM, "a", "b", 0) is None


# ------------------------------------------------- trace-reuse legality

_MEMO_CALLS = 3 * HOT_THRESHOLD

_ALIASING_SOURCE = """
global xs[8];
global calls = 0;
func f() {
    var t = 0;
    var i = 0;
    while (i < 8) {
        t = t + xs[i];
        i = i + 1;
    }
    return t;
}
func main() {
    var s = 0;
    var j = 0;
    var n = calls;
    while (j < n) {
        s = s + f();
        if (j == n - 8) { xs[3] = 777; }
        j = j + 1;
    }
    print(s);
}
"""

_TRAP_SOURCE = """
global xs[8];
global w = 0;
global calls = 0;
func f() {
    var t = 0;
    var i = 0;
    while (i < 8) {
        t = t + xs[w + i];
        i = i + 1;
    }
    return t;
}
func main() {
    var s = 0;
    var j = 0;
    var n = calls;
    while (j < n) {
        s = s + f();
        j = j + 1;
    }
    if (n > 0) {
        w = 1000000;
        s = s + f();
    }
    print(s);
}
"""


def _run_backend(compiled, inputs, backend):
    image = make_input_image(compiled.program, inputs)
    sim = FunctionalSim(compiled.program, input_image=image,
                        backend=backend)
    trap = None
    try:
        result = sim.run()
    except Trap as t:
        trap = (t.kind, t.instr_uid, t.addr)
        result = sim.result
    obs = _observables(result)
    obs["trap"] = trap
    return obs, sim


def test_memoized_trace_store_aliasing_falls_back():
    """A store that changes memory a memoized trace loaded must invalidate
    the trace — replaying the stale sum would be wrong."""
    inputs = {"xs": [3, 1, 4, 1, 5, 9, 2, 6], "calls": _MEMO_CALLS}
    compiled = compile_minic(_ALIASING_SOURCE, CONFIGS["scalar"])
    t_obs, t_sim = _run_backend(compiled, inputs, "translate")
    r_obs, _ = _run_backend(compiled, inputs, "reference")
    assert t_obs == r_obs
    counters = t_sim.translate_counters
    # the loop went hot, replayed, and the aliasing store was caught
    assert counters["trace_hits"] > 0
    assert counters["trace_invalidations"] >= 1


def test_trap_after_memoized_trace_is_exact():
    """When the inputs of a hot superblock change so that executing it
    traps, the memo layer must execute (the key/validation misses), raising
    the same trap at the same instruction as the reference — never
    replaying a recorded non-trapping run."""
    inputs = {"xs": [3, 1, 4, 1, 5, 9, 2, 6], "calls": _MEMO_CALLS}
    compiled = compile_minic(_TRAP_SOURCE, CONFIGS["scalar"])
    t_obs, t_sim = _run_backend(compiled, inputs, "translate")
    r_obs, _ = _run_backend(compiled, inputs, "reference")
    assert t_obs["trap"] is not None
    assert t_obs == r_obs
    assert t_sim.translate_counters["trace_hits"] > 0


def test_memoized_trace_fuel_boundaries_are_exact():
    """Replay must hand off to the interpreter at exactly the same fuel
    level as execution would — a trace is never replayed on partial fuel."""
    inputs = {"xs": [3, 1, 4, 1, 5, 9, 2, 6], "calls": _MEMO_CALLS}
    compiled = compile_minic(_ALIASING_SOURCE, CONFIGS["scalar"])
    image = make_input_image(compiled.program, inputs)
    full = FunctionalSim(compiled.program, input_image=image).run()
    for fuel in (full.instr_count // 3, full.instr_count // 2,
                 full.instr_count - 2):
        states = []
        for backend in ("translate", "reference"):
            sim = FunctionalSim(compiled.program, input_image=image,
                                max_steps=fuel, backend=backend)
            with pytest.raises(FuelExhausted):
                sim.run()
            states.append((sim.result.instr_count, sim.result.nop_count,
                           list(sim.result.output)))
        assert states[0] == states[1]


def test_translation_counters_reach_stats_snapshot():
    wl = get("grep")
    compiled = compile_minic(wl.source, CONFIGS["minboost3"], wl.train)
    st = SimStats()
    compiled.run_functional(wl.train, stats=st)
    snap = st.snapshot()
    assert snap["translated_blocks"] > 0
    assert snap["trace_hits"] >= 0


# ------------------------------------------------- staleness protection


def test_invalidate_caches_drops_translation_unit():
    wl = get("grep")
    compiled = compile_minic(wl.source, CONFIGS["scalar"])
    unit = functional_unit(compiled.reference)
    assert isinstance(unit, TranslationUnit)
    assert "_translation_unit" in compiled.reference.__dict__
    compiled.reference.invalidate_caches()
    assert "_translation_unit" not in compiled.reference.__dict__
    rebuilt = functional_unit(compiled.reference)
    assert isinstance(rebuilt, TranslationUnit)
    assert rebuilt is not unit


def test_stale_unit_register_backstop():
    """A cached unit referencing registers beyond the simulator's file is
    rebuilt instead of crashing the generated code."""
    wl = get("grep")
    compiled = compile_minic(wl.source, CONFIGS["scalar"])
    unit = functional_unit(compiled.reference)
    unit.max_reg = 4096  # simulate an externally mutated program
    nregs = len(FunctionalSim(compiled.reference).regs)
    rebuilt = functional_unit(compiled.reference, nregs)
    assert rebuilt is not unit
    assert rebuilt.max_reg < nregs


# ------------------------------------------------- backend selection knob


def test_backend_choice_env_and_alias(monkeypatch):
    monkeypatch.delenv("REPRO_SIM_BACKEND", raising=False)
    monkeypatch.delenv("REPRO_FAST_SIM", raising=False)
    assert backend_choice() == "translate"
    monkeypatch.setenv("REPRO_FAST_SIM", "0")
    assert backend_choice() == "reference"
    # the documented knob wins over the legacy alias
    monkeypatch.setenv("REPRO_SIM_BACKEND", "interp")
    assert backend_choice() == "interp"
    monkeypatch.setenv("REPRO_SIM_BACKEND", "jit")
    with pytest.raises(ValueError):
        backend_choice()


def test_resolve_backend_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_SIM_BACKEND", raising=False)
    monkeypatch.delenv("REPRO_FAST_SIM", raising=False)
    assert resolve_backend("reference", True) == "reference"
    assert resolve_backend(None, False) == "reference"
    assert resolve_backend(None, True) == "translate"
    assert resolve_backend(None, None) == "translate"
    monkeypatch.setenv("REPRO_SIM_BACKEND", "reference")
    # fast=True means "a fast engine": never silently demoted to reference
    assert resolve_backend(None, True) == "interp"
    with pytest.raises(ValueError):
        resolve_backend("jit", None)


def test_sims_honor_backend_env(monkeypatch):
    wl = get("grep")
    compiled = compile_minic(wl.source, CONFIGS["scalar"])
    monkeypatch.setenv("REPRO_SIM_BACKEND", "interp")
    assert FunctionalSim(compiled.program).backend == "interp"
    monkeypatch.delenv("REPRO_SIM_BACKEND")
    monkeypatch.setenv("REPRO_FAST_SIM", "0")
    assert FunctionalSim(compiled.program).backend == "reference"
    assert SuperscalarSim(compiled.sched).backend == "reference"


def test_bench_json_identical_across_backends(tmp_path):
    """One workload through ``bench --json`` under each backend: the
    reports must be byte-identical (CI repeats this for the full matrix)."""
    reports = {}
    for backend in BACKENDS:
        out = tmp_path / f"{backend}.json"
        env = dict(os.environ, REPRO_SIM_BACKEND=backend,
                   PYTHONPATH=str(REPO_ROOT / "src"))
        subprocess.run(
            [sys.executable, "-m", "repro", "bench", "grep",
             "--json", str(out), "--no-cache"],
            check=True, cwd=REPO_ROOT, env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        reports[backend] = out.read_bytes()
    assert reports["reference"] == reports["interp"] == reports["translate"]


# ------------------------------------------------- compile-cache artifacts


def test_translation_unit_rides_compile_cache(tmp_path):
    """Generated-code artifacts are part of the cached compile: a warm
    load carries the translation units and they run correctly."""
    wl = get("grep")
    cache = CompileCache(tmp_path / "cache")
    cold = cache.compile_minic(wl.source, CONFIGS["minboost3"], wl.train)
    assert isinstance(cold.reference.__dict__.get("_translation_unit"),
                      TranslationUnit)

    warm_cache = CompileCache(tmp_path / "cache")
    warm = warm_cache.compile_minic(wl.source, CONFIGS["minboost3"],
                                    wl.train)
    assert warm_cache.stats()["hits"] == 1
    funit = warm.reference.__dict__.get("_translation_unit")
    sunit = warm.sched.__dict__.get("_translation_unit")
    assert isinstance(funit, TranslationUnit)
    assert isinstance(sunit, TranslationUnit)
    assert funit.sources and sunit.sources

    image = make_input_image(warm.reference, wl.train)
    a = FunctionalSim(warm.reference, input_image=image,
                      backend="translate").run()
    b = FunctionalSim(warm.reference, input_image=image,
                      backend="interp").run()
    assert (a.output, a.instr_count) == (b.output, b.instr_count)
    simage = make_input_image(warm.program, wl.train)
    c = SuperscalarSim(warm.sched, input_image=simage,
                       backend="translate").run()
    d = SuperscalarSim(warm.sched, input_image=simage,
                       backend="interp").run()
    assert (c.output, c.cycle_count) == (d.output, d.cycle_count)


def test_cache_purges_stale_code_version(tmp_path, capsys):
    """Entries from an older CODE_VERSION are unreachable (the version is
    in every key) — they must be swept with a one-line stderr note."""
    d = tmp_path / "cache"
    d.mkdir()
    (d / "VERSION").write_text(f"{CODE_VERSION - 1}\n")
    (d / "aaaa.pkl").write_bytes(b"stale")
    (d / "bbbb.pkl").write_bytes(b"stale")
    (d / "aaaa.strikes").write_text("2\n")
    cache = CompileCache(d)
    assert cache.load("cccc") is None  # triggers the version sweep
    assert cache.purged == 2
    assert not list(d.glob("*.pkl"))
    assert not list(d.glob("*.strikes"))
    assert (d / "VERSION").read_text().strip() == str(CODE_VERSION)
    err = capsys.readouterr().err
    assert "purged 2 entries" in err
    assert f"code version {CODE_VERSION - 1} (now {CODE_VERSION})" in err


def test_cache_version_sweep_spares_current_entries(tmp_path):
    d = tmp_path / "cache"
    cache = CompileCache(d)
    cache.store("k1", compile_minic(get("grep").source, CONFIGS["scalar"]))
    assert (d / "VERSION").read_text().strip() == str(CODE_VERSION)
    again = CompileCache(d)
    assert again.load("k1") is not None
    assert again.purged == 0
