"""Pipeline semantics of the statically-scheduled machine."""

import pytest

from repro.hw.superscalar import SimulationError, SuperscalarSim, run_scheduled
from repro.isa import Instruction, Opcode, Reg, ZERO
from repro.program import ProcBuilder, Program
from repro.sched.bbsched import schedule_program_bb
from repro.sched.boostmodel import BOOST1, MINBOOST3, NO_BOOST
from repro.sched.machine import SCALAR, SUPERSCALAR
from repro.sched.schedprog import (
    ScheduledBlock, ScheduledProcedure, ScheduledProgram,
)

T0, T1, T2, T3 = (Reg.named(f"t{i}") for i in range(4))


def simple_program(fill) -> Program:
    program = Program()
    b = ProcBuilder("main", data=program.data)
    fill(b, program)
    program.add(b.build())
    return program


def hand_schedule(program: Program, blocks, model=NO_BOOST) -> ScheduledProgram:
    """Build a ScheduledProgram from explicit (label, rows, term_cycle)."""
    sched = ScheduledProgram(program, SUPERSCALAR, model)
    sp = ScheduledProcedure("main")
    for label, rows, term_cycle in blocks:
        sp.add_block(ScheduledBlock(label, rows, term_cycle))
    sched.add(sp)
    return sched


def i(op, **kw):
    return Instruction(op, **kw)


def test_delay_cycle_executes_on_taken_branch():
    # branch taken; the delay-cycle instruction must still execute.
    program = simple_program(lambda b, p: None)
    program.procedures.clear()
    from repro.program import BasicBlock, Procedure
    entry = BasicBlock("entry")
    target = BasicBlock("target")
    proc = Procedure("main", [entry, target])
    program.add(proc)

    li1 = i(Opcode.LI, dst=T0, imm=1)
    br = i(Opcode.BEQ, srcs=(ZERO, ZERO), target="target",
           predict_taken=True)
    delay_instr = i(Opcode.LI, dst=T1, imm=42)
    pr0 = i(Opcode.PRINT, srcs=(T1,))
    halt = i(Opcode.HALT)
    sched = hand_schedule(program, [
        ("entry", [[li1, None], [br, None], [delay_instr, None]], 1),
        ("target", [[pr0, None], [halt, None]], 1),
    ])
    result = run_scheduled(sched)
    assert result.output == [42]


def test_stall_interlock_on_cross_block_latency():
    # A load in a block's final cycle; the consumer in the next block must
    # stall rather than read a stale value.
    program = Program()
    program.data.words("x", [77])
    from repro.program import BasicBlock, Procedure
    b1 = BasicBlock("entry")
    b2 = BasicBlock("next")
    program.add(Procedure("main", [b1, b2]))
    addr = program.data.address_of("x")

    li_addr = i(Opcode.LI, dst=T0, imm=addr)
    lw = i(Opcode.LW, dst=T1, srcs=(T0,), imm=0)
    use = i(Opcode.PRINT, srcs=(T1,))
    halt = i(Opcode.HALT)
    sched = hand_schedule(program, [
        ("entry", [[li_addr, None], [None, lw]], None),
        ("next", [[use, None], [halt, None]], 1),
    ])
    result = run_scheduled(sched)
    assert result.output == [77]       # interlock delivered the right value
    assert result.cycle_count > 4      # and charged a stall cycle


def test_operands_read_before_writes_within_a_cycle():
    # WAR within one row: the reader sees the old value.
    program = Program()
    from repro.program import BasicBlock, Procedure
    blk = BasicBlock("entry")
    program.add(Procedure("main", [blk]))
    set5 = i(Opcode.LI, dst=T0, imm=5)
    mv = i(Opcode.MOVE, dst=T1, srcs=(T0,))     # reads t0 (5)
    clobber = i(Opcode.LI, dst=T0, imm=9)       # same row, writes t0
    pr = i(Opcode.PRINT, srcs=(T1,))
    halt = i(Opcode.HALT)
    sched = hand_schedule(program, [
        ("entry", [[set5, None], [mv, clobber], [pr, None], [halt, None]], 3),
    ])
    result = run_scheduled(sched)
    assert result.output == [5]


def test_boosted_store_without_buffer_is_a_simulation_error():
    program = Program()
    program.data.words("x", [0])
    from repro.program import BasicBlock, Procedure
    blk = BasicBlock("entry")
    program.add(Procedure("main", [blk]))
    addr = program.data.address_of("x")
    li_addr = i(Opcode.LI, dst=T0, imm=addr)
    sw = i(Opcode.SW, srcs=(T0, T0), imm=0, boost=1)
    br = i(Opcode.BEQ, srcs=(ZERO, ZERO), target="entry", predict_taken=True)
    sched = hand_schedule(program, [
        ("entry", [[li_addr, None], [br, sw], [None, None]], 1),
    ], model=MINBOOST3)  # MinBoost3 has no shadow store buffer
    with pytest.raises(SimulationError):
        SuperscalarSim(sched, max_cycles=100).run()


def test_mispredicted_branch_squashes_boosted_state():
    # A boosted write on the wrong path must never reach the register file.
    program = Program()
    from repro.program import BasicBlock, Procedure
    entry = BasicBlock("entry")
    away = BasicBlock("away")
    program.add(Procedure("main", [entry, away]))
    boosted_li = i(Opcode.LI, dst=T0, imm=666, boost=1)
    set_t0 = i(Opcode.LI, dst=T0, imm=1)
    br = i(Opcode.BNE, srcs=(ZERO, ZERO), target="away",
           predict_taken=True)  # bne zero,zero never taken -> mispredict
    pr = i(Opcode.PRINT, srcs=(T0,))
    halt = i(Opcode.HALT)
    sched = hand_schedule(program, [
        ("entry", [[set_t0, None], [br, boosted_li], [None, None]], 1),
        ("away", [[pr, None], [halt, None]], 1),
    ], model=BOOST1)
    # fall-through: 'away' is the next block either way in this layout
    result = run_scheduled(sched)
    assert result.output == [1]
    assert result.mispredict_count == 1


def test_correctly_predicted_branch_commits_boosted_state():
    program = Program()
    from repro.program import BasicBlock, Procedure
    entry = BasicBlock("entry")
    cont = BasicBlock("cont")
    program.add(Procedure("main", [entry, cont]))
    boosted_li = i(Opcode.LI, dst=T0, imm=42, boost=1)
    br = i(Opcode.BEQ, srcs=(ZERO, ZERO), target="cont", predict_taken=True)
    pr = i(Opcode.PRINT, srcs=(T0,))
    halt = i(Opcode.HALT)
    sched = hand_schedule(program, [
        ("entry", [[br, boosted_li], [None, None]], 0),
        ("cont", [[pr, None], [halt, None]], 1),
    ], model=BOOST1)
    result = run_scheduled(sched)
    assert result.output == [42]
    assert result.mispredict_count == 0


def test_nops_counted_separately():
    def fill(b, p):
        b.label("entry")
        b.li(T0, 3)
        b.print_(T0)
        b.halt()
    program = simple_program(fill)
    sched = schedule_program_bb(program, SCALAR)
    result = run_scheduled(sched)
    assert result.output == [3]
    assert result.instr_count == 3
