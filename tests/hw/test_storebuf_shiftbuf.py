"""Tests for the shadow store buffer and the exception shift buffer."""

import pytest

from repro.hw.exceptions import ExceptionShiftBuffer, Trap, TrapKind
from repro.hw.memory import Memory
from repro.hw.storebuf import ShadowStoreBuffer, StoreBufferError
from repro.program.procedure import DATA_BASE


def make_mem():
    mem = Memory(1 << 16)
    return mem


class TestStoreBuffer:
    def test_boosted_store_invisible_to_memory(self):
        mem = make_mem()
        buf = ShadowStoreBuffer(2)
        addr = DATA_BASE
        buf.store(1, addr, b"\x2a\x00\x00\x00")
        assert mem.load_word(addr) == 0

    def test_boosted_load_snoops_buffer(self):
        mem = make_mem()
        buf = ShadowStoreBuffer(2)
        addr = DATA_BASE
        buf.store(1, addr, (42).to_bytes(4, "little"))
        raw = buf.load(mem, addr, 4, level=1)
        assert int.from_bytes(raw, "little") == 42

    def test_sequential_load_does_not_snoop(self):
        mem = make_mem()
        buf = ShadowStoreBuffer(2)
        addr = DATA_BASE
        buf.store(1, addr, (42).to_bytes(4, "little"))
        raw = buf.load(mem, addr, 4, level=0)
        assert int.from_bytes(raw, "little") == 0

    def test_shallow_reader_misses_deeper_store(self):
        mem = make_mem()
        buf = ShadowStoreBuffer(3)
        addr = DATA_BASE
        buf.store(2, addr, b"\x07")
        assert buf.load_byte(addr, level=1) is None
        assert buf.load_byte(addr, level=2) == 7

    def test_commit_writes_level1_and_shifts(self):
        mem = make_mem()
        buf = ShadowStoreBuffer(2)
        addr = DATA_BASE
        buf.store(1, addr, b"\x11")
        buf.store(2, addr + 1, b"\x22")
        n = buf.commit(mem)
        assert n == 1
        assert mem.load_byte(addr, signed=False) == 0x11
        assert mem.load_byte(addr + 1, signed=False) == 0
        buf.commit(mem)
        assert mem.load_byte(addr + 1, signed=False) == 0x22

    def test_per_level_bytes_preserve_program_order(self):
        # A level-1 store then a level-2 store to the same byte: commits
        # land in program order, and a squash after the first commit leaves
        # only the first value.
        mem = make_mem()
        buf = ShadowStoreBuffer(2)
        addr = DATA_BASE
        buf.store(1, addr, b"\x01")
        buf.store(2, addr, b"\x02")
        buf.commit(mem)
        assert mem.load_byte(addr, signed=False) == 1
        buf.squash()
        buf.commit(mem)
        assert mem.load_byte(addr, signed=False) == 1  # second value gone

    def test_squash_discards(self):
        mem = make_mem()
        buf = ShadowStoreBuffer(2)
        buf.store(1, DATA_BASE, b"\xff")
        buf.squash()
        assert buf.outstanding() == 0
        buf.commit(mem)
        assert mem.load_byte(DATA_BASE, signed=False) == 0

    def test_level_bounds(self):
        buf = ShadowStoreBuffer(1)
        with pytest.raises(StoreBufferError):
            buf.store(2, DATA_BASE, b"\x00")

    def test_word_load_merges_buffer_and_memory(self):
        mem = make_mem()
        mem.store_word(DATA_BASE, 0xAABBCCDD)
        buf = ShadowStoreBuffer(1)
        buf.store(1, DATA_BASE + 1, b"\x11")
        raw = buf.load(mem, DATA_BASE, 4, level=1)
        assert raw == bytes([0xDD, 0x11, 0xBB, 0xAA])


class TestShiftBuffer:
    def trap(self):
        return Trap(TrapKind.ADDRESS_ERROR, addr=0)

    def test_fault_commits_after_n_shifts(self):
        buf = ExceptionShiftBuffer(3)
        buf.record(2, self.trap(), branch_uid=0)
        assert buf.shift(committing_branch_uid=11) is None
        out = buf.shift(committing_branch_uid=22)
        assert out is not None
        assert out.branch_uid == 22

    def test_clear_on_misprediction(self):
        buf = ExceptionShiftBuffer(2)
        buf.record(1, self.trap(), branch_uid=0)
        buf.clear()
        assert buf.shift(99) is None
        assert not buf.pending()

    def test_one_bit_per_level_first_fault_wins(self):
        buf = ExceptionShiftBuffer(2)
        t1, t2 = self.trap(), self.trap()
        buf.record(1, t1, 0)
        buf.record(1, t2, 0)
        out = buf.shift(5)
        assert out.trap is t1

    def test_level_bounds(self):
        buf = ExceptionShiftBuffer(2)
        with pytest.raises(ValueError):
            buf.record(3, self.trap(), 0)
        with pytest.raises(ValueError):
            buf.record(0, self.trap(), 0)

    def test_pending(self):
        buf = ExceptionShiftBuffer(2)
        assert not buf.pending()
        buf.record(2, self.trap(), 0)
        assert buf.pending()
