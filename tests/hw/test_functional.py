"""Tests for the functional reference simulator."""

import pytest

from repro.hw.exceptions import Trap, TrapKind
from repro.hw.functional import FuelExhausted, FunctionalSim, run_functional
from repro.isa import A0, Reg, V0
from repro.program import ProcBuilder, Program

T0, T1, T2 = (Reg.named(f"t{i}") for i in range(3))


def program_with(builder_fn) -> Program:
    program = Program()
    b = ProcBuilder("main", data=program.data)
    builder_fn(b, program)
    program.add(b.build())
    return program


def test_arithmetic_and_print():
    def body(b, _):
        b.label("entry")
        b.li(T0, 6)
        b.li(T1, 7)
        b.mul(T2, T0, T1)
        b.print_(T2)
        b.halt()

    result = run_functional(program_with(body))
    assert result.output == [42]
    assert result.trap is None


def test_signed_wraparound():
    def body(b, _):
        b.label("entry")
        b.li(T0, 0x7FFFFFFF)
        b.addi(T0, T0, 1)
        b.print_(T0)
        b.halt()

    result = run_functional(program_with(body))
    assert result.output == [-0x80000000]


def test_loop_countdown():
    def body(b, _):
        b.label("entry")
        b.li(T0, 5)
        b.li(T1, 0)
        b.label("loop")
        b.add(T1, T1, T0)
        b.addi(T0, T0, -1)
        b.bgtz(T0, "loop")
        b.label("done")
        b.print_(T1)
        b.halt()

    result = run_functional(program_with(body))
    assert result.output == [15]
    assert result.branch_count == 5


def test_memory_roundtrip():
    def body(b, program):
        program.data.words("xs", [11, 22, 33])
        b.label("entry")
        b.la(T0, "xs")
        b.lw(T1, T0, 8)
        b.print_(T1)
        b.sw(T1, T0, 0)
        b.lw(T2, T0, 0)
        b.print_(T2)
        b.halt()

    result = run_functional(program_with(body))
    assert result.output == [33, 33]


def test_byte_access_sign_extension():
    def body(b, program):
        program.data.bytes_("raw", bytes([0x80, 0x7F]))
        b.label("entry")
        b.la(T0, "raw")
        b.lb(T1, T0, 0)
        b.print_(T1)
        b.lbu(T2, T0, 0)
        b.print_(T2)
        b.halt()

    result = run_functional(program_with(body))
    assert result.output == [-128, 128]


def test_null_load_traps():
    def body(b, _):
        b.label("entry")
        b.li(T0, 0)
        b.lw(T1, T0, 0)
        b.halt()

    with pytest.raises(Trap) as info:
        run_functional(program_with(body))
    assert info.value.kind is TrapKind.ADDRESS_ERROR


def test_div_by_zero_traps():
    def body(b, _):
        b.label("entry")
        b.li(T0, 1)
        b.li(T1, 0)
        b.div(T2, T0, T1)
        b.halt()

    with pytest.raises(Trap) as info:
        run_functional(program_with(body))
    assert info.value.kind is TrapKind.DIV_ZERO


def test_trap_handler_resumes():
    def body(b, _):
        b.label("entry")
        b.li(T0, 0)
        b.lw(T1, T0, 0)
        b.print_(T1)
        b.halt()

    program = program_with(body)
    sim = FunctionalSim(program, trap_handler=lambda trap: 99)
    result = sim.run()
    assert result.output == [99]


def test_call_and_return():
    program = Program()
    main = ProcBuilder("main")
    main.label("entry")
    main.li(A0, 20)
    main.jal("double")
    main.label("after")
    main.print_(V0)
    main.halt()
    program.add(main.build())

    callee = ProcBuilder("double")
    callee.label("entry")
    callee.add(V0, A0, A0)
    callee.ret()
    program.add(callee.build())

    result = run_functional(program)
    assert result.output == [40]


def test_nested_calls_with_ra_spill():
    from repro.isa import RA, SP
    program = Program()
    main = ProcBuilder("main")
    main.label("entry")
    main.li(A0, 3)
    main.jal("addone_twice")
    main.label("after")
    main.print_(V0)
    main.halt()
    program.add(main.build())

    outer = ProcBuilder("addone_twice")
    outer.label("entry")
    outer.addi(SP, SP, -8)
    outer.sw(RA, SP, 0)
    outer.jal("addone")
    outer.label("mid")
    outer.move(A0, V0)
    outer.jal("addone")
    outer.label("out")
    outer.lw(RA, SP, 0)
    outer.addi(SP, SP, 8)
    outer.ret()
    program.add(outer.build())

    inner = ProcBuilder("addone")
    inner.label("entry")
    inner.addi(V0, A0, 1)
    inner.ret()
    program.add(inner.build())

    result = run_functional(program)
    assert result.output == [5]


def test_fuel_exhaustion():
    def body(b, _):
        b.label("entry")
        b.label("loop")
        b.j("loop")

    with pytest.raises(FuelExhausted):
        FunctionalSim(program_with(body), max_steps=1000).run()


def test_branch_profile_collection():
    def body(b, _):
        b.label("entry")
        b.li(T0, 10)
        b.label("loop")
        b.addi(T0, T0, -1)
        b.bgtz(T0, "loop")
        b.label("done")
        b.halt()

    sim = FunctionalSim(program_with(body), profile=True)
    sim.run()
    profile = sim.profile
    [uid] = list(set(profile.taken) | set(profile.not_taken))
    assert profile.taken[uid] == 9
    assert profile.not_taken[uid] == 1
    assert profile.taken_prob(uid) == pytest.approx(0.9)
    assert profile.taken_prob(123456789) is None


def test_prediction_accuracy_counted():
    def body(b, _):
        b.label("entry")
        b.li(T0, 10)
        b.label("loop")
        b.addi(T0, T0, -1)
        b.bgtz(T0, "loop")
        b.label("done")
        b.halt()

    program = program_with(body)
    loop_block = program.proc("main").block("loop")
    loop_block.terminator.predict_taken = True
    result = run_functional(program)
    assert result.branch_count == 10
    assert result.mispredict_count == 1  # final fall-through
    assert result.prediction_accuracy == pytest.approx(0.9)
