"""Tests for the shadow register file organisations (Section 4.1/4.2)."""

import pytest

from repro.hw.shadow import (
    MultiLevelShadowFile, NullShadowFile, ShadowConflictError,
    SingleShadowFile, make_shadow_file,
)


class TestMultiLevel:
    def test_write_read_same_level(self):
        f = MultiLevelShadowFile(3)
        f.write(5, 2, 42)
        assert f.read(5, 2) == 42
        assert f.read(5, 3) == 42  # deeper readers see shallower values

    def test_sequential_reader_sees_nothing(self):
        f = MultiLevelShadowFile(3)
        f.write(5, 1, 42)
        assert f.read(5, 0) is None

    def test_reader_sees_highest_level_at_or_below(self):
        # Program order: deeper level = later def; the latest def wins.
        f = MultiLevelShadowFile(3)
        f.write(5, 1, 10)
        f.write(5, 2, 20)
        assert f.read(5, 1) == 10
        assert f.read(5, 2) == 20
        assert f.read(5, 3) == 20

    def test_commit_shifts_levels_down(self):
        f = MultiLevelShadowFile(3)
        f.write(5, 1, 10)
        f.write(5, 2, 20)
        committed = f.commit()
        assert committed == {5: 10}
        assert f.read(5, 1) == 20  # level 2 became level 1
        committed = f.commit()
        assert committed == {5: 20}
        assert f.outstanding() == 0

    def test_figure_6b_schedule_possible(self):
        # Figure 6b: r3.B1 = 2 and r3.B2 = 3 coexist in separate files.
        f = MultiLevelShadowFile(2)
        f.write(3, 1, 2)
        f.write(3, 2, 3)
        assert f.commit() == {3: 2}
        assert f.commit() == {3: 3}

    def test_squash_discards_everything(self):
        f = MultiLevelShadowFile(3)
        f.write(1, 1, 11)
        f.write(2, 3, 33)
        f.squash()
        assert f.outstanding() == 0
        assert f.commit() == {}

    def test_level_out_of_range(self):
        f = MultiLevelShadowFile(2)
        with pytest.raises(ShadowConflictError):
            f.write(1, 3, 5)


class TestSingleFile:
    def test_one_outstanding_value_per_register(self):
        # Figure 6: a single shadow file cannot hold r3.B1 and r3.B2 at once.
        f = SingleShadowFile(3)
        f.write(3, 1, 2)
        with pytest.raises(ShadowConflictError):
            f.write(3, 2, 3)

    def test_same_level_overwrite_allowed(self):
        # Two boosted writes committing at the same branch: in-order
        # overwrite, last one wins.
        f = SingleShadowFile(3)
        f.write(3, 1, 2)
        f.write(3, 1, 7)
        assert f.commit() == {3: 7}

    def test_figure_6c_sequence(self):
        # Figure 6c: the second boosted def issues only after the first
        # commits.
        f = SingleShadowFile(2)
        f.write(3, 1, 2)
        assert f.commit() == {3: 2}
        f.write(3, 2, 3)
        assert f.commit() == {}     # level 2 -> 1
        assert f.commit() == {3: 3}

    def test_read_requires_level_at_or_above_count(self):
        f = SingleShadowFile(3)
        f.write(5, 2, 99)
        assert f.read(5, 1) is None   # value is deeper than the reader
        assert f.read(5, 2) == 99
        assert f.read(5, 3) == 99
        assert f.read(5, 0) is None

    def test_commit_decrements_counter(self):
        f = SingleShadowFile(3)
        f.write(5, 3, 99)
        assert f.commit() == {}
        assert f.commit() == {}
        assert f.commit() == {5: 99}
        assert f.outstanding() == 0

    def test_squash(self):
        f = SingleShadowFile(2)
        f.write(5, 2, 1)
        f.squash()
        assert f.outstanding() == 0
        f.write(5, 1, 3)  # no conflict after squash
        assert f.commit() == {5: 3}


class TestNullAndFactory:
    def test_null_file_rejects_boosting(self):
        f = NullShadowFile()
        with pytest.raises(ShadowConflictError):
            f.write(1, 1, 1)
        assert f.read(1, 1) is None
        assert f.commit() == {}

    def test_factory(self):
        assert isinstance(make_shadow_file(0, False), NullShadowFile)
        assert isinstance(make_shadow_file(3, False), SingleShadowFile)
        assert isinstance(make_shadow_file(7, True), MultiLevelShadowFile)
