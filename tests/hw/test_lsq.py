"""Cycle-level tests for the load/store queue (hw/lsq.py).

Each test builds a tiny Minic program whose memory traffic forces one
specific LSQ mechanism — youngest-match forwarding, partial-overlap
stalls, memory-dependence squashes, queue-full backpressure — and checks
both the architectural result (against the functional reference) and the
counters/cycle ordering the mechanism implies.
"""

from repro.frontend import compile_source
from repro.harness.pipeline import make_input_image
from repro.hw.dynamic import DynamicConfig, DynamicSim
from repro.hw.functional import FunctionalSim
from repro.opt import allocate_program, optimize_program


def prepared(source):
    prog = compile_source(source)
    optimize_program(prog)
    allocate_program(prog)
    return prog


def run_sim(source, inputs=None, **cfg):
    prog = prepared(source)
    image = make_input_image(prog, inputs or {})
    sim = DynamicSim(prog, DynamicConfig(rename=True, **cfg),
                     input_image=image)
    return sim, sim.run()


def functional_output(source, inputs=None):
    prog = prepared(source)
    image = make_input_image(prog, inputs or {})
    return FunctionalSim(prog, input_image=image).run().output


FORWARD_SOURCE = """
global buf[8];
func main() {
    var p = addr(buf);
    var s = 0;
    for (var i = 0; i < 8; i = i + 1) {
        storew(p, i + 3);
        s = s + loadw(p);
        p = p + 4;
    }
    print(s);
}
"""


def test_forwarding_hits_and_never_slows_down():
    # Every load reads the word the immediately preceding store wrote, so
    # with forwarding each load takes its value from the queue instead of
    # waiting for the store to drain at commit.
    expected = functional_output(FORWARD_SOURCE)
    sim_fwd, res_fwd = run_sim(FORWARD_SOURCE, lsq_size=16, stlf=True)
    sim_off, res_off = run_sim(FORWARD_SOURCE, lsq_size=16, stlf=False)
    assert res_fwd.output == expected
    assert res_off.output == expected
    assert sim_fwd.lsq.stlf_hits > 0
    assert sim_off.lsq.stlf_hits == 0
    assert res_fwd.cycle_count <= res_off.cycle_count


def test_forward_takes_youngest_matching_store():
    source = """
global buf[4];
func main() {
    var a = addr(buf);
    storew(a, 111);
    storew(a, 222);
    print(loadw(a));
}
"""
    sim, res = run_sim(source, lsq_size=16, stlf=True)
    assert res.output == [222]
    assert res.output == functional_output(source)


def test_partial_overlap_never_forwards():
    # storew writes 4 bytes; loadb reads one byte inside the word.  The
    # sizes differ, so the LSQ must not forward — the load waits for the
    # store to drain and then reads memory.  67305985 == 0x04030201, so
    # byte 1 (little-endian) is 2.
    source = """
global buf[4];
func main() {
    var a = addr(buf);
    storew(a, 67305985);
    print(loadb(a + 1));
}
"""
    sim, res = run_sim(source, lsq_size=16, stlf=True)
    assert res.output == [2]
    assert res.output == functional_output(source)
    assert sim.lsq.stlf_hits == 0
    # The load had to sit out at least one cycle behind the queued store.
    assert sim.memdep_stall_cycles >= 1


MEMDEP_SOURCE = """
global buf[8];
global k = 3;
func main() {
    var a = addr(buf);
    storew(a, 5);
    var slow = (a * k * k) / (k * k);
    storew(slow, 99);
    print(loadw(a));
}
"""


def test_memdep_squash_replays_aliasing_load():
    # The second store's address funnels through multiplies and a divide,
    # so it resolves long after the load is ready.  A speculative load
    # issues past it (forwarding 5 from the first store), then the store
    # resolves to the same address and the machine must squash and replay
    # the load — which now forwards 99.
    expected = functional_output(MEMDEP_SOURCE)
    assert expected == [99]
    sim_spec, res_spec = run_sim(MEMDEP_SOURCE, lsq_size=16, stlf=True,
                                 memdep_speculate=True)
    assert res_spec.output == expected
    assert sim_spec.memdep_squashes >= 1
    # Conservative LSQ and the legacy path agree, without squashing.
    sim_cons, res_cons = run_sim(MEMDEP_SOURCE, lsq_size=16, stlf=True)
    assert res_cons.output == expected
    assert sim_cons.memdep_squashes == 0
    _, res_legacy = run_sim(MEMDEP_SOURCE, lsq_size=0)
    assert res_legacy.output == expected


def test_no_squash_when_speculation_holds():
    # Same slow-address shape, but the second store hits a different word:
    # the speculation is right, so no squash may fire and the speculative
    # run must not be slower than the conservative one.
    source = MEMDEP_SOURCE.replace("storew(slow, 99);",
                                   "storew(slow + 4, 99);")
    expected = functional_output(source)
    assert expected == [5]
    sim_spec, res_spec = run_sim(source, lsq_size=16, stlf=True,
                                 memdep_speculate=True)
    assert res_spec.output == expected
    assert sim_spec.memdep_squashes == 0
    _, res_cons = run_sim(source, lsq_size=16, stlf=True)
    assert res_spec.cycle_count <= res_cons.cycle_count


def test_forwarded_load_immune_to_older_store():
    # The slow-resolving store is OLDER than the store the load forwards
    # from, so even though it aliases, its value was dead for the load:
    # no squash is allowed, and the result is the youngest store's value.
    source = """
global buf[8];
global k = 3;
func main() {
    var a = addr(buf);
    var slow = (a * k * k) / (k * k);
    storew(slow, 5);
    storew(a, 99);
    print(loadw(a));
}
"""
    expected = functional_output(source)
    assert expected == [99]
    sim, res = run_sim(source, lsq_size=16, stlf=True,
                       memdep_speculate=True)
    assert res.output == expected
    assert sim.memdep_squashes == 0


def test_tiny_lsq_stalls_but_stays_correct():
    sim_big, res_big = run_sim(FORWARD_SOURCE, lsq_size=16, stlf=True)
    sim_tiny, res_tiny = run_sim(FORWARD_SOURCE, lsq_size=1, stlf=True)
    assert res_tiny.output == res_big.output
    assert sim_tiny.lsq.high_water == 1
    assert sim_big.lsq.high_water > 1
    assert res_tiny.cycle_count >= res_big.cycle_count


def test_conservative_lsq_matches_legacy_exactly():
    # With speculation off, forwarding on, and the LSQ at least ROB-sized,
    # the queue makes exactly the same ordering decisions as the legacy
    # ROB walk (which already forwards exact matches): architectural
    # results AND cycle counts must both match.  Disabling forwarding is
    # strictly *more* conservative than legacy, so it may only be slower.
    for source, inputs in ((FORWARD_SOURCE, None), (MEMDEP_SOURCE, None)):
        _, legacy = run_sim(source, inputs, lsq_size=0)
        _, cons = run_sim(source, inputs, lsq_size=16, stlf=True)
        _, nofwd = run_sim(source, inputs, lsq_size=16, stlf=False)
        assert cons.output == legacy.output
        assert cons.cycle_count == legacy.cycle_count
        assert nofwd.output == legacy.output
        assert nofwd.cycle_count >= legacy.cycle_count


def test_counters_surface_in_sim_stats():
    from repro.obs.stats import SimStats

    prog = prepared(MEMDEP_SOURCE)
    image = make_input_image(prog, {})
    stats = SimStats()
    sim = DynamicSim(prog, DynamicConfig(rename=True, lsq_size=16,
                                         stlf=True, memdep_speculate=True),
                     input_image=image, stats=stats)
    sim.run()
    snap = stats.snapshot()
    assert snap["memdep_squashes"] == sim.memdep_squashes
    assert snap["stlf_hits"] == sim.lsq.stlf_hits
    assert snap["lsq_high_water"] == sim.lsq.high_water
    assert snap["lsq_occupancy"] > 0
