"""Tests for the memory model and the shared ALU semantics."""

import pytest

from repro.hw.alu import branch_taken, execute_alu, s32, u32
from repro.hw.exceptions import Trap, TrapKind
from repro.hw.memory import Memory
from repro.isa import Instruction, Opcode, Reg
from repro.program.procedure import DATA_BASE

T0, T1 = Reg.named("t0"), Reg.named("t1")


class TestMemory:
    def test_word_roundtrip(self):
        mem = Memory(1 << 16)
        mem.store_word(DATA_BASE, 0xDEADBEEF)
        assert mem.load_word(DATA_BASE) == 0xDEADBEEF

    def test_null_guard(self):
        mem = Memory(1 << 16)
        with pytest.raises(Trap) as info:
            mem.load_word(0)
        assert info.value.kind is TrapKind.ADDRESS_ERROR
        with pytest.raises(Trap):
            mem.store_word(DATA_BASE - 4, 1)

    def test_out_of_range_guard(self):
        mem = Memory(1 << 16)
        with pytest.raises(Trap):
            mem.load_word(1 << 16)

    def test_unaligned_word_faults(self):
        mem = Memory(1 << 16)
        with pytest.raises(Trap) as info:
            mem.load_word(DATA_BASE + 2)
        assert info.value.kind is TrapKind.UNALIGNED

    def test_byte_access_any_alignment(self):
        mem = Memory(1 << 16)
        mem.store_byte(DATA_BASE + 3, 0xAB)
        assert mem.load_byte(DATA_BASE + 3, signed=False) == 0xAB
        assert mem.load_byte(DATA_BASE + 3, signed=True) == s32(0xFFFFFFAB) & 0xFFFFFFFF

    def test_valid_predicate(self):
        mem = Memory(1 << 16)
        assert mem.valid(DATA_BASE, 4)
        assert not mem.valid(DATA_BASE + 1, 4)
        assert mem.valid(DATA_BASE + 1, 1)
        assert not mem.valid(4, 4)

    def test_image_write(self):
        mem = Memory(1 << 16)
        mem.write_image([(DATA_BASE, b"\x01\x02\x03\x04")])
        assert mem.load_word(DATA_BASE) == 0x04030201


class TestAluSemantics:
    def rrr(self, op):
        return Instruction(op, dst=T0, srcs=(T0, T1))

    def test_wraparound(self):
        assert execute_alu(self.rrr(Opcode.ADD), 0xFFFFFFFF, 1) == 0
        assert execute_alu(self.rrr(Opcode.SUB), 0, 1) == 0xFFFFFFFF

    def test_signed_division_truncates_toward_zero(self):
        assert s32(execute_alu(self.rrr(Opcode.DIV), u32(-7), 2)) == -3
        assert s32(execute_alu(self.rrr(Opcode.REM), u32(-7), 2)) == -1
        assert s32(execute_alu(self.rrr(Opcode.DIV), 7, u32(-2))) == -3

    def test_division_by_zero_traps(self):
        with pytest.raises(Trap) as info:
            execute_alu(self.rrr(Opcode.DIV), 1, 0)
        assert info.value.kind is TrapKind.DIV_ZERO

    def test_shifts_mask_amount(self):
        i = Instruction(Opcode.SLLV, dst=T0, srcs=(T0, T1))
        assert execute_alu(i, 1, 33) == 2  # 33 & 31 == 1

    def test_arithmetic_shift_sign_extends(self):
        i = Instruction(Opcode.SRA, dst=T0, srcs=(T0,), imm=4)
        assert s32(execute_alu(i, u32(-256))) == -16

    def test_set_less_than_signed_vs_unsigned(self):
        slt = Instruction(Opcode.SLT, dst=T0, srcs=(T0, T1))
        sltu = Instruction(Opcode.SLTU, dst=T0, srcs=(T0, T1))
        assert execute_alu(slt, u32(-1), 1) == 1
        assert execute_alu(sltu, u32(-1), 1) == 0

    def test_lui_and_li(self):
        lui = Instruction(Opcode.LUI, dst=T0, imm=0x1234)
        assert execute_alu(lui) == 0x12340000

    def test_branch_conditions(self):
        beq = Instruction(Opcode.BEQ, srcs=(T0, T1), target="x")
        bltz = Instruction(Opcode.BLTZ, srcs=(T0,), target="x")
        bgez = Instruction(Opcode.BGEZ, srcs=(T0,), target="x")
        assert branch_taken(beq, 5, 5)
        assert not branch_taken(beq, 5, 6)
        assert branch_taken(bltz, u32(-1))
        assert branch_taken(bgez, 0)

    def test_non_alu_rejected(self):
        with pytest.raises(ValueError):
            execute_alu(Instruction(Opcode.LW, dst=T0, srcs=(T1,), imm=0), 0)
