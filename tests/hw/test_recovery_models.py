"""Trap precision after recovery, differentially, for every boost model.

Promotion of ``examples/exception_recovery.py`` into an assertion: for each
boosting hardware model, a program whose predicted path loads through a null
pointer must surface *exactly* the trap the functional reference surfaces —
same kind, same architectural instruction, same faulting address — no
matter whether the schedule ran the load sequentially, boosted it and went
through the shift buffer + recovery code, or squashed it on the wrong path.
"""

from __future__ import annotations

import pytest

from repro.hw.exceptions import Trap
from repro.hw.functional import FunctionalSim
from repro.hw.superscalar import SuperscalarSim
from repro.isa import Reg, ZERO
from repro.program import ProcBuilder, Program
from repro.program.procedure import clone_program
from repro.sched.boostmodel import BOOST1, BOOST7, MINBOOST3, SQUASHING
from repro.sched.globalsched import schedule_program_global
from repro.sched.machine import SUPERSCALAR

T0, T2, T3, T4 = (Reg.named(f"t{i}") for i in (0, 2, 3, 4))

MODELS = [SQUASHING, BOOST1, MINBOOST3, BOOST7]


def faulting_program(cond_value: int) -> Program:
    """Predicted fall-through path loads through a null pointer."""
    program = Program()
    program.data.words("good", [123])
    b = ProcBuilder("main", data=program.data)
    b.label("entry")
    b.li(T4, cond_value)
    b.li(T0, 0)
    b.bne(T4, ZERO, "other")
    b.label("hot")
    b.lw(T2, T0, 0)
    b.print_(T2)
    b.halt()
    b.label("other")
    b.li(T3, 7)
    b.print_(T3)
    b.halt()
    program.add(b.build())
    program.proc("main").block("entry").terminator.predict_taken = False
    return program


def _run_both(model, cond_value: int):
    program = faulting_program(cond_value)
    twin = clone_program(program)  # BEFORE scheduling mutates the IR
    sched, _ = schedule_program_global(program, SUPERSCALAR, model)

    ssc_trap = None
    ssc = SuperscalarSim(sched)
    try:
        ssc.run()
    except Trap as trap:
        ssc_trap = trap

    ref_trap = None
    ref = FunctionalSim(twin)
    try:
        ref.run()
    except Trap as trap:
        ref_trap = trap
    return ssc, ssc_trap, ref, ref_trap


@pytest.mark.parametrize("model", MODELS, ids=lambda m: m.name)
def test_trap_location_matches_functional_sim(model):
    ssc, ssc_trap, ref, ref_trap = _run_both(model, cond_value=0)
    assert ref_trap is not None, "the reference must fault on the null load"
    assert ssc_trap is not None, f"{model.name}: machine missed the fault"
    assert ssc_trap.kind == ref_trap.kind
    assert ssc_trap.addr == ref_trap.addr
    # The precision claim: the same architectural instruction is blamed,
    # even when the fault travelled through the shift buffer and recovery.
    assert ssc_trap.instr_uid == ref_trap.instr_uid
    assert ssc.result.output == ref.result.output == []


@pytest.mark.parametrize("model", MODELS, ids=lambda m: m.name)
def test_squashed_speculative_fault_vanishes(model):
    ssc, ssc_trap, ref, ref_trap = _run_both(model, cond_value=1)
    assert ref_trap is None and ssc_trap is None
    assert ssc.result.output == ref.result.output == [7]
    assert ssc.recovery_invocations == 0
