"""Tests for the branch target buffer and the hardware cost model."""

import pytest

from repro.hw.btb import BranchTargetBuffer
from repro.hw.cost import (
    boosting_file, decoder_transistors, plain_file, section_432_comparison,
    select_inputs,
)
from repro.sched.boostmodel import BOOST1, BOOST7, MINBOOST3, NO_BOOST, SQUASHING


class TestBTB:
    def test_miss_then_learn(self):
        btb = BranchTargetBuffer(64, 4)
        assert btb.lookup(0x1000) is None
        btb.update(0x1000, taken=True, target=0x2000)
        predict, target = btb.lookup(0x1000)
        assert predict and target == 0x2000

    def test_two_bit_hysteresis(self):
        btb = BranchTargetBuffer(64, 4)
        btb.update(0x1000, True, 0x2000)   # counter -> 2
        btb.update(0x1000, True, 0x2000)   # counter -> 3
        btb.update(0x1000, False, 0x2000)  # counter -> 2: still predict taken
        predict, _ = btb.lookup(0x1000)
        assert predict
        btb.update(0x1000, False, 0x2000)  # counter -> 1
        predict, _ = btb.lookup(0x1000)
        assert not predict

    def test_not_taken_branches_do_not_allocate(self):
        btb = BranchTargetBuffer(64, 4)
        btb.update(0x1000, taken=False, target=0x2000)
        assert btb.lookup(0x1000) is None

    def test_set_associativity_and_lru(self):
        btb = BranchTargetBuffer(8, 2)  # 4 sets, 2 ways
        base = 0x1000
        stride = 4 * 4  # same set: index = (pc >> 2) % 4
        pcs = [base, base + stride, base + 2 * stride]
        for pc in pcs:
            btb.update(pc, True, pc + 100)
        # first pc was least recently used: evicted
        assert btb.lookup(pcs[0]) is None
        assert btb.lookup(pcs[1]) is not None
        assert btb.lookup(pcs[2]) is not None

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(10, 4)

    def test_hit_statistics(self):
        btb = BranchTargetBuffer(64, 4)
        btb.lookup(0x1000)
        btb.update(0x1000, True, 0x2000)
        btb.lookup(0x1000)
        assert btb.misses == 1 and btb.hits == 1


class TestCostModel:
    def test_paper_ratios(self):
        # Section 4.3.2: +33% for Boost1, +50% for MinBoost3, vs a plain
        # 64-register decoder.
        ratios = section_432_comparison()
        assert ratios["Boost1"] == pytest.approx(1 / 3, abs=0.01)
        assert ratios["MinBoost3"] == pytest.approx(0.5, abs=0.01)

    def test_single_gate_on_access_path(self):
        for model in (BOOST1, MINBOOST3, SQUASHING):
            assert boosting_file(model).access_path_gates == 1
        assert plain_file(64).access_path_gates == 0

    def test_boost7_needs_unreasonable_hardware(self):
        full = boosting_file(BOOST7)
        minimal = boosting_file(MINBOOST3)
        assert full.rows == 32 * 8
        assert full.decoder > 3 * minimal.decoder

    def test_no_boost_is_plain(self):
        assert boosting_file(NO_BOOST).decoder == plain_file(32).decoder
        assert select_inputs(NO_BOOST) == 0

    def test_decoder_scales_with_rows(self):
        assert decoder_transistors(64) == 64 * 6 * 2
        assert decoder_transistors(64, extra_inputs=2) == 64 * 8 * 2
