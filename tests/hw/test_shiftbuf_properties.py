"""Property tests for the one-bit exception shift buffer (Section 2.3).

The buffer is compared against an independent reference formulation: a set
of ``(token, remaining_shifts)`` pairs where ``record(level)`` adds
``(token, level)`` unless some pending fault already has that many shifts
remaining, ``shift`` decrements every pair and commits the (unique) pair
reaching zero, and ``clear`` empties the set.  Driving both models with
random operation sequences checks every invariant at once:

* at most one pending fault per level, first recorded wins;
* a fault commits after exactly ``level`` correct predictions;
* the committed fault reports the *committing* branch, not the recording one;
* a misprediction (``clear``) silently discards everything;
* out-of-range levels are rejected loudly.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.hw.exceptions import ExceptionShiftBuffer, Trap, TrapKind


def _trap(token: int) -> Trap:
    return Trap(TrapKind.DIV_ZERO, instr_uid=token)


class ReferenceModel:
    """Independent semantics: pending faults as (token, remaining) pairs."""

    def __init__(self, levels: int) -> None:
        self.levels = levels
        self.pending: list[tuple[int, int]] = []

    def record(self, level: int, token: int) -> None:
        assert 1 <= level <= self.levels
        if all(remaining != level for _, remaining in self.pending):
            self.pending.append((token, level))

    def shift(self) -> int | None:
        self.pending = [(tok, rem - 1) for tok, rem in self.pending]
        done = [tok for tok, rem in self.pending if rem == 0]
        self.pending = [(tok, rem) for tok, rem in self.pending if rem > 0]
        assert len(done) <= 1, "two faults can never commit on one shift"
        return done[0] if done else None


def _ops(levels: int):
    return st.lists(
        st.one_of(
            st.tuples(st.just("record"),
                      st.integers(min_value=1, max_value=levels),
                      st.integers(min_value=0, max_value=1 << 20)),
            st.tuples(st.just("shift"),
                      st.integers(min_value=0, max_value=1 << 20),
                      st.just(0)),
            st.tuples(st.just("clear"), st.just(0), st.just(0)),
        ),
        max_size=60)


@settings(max_examples=200, deadline=None)
@given(levels=st.integers(min_value=1, max_value=8), data=st.data())
def test_shiftbuf_matches_reference_model(levels, data):
    ops = data.draw(_ops(levels))
    buf = ExceptionShiftBuffer(levels)
    model = ReferenceModel(levels)
    for op, a, b in ops:
        if op == "record":
            buf.record(a, _trap(b), branch_uid=0)
            model.record(a, b)
        elif op == "shift":
            out = buf.shift(committing_branch_uid=a)
            expected = model.shift()
            if expected is None:
                assert out is None
            else:
                assert out is not None
                assert out.trap.instr_uid == expected
                # the commit is attributed to the branch doing the shifting
                assert out.branch_uid == a
        else:
            buf.clear()
            model.pending = []
        assert buf.pending() == bool(model.pending)


@settings(max_examples=50, deadline=None)
@given(levels=st.integers(min_value=1, max_value=8), data=st.data())
def test_clear_discards_everything(levels, data):
    buf = ExceptionShiftBuffer(levels)
    for level in data.draw(st.lists(
            st.integers(min_value=1, max_value=levels), max_size=8)):
        buf.record(level, _trap(level), branch_uid=0)
    buf.clear()
    assert not buf.pending()
    for _ in range(levels + 1):
        assert buf.shift(committing_branch_uid=1) is None


@settings(max_examples=50, deadline=None)
@given(levels=st.integers(min_value=1, max_value=8),
       level=st.integers(min_value=1, max_value=8),
       extra=st.integers(min_value=0, max_value=5))
def test_fault_commits_after_exactly_level_shifts(levels, level, extra):
    if level > levels:
        return
    buf = ExceptionShiftBuffer(levels)
    buf.record(level, _trap(99), branch_uid=0)
    for _ in range(level - 1):
        assert buf.shift(committing_branch_uid=7) is None
    out = buf.shift(committing_branch_uid=42)
    assert out is not None and out.trap.instr_uid == 99
    assert out.branch_uid == 42
    for _ in range(extra):
        assert buf.shift(committing_branch_uid=7) is None


@given(levels=st.integers(min_value=1, max_value=8))
def test_out_of_range_levels_rejected(levels):
    buf = ExceptionShiftBuffer(levels)
    for bad in (0, -1, levels + 1):
        with pytest.raises(ValueError):
            buf.record(bad, _trap(1), branch_uid=0)
