"""Tests for trace selection (Section 3.2.1)."""

from repro.isa import Reg, ZERO
from repro.program import CFG, ProcBuilder
from repro.sched.traces import select_traces

T0, T1 = Reg.named("t0"), Reg.named("t1")


def build_loop_proc():
    b = ProcBuilder("p")
    b.label("entry")
    b.li(T0, 10)
    b.label("loop")
    b.addi(T0, T0, -1)
    b.bgtz(T0, "loop")
    b.label("exit")
    b.halt()
    return b.build()


def test_traces_cover_every_block_once():
    proc = build_loop_proc()
    proc.block("loop").terminator.predict_taken = True
    traces = select_traces(proc, CFG(proc))
    seen = [lab for t in traces for lab in t.labels]
    assert sorted(seen) == sorted(b.label for b in proc.blocks)


def test_loop_region_scheduled_first():
    proc = build_loop_proc()
    proc.block("loop").terminator.predict_taken = True
    traces = select_traces(proc, CFG(proc))
    assert traces[0].labels == ["loop"]  # innermost region first
    assert traces[0].region.is_loop


def test_trace_follows_predicted_direction():
    b = ProcBuilder("p")
    b.label("entry")
    b.beq(T0, ZERO, "cold")
    b.label("hot")
    b.li(T1, 1)
    b.j("join")
    b.label("cold")
    b.li(T1, 2)
    b.label("join")
    b.halt()
    proc = b.build()
    proc.block("entry").terminator.predict_taken = False  # predict hot
    traces = select_traces(proc, CFG(proc))
    assert traces[0].labels == ["entry", "hot", "join"]

    proc2 = build_predicted_taken()
    traces2 = select_traces(proc2, CFG(proc2))
    assert traces2[0].labels == ["entry", "cold", "join"]


def build_predicted_taken():
    b = ProcBuilder("p2")
    b.label("entry")
    b.beq(T0, ZERO, "cold")
    b.label("hot")
    b.li(T1, 1)
    b.j("join")
    b.label("cold")
    b.li(T1, 2)
    b.label("join")
    b.halt()
    proc = b.build()
    proc.block("entry").terminator.predict_taken = True
    return proc


def test_trace_stops_at_call():
    b = ProcBuilder("p")
    b.label("entry")
    b.jal("callee")
    b.label("after")
    b.halt()
    proc = b.build()
    traces = select_traces(proc, CFG(proc))
    assert traces[0].labels == ["entry"]  # the call ends lookahead
    assert ["after"] in [t.labels for t in traces]


def test_trace_stops_at_already_selected_block():
    proc = build_loop_proc()
    proc.block("loop").terminator.predict_taken = True
    traces = select_traces(proc, CFG(proc))
    # 'loop' is taken by the region trace; the entry trace must stop before it
    entry_trace = next(t for t in traces if "entry" in t.labels)
    assert entry_trace.labels == ["entry"]


def test_trace_does_not_leave_region():
    proc = build_loop_proc()
    proc.block("loop").terminator.predict_taken = False  # predict exit!
    traces = select_traces(proc, CFG(proc))
    loop_trace = next(t for t in traces if "loop" in t.labels)
    # even predicting the exit, the trace cannot leave the loop region
    assert loop_trace.labels == ["loop"]
