"""Regressions the generative differential fuzzer found in the schedulers.

Both came out of the first 500-program ``python -m repro fuzz`` campaign,
were auto-reduced by the delta debugger, and are frozen here verbatim from
the triage corpus:

* **shadow RAW into a plain compensation copy** (seeds 107, 237; boosting
  models only).  A ``||`` short-circuit inside a loop made the motion
  engine plan a *plain* (sequential) compensation copy whose RAW producer
  had received a *boosted* copy appended to the same predecessor block.
  Until the crossed branch commits, the producer's value lives only in the
  shadow register file, so the sequential consumer read stale architectural
  state and the recovery block missed it entirely.  Fixed by tracking
  shadow-written registers per block (``MotionEngine.shadow_defs``) and
  refusing the plain append — the copy boosts or takes the split edge,
  which runs after the commit.
* **WAR inversion in local delay-slot displacement** (seed 169; *every*
  model, NO_BOOST included).  The local block scheduler's
  ``_displace_into_delay`` only refused victims feeding the branch, so it
  pushed a register reader one cycle below a same-cycle WAR writer inside
  an edge-split compensation block.  The global scheduler had grown exactly
  this guard after an earlier campaign (see
  ``test_global_regressions.py``), but the ``schedule_block_local`` path —
  which comp blocks are scheduled on — was never patched.
"""

import pytest

from repro.frontend import compile_source
from repro.harness.pipeline import make_input_image, prepare_ir, schedule_ir
from repro.program.procedure import clone_program
from repro.verify.campaign import CAMPAIGN_CONFIGS
from repro.verify.differential import DifferentialChecker
from repro.verify.faults import FaultPlan

# Reduced by repro.verify.fuzz.reduce from generator seed 107 (medium).
SHADOW_RAW_SOURCE = """\
global gsum = 0;

func main() {
    var v2 = 24;
    for (var i5 = 0; i5 < 9; i5 = i5 + 1) {
        if ((i5 * 71 & 255) < 190 || v2) {
            gsum = gsum + 1;
        }
    }
    print(gsum);
}
"""

# Reduced by repro.verify.fuzz.reduce from generator seed 169 (small);
# diverges in final memory, steered by the eval image (the else2 path).
DELAY_WAR_SOURCE = """\
global inp0[16];
global arr1[16] = { 31, 54, 47, -27, 82, -33, -25, -19, 65, 42, 34, 84, \
62, -7, 38, 42 };
global arr2[16] = { 44, -21, 1, 53, -25, 90, 7, -31, 49, 73, -8, 79, -28, \
49, -13, -8 };

func main() {
    var acc = 1;
    var v2 = 2;
    var v3 = -6;
    var v4 = inp0[v3 & 15];
    if ((v4 * 29 + 99 & 255) < 71) {
        v2 = loadw(addr(inp0)) & 0;
    } else {
        if ((v4 * 29 + 232 & 255) < 66) {
            if ((v2 * 37 + 227 & 255) < 28 || acc & 3) {
            }
        }
        if ((v4 * 71 + 21 & 255) < 224 && (v4 & 1) != 2) {
        }
    }
    inp0[105 * (v2 - arr2[v3 & 15]) & 15] = arr1[acc & 15] / 1;
    v4 = loadw(addr(inp0));
    storew(addr(arr1) + 4 * (~acc & 15), v3 << 3 & v4);
}
"""

DELAY_WAR_TRAIN = {"inp0": [25, 36, -37, 60, 47367, 10, 39, 15, -10, -50,
                            59, 45, 17, 31913, 4, 24]}
DELAY_WAR_EVAL = {"inp0": [39820, -20, 30, 96961, -44, 20, -36, 33, 41,
                           -46, 39689, 37, 13, 35, 13, 37]}


def _diff_check(source, train, eval_inputs, model_key):
    config = CAMPAIGN_CONFIGS[model_key]
    prepared = prepare_ir(compile_source(source), config, train)
    image = make_input_image(prepared, eval_inputs)
    reference = clone_program(prepared)
    sched, _ = schedule_ir(clone_program(prepared), config)
    checker = DifferentialChecker(max_cycles=1_000_000, max_steps=1_000_000,
                                  backend="reference")
    plan = FaultPlan(seed=0)
    oracle = checker.run_reference(reference, plan, image)
    ssc = checker.run_superscalar(sched, plan, image)
    assert not DifferentialChecker.compare(oracle, ssc)


@pytest.mark.parametrize("model_key", ["boost1", "minboost3", "boost7"])
def test_shadow_raw_blocks_plain_compensation_copy(model_key):
    _diff_check(SHADOW_RAW_SOURCE, {}, {}, model_key)


@pytest.mark.parametrize("model_key", list(CAMPAIGN_CONFIGS))
def test_local_delay_slot_displacement_respects_war(model_key):
    _diff_check(DELAY_WAR_SOURCE, DELAY_WAR_TRAIN, DELAY_WAR_EVAL, model_key)
