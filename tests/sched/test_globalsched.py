"""Global scheduler: end-to-end correctness oracle and behaviour checks.

Every (kernel, model) pair must produce the functional reference output —
this is the core invariant of the whole reproduction.
"""

import pytest

from repro.harness.pipeline import CompileConfig, SCALAR_CONFIG, compile_minic
from repro.sched.boostmodel import (
    ALL_MODELS, BOOST1, BOOST7, MINBOOST3, NO_BOOST, SQUASHING,
)
from repro.sched.machine import SUPERSCALAR

KERNELS = {
    "branchy_loop": '''
global data[32];
global n = 0;
func main() {
    var evens = 0;
    var total = 0;
    for (var i = 0; i < n; i = i + 1) {
        var v = data[i];
        if (v & 1) { total = total + v * 3; }
        else { evens = evens + 1; total = total + v; }
    }
    print(evens);
    print(total);
}
''',
    "nested_ifs": '''
global data[32];
global n = 0;
global hist[4];
func main() {
    for (var i = 0; i < n; i = i + 1) {
        var v = data[i];
        if (v < 64) {
            if (v < 32) { hist[0] = hist[0] + 1; }
            else { hist[1] = hist[1] + 1; }
        } else {
            if (v < 96) { hist[2] = hist[2] + 1; }
            else { hist[3] = hist[3] + 1; }
        }
    }
    var k = 0;
    while (k < 4) { print(hist[k]); k = k + 1; }
}
''',
    "pointer_chase": '''
global next[16];
global vals[16];
func main() {
    var p = 0;
    var sum = 0;
    var steps = 0;
    while (steps < 40) {
        sum = sum + vals[p];
        p = next[p];
        steps = steps + 1;
    }
    print(sum);
}
''',
    "call_mix": '''
global data[16];
global n = 0;
func classify(v) {
    if (v > 100) { return 2; }
    if (v > 50) { return 1; }
    return 0;
}
func main() {
    var buckets0 = 0;
    var buckets1 = 0;
    var buckets2 = 0;
    for (var i = 0; i < n; i = i + 1) {
        var c = classify(data[i]);
        if (c == 0) { buckets0 = buckets0 + 1; }
        if (c == 1) { buckets1 = buckets1 + 1; }
        if (c == 2) { buckets2 = buckets2 + 1; }
    }
    print(buckets0);
    print(buckets1);
    print(buckets2);
}
''',
}

INPUTS = {
    "branchy_loop": ({"data": [(i * 37) % 128 for i in range(32)], "n": 32},
                     {"data": [(i * 53 + 7) % 128 for i in range(32)], "n": 32}),
    "nested_ifs": ({"data": [(i * 41) % 128 for i in range(32)], "n": 32},
                   {"data": [(i * 29 + 3) % 128 for i in range(32)], "n": 32}),
    "pointer_chase": ({"next": [(i * 7 + 3) % 16 for i in range(16)],
                       "vals": list(range(0, 160, 10))},
                      {"next": [(i * 5 + 1) % 16 for i in range(16)],
                       "vals": list(range(5, 165, 10))}),
    "call_mix": ({"data": [(i * 31) % 150 for i in range(16)], "n": 16},
                 {"data": [(i * 17 + 9) % 150 for i in range(16)], "n": 16}),
}


@pytest.mark.parametrize("kernel", sorted(KERNELS))
@pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
def test_all_models_match_reference(kernel, model):
    train, evalin = INPUTS[kernel]
    base = compile_minic(KERNELS[kernel], SCALAR_CONFIG, train)
    ref = base.run_functional(evalin).output
    cfg = CompileConfig(machine=SUPERSCALAR, model=model)
    cp = compile_minic(KERNELS[kernel], cfg, train)
    result = cp.run(evalin)
    assert result.output == ref


@pytest.mark.parametrize("kernel", sorted(KERNELS))
def test_infinite_registers_match_reference(kernel):
    train, evalin = INPUTS[kernel]
    base = compile_minic(KERNELS[kernel], SCALAR_CONFIG, train)
    ref = base.run_functional(evalin).output
    cfg = CompileConfig(machine=SUPERSCALAR, model=MINBOOST3,
                        regalloc="infinite")
    cp = compile_minic(KERNELS[kernel], cfg, train)
    assert cp.run(evalin).output == ref


def test_boosting_never_slows_down_the_branchy_loop():
    train, evalin = INPUTS["branchy_loop"]
    cycles = {}
    for key, model in (("none", NO_BOOST), ("squash", SQUASHING),
                       ("b1", BOOST1), ("mb3", MINBOOST3), ("b7", BOOST7)):
        cfg = CompileConfig(machine=SUPERSCALAR, model=model)
        cp = compile_minic(KERNELS["branchy_loop"], cfg, train)
        cycles[key] = cp.run(evalin).cycle_count
    assert cycles["squash"] <= cycles["none"]
    assert cycles["b1"] <= cycles["none"]
    assert cycles["mb3"] <= cycles["none"]
    assert cycles["b7"] <= cycles["mb3"] + 2  # never meaningfully worse


def test_global_beats_bb_scheduling_on_branchy_code():
    train, evalin = INPUTS["branchy_loop"]
    bb = compile_minic(KERNELS["branchy_loop"],
                       CompileConfig(machine=SUPERSCALAR, scheduler="bb"),
                       train).run(evalin)
    glob = compile_minic(KERNELS["branchy_loop"],
                         CompileConfig(machine=SUPERSCALAR), train).run(evalin)
    assert glob.cycle_count <= bb.cycle_count


def test_stats_report_boosting_activity():
    train, _ = INPUTS["branchy_loop"]
    cfg = CompileConfig(machine=SUPERSCALAR, model=BOOST7)
    cp = compile_minic(KERNELS["branchy_loop"], cfg, train)
    assert cp.stats is not None
    assert cp.stats.traces > 0
    assert cp.stats.boosted > 0


def test_schedule_contains_every_source_instruction():
    # No instruction may be lost by scheduling (duplication may add some).
    train, _ = INPUTS["nested_ifs"]
    cfg = CompileConfig(machine=SUPERSCALAR, model=MINBOOST3)
    cp = compile_minic(KERNELS["nested_ifs"], cfg, train)
    assert cp.sched.instruction_count() >= cp.source_instr_count


def test_code_growth_bounded():
    # Section 2.3: recovery code should stay below a two-times growth.
    train, _ = INPUTS["nested_ifs"]
    cfg = CompileConfig(machine=SUPERSCALAR, model=BOOST7)
    cp = compile_minic(KERNELS["nested_ifs"], cfg, train)
    growth = cp.sched.instruction_count() / cp.source_instr_count
    assert growth < 2.0
