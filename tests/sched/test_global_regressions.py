"""Regressions the fault-injection campaign found in the global scheduler.

Both were exposed by flipping branch predictions before scheduling (the
campaign's misprediction-stress mode) and checking the scheduled machine
against the functional reference on the same flipped program:

* awk, squashing (flip else13): a non-boosted cross-block motion was not
  written back into the IR, so a later trace saw stale liveness and
  speculated a write over a hoisted kill's off-trace path.
* awk, minboost3/boost7 (same flip): a plain compensation copy of a kill,
  appended to a predecessor when the kill itself was boosted away, was
  later overwritten by a sequential hoist into that predecessor — the copy
  must remain the block's last write of its register.
* compress, boost1 (flips endwhile9+and19): delay-slot displacement pushed
  a register reader one cycle below a same-cycle WAR writer, corrupting
  the hash keys until the probe loop scanned a full table forever.
* grep, every model (flip endwhile14): a sequential motion was written
  back into a block whose terminator *reads* the moved destination.  The
  schedule co-issues the pair (branch reads the old value, like a delay
  slot) but a block body cannot express "after the terminator", so
  liveness saw the register killed before the branch's read, reported it
  dead upstream, and licensed a later hoist of the match flag above the
  flipped branch.
"""

import pytest

from repro.frontend import compile_source
from repro.harness.pipeline import make_input_image, prepare_ir
from repro.hw.functional import FunctionalSim
from repro.hw.superscalar import SuperscalarSim
from repro.program.procedure import clone_program
from repro.sched.globalsched import schedule_program_global
from repro.sched.machine import SUPERSCALAR
from repro.verify.campaign import CAMPAIGN_CONFIGS
from repro.verify.faults import apply_flips
from repro.workloads import all_workloads


def _branch_uids(prog, block_labels):
    """Architectural uids of the conditional branches ending the named
    blocks.  uid literals would silently stop matching anything: instruction
    uids are process-global, so they depend on what was compiled earlier in
    the test run."""
    uids = set()
    for proc in prog.procedures.values():
        for block in proc.blocks:
            term = block.terminator
            if block.label in block_labels and term is not None \
                    and term.op.is_cond_branch:
                uids.add(term.origin or term.uid)
    assert len(uids) == len(block_labels), block_labels
    return frozenset(uids)


def _diff_check(workload_name, model_key, flip_blocks, max_cycles):
    workload = next(w for w in all_workloads() if w.name == workload_name)
    config = CAMPAIGN_CONFIGS[model_key]
    prog = prepare_ir(compile_source(workload.source), config, workload.train)
    image = make_input_image(prog, workload.eval)
    flipped = clone_program(prog)
    apply_flips(flipped, _branch_uids(prog, flip_blocks))
    reference = clone_program(flipped)
    sched, _ = schedule_program_global(flipped, SUPERSCALAR, config.model)
    ref = FunctionalSim(reference, input_image=image).run()
    ssc = SuperscalarSim(sched, max_cycles=max_cycles,
                         input_image=image).run()
    assert ssc.output == ref.output


@pytest.mark.parametrize("model_key", ["squashing", "minboost3"])
def test_awk_flip_stale_liveness_regression(model_key):
    # awk's flipped branch is the `slti`-guarded range test in else13.
    _diff_check("awk", model_key, {"else13"}, max_cycles=500_000)


def test_compress_flips_delay_slot_war_regression():
    _diff_check("compress", "boost1", {"endwhile9", "and19"},
                max_cycles=500_000)


@pytest.mark.parametrize("model_key", ["global", "boost7"])
def test_grep_flip_writeback_before_terminator_read_regression(model_key):
    # Model-independent (even NO_BOOST diverged): the bad write-back order
    # poisons liveness for purely sequential motions too.
    _diff_check("grep", model_key, {"endwhile14"}, max_cycles=500_000)
