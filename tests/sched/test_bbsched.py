"""Tests for basic-block scheduling and the delay-slot contract."""

from repro.isa import Opcode, Reg, ZERO
from repro.program import ProcBuilder
from repro.sched.bbsched import schedule_block_local, schedule_program_bb
from repro.sched.machine import SCALAR, SUPERSCALAR

T0, T1, T2, T3 = (Reg.named(f"t{i}") for i in range(4))


def build_block(fill):
    b = ProcBuilder("p")
    b.label("entry")
    fill(b)
    return b.build().block("entry")


def test_branch_gets_exactly_one_delay_cycle():
    block = build_block(lambda b: (
        b.li(T0, 1), b.li(T1, 2), b.beq(T0, T1, "x")))
    sched = schedule_block_local(block, SCALAR)
    assert sched.terminator_cycle is not None
    assert sched.n_cycles == sched.terminator_cycle + 2


def test_halt_has_no_delay_cycle():
    block = build_block(lambda b: (b.li(T0, 1), b.halt()))
    sched = schedule_block_local(block, SCALAR)
    assert sched.n_cycles == sched.terminator_cycle + 1


def test_halt_does_not_orphan_last_body_cycle():
    # Regression: a load in the last body cycle must not be cut off by the
    # halt placement rule.
    block = build_block(lambda b: (
        b.li(T0, 0x2000), b.lw(T1, T0, 0), b.print_(T1), b.halt()))
    sched = schedule_block_local(block, SCALAR)
    ops = [i.op for i in sched.instructions()]
    assert Opcode.PRINT in ops and Opcode.LW in ops


def test_delay_slot_filled_with_useful_work():
    # Independent work exists, so the delay cycle should not be empty.
    block = build_block(lambda b: (
        b.li(T0, 1), b.li(T1, 2), b.li(T2, 3), b.li(T3, 4),
        b.beq(T0, ZERO, "x")))
    sched = schedule_block_local(block, SCALAR)
    delay_row = sched.cycles[sched.terminator_cycle + 1]
    assert any(i is not None for i in delay_row)


def test_branch_waits_for_its_operands():
    block = build_block(lambda b: (
        b.li(T0, 0x2000), b.lw(T1, T0, 0), b.beq(T1, ZERO, "x")))
    sched = schedule_block_local(block, SCALAR)
    lw_cycle = next(c for c, row in enumerate(sched.cycles)
                    if row[0] is not None and row[0].op is Opcode.LW)
    assert sched.terminator_cycle >= lw_cycle + 2


def test_load_consumer_respects_latency():
    block = build_block(lambda b: (
        b.li(T0, 0x2000), b.lw(T1, T0, 0), b.add(T2, T1, T1), b.halt()))
    sched = schedule_block_local(block, SUPERSCALAR)
    placed = {}
    for c, row in enumerate(sched.cycles):
        for i in row:
            if i is not None:
                placed[i.op] = c
    assert placed[Opcode.ADD] >= placed[Opcode.LW] + 2


def test_superscalar_pairs_independent_ops():
    block = build_block(lambda b: (
        b.li(T0, 1), b.li(T1, 2), b.li(T2, 3), b.li(T3, 4), b.halt()))
    scalar = schedule_block_local(block, SCALAR)
    # rebuild, since scheduling shares instruction objects
    block2 = build_block(lambda b: (
        b.li(T0, 1), b.li(T1, 2), b.li(T2, 3), b.li(T3, 4), b.halt()))
    ss = schedule_block_local(block2, SUPERSCALAR)
    assert ss.n_cycles < scalar.n_cycles


def test_empty_unterminated_block():
    b = ProcBuilder("p")
    b.label("empty")
    b.label("next")
    b.halt()
    proc = b.build()
    sched = schedule_block_local(proc.block("empty"), SCALAR)
    assert sched.n_cycles == 0


def test_whole_program_schedule_covers_all_blocks():
    b = ProcBuilder("p")
    b.label("entry")
    b.li(T0, 5)
    b.beq(T0, ZERO, "then")
    b.label("else_")
    b.li(T1, 1)
    b.label("then")
    b.halt()
    prog_holder = type("P", (), {})
    from repro.program import Program
    program = Program()
    program.add(b.build())
    program.procedures["main"] = program.procedures.pop("p")
    program.procedures["main"].name = "main"
    sched = schedule_program_bb(program, SUPERSCALAR)
    sp = sched.proc("main")
    assert [blk.label for blk in sp.blocks] == ["entry", "else_", "then"]
    assert sched.instruction_count() == program.instruction_count()
