"""Tests for the schedule containers and the list-scheduler core."""

import pytest

from repro.isa import Instruction, Opcode, Reg
from repro.sched.ddg import DepGraph
from repro.sched.listsched import ScheduleState, earliest_cycle, list_schedule
from repro.sched.machine import SCALAR, SUPERSCALAR
from repro.sched.schedprog import (
    RecoveryBlock, ScheduledBlock, ScheduledProcedure, ScheduledProgram,
)

T0, T1, T2, T3 = (Reg.named(f"t{i}") for i in range(4))


def li(dst, imm):
    return Instruction(Opcode.LI, dst=dst, imm=imm)


class TestScheduleState:
    def test_place_and_query(self):
        state = ScheduleState(SUPERSCALAR)
        instr = li(T0, 1)
        state.ensure_row(0)
        state.place(0, instr, 0, 1)
        assert state.rows[0][1] is instr
        assert state.placed_cycle[0] == 0
        with pytest.raises(ValueError):
            state.place(1, li(T1, 2), 0, 1)

    def test_free_slot_respects_fu(self):
        state = ScheduleState(SUPERSCALAR)
        lw = Instruction(Opcode.LW, dst=T0, srcs=(T1,), imm=0)
        assert state.free_slot(0, lw) == 1  # memory port = side B
        branch = Instruction(Opcode.BEQ, srcs=(T0, T1), target="x")
        assert state.free_slot(0, branch) == 0

    def test_used_cycles_and_trim(self):
        state = ScheduleState(SUPERSCALAR)
        state.ensure_row(4)
        state.place(0, li(T0, 1), 1, 0)
        assert state.used_cycles() == 2
        state.trim()
        assert len(state.rows) == 2


class TestListSchedule:
    def test_respects_latency_chain(self):
        seq = [
            Instruction(Opcode.LW, dst=T0, srcs=(T1,), imm=0),
            Instruction(Opcode.ADD, dst=T2, srcs=(T0, T0)),
            Instruction(Opcode.ADD, dst=T3, srcs=(T2, T2)),
        ]
        ddg = DepGraph(seq)
        state = list_schedule(ddg, SCALAR, [0, 1, 2])
        assert state.placed_cycle[1] >= state.placed_cycle[0] + 2
        assert state.placed_cycle[2] >= state.placed_cycle[1] + 1

    def test_packs_independent_work(self):
        seq = [li(T0, 1), li(T1, 2), li(T2, 3), li(T3, 4)]
        ddg = DepGraph(seq)
        state = list_schedule(ddg, SUPERSCALAR, [0, 1, 2, 3])
        assert state.used_cycles() == 2  # two per cycle

    def test_priority_prefers_critical_path(self):
        # The load chain is the critical path; it must start at cycle 0 even
        # though the independent li appears first in program order.
        seq = [
            li(T3, 7),
            Instruction(Opcode.LW, dst=T0, srcs=(T1,), imm=0),
            Instruction(Opcode.ADD, dst=T2, srcs=(T0, T0)),
        ]
        ddg = DepGraph(seq)
        state = list_schedule(ddg, SCALAR, [0, 1, 2])
        assert state.placed_cycle[1] == 0

    def test_earliest_cycle_none_for_unplaced_pred(self):
        seq = [li(T0, 1), Instruction(Opcode.ADD, dst=T1, srcs=(T0, T0))]
        ddg = DepGraph(seq)
        state = ScheduleState(SCALAR)
        assert earliest_cycle(ddg, state, 1) is None


class TestContainers:
    def build(self):
        blk = ScheduledBlock("entry", [[li(T0, 1), None],
                                       [None, None]], None)
        proc = ScheduledProcedure("main", [blk])
        return proc

    def test_counts(self):
        proc = self.build()
        assert proc.blocks[0].instruction_count() == 1
        assert proc.blocks[0].slot_count() == 4
        assert proc.instruction_count() == 1

    def test_recovery_counted(self):
        proc = self.build()
        proc.recovery[42] = RecoveryBlock(42, [li(T1, 2), li(T2, 3)], "entry")
        assert proc.instruction_count() == 3

    def test_terminator_lookup(self):
        halt = Instruction(Opcode.HALT)
        blk = ScheduledBlock("b", [[halt, None]], 0)
        assert blk.terminator is halt

    def test_dump_contains_cycles_and_marker(self):
        br = Instruction(Opcode.BEQ, srcs=(T0, T1), target="x")
        blk = ScheduledBlock("b", [[li(T0, 1), None], [br, None],
                                   [None, None]], 1)
        text = blk.dump()
        assert "c0" in text and "<branch>" in text

    def test_program_boosted_count(self):
        from repro.program import Program
        from repro.sched.boostmodel import MINBOOST3
        from repro.sched.machine import SUPERSCALAR as M
        boosted = li(T0, 1)
        boosted.boost = 2
        blk = ScheduledBlock("entry", [[boosted, li(T1, 2)]], None)
        proc = ScheduledProcedure("main", [blk])
        prog = ScheduledProgram(Program(), M, MINBOOST3)
        prog.add(proc)
        assert prog.boosted_count() == 1
        assert prog.instruction_count() == 2
