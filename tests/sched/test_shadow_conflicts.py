"""Figure 6 at the *scheduler* level: the single shadow register file's
output-like dependence.

Under MinBoost3 (single file) two boosted definitions of one register with
different commit points must not be outstanding together — the scheduler has
to serialise them (Figure 6c); under Boost7 (multiple files) the overlapped
schedule of Figure 6b is legal.  We verify both by compiling a kernel whose
hot path boosts two writes of the same architectural register, and by
checking the simulators accept whatever the scheduler produced (a conflict
would raise ShadowConflictError at run time).
"""

from repro.harness.pipeline import CompileConfig, SCALAR_CONFIG, compile_minic
from repro.sched.boostmodel import BOOST7, MINBOOST3
from repro.sched.machine import SUPERSCALAR

# Two independent loads feeding different consumers: with few registers the
# allocator reuses names, inviting same-register boosting across two
# branches.
SOURCE = """
global a[16];
global b[16];
global n = 0;
func main() {
    var s = 0;
    var t = 0;
    for (var i = 0; i < n; i = i + 1) {
        var x = a[i];
        if (x > 10) {
            var y = b[i];
            if (y > 20) { s = s + y; }
            else { t = t + 1; }
        } else {
            t = t + x;
        }
    }
    print(s);
    print(t);
}
"""
TRAIN = {"a": [(i * 7) % 30 for i in range(16)],
         "b": [(i * 11) % 40 for i in range(16)], "n": 16}
EVAL = {"a": [(i * 13 + 1) % 30 for i in range(16)],
        "b": [(i * 5 + 3) % 40 for i in range(16)], "n": 16}


def outstanding_profile(sched):
    """Max simultaneous outstanding boosted writes per register name, per
    block scan (static approximation)."""
    per_reg = {}
    for proc in sched.procedures.values():
        for block in proc.blocks:
            for instr in block.instructions():
                if instr.is_boosted and instr.dst is not None:
                    per_reg.setdefault(instr.dst.index, []).append(instr.boost)
    return per_reg


def test_minboost3_schedule_runs_on_single_file():
    base = compile_minic(SOURCE, SCALAR_CONFIG, TRAIN)
    ref = base.run_functional(EVAL).output
    cp = compile_minic(SOURCE, CompileConfig(machine=SUPERSCALAR,
                                             model=MINBOOST3), TRAIN)
    # The simulator's SingleShadowFile raises on any Figure-6b-style
    # violation, so a clean run IS the assertion.
    assert cp.run(EVAL).output == ref


def test_boost7_schedule_runs_on_multi_file():
    base = compile_minic(SOURCE, SCALAR_CONFIG, TRAIN)
    ref = base.run_functional(EVAL).output
    cp = compile_minic(SOURCE, CompileConfig(machine=SUPERSCALAR,
                                             model=BOOST7), TRAIN)
    assert cp.run(EVAL).output == ref


def test_boost7_at_least_as_aggressive_as_minboost3():
    mb3 = compile_minic(SOURCE, CompileConfig(machine=SUPERSCALAR,
                                              model=MINBOOST3), TRAIN)
    b7 = compile_minic(SOURCE, CompileConfig(machine=SUPERSCALAR,
                                             model=BOOST7), TRAIN)
    assert b7.stats.boosted >= mb3.stats.boosted
    assert b7.run(EVAL).cycle_count <= mb3.run(EVAL).cycle_count + 4


def test_deep_boosting_happens_somewhere():
    cp = compile_minic(SOURCE, CompileConfig(machine=SUPERSCALAR,
                                             model=BOOST7), TRAIN)
    levels = [i.boost for p in cp.sched.procedures.values()
              for blk in p.blocks for i in blk.instructions() if i.is_boosted]
    assert levels and max(levels) >= 2, (
        "the nested-if kernel should admit boosting past one branch")
