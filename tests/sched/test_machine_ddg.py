"""Tests for the machine description and the dependence graph."""

from repro.isa import Instruction, Opcode, Reg
from repro.sched.ddg import DepGraph
from repro.sched.machine import SCALAR, SUPERSCALAR

T0, T1, T2, T3 = (Reg.named(f"t{i}") for i in range(4))


def instr(op, **kw):
    return Instruction(op, **kw)


class TestMachine:
    def test_superscalar_is_two_wide(self):
        assert SUPERSCALAR.issue_width == 2
        assert SCALAR.issue_width == 1

    def test_two_alu_ops_can_pair(self):
        add = instr(Opcode.ADD, dst=T0, srcs=(T1, T2))
        assert SUPERSCALAR.slots_for(add) == [0, 1]

    def test_branch_and_shift_cannot_pair(self):
        # Section 4.3.1: branch unit and shifter are both on side A.
        branch = instr(Opcode.BEQ, srcs=(T0, T1), target="x")
        shift = instr(Opcode.SLL, dst=T0, srcs=(T1,), imm=2)
        assert SUPERSCALAR.slots_for(branch) == [0]
        assert SUPERSCALAR.slots_for(shift) == [0]

    def test_memory_only_on_side_b(self):
        lw = instr(Opcode.LW, dst=T0, srcs=(T1,), imm=0)
        assert SUPERSCALAR.slots_for(lw) == [1]

    def test_scalar_has_all_units(self):
        for op in (Opcode.LW, Opcode.BEQ, Opcode.SLL, Opcode.MUL, Opcode.ADD):
            i = {"lw": instr(Opcode.LW, dst=T0, srcs=(T1,), imm=0),
                 "beq": instr(Opcode.BEQ, srcs=(T0, T1), target="x"),
                 "sll": instr(Opcode.SLL, dst=T0, srcs=(T1,), imm=1),
                 "mul": instr(Opcode.MUL, dst=T0, srcs=(T1, T2)),
                 "add": instr(Opcode.ADD, dst=T0, srcs=(T1, T2))}[op.mnemonic]
            assert SCALAR.slots_for(i) == [0]


class TestDepGraph:
    def edges(self, ddg):
        out = {}
        for node in ddg.nodes:
            for succ, lat, kind in node.succs:
                out[(node.idx, succ)] = (lat, kind)
        return out

    def test_raw_edge_with_latency(self):
        seq = [instr(Opcode.LW, dst=T0, srcs=(T1,), imm=0),
               instr(Opcode.ADD, dst=T2, srcs=(T0, T0))]
        edges = self.edges(DepGraph(seq))
        assert edges[(0, 1)] == (2, "raw")  # load has one delay slot

    def test_war_edge_zero_latency(self):
        seq = [instr(Opcode.ADD, dst=T2, srcs=(T0, T1)),
               instr(Opcode.LI, dst=T0, imm=3)]
        edges = self.edges(DepGraph(seq))
        assert edges[(0, 1)] == (0, "war")

    def test_waw_edge(self):
        seq = [instr(Opcode.LI, dst=T0, imm=1),
               instr(Opcode.LI, dst=T0, imm=2)]
        edges = self.edges(DepGraph(seq))
        assert edges[(0, 1)] == (1, "waw")

    def test_no_control_edges_for_straightline_code(self):
        # The whole point of boosting: instructions have no edge to the
        # branches above them.
        seq = [instr(Opcode.BEQ, srcs=(T0, T1), target="x"),
               instr(Opcode.LI, dst=T2, imm=1)]
        edges = self.edges(DepGraph(seq))
        assert (0, 1) not in edges

    def test_branches_keep_original_order(self):
        seq = [instr(Opcode.BEQ, srcs=(T0, T1), target="x"),
               instr(Opcode.BNE, srcs=(T0, T1), target="y")]
        edges = self.edges(DepGraph(seq))
        assert edges[(0, 1)] == (1, "order")

    def test_store_load_dependence(self):
        seq = [instr(Opcode.SW, srcs=(T0, T1), imm=0),
               instr(Opcode.LW, dst=T2, srcs=(T3,), imm=0)]
        edges = self.edges(DepGraph(seq))
        assert edges[(0, 1)] == (1, "mem_raw")

    def test_same_base_different_offset_disambiguated(self):
        seq = [instr(Opcode.SW, srcs=(T0, T1), imm=0),
               instr(Opcode.LW, dst=T2, srcs=(T1,), imm=8)]
        edges = self.edges(DepGraph(seq))
        assert (0, 1) not in edges  # provably disjoint words

    def test_same_base_redefined_is_conservative(self):
        seq = [instr(Opcode.SW, srcs=(T0, T1), imm=0),
               instr(Opcode.ADDI, dst=T1, srcs=(T1,), imm=4),
               instr(Opcode.LW, dst=T2, srcs=(T1,), imm=8)]
        edges = self.edges(DepGraph(seq))
        assert (0, 2) in edges  # base changed: may alias

    def test_load_load_independent(self):
        seq = [instr(Opcode.LW, dst=T0, srcs=(T1,), imm=0),
               instr(Opcode.LW, dst=T2, srcs=(T1,), imm=0)]
        edges = self.edges(DepGraph(seq))
        assert (0, 1) not in edges

    def test_print_order_preserved(self):
        seq = [instr(Opcode.PRINT, srcs=(T0,)),
               instr(Opcode.PRINT, srcs=(T1,))]
        edges = self.edges(DepGraph(seq))
        assert edges[(0, 1)] == (1, "order")

    def test_call_is_a_barrier(self):
        seq = [instr(Opcode.SW, srcs=(T0, T1), imm=0),
               instr(Opcode.JAL, target="f"),
               instr(Opcode.LW, dst=T2, srcs=(T3,), imm=0)]
        edges = self.edges(DepGraph(seq))
        assert (0, 1) in edges
        assert (1, 2) in edges

    def test_heights_reflect_critical_path(self):
        seq = [instr(Opcode.LW, dst=T0, srcs=(T1,), imm=0),
               instr(Opcode.ADD, dst=T2, srcs=(T0, T0)),
               instr(Opcode.LI, dst=T3, imm=1)]
        heights = DepGraph(seq).critical_path_heights()
        assert heights[0] == 2
        assert heights[1] == 0
        assert heights[2] == 0

    def test_raw_preds_of(self):
        seq = [instr(Opcode.LI, dst=T0, imm=1),
               instr(Opcode.SW, srcs=(T0, T1), imm=0),
               instr(Opcode.LW, dst=T2, srcs=(T1,), imm=0)]
        ddg = DepGraph(seq)
        assert ddg.raw_preds_of(1) == [0]
        assert 1 in ddg.raw_preds_of(2)
