"""Unit tests for the upward-code-motion engine (Figure 5)."""


from repro.analysis.regions import RegionTree
from repro.isa import Instruction, Opcode, Reg, ZERO
from repro.program import CFG, ProcBuilder
from repro.sched.boostmodel import (
    BOOST1, BOOST7, MINBOOST3, NO_BOOST, SQUASHING,
)
from repro.sched.motion import MotionEngine
from repro.sched.traces import Trace

T0, T1, T2, T3, T4 = (Reg.named(f"t{i}") for i in range(5))


def make_engine(proc, labels, model, scheduled=frozenset()):
    cfg = CFG(proc)
    tree = RegionTree(cfg)
    trace = Trace(labels=labels, region=tree.root)
    return MotionEngine(proc, cfg, trace, model, set(scheduled)), proc


def straight_branch_proc():
    """entry(b)->hot->..., with a cold side; hot is predicted."""
    b = ProcBuilder("p")
    b.label("entry")
    b.li(T0, 0x2000)
    b.bne(T4, ZERO, "cold")
    b.label("hot")
    b.lw(T1, T0, 0)
    b.li(T2, 5)
    b.print_(T2)
    b.halt()
    b.label("cold")
    b.print_(T4)
    b.halt()
    proc = b.build()
    proc.block("entry").terminator.predict_taken = False
    return proc


class TestSpeculativeCrossings:
    def test_unsafe_load_needs_boost(self):
        proc = straight_branch_proc()
        engine, _ = make_engine(proc, ["entry", "hot"], MINBOOST3)
        lw = proc.block("hot").body[0]
        plan = engine.plan(lw, home_pos=1, place_pos=0,
                           has_spec_producer=False, in_squash_region=False)
        assert plan.ok and plan.boost == 1

    def test_unsafe_load_rejected_without_hardware(self):
        proc = straight_branch_proc()
        engine, _ = make_engine(proc, ["entry", "hot"], NO_BOOST)
        lw = proc.block("hot").body[0]
        plan = engine.plan(lw, 1, 0, False, False)
        assert not plan.ok

    def test_safe_dead_destination_moves_for_free(self):
        # t2 is dead on the cold path: the li may cross without boosting.
        proc = straight_branch_proc()
        engine, _ = make_engine(proc, ["entry", "hot"], NO_BOOST)
        li = proc.block("hot").body[1]
        plan = engine.plan(li, 1, 0, False, False)
        assert plan.ok and plan.boost == 0

    def test_live_destination_is_illegal_without_boost(self):
        # t4 is live on the cold path (printed there).
        proc = straight_branch_proc()
        instr = Instruction(Opcode.LI, dst=T4, imm=9)
        proc.block("hot").body.insert(0, instr)
        engine, _ = make_engine(proc, ["entry", "hot"], NO_BOOST)
        assert not engine.plan(instr, 1, 0, False, False).ok
        engine2, _ = make_engine(straight_branch_proc(), ["entry", "hot"],
                                 BOOST1)
        proc2 = engine2.proc
        instr2 = Instruction(Opcode.LI, dst=T4, imm=9)
        proc2.block("hot").body.insert(0, instr2)
        plan = engine2.plan(instr2, 1, 0, False, False)
        assert plan.ok and plan.boost == 1

    def test_spec_producer_forces_boost(self):
        proc = straight_branch_proc()
        engine, _ = make_engine(proc, ["entry", "hot"], MINBOOST3)
        li = proc.block("hot").body[1]  # safe+legal on its own
        plan = engine.plan(li, 1, 0, has_spec_producer=True,
                           in_squash_region=False)
        assert plan.ok and plan.boost == 1

    def test_print_never_crosses(self):
        proc = straight_branch_proc()
        engine, _ = make_engine(proc, ["entry", "hot"], BOOST7)
        pr = proc.block("hot").body[2]
        assert not engine.plan(pr, 1, 0, False, False).ok

    def test_store_needs_boost_and_store_buffer(self):
        proc = straight_branch_proc()
        sw = Instruction(Opcode.SW, srcs=(T2, T0), imm=0)
        proc.block("hot").body.insert(2, sw)
        engine, _ = make_engine(proc, ["entry", "hot"], MINBOOST3)
        assert not engine.plan(sw, 1, 0, False, False).ok  # no store buffer
        engine2, proc2 = make_engine(proc, ["entry", "hot"], BOOST1)
        plan = engine2.plan(sw, 1, 0, False, False)
        assert plan.ok and plan.boost == 1

    def test_squashing_placement_restriction(self):
        proc = straight_branch_proc()
        engine, _ = make_engine(proc, ["entry", "hot"], SQUASHING)
        lw = proc.block("hot").body[0]
        assert not engine.plan(lw, 1, 0, False,
                               in_squash_region=False).ok
        plan = engine.plan(lw, 1, 0, False, in_squash_region=True)
        assert plan.ok and plan.boost == 1


def diamond_proc():
    """entry -> {then_, else_} -> join -> tail; entry~join equivalent."""
    b = ProcBuilder("p")
    b.label("entry")
    b.li(T0, 1)
    b.beq(T4, ZERO, "then_")
    b.label("else_")
    b.li(T1, 2)
    b.j("join")
    b.label("then_")
    b.li(T1, 3)
    b.label("join")
    b.addi(T2, T0, 7)
    b.print_(T1)
    b.halt()
    proc = b.build()
    proc.block("entry").terminator.predict_taken = True
    return proc


class TestEquivalenceAndDuplication:
    def test_equivalence_hop_is_free(self):
        # entry and join are control equivalent; t2's addi is independent of
        # both arms: Figure 3's i5 case — no boost, no duplication.
        proc = diamond_proc()
        engine, _ = make_engine(proc, ["entry", "then_", "join"], NO_BOOST)
        addi = proc.block("join").body[0]
        plan = engine.plan(addi, home_pos=2, place_pos=0,
                           has_spec_producer=False, in_squash_region=False)
        assert plan.ok
        assert plan.boost == 0
        assert plan.dups == []

    def test_conflicting_instruction_needs_compensation(self):
        # The print consumes t1 which both arms write: moving a new writer
        # of t1 above the join must compensate on the off-trace arm.
        proc = diamond_proc()
        writer = Instruction(Opcode.LI, dst=T3, imm=9)
        # make it conflict with the arms: define t1 instead
        writer = Instruction(Opcode.LI, dst=T1, imm=9)
        proc.block("join").body.insert(0, writer)
        engine, _ = make_engine(proc, ["entry", "then_", "join"], BOOST7)
        plan = engine.plan(writer, 2, 0, False, False)
        if plan.ok:
            assert plan.boost > 0 or plan.dups, (
                "a write of t1 hoisted above the join must be boosted or "
                "compensated")

    def test_dup_applied_to_off_trace_pred(self):
        proc = diamond_proc()
        # t3 is independent of the arms but NOT equivalent-hoppable if we
        # only hop when control equivalent; place at then_ (pos 1): join has
        # off-trace pred else_.
        addi = proc.block("join").body[0]
        engine, _ = make_engine(proc, ["entry", "then_", "join"], NO_BOOST)
        plan = engine.plan(addi, home_pos=2, place_pos=1,
                           has_spec_producer=False, in_squash_region=False)
        assert plan.ok
        if plan.dups:
            assert plan.dups[0].pred_label == "else_"
            copies = engine.apply_dups(addi, plan)
            assert len(copies) == 1
            assert proc.block("else_").body[-1].op is Opcode.ADDI


class TestEdgeSplitting:
    def test_split_when_pred_predicts_away(self):
        # Make the off-trace pred a conditional branch that predicts away
        # from the join: an unsafe copy cannot be boosted there, so the
        # engine must split the edge.
        b = ProcBuilder("p")
        b.label("top")
        b.li(T0, 0x2000)
        b.beq(T4, ZERO, "join")     # off-trace pred of join, target edge
        b.label("mid")
        b.li(T1, 1)
        b.label("join")
        b.lw(T2, T0, 0)             # unsafe: needs compensation when moved
        b.print_(T2)
        b.halt()
        proc = b.build()
        proc.block("top").terminator.predict_taken = False  # predicts mid
        engine, _ = make_engine(proc, ["mid", "join"], MINBOOST3,
                                scheduled={"top"})
        lw = proc.block("join").body[0]
        plan = engine.plan(lw, home_pos=1, place_pos=0,
                           has_spec_producer=False, in_squash_region=False)
        assert plan.ok
        assert any(d.kind == "split" for d in plan.dups)
        engine.apply_dups(lw, plan)
        # The branch in 'top' now targets the compensation block.
        assert proc.block("top").terminator.target != "join"
        comp_label = proc.block("top").terminator.target
        comp = proc.block(comp_label)
        assert comp.body[0].op is Opcode.LW
        assert comp.terminator.target == "join"
        assert comp_label in engine.new_blocks
