"""The repro-stats/1 payload is deterministic.

Byte-identical across serial vs parallel population and across a
journaled crash/resume cycle — the property the CI metrics-regression
gate (benchmarks/check_stats_baseline.py) relies on.

Parallel population re-resolves workloads by name inside the worker
processes, so these tests use a real registry workload (grep) rather
than a stub.
"""

import json

import pytest

from repro.harness.cache import CompileCache
from repro.harness.experiments import BENCH_CONFIG_KEYS, Lab
from repro.harness.report import render_stats, stats_json
from repro.harness.resilience import Journal
from repro.workloads import get


def _grep_lab(cache_dir, collect_stats=True):
    return Lab([get("grep")], cache=CompileCache(cache_dir),
               collect_stats=collect_stats)


def _payload(lab):
    return json.dumps(stats_json(lab), sort_keys=True)


@pytest.fixture(scope="module")
def shared_cache(tmp_path_factory):
    return tmp_path_factory.mktemp("obs-cache")


@pytest.fixture(scope="module")
def serial_payload(shared_cache):
    lab = _grep_lab(shared_cache)
    lab.populate(jobs=1)
    return _payload(lab)


def test_stats_json_shape(serial_payload):
    doc = json.loads(serial_payload)
    assert doc["schema"] == "repro-stats/1"
    assert doc["collected"] is True
    cells = doc["workloads"]["grep"]
    assert set(cells) == set(BENCH_CONFIG_KEYS)
    cell = cells["minboost3"]
    assert cell["sched"]["traces"] > 0
    assert cell["sim"]["kind"] == "superscalar"
    assert cell["sim"]["boosted_executed"] > 0
    assert cells["dynamic"]["sim"]["kind"] == "dynamic"
    assert cells["dynamic"]["sched"] is None


def test_parallel_population_is_byte_identical(shared_cache, serial_payload):
    lab = _grep_lab(shared_cache)
    lab.populate(jobs=2)
    assert _payload(lab) == serial_payload


def test_journal_resume_is_byte_identical(
    shared_cache, serial_payload, tmp_path
):
    fingerprint = Journal.make_fingerprint(command="obs-determinism-test")
    clean_path = tmp_path / "clean.journal"
    journal = Journal(clean_path, fingerprint)
    lab = _grep_lab(shared_cache)
    lab.populate(journal=journal)
    journal.close()
    assert _payload(lab) == serial_payload

    # Truncate to half the cells — a simulated crash — then resume.
    lines = clean_path.read_bytes().splitlines(keepends=True)
    half = len(BENCH_CONFIG_KEYS) // 2
    resume_path = tmp_path / "resume.journal"
    resume_path.write_bytes(b"".join(lines[: half + 1]))
    journal = Journal(resume_path, fingerprint, resume=True)
    assert len(journal.completed) == half
    resumed = _grep_lab(shared_cache)
    resumed.populate(journal=journal)
    journal.close()
    assert len(resumed.resumed) == half
    assert _payload(resumed) == serial_payload


def test_lsq_counters_deterministic_and_chaos_identical(
    shared_cache, serial_payload
):
    # The memory-speculation counters (docs/memory-speculation.md) ride the
    # same repro-stats/1 payload, so they inherit the byte-identity
    # guarantees — but assert their presence explicitly so a counter that
    # silently stops being collected fails here, not in the CI baseline.
    doc = json.loads(serial_payload)
    cells = doc["workloads"]["grep"]
    for key in ("dynamic_lsq", "dynamic_memdep"):
        sim = cells[key]["sim"]
        for counter in ("stlf_hits", "memdep_squashes",
                        "memdep_stall_cycles", "lsq_high_water",
                        "lsq_occupancy"):
            assert counter in sim, (key, counter)
    assert cells["dynamic_lsq"]["sim"]["lsq_high_water"] > 0
    assert cells["dynamic_lsq"]["sim"]["memdep_squashes"] == 0
    assert cells["dynamic"]["sim"]["lsq_high_water"] == 0
    # Under chaos (worker kills + corrupted results, retried to clean
    # values) the payload — counters included — must stay byte-identical.
    from repro.harness.resilience import ChaosConfig, SupervisionPolicy

    chaos = ChaosConfig(seed=5, hang=0.0)
    policy = SupervisionPolicy(retries=3, seed=5, backoff=0.01, jitter=0.1)
    lab = _grep_lab(shared_cache)
    lab.populate(jobs=2, policy=policy, chaos=chaos)
    assert _payload(lab) == serial_payload


def test_uncollected_lab_reports_null_cells(shared_cache):
    lab = _grep_lab(shared_cache, collect_stats=False)
    doc = stats_json(lab)
    assert doc["collected"] is False
    cell = doc["workloads"]["grep"]["minboost3"]
    assert cell == {"sched": None, "sim": None}


def test_render_stats_prints_histogram(shared_cache):
    lab = _grep_lab(shared_cache)
    text = render_stats(lab)
    assert "Boosting statistics" in text
    assert "Scheduler statistics" in text
    assert ".B1" in text
    assert "squash%" in text
