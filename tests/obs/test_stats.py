"""SchedStats/SimStats: accounting invariants and zero-interference.

The observability layer must never change what it observes: an instrumented
run has to produce the exact ExecutionResult an uninstrumented run does,
and the counters have to balance (every boosted execution either commits
or is squashed).
"""

import json

import pytest

from repro.harness.pipeline import CompileConfig, compile_minic
from repro.obs.stats import NullStats, SchedStats, SimStats, STATS_SCHEMA
from repro.sched.boostmodel import BY_NAME

SOURCE = """
global xs[8];
global n = 0;
func main() {
    var s = 0;
    for (var i = 0; i < n; i = i + 1) {
        if (xs[i] > 3) { s = s + xs[i]; }
    }
    print(s);
}
"""
TRAIN = {"xs": [1, 5, 2, 6, 3, 7, 4, 8], "n": 8}


@pytest.fixture(scope="module")
def compiled():
    return compile_minic(
        SOURCE, CompileConfig(model=BY_NAME["MinBoost3"]), TRAIN
    )


# ----------------------------------------------------------- SchedStats


def test_schema_tag():
    assert STATS_SCHEMA == "repro-stats/1"


def test_sched_stats_note_hooks():
    st = SchedStats()
    st.note_trace(3)
    st.note_trace(3)
    st.note_trace(1)
    st.note_rejected("barrier")
    st.note_boost_level(2)
    st.note_dup("split")
    assert st.traces == 3
    assert st.trace_lengths == {3: 2, 1: 1}
    assert st.motions_rejected == {"barrier": 1}
    assert st.boosted_by_level == {2: 1}
    assert st.dup_kinds == {"split": 1}


def test_compiled_program_sched_stats(compiled):
    st = compiled.stats
    assert st is not None
    assert st.traces == sum(st.trace_lengths.values())
    assert st.motions_accepted <= st.motions_attempted
    rejected = sum(st.motions_rejected.values())
    assert st.motions_accepted + rejected <= st.motions_attempted
    assert st.boosted == sum(st.boosted_by_level.values())
    assert 0.0 < st.issue_slot_occupancy <= 1.0
    assert st.issue_slots_filled <= st.issue_slots


def test_sched_snapshot_is_json_stable(compiled):
    snap = compiled.stats.snapshot()
    text = json.dumps(snap, sort_keys=True)
    assert json.loads(text) == snap
    # Histogram keys are stringified so the snapshot survives a JSON
    # round-trip unchanged.
    for key in snap["boosted_by_level"]:
        assert isinstance(key, str)


# ------------------------------------------------------------- SimStats


def test_boosted_executions_balance(compiled):
    st = SimStats()
    compiled.run(TRAIN, stats=st)
    total = sum(st.boosted_by_level.values())
    commits = sum(st.boosted_commits_by_level.values())
    squashes = sum(st.boosted_squashes_by_level.values())
    assert st.boosted_executed == total
    assert total == commits + squashes
    assert st.boosted_squashed == squashes
    assert 0.0 <= st.squash_rate <= 1.0


def test_sim_stats_mirror_result(compiled):
    st = SimStats()
    res = compiled.run(TRAIN, stats=st)
    assert res.sim_stats is st
    assert st.kind == "superscalar"
    assert st.cycles == res.cycle_count
    assert st.instrs == res.instr_count
    assert st.branches == res.branch_count
    assert st.mispredicts == res.mispredict_count
    # Transients are cleared by finalize so snapshots stay small.
    assert st.block_execs == {}
    assert st.pending == []


def test_slot_accounting(compiled):
    st = SimStats()
    compiled.run(TRAIN, stats=st)
    assert st.rows_executed > 0
    assert st.slots_filled <= st.slots_total
    width = compiled.sched.machine.issue_width
    assert st.slots_total == st.rows_executed * width
    assert 0.0 < st.issue_slot_occupancy <= 1.0
    assert (
        st.cycles
        == st.rows_executed + st.recovery_cycles + st.interlock_stall_cycles
    )


def test_stats_do_not_perturb_execution(compiled):
    bare = compiled.run(TRAIN)
    with_stats = compiled.run(TRAIN, stats=SimStats())
    with_null = compiled.run(TRAIN, stats=NullStats())
    for res in (with_stats, with_null):
        assert res.output == bare.output
        assert res.cycle_count == bare.cycle_count
        assert res.instr_count == bare.instr_count
        assert res.mispredict_count == bare.mispredict_count


#: backend metadata, legitimately different between execution engines —
#: everything architectural must still match exactly
_BACKEND_KEYS = ("translated_blocks", "superblocks_chained", "trace_hits",
                 "trace_misses", "trace_invalidations")


def test_stats_identical_on_both_sim_paths(compiled):
    fast = SimStats()
    slow = SimStats()
    compiled.run(TRAIN, stats=fast, fast=True)
    compiled.run(TRAIN, stats=slow, fast=False)
    fsnap, ssnap = fast.snapshot(), slow.snapshot()
    for key in _BACKEND_KEYS:
        fsnap.pop(key)
        ssnap.pop(key)
    assert fsnap == ssnap


def test_null_stats_collects_nothing(compiled):
    st = NullStats()
    assert st.block_execs is None
    compiled.run(TRAIN, stats=st)
    assert st.kind == "null"
    assert st.boosted_by_level == {}
    assert st.commit_events == 0
    assert st.squash_events == 0


def test_functional_sim_stats(compiled):
    st = SimStats()
    res = compiled.run_functional(TRAIN, stats=st)
    assert res.sim_stats is st
    assert st.kind == "functional"
    assert st.instrs == res.instr_count
    assert st.blocks_executed > 0
    assert st.rows_executed == st.instrs


def test_sim_snapshot_key_order(compiled):
    st = SimStats()
    compiled.run(TRAIN, stats=st)
    keys = list(st.snapshot())
    assert keys == sorted(keys)
