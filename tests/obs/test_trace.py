"""TraceRecorder: ring-buffer semantics and Chrome trace-event export."""

import json

import pytest

from repro.harness.pipeline import CompileConfig, compile_minic
from repro.obs.trace import TID_PIPELINE, TID_SPECULATION, TraceRecorder
from repro.sched.boostmodel import BY_NAME

SOURCE = """
global xs[8];
global n = 0;
func main() {
    var s = 0;
    for (var i = 0; i < n; i = i + 1) {
        if (xs[i] > 3) { s = s + xs[i]; }
    }
    print(s);
}
"""
TRAIN = {"xs": [1, 5, 2, 6, 3, 7, 4, 8], "n": 8}


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        TraceRecorder(capacity=0)


def test_ring_buffer_drops_oldest():
    rec = TraceRecorder(capacity=4)
    for i in range(6):
        rec.complete(f"e{i}", ts=i, dur=1)
    assert len(rec) == 4
    assert rec.dropped == 2
    names = [e["name"] for e in rec.events()]
    assert names == ["e2", "e3", "e4", "e5"]


def test_zero_duration_is_clamped_to_one():
    rec = TraceRecorder()
    rec.complete("empty-block", ts=5, dur=0)
    assert rec.events()[0]["dur"] == 1


def test_instant_event_shape():
    rec = TraceRecorder()
    rec.instant("squash", ts=7, args={"shadow": 3})
    (event,) = rec.events()
    assert event["ph"] == "i"
    assert event["s"] == "t"
    assert event["tid"] == TID_SPECULATION
    assert event["args"] == {"shadow": 3}


def test_export_structure():
    rec = TraceRecorder()
    rec.complete("block", ts=0, dur=2)
    out = rec.export(process_name="demo")
    assert out["displayTimeUnit"] == "ms"
    assert out["otherData"]["dropped"] == 0
    meta = [e for e in out["traceEvents"] if e["ph"] == "M"]
    names = {e["args"]["name"] for e in meta}
    assert {"demo", "pipeline", "speculation"} <= names


def test_write_is_valid_json(tmp_path):
    rec = TraceRecorder()
    rec.complete("block", ts=0, dur=2)
    path = tmp_path / "trace.json"
    rec.write(str(path))
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    assert any(e["ph"] == "X" for e in data["traceEvents"])


def test_simulator_emits_block_events(tmp_path):
    cp = compile_minic(SOURCE, CompileConfig(model=BY_NAME["MinBoost3"]), TRAIN)
    rec = TraceRecorder()
    cp.run(TRAIN, trace=rec)
    events = rec.events()
    assert events, "an instrumented run must record events"
    blocks = [e for e in events if e["ph"] == "X" and e["tid"] == TID_PIPELINE]
    assert any(e["name"].startswith("main:") for e in blocks)
    # Timestamps are cycle numbers: monotonically non-decreasing per tid.
    ts = [e["ts"] for e in blocks]
    assert ts == sorted(ts)


def test_tracing_does_not_perturb_execution():
    cp = compile_minic(SOURCE, CompileConfig(model=BY_NAME["MinBoost3"]), TRAIN)
    bare = cp.run(TRAIN)
    traced = cp.run(TRAIN, trace=TraceRecorder())
    assert traced.output == bare.output
    assert traced.cycle_count == bare.cycle_count


def test_cli_trace_out(tmp_path, capsys):
    from repro.cli import main

    src = tmp_path / "demo.mc"
    src.write_text(SOURCE)
    out = tmp_path / "trace.json"
    train = json.dumps({"xs": [1, 5, 2, 6, 3, 7, 4, 8], "n": 8})
    rc = main(
        [
            "run",
            str(src),
            "--train",
            train,
            "--stats",
            "--trace-out",
            str(out),
        ]
    )
    captured = capsys.readouterr()
    assert rc == 0
    assert "[stats]" in captured.err
    assert "squash-rate=" in captured.err
    with open(out, encoding="utf-8") as fh:
        data = json.load(fh)
    assert data["otherData"]["dropped"] == 0
