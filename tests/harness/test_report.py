"""Tests for report rendering and EXPERIMENTS.md generation (on a tiny
single-workload lab, so they run quickly)."""

import pytest

from repro.harness.experiments import Lab
from repro.harness.report import (
    render_all, render_figure8, render_figure9, render_table1, render_table2,
    write_experiments_md,
)
from repro.workloads.registry import Workload

SOURCE = """
global xs[8];
global n = 0;
func main() {
    var s = 0;
    for (var i = 0; i < n; i = i + 1) {
        if (xs[i] > 3) { s = s + xs[i]; }
    }
    print(s);
}
"""


def _lab():
    w = Workload(name="awk", paper_benchmark="n/a", description="stub",
                 source=SOURCE,
                 train={"xs": [1, 5, 2, 6, 3, 7, 4, 8], "n": 8},
                 eval={"xs": [8, 1, 7, 2, 6, 3, 5, 4], "n": 8})
    return Lab([w])


@pytest.fixture(scope="module")
def lab():
    return _lab()


def test_render_table1_has_paper_columns(lab):
    text = render_table1(lab)
    assert "Table 1" in text and "paper IPC" in text and "awk" in text


def test_render_figure8(lab):
    text = render_figure8(lab)
    assert "Figure 8" in text and "G.M." in text


def test_render_table2_shows_models(lab):
    text = render_table2(lab)
    for name in ("Squashing", "Boost1", "MinBoost3", "Boost7"):
        assert name in text


def test_render_figure9(lab):
    text = render_figure9(lab)
    assert "dynamic" in text and "MinBoost3" in text


def test_render_all_concatenates(lab):
    text = render_all(lab)
    for header in ("Table 1", "Figure 8", "Table 2", "Figure 9"):
        assert header in text


def test_write_experiments_md(lab, tmp_path):
    path = tmp_path / "EXPERIMENTS.md"
    text = write_experiments_md(lab, str(path))
    assert path.read_text() == text
    assert text.startswith("# EXPERIMENTS")
    for header in ("## Table 1", "## Figure 8", "## Table 2", "## Figure 9",
                   "## Known deviations"):
        assert header in text
    # Markdown tables are well-formed: every row has the header's columns.
    for chunk in text.split("\n\n"):
        lines = [ln for ln in chunk.splitlines() if ln.startswith("|")]
        if lines:
            width = lines[0].count("|")
            assert all(ln.count("|") == width for ln in lines), chunk
