"""Tests for report rendering and EXPERIMENTS.md generation (on a tiny
single-workload lab, so they run quickly)."""

import pytest

from repro.harness.experiments import Lab
from repro.harness.report import (
    render_all, render_errors, render_figure8, render_figure9, render_table1,
    render_table2, write_experiments_md,
)
from repro.workloads.registry import Workload

SOURCE = """
global xs[8];
global n = 0;
func main() {
    var s = 0;
    for (var i = 0; i < n; i = i + 1) {
        if (xs[i] > 3) { s = s + xs[i]; }
    }
    print(s);
}
"""


def _stub(name="awk"):
    return Workload(name=name, paper_benchmark="n/a", description="stub",
                    source=SOURCE,
                    train={"xs": [1, 5, 2, 6, 3, 7, 4, 8], "n": 8},
                    eval={"xs": [8, 1, 7, 2, 6, 3, 5, 4], "n": 8})


def _lab():
    return Lab([_stub()])


@pytest.fixture(scope="module")
def lab():
    return _lab()


def test_render_table1_has_paper_columns(lab):
    text = render_table1(lab)
    assert "Table 1" in text and "paper IPC" in text and "awk" in text


def test_render_figure8(lab):
    text = render_figure8(lab)
    assert "Figure 8" in text and "G.M." in text


def test_render_table2_shows_models(lab):
    text = render_table2(lab)
    for name in ("Squashing", "Boost1", "MinBoost3", "Boost7"):
        assert name in text


def test_render_figure9(lab):
    text = render_figure9(lab)
    assert "dynamic" in text and "MinBoost3" in text


def test_render_all_concatenates(lab):
    text = render_all(lab)
    for header in ("Table 1", "Figure 8", "Table 2", "Figure 9"):
        assert header in text


def test_render_errors_empty_without_failures(lab):
    assert render_errors(lab) == ""


def test_render_errors_totals_harness_failures_by_kind():
    lab = Lab([_stub()])
    lab.errors[("awk", "scalar")] = "worker timeout: no result within 1.0s"
    lab.errors[("awk", "global")] = "worker killed: process died mid-task"
    lab.failures[("awk", "scalar")] = {"kind": "timeout", "attempts": 3,
                                       "error": "worker timeout"}
    lab.failures[("awk", "global")] = {"kind": "killed", "attempts": 3,
                                       "error": "worker killed"}
    text = render_errors(lab)
    assert "harness failures by kind" in text
    assert "timeout: 1" in text and "killed: 1" in text


@pytest.fixture(scope="module")
def hurt_lab():
    """Two stub workloads, one strangled by the cycle-watchdog sabotage."""
    lab = Lab([_stub("awk"), _stub("grep")], sabotage="grep")
    lab.SABOTAGE_CYCLES = 5  # the stub finishes under the real 1000 budget
    return lab


def test_sabotaged_lab_records_errors_not_crashes(hurt_lab):
    # cells are computed lazily; the sabotaged one fails, the healthy survive
    assert hurt_lab.cell("awk", "global") is not None
    assert hurt_lab.speedup("awk", "global") is not None
    assert hurt_lab.speedup("grep", "global") is None
    assert hurt_lab.errors
    assert all(wname == "grep" for wname, _ in hurt_lab.errors)


def test_sabotaged_report_degrades_gracefully(hurt_lab):
    text = render_all(hurt_lab)
    assert "ERR" in text
    assert "Errors:" in text and "grep" in text
    # the healthy row still renders with real numbers
    assert "awk" in render_figure8(hurt_lab)


def test_sabotaged_experiments_md_lists_errors(hurt_lab, tmp_path):
    path = tmp_path / "EXPERIMENTS.md"
    text = write_experiments_md(hurt_lab, str(path))
    assert "## Errors" in text and "grep" in text


def test_write_experiments_md(lab, tmp_path):
    path = tmp_path / "EXPERIMENTS.md"
    text = write_experiments_md(lab, str(path))
    assert path.read_text() == text
    assert text.startswith("# EXPERIMENTS")
    for header in ("## Table 1", "## Figure 8", "## Table 2", "## Figure 9",
                   "## Known deviations"):
        assert header in text
    # Markdown tables are well-formed: every row has the header's columns.
    for chunk in text.split("\n\n"):
        lines = [ln for ln in chunk.splitlines() if ln.startswith("|")]
        if lines:
            width = lines[0].count("|")
            assert all(ln.count("|") == width for ln in lines), chunk
