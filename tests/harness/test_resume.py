"""Checkpoint/resume: a campaign killed at *any* journal boundary and
resumed produces byte-identical output to an uninterrupted run."""

import pytest

from repro.harness.cache import CompileCache
from repro.harness.experiments import BENCH_CONFIG_KEYS, Lab
from repro.harness.report import bench_json, render_all
from repro.harness.resilience import Journal
from repro.verify.campaign import VerifyCampaign
from repro.workloads.registry import Workload

SOURCE = """
global xs[8];
global n = 0;
func main() {
    var s = 0;
    for (var i = 0; i < n; i = i + 1) {
        if (xs[i] > 3) { s = s + xs[i]; }
    }
    print(s);
}
"""


def _stub():
    return Workload(name="awk", paper_benchmark="n/a", description="stub",
                    source=SOURCE,
                    train={"xs": [1, 5, 2, 6, 3, 7, 4, 8], "n": 8},
                    eval={"xs": [8, 1, 7, 2, 6, 3, 5, 4], "n": 8})


# -------------------------------------------------------------------- bench
@pytest.fixture(scope="module")
def clean_bench(tmp_path_factory):
    """One uninterrupted journaled bench campaign: the oracle every resumed
    run must byte-match.  The compile cache is shared with the resumed runs
    so the whole boundary sweep stays fast."""
    tmp = tmp_path_factory.mktemp("bench")
    fingerprint = Journal.make_fingerprint(command="bench-resume-test")
    journal = Journal(tmp / "clean.journal", fingerprint)
    lab = Lab([_stub()], cache=CompileCache(tmp / "cache"))
    lab.populate(journal=journal)
    journal.close()
    return {
        "cache_dir": tmp / "cache",
        "fingerprint": fingerprint,
        "text": render_all(lab),
        "json": bench_json(lab),
        "lines": (tmp / "clean.journal").read_bytes().splitlines(
            keepends=True),
    }


@pytest.mark.parametrize("k", range(len(BENCH_CONFIG_KEYS) + 1))
def test_bench_resume_at_every_boundary(clean_bench, k, tmp_path):
    """Simulate a SIGKILL after exactly ``k`` journaled cells: the journal
    holds the header plus the first ``k`` records, and the resumed campaign
    must restore them and recompute only the rest."""
    lines = clean_bench["lines"]
    assert len(lines) == len(BENCH_CONFIG_KEYS) + 1  # header + one per cell
    path = tmp_path / "resume.journal"
    path.write_bytes(b"".join(lines[:k + 1]))
    journal = Journal(path, clean_bench["fingerprint"], resume=True)
    assert len(journal.completed) == k
    lab = Lab([_stub()], cache=CompileCache(clean_bench["cache_dir"]))
    lab.populate(journal=journal)
    journal.close()
    assert len(lab.resumed) == k
    assert render_all(lab) == clean_bench["text"]
    assert bench_json(lab) == clean_bench["json"]


def test_bench_resume_discards_a_torn_record(clean_bench, tmp_path):
    """A record half-written when the crash hit is recomputed, not trusted."""
    lines = clean_bench["lines"]
    path = tmp_path / "torn.journal"
    path.write_bytes(b"".join(lines[:3]) + lines[3][:-10])
    journal = Journal(path, clean_bench["fingerprint"], resume=True)
    assert len(journal.completed) == 2
    assert journal.recovered_bytes > 0
    lab = Lab([_stub()], cache=CompileCache(clean_bench["cache_dir"]))
    lab.populate(journal=journal)
    journal.close()
    assert render_all(lab) == clean_bench["text"]


# ------------------------------------------------------------------- verify
VERIFY_MODELS = ["squashing", "boost1"]


@pytest.fixture(scope="module")
def clean_verify(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("verify")
    fingerprint = Journal.make_fingerprint(command="verify-resume-test")
    journal = Journal(tmp / "clean.journal", fingerprint)
    campaign = VerifyCampaign(workload_names=["grep"],
                              model_keys=VERIFY_MODELS, seeds=2,
                              cache=CompileCache(tmp / "cache"))
    summary = campaign.run(journal=journal)
    journal.close()
    return {
        "cache_dir": tmp / "cache",
        "fingerprint": fingerprint,
        "text": summary.format(),
        "lines": (tmp / "clean.journal").read_bytes().splitlines(
            keepends=True),
    }


@pytest.mark.parametrize("k", range(len(VERIFY_MODELS) + 1))
def test_verify_resume_at_every_boundary(clean_verify, k, tmp_path):
    lines = clean_verify["lines"]
    assert len(lines) == len(VERIFY_MODELS) + 1  # header + one per bucket
    path = tmp_path / "resume.journal"
    path.write_bytes(b"".join(lines[:k + 1]))
    journal = Journal(path, clean_verify["fingerprint"], resume=True)
    assert len(journal.completed) == k
    messages = []
    campaign = VerifyCampaign(workload_names=["grep"],
                              model_keys=VERIFY_MODELS, seeds=2,
                              progress=messages.append,
                              cache=CompileCache(clean_verify["cache_dir"]))
    summary = campaign.run(journal=journal)
    journal.close()
    assert summary.format() == clean_verify["text"]
    if k == len(VERIFY_MODELS):
        # Fully journaled: the workload is not even re-prepared.
        assert not any("preparing" in m for m in messages)
