"""Tests for the filesystem lease protocol (harness/fsutil.py)."""

import json
import os
import time

import pytest

from repro.harness.fsutil import Lease, atomic_write_bytes


@pytest.fixture
def path(tmp_path):
    return tmp_path / "shard-0.lease"


def test_acquire_is_exclusive(path):
    a = Lease(path)
    b = Lease(path)
    assert a.try_acquire()
    assert not b.try_acquire()
    assert a.held() and not b.held()


def test_release_frees_the_lease(path):
    a = Lease(path)
    assert a.try_acquire()
    a.release()
    assert not path.exists()
    assert Lease(path).try_acquire()


def test_release_without_holding_is_a_noop(path):
    a, b = Lease(path), Lease(path)
    assert a.try_acquire()
    b.release()  # b never held it
    assert path.exists() and a.held()


def test_refresh_advances_the_heartbeat(path):
    a = Lease(path, ttl=5.0)
    assert a.try_acquire()
    first = Lease.read(path)
    time.sleep(0.02)
    assert a.refresh()
    assert Lease.read(path).stamp > first.stamp


def test_live_lease_cannot_be_stolen(path):
    a = Lease(path, ttl=60.0)
    assert a.try_acquire()
    thief = Lease(path, ttl=60.0)
    assert not thief.try_steal()
    assert a.held()


def test_stale_heartbeat_is_stolen(path):
    # A lease from a live pid whose heartbeat is ancient: steal it.  (The
    # dead-pid fast path is covered separately; here only the TTL matters.)
    a = Lease(path, ttl=0.05)
    assert a.try_acquire()
    time.sleep(0.12)
    thief = Lease(path, ttl=0.05)
    assert thief.try_steal()
    assert thief.held() and not a.held()


def test_dead_pid_is_stale_immediately(path):
    a = Lease(path, ttl=3600.0)
    assert a.try_acquire()
    # Rewrite the lease naming a dead pid on this host (fork a child that
    # exits immediately; its pid is then guaranteed dead after waitpid).
    pid = os.fork()
    if pid == 0:
        os._exit(0)
    os.waitpid(pid, 0)
    info = json.loads(path.read_text())
    info["pid"] = pid
    atomic_write_bytes(path, (json.dumps(info) + "\n").encode())
    thief = Lease(path, ttl=3600.0)
    assert thief.try_steal()
    assert thief.held()


def test_steal_race_has_exactly_one_winner(path):
    a = Lease(path, ttl=0.01)
    assert a.try_acquire()
    time.sleep(0.05)
    thieves = [Lease(path, ttl=0.01) for _ in range(4)]
    winners = [t for t in thieves if t.try_steal()]
    assert len(winners) == 1
    assert winners[0].held()


def test_owner_notices_a_theft_on_refresh(path):
    a = Lease(path, ttl=0.05)
    assert a.try_acquire()
    time.sleep(0.12)
    thief = Lease(path, ttl=0.05)
    assert thief.try_steal()
    # The previous owner's next heartbeat must report the loss...
    assert not a.refresh()
    # ...and must not have clobbered the thief's lease.
    assert thief.held()


def test_garbage_lease_file_is_treated_as_absent(path):
    path.write_text("not json at all\n")
    assert Lease.read(path) is None
    thief = Lease(path)
    assert thief.try_steal()
    assert thief.held()


def test_read_missing_file_is_none(path):
    assert Lease.read(path) is None


def test_is_stale_of_missing_lease(path):
    lease = Lease(path, ttl=1.0)
    assert lease.is_stale(None)


def test_acquire_creates_parent_directories(tmp_path):
    lease = Lease(tmp_path / "deep" / "nested" / "x.lease")
    assert lease.try_acquire()
    assert lease.held()


# ------------------------------------------------- monotonic-clock staleness
class _FakeClock:
    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


def _mock_lease(path, ttl, clock):
    """A Lease whose staleness clock is ``clock`` — no sleeping in tests."""
    class MockedLease(Lease):
        _monotonic = staticmethod(clock)
    return MockedLease(path, ttl=ttl)


def test_wall_clock_jump_cannot_expire_a_live_lease(path):
    # The owner heartbeats on schedule, but the wall clock leaps a day
    # forward (NTP step).  Staleness is monotonic-based, so the lease must
    # survive; under the old wall-clock rule every live lease in the fleet
    # would have mass-expired at that instant.
    clock = _FakeClock()
    a = _mock_lease(path, ttl=10.0, clock=clock)
    assert a.try_acquire()
    info = json.loads(path.read_text())
    info["stamp"] -= 86400.0  # the heartbeat *looks* a day old on the wall
    atomic_write_bytes(path, (json.dumps(info) + "\n").encode())
    clock.now += 1.0  # but only a second passed on the monotonic clock
    assert not a.is_stale(Lease.read(path))
    thief = _mock_lease(path, ttl=10.0, clock=clock)
    assert not thief.try_steal()
    assert a.held()


def test_monotonic_ttl_expiry_is_stale(path):
    clock = _FakeClock()
    a = _mock_lease(path, ttl=10.0, clock=clock)
    assert a.try_acquire()
    clock.now += 10.5
    assert a.is_stale(Lease.read(path))


def test_negative_monotonic_delta_is_stale(path):
    # A monotonic reading *ahead* of ours means the lease was written in a
    # different boot (CLOCK_MONOTONIC restarts at boot) — stale, whatever
    # the wall clock says.
    clock = _FakeClock(now=5.0)  # "just rebooted"
    a = _mock_lease(path, ttl=3600.0, clock=clock)
    assert a.try_acquire()
    info = json.loads(path.read_text())
    info["mono"] = 999999.0  # from the previous boot's long uptime
    atomic_write_bytes(path, (json.dumps(info) + "\n").encode())
    assert a.is_stale(Lease.read(path))


def test_legacy_lease_without_mono_falls_back_to_wall_clock(path):
    clock = _FakeClock()
    a = _mock_lease(path, ttl=0.05, clock=clock)
    assert a.try_acquire()
    info = json.loads(path.read_text())
    del info["mono"]  # a lease file written by older code
    info["stamp"] = time.time() - 1.0  # wall-old beyond the ttl
    atomic_write_bytes(path, (json.dumps(info) + "\n").encode())
    assert a.is_stale(Lease.read(path))
    info["stamp"] = time.time()  # wall-fresh
    atomic_write_bytes(path, (json.dumps(info) + "\n").encode())
    assert not a.is_stale(Lease.read(path))


def test_payload_carries_both_clocks(path):
    a = Lease(path)
    assert a.try_acquire()
    info = Lease.read(path)
    assert info.mono is not None
    assert abs(info.stamp - time.time()) < 60.0
    assert abs(info.mono - time.monotonic()) < 60.0
