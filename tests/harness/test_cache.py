"""The on-disk compile cache: keying, invalidation, corruption handling."""

import pickle
import warnings

import pytest

from repro.harness import cache as cache_mod
from repro.harness.cache import CODE_VERSION, CompileCache
from repro.harness.experiments import CONFIGS
from repro.harness.pipeline import make_input_image
from repro.hw.superscalar import SuperscalarSim
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode

SOURCE = """
global xs[4] = { 2, 7, 1, 8 };
func main() {
    var s = 0;
    for (var i = 0; i < 4; i = i + 1) { s = s + xs[i]; }
    print(s);
}
"""

SOURCE2 = SOURCE.replace("s + xs[i]", "s + xs[i] + 1")


@pytest.fixture
def cache(tmp_path):
    return CompileCache(tmp_path)


def _run(cp):
    sim = SuperscalarSim(cp.sched,
                         input_image=make_input_image(cp.program, None))
    return sim.run()


def test_miss_then_hit(cache):
    cp1 = cache.compile_minic(SOURCE, CONFIGS["minboost3"])
    assert cache.stats()["hits"] == 0 and cache.stats()["misses"] == 1
    cp2 = cache.compile_minic(SOURCE, CONFIGS["minboost3"])
    assert cache.stats()["hits"] == 1
    assert _run(cp1).output == _run(cp2).output
    assert _run(cp1).cycle_count == _run(cp2).cycle_count


def test_config_change_misses(cache):
    cache.compile_minic(SOURCE, CONFIGS["minboost3"])
    cache.compile_minic(SOURCE, CONFIGS["boost7"])
    assert cache.stats()["hits"] == 0 and cache.stats()["misses"] == 2


def test_source_change_misses(cache):
    cache.compile_minic(SOURCE, CONFIGS["minboost3"])
    cache.compile_minic(SOURCE2, CONFIGS["minboost3"])
    assert cache.stats()["hits"] == 0 and cache.stats()["misses"] == 2


def test_train_inputs_change_misses(cache):
    cache.compile_minic(SOURCE, CONFIGS["minboost3"], {"xs": [1, 2, 3, 4]})
    cache.compile_minic(SOURCE, CONFIGS["minboost3"], {"xs": [4, 3, 2, 1]})
    assert cache.stats()["misses"] == 2


def test_code_version_bump_invalidates(cache, monkeypatch):
    cache.compile_minic(SOURCE, CONFIGS["minboost3"])
    monkeypatch.setattr(cache_mod, "CODE_VERSION", CODE_VERSION + 1)
    fresh = CompileCache(cache.cache_dir)
    fresh.compile_minic(SOURCE, CONFIGS["minboost3"])
    assert fresh.stats()["hits"] == 0 and fresh.stats()["misses"] == 1


def test_corrupted_entry_discarded_with_warning(cache):
    cache.compile_minic(SOURCE, CONFIGS["minboost3"])
    key = cache.key("compiled", SOURCE, CONFIGS["minboost3"], None)
    path = cache.cache_dir / f"{key}.pkl"
    assert path.exists()
    path.write_bytes(b"\x80\x04 this is not a valid pickle")
    fresh = CompileCache(cache.cache_dir)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        cp = fresh.compile_minic(SOURCE, CONFIGS["minboost3"])
    assert any("corrupt" in str(w.message) for w in caught)
    assert fresh.stats()["discarded"] == 1
    assert fresh.stats()["hits"] == 0
    # The poisoned file is gone and replaced by a fresh, loadable entry.
    with open(path, "rb") as fh:
        pickle.load(fh)
    assert _run(cp).output == [18]


def test_truncated_entry_discarded(cache):
    cache.compile_minic(SOURCE, CONFIGS["minboost3"])
    key = cache.key("compiled", SOURCE, CONFIGS["minboost3"], None)
    path = cache.cache_dir / f"{key}.pkl"
    path.write_bytes(path.read_bytes()[:20])
    fresh = CompileCache(cache.cache_dir)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        fresh.compile_minic(SOURCE, CONFIGS["minboost3"])
    assert any("corrupt" in str(w.message) for w in caught)
    assert fresh.stats()["discarded"] == 1


def test_loaded_program_bumps_uid_counter(cache):
    cp = cache.compile_minic(SOURCE, CONFIGS["minboost3"])
    cache2 = CompileCache(cache.cache_dir)
    loaded = cache2.compile_minic(SOURCE, CONFIGS["minboost3"])
    assert cache2.stats()["hits"] == 1
    cached_max = max(i.uid for p in loaded.program.procedures.values()
                     for i in p.instructions())
    fresh_instr = Instruction(Opcode.NOP)
    assert fresh_instr.uid > cached_max
    del cp


def test_prepare_ir_shared_across_models(cache):
    """Preparation is model-independent, so every campaign model hits the
    same entry."""
    cache.prepare_ir(SOURCE, CONFIGS["boost1"])
    cache.prepare_ir(SOURCE, CONFIGS["boost7"])
    assert cache.stats()["hits"] == 1 and cache.stats()["misses"] == 1


def test_prepare_ir_returns_fresh_object_graph(cache):
    one = cache.prepare_ir(SOURCE, CONFIGS["minboost3"])
    two = cache.prepare_ir(SOURCE, CONFIGS["minboost3"])
    assert one is not two  # callers may mutate (scheduling does)


def test_repeated_corruption_quarantines_the_key(cache):
    """A key that keeps failing to load is quarantined: no more loads, no
    more stores — graceful degradation instead of a corruption hot-loop."""
    cache.compile_minic(SOURCE, CONFIGS["minboost3"])
    key = cache.key("compiled", SOURCE, CONFIGS["minboost3"], None)
    path = cache.cache_dir / f"{key}.pkl"
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        for _ in range(CompileCache.QUARANTINE_STRIKES):
            path.write_bytes(b"\x80\x04 sector gone bad")
            fresh = CompileCache(cache.cache_dir)
            fresh.compile_minic(SOURCE, CONFIGS["minboost3"])
    assert any("quarantin" in str(w.message) for w in caught)
    assert cache.is_quarantined(key)
    # Loads short-circuit to a miss and stores stay no-ops: the bad sector
    # is never touched again, each use recompiles from source.
    quarantined = CompileCache(cache.cache_dir)
    cp = quarantined.compile_minic(SOURCE, CONFIGS["minboost3"])
    assert quarantined.stats()["quarantined"] == 1
    assert quarantined.stats()["hits"] == 0
    assert not path.exists()
    assert _run(cp).output == [18]


def test_one_clean_load_clears_the_strikes(cache):
    cache.compile_minic(SOURCE, CONFIGS["minboost3"])
    key = cache.key("compiled", SOURCE, CONFIGS["minboost3"], None)
    path = cache.cache_dir / f"{key}.pkl"
    path.write_bytes(b"garbage")
    with warnings.catch_warnings(record=True):
        warnings.simplefilter("always")
        CompileCache(cache.cache_dir).compile_minic(
            SOURCE, CONFIGS["minboost3"])  # strike 1, then clean re-store
    assert (cache.cache_dir / f"{key}.strikes").exists()
    reloaded = CompileCache(cache.cache_dir)
    reloaded.compile_minic(SOURCE, CONFIGS["minboost3"])
    assert reloaded.stats()["hits"] == 1
    assert not (cache.cache_dir / f"{key}.strikes").exists()


def test_unwritable_cache_dir_degrades_to_uncached(tmp_path):
    target = tmp_path / "blocked"
    target.write_text("a file where the cache dir should be")
    cache = CompileCache(target)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        cp = cache.compile_minic(SOURCE, CONFIGS["minboost3"])
    assert any("cache write failed" in str(w.message) for w in caught)
    assert _run(cp).output == [18]


# ------------------------------------------------------- concurrent access
# The sharded campaign coordinator shares one content-addressed cache
# across every shard process, so simultaneous store/load of the same key
# is the norm, not a race to apologize for.  Atomic tempfile-fsync-rename
# stores must make a torn read impossible, and the churn must never charge
# quarantine strikes against a healthy key.

def _cache_churn(cache_dir, key, payload, rounds, fail_flag):
    import os as _os
    cache = CompileCache(cache_dir)
    for _ in range(rounds):
        cache.store(key, payload)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # discard/quarantine warns: fail
            try:
                loaded = cache.load(key)
            except Warning:
                _os._exit(2)  # a torn entry was discarded — must not happen
        if loaded is not None and loaded != payload:
            _os._exit(3)  # torn/foreign payload observed
    _os._exit(0)


def test_concurrent_store_load_is_never_torn(tmp_path):
    from multiprocessing import get_context
    ctx = get_context("fork")
    key = CompileCache(tmp_path).key("compiled", SOURCE, CONFIGS["boost1"])
    # A payload big enough that a non-atomic write would have a wide torn
    # window (~1 MB pickled).
    payload = {"table": list(range(120_000)), "tag": "concurrent"}
    procs = [ctx.Process(target=_cache_churn,
                         args=(tmp_path, key, payload, 25, None))
             for _ in range(4)]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=120)
    codes = [p.exitcode for p in procs]
    assert codes == [0, 0, 0, 0], f"churn workers exited {codes}"
    # After the dust settles: one clean hit, no strikes, no quarantine.
    cache = CompileCache(tmp_path)
    assert cache.load(key) == payload
    assert cache.stats()["hits"] == 1
    assert not cache.is_quarantined(key)
    assert not list(tmp_path.glob("*.strikes"))


def test_concurrent_compile_minic_same_key(tmp_path):
    # Two processes compiling the same cell race store vs load of one key;
    # both must come back with a working program and no quarantine marks.
    from multiprocessing import get_context
    ctx = get_context("fork")

    def compile_one():
        import os as _os
        cache = CompileCache(tmp_path)
        cp = cache.compile_minic(SOURCE, CONFIGS["minboost3"])
        _os._exit(0 if _run(cp).output == [18] else 1)

    procs = [ctx.Process(target=compile_one) for _ in range(2)]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=120)
    assert [p.exitcode for p in procs] == [0, 0]
    assert not list(tmp_path.glob("*.strikes"))
    # The surviving entry is a clean hit for a third reader.
    cache = CompileCache(tmp_path)
    cp = cache.compile_minic(SOURCE, CONFIGS["minboost3"])
    assert cache.stats()["hits"] == 1
    assert _run(cp).output == [18]
