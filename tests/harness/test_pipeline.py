"""Tests for the compile pipeline and the experiment Lab."""

import pytest

from repro.harness.experiments import Lab, geometric_mean
from repro.harness.pipeline import (
    CompileConfig, SCALAR_CONFIG, compile_minic,
    make_input_image,
)
from repro.sched.boostmodel import MINBOOST3
from repro.sched.machine import SUPERSCALAR
from repro.workloads.registry import Workload

SOURCE = """
global xs[8];
global n = 0;
func main() {
    var s = 0;
    for (var i = 0; i < n; i = i + 1) {
        if (xs[i] & 1) { s = s + xs[i]; }
    }
    print(s);
}
"""
TRAIN = {"xs": [1, 2, 3, 4, 5, 6, 7, 8], "n": 8}
EVAL = {"xs": [9, 10, 11, 12, 13, 14, 15, 16], "n": 8}


def test_make_input_image_shapes():
    cp = compile_minic(SOURCE, SCALAR_CONFIG, TRAIN)
    image = make_input_image(cp.program, {"xs": [5, 6], "n": 2})
    by_addr = dict(image)
    xs_addr = cp.program.data.address_of("xs")
    assert by_addr[xs_addr][:4] == (5).to_bytes(4, "little")
    n_addr = cp.program.data.address_of("n")
    assert by_addr[n_addr] == (2).to_bytes(4, "little")


def test_input_too_large_rejected():
    cp = compile_minic(SOURCE, SCALAR_CONFIG, TRAIN)
    with pytest.raises(ValueError):
        make_input_image(cp.program, {"xs": list(range(100))})


def test_predictions_annotated_from_profile():
    cp = compile_minic(SOURCE, SCALAR_CONFIG, TRAIN)
    branches = [
        blk.terminator
        for proc in cp.program.procedures.values()
        for blk in proc.blocks
        if blk.terminator is not None and blk.terminator.op.is_cond_branch
    ]
    assert branches
    assert all(t.predict_taken is not None for t in branches)


def test_config_describe():
    cfg = CompileConfig(machine=SUPERSCALAR, model=MINBOOST3,
                        regalloc="infinite")
    text = cfg.describe()
    assert "MinBoost3" in text and "∞regs" in text


def test_unknown_scheduler_rejected():
    with pytest.raises(ValueError):
        compile_minic(SOURCE, CompileConfig(scheduler="magic"), TRAIN)


def _tiny_workload() -> Workload:
    return Workload(name="tiny", paper_benchmark="n/a", description="test",
                    source=SOURCE, train=TRAIN, eval=EVAL)


class TestLab:
    def test_measure_caches(self):
        lab = Lab([_tiny_workload()])
        first = lab.measure("tiny", "scalar")
        second = lab.measure("tiny", "scalar")
        assert first is second

    def test_speedups_positive(self):
        lab = Lab([_tiny_workload()])
        assert lab.speedup("tiny", "minboost3") > 0.9

    def test_output_checked_against_reference(self):
        lab = Lab([_tiny_workload()])
        res = lab.measure("tiny", "dynamic")
        assert res.output == lab.reference_output("tiny")

    def test_unknown_workload(self):
        lab = Lab([_tiny_workload()])
        with pytest.raises(KeyError):
            lab.workload("nope")


def test_geometric_mean():
    assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
    assert geometric_mean([]) is None
    assert geometric_mean([1.5]) == pytest.approx(1.5)


def test_experiment_rows_on_tiny_workload():
    from repro.harness.experiments import figure8, figure9, table1, table2
    lab = Lab([_tiny_workload()])
    t1 = table1(lab)
    assert len(t1) == 1 and t1[0].cycles > 0
    rows8, means8 = figure8(lab)
    assert means8["global"] >= means8["bb"] - 0.05
    rows2, means2 = table2(lab)
    assert set(rows2[0].improvements) == {"squashing", "boost1",
                                          "minboost3", "boost7"}
    rows9, means9 = figure9(lab)
    assert rows9[0].dynamic_speedup > 0.5
