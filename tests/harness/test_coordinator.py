"""Tests for the sharded campaign coordinator (harness/coordinator.py).

Workers are module-level functions (they cross process boundaries).  The
expensive properties under test are the robustness ones: byte-identical
merges regardless of shard count, convergence under whole-shard SIGKILL
chaos, lease-based adoption of a dead shard's journal, graceful
degradation to structured failures, and resume after the *coordinator*
itself is killed.
"""

import os
import time

import pytest

from repro.harness.coordinator import (
    EXIT_LEASE_LOST, ShardChaosConfig, ShardSpec, _run_shard, run_sharded,
    shard_slice,
)
from repro.harness.fsutil import Lease
from repro.harness.resilience import Journal, SupervisionPolicy

FAST = SupervisionPolicy(retries=2, backoff=0.02, jitter=0.1)


def _double(task):
    return task * 2


def _slow_double(task):
    time.sleep(0.15)
    return task * 2


def _poison_seven(task):
    if task == 7:
        os._exit(9)  # kills whatever process hosts it, every time
    return task * 2


def _tasks(n):
    return list(range(n)), [f"t{i}" for i in range(n)]


# ----------------------------------------------------------------- slicing
def test_shard_slice_partitions_the_matrix():
    indices = [shard_slice(10, 3, j) for j in range(3)]
    assert sorted(i for part in indices for i in part) == list(range(10))
    assert indices[0] == [0, 3, 6, 9]


def test_keys_must_be_unique(tmp_path):
    with pytest.raises(ValueError):
        run_sharded(_double, [1, 2], ["same", "same"], tmp_path, "fp")


# ------------------------------------------------------------- happy paths
@pytest.mark.parametrize("shards", [1, 2, 5])
def test_sharded_run_completes_and_merges(tmp_path, shards):
    tasks, keys = _tasks(11)
    report = run_sharded(_double, tasks, keys, tmp_path / "camp", "fp",
                         shards=shards, shard_policy=FAST)
    assert not report.degraded
    assert report.completed == {f"t{i}": i * 2 for i in range(11)}
    assert report.stats.shards == min(shards, 11)


def test_merge_is_independent_of_shard_count(tmp_path):
    tasks, keys = _tasks(9)
    merges = []
    for shards in (1, 2, 4):
        report = run_sharded(_double, tasks, keys,
                             tmp_path / f"camp{shards}", "fp", shards=shards)
        merges.append([report.completed[k] for k in keys])
    assert merges[0] == merges[1] == merges[2]


def test_empty_task_list(tmp_path):
    report = run_sharded(_double, [], [], tmp_path / "camp", "fp", shards=3)
    assert report.completed == {} and not report.degraded


def test_resume_adopts_prior_journals(tmp_path):
    tasks, keys = _tasks(8)
    camp = tmp_path / "camp"
    run_sharded(_double, tasks, keys, camp, "fp", shards=2)
    report = run_sharded(_double, tasks, keys, camp, "fp", shards=2,
                         resume=True)
    assert report.stats.resumed_tasks == 8
    assert report.completed == {f"t{i}": i * 2 for i in range(8)}


def test_without_resume_prior_journals_are_wiped(tmp_path):
    tasks, keys = _tasks(6)
    camp = tmp_path / "camp"
    run_sharded(_double, tasks, keys, camp, "fp", shards=2)
    report = run_sharded(_double, tasks, keys, camp, "fp", shards=2)
    assert report.stats.resumed_tasks == 0
    assert report.completed == {f"t{i}": i * 2 for i in range(6)}


def test_resume_refuses_a_foreign_campaign(tmp_path):
    from repro.harness.resilience import JournalError
    tasks, keys = _tasks(6)
    camp = tmp_path / "camp"
    run_sharded(_double, tasks, keys, camp, "fp-one", shards=2)
    with pytest.raises(JournalError):
        run_sharded(_double, tasks, keys, camp, "fp-two", shards=2,
                    resume=True)


# ------------------------------------------------------------------- chaos
def test_shard_chaos_is_seeded_and_deterministic():
    chaos = ShardChaosConfig(seed=42, kill=0.5)
    rolls = [chaos.kill_after(j, a) for j in range(4) for a in (1, 2, 3)]
    again = [chaos.kill_after(j, a) for j in range(4) for a in (1, 2, 3)]
    assert rolls == again
    assert any(r is not None for r in rolls)


def test_chaos_spares_incarnations_past_the_fault_budget():
    chaos = ShardChaosConfig(seed=1, kill=1.0, max_shard_faults=2)
    assert chaos.kill_after(0, 1) is not None
    assert chaos.kill_after(0, 3) is None


def test_whole_shard_chaos_converges_to_clean_output(tmp_path):
    tasks, keys = _tasks(9)
    chaos = ShardChaosConfig(seed=5, kill=1.0, max_shard_faults=2,
                             delay_min=0.02, delay_max=0.25)
    report = run_sharded(_slow_double, tasks, keys, tmp_path / "camp", "fp",
                         shards=3, shard_policy=FAST, shard_chaos=chaos,
                         lease_ttl=1.0)
    assert not report.degraded, report.failures
    assert report.completed == {f"t{i}": i * 2 for i in range(9)}
    assert report.stats.chaos_kills > 0
    assert report.stats.restarts > 0


# ---------------------------------------------------------------- stealing
def test_survivor_adopts_a_dead_shards_journal(tmp_path):
    # Shard 1's journal holds one record; its lease names a dead pid, so a
    # lone shard-0 process must steal the lease and finish the slice.
    tasks, keys = _tasks(6)
    camp = tmp_path / "camp"
    camp.mkdir()
    victim = Journal(camp / "shard-1.journal", "fp")
    victim.record("t1", 2, meta={"by": "shard-1", "stolen": False})
    victim.close()
    lease = Lease(camp / "shard-1.lease", ttl=3600.0)
    assert lease.try_acquire()
    pid = os.fork()
    if pid == 0:
        os._exit(0)
    os.waitpid(pid, 0)
    import json
    info = json.loads((camp / "shard-1.lease").read_text())
    info["pid"] = pid
    (camp / "shard-1.lease").write_text(json.dumps(info) + "\n")

    spec = ShardSpec(campaign_dir=str(camp), shard=0, shards=2,
                     worker=_double, tasks=tasks, keys=keys,
                     fingerprint="fp", lease_ttl=3600.0)
    assert _run_shard(spec) == 0
    stolen, meta = Journal.peek(camp / "shard-1.journal")
    assert set(stolen) == {"t1", "t3", "t5"}
    assert meta["t3"] == {"by": "shard-0", "stolen": True}
    assert meta["t1"] == {"by": "shard-1", "stolen": False}


def test_shard_aborts_when_its_lease_is_stolen(tmp_path):
    # A shard that loses its lease mid-slice must stop writing and exit
    # with EXIT_LEASE_LOST rather than corrupt the thief's journal.
    tasks, keys = _tasks(4)
    camp = tmp_path / "camp"
    thief = Lease(camp / "shard-0.lease", ttl=3600.0)
    thief.path.parent.mkdir(parents=True)
    assert thief.try_acquire()

    spec = ShardSpec(campaign_dir=str(camp), shard=0, shards=1,
                     worker=_double, tasks=tasks, keys=keys,
                     fingerprint="fp", lease_ttl=3600.0)
    # The shard can neither acquire (thief holds it) nor steal (the thief
    # is this very process, alive and fresh) — it must leave the work to
    # the lease holder and exit cleanly.
    assert _run_shard(spec) == 0
    assert not (camp / "shard-0.journal").exists()
    assert thief.held()


def test_steal_counters_reach_the_report(tmp_path):
    tasks, keys = _tasks(6)
    camp = tmp_path / "camp"
    camp.mkdir()
    # Pre-write shard 1's journal as if a dead shard left it half-done.
    victim = Journal(camp / "shard-1.journal", "fp")
    victim.record("t1", 2, meta={"by": "shard-1", "stolen": False})
    victim.close()
    report = run_sharded(_double, tasks, keys, camp, "fp", shards=2,
                         resume=True, lease_ttl=0.5)
    assert not report.degraded
    # t3/t5 were computed by whichever process owned the lease when shard
    # 1's slice ran; they carry stolen provenance iff a non-owner did.
    assert report.completed == {f"t{i}": i * 2 for i in range(6)}
    assert report.provenance["t1"]["by"] == "shard-1"


# ------------------------------------------------------------- degradation
def test_poison_task_degrades_to_structured_failure(tmp_path):
    tasks, keys = _tasks(9)
    report = run_sharded(_poison_seven, tasks, keys, tmp_path / "camp",
                         "fp", shards=3,
                         shard_policy=SupervisionPolicy(retries=1,
                                                        backoff=0.02),
                         lease_ttl=0.8)
    assert report.degraded
    assert set(report.failures) == {"t7"}
    failure = report.failures["t7"]
    assert failure["kind"] in ("killed", "shard")
    assert len(report.completed) == 8
    assert report.stats.failed_tasks == 1


def test_unsalvageable_shard_reports_kind_shard(tmp_path):
    tasks, keys = _tasks(8)
    report = run_sharded(_poison_seven, tasks, keys, tmp_path / "camp",
                         "fp", shards=2, salvage=False,
                         shard_policy=SupervisionPolicy(retries=0,
                                                        backoff=0.02),
                         lease_ttl=0.2)
    # Without the salvage pass the poisoned task can never complete; it
    # must degrade to a structured kind="shard" failure, not a crash.
    # (t7 lives on shard 1; survivors may steal the journal and die on
    # the same task — either way the failure is structured.)
    assert "t7" not in report.completed
    assert report.failures["t7"]["kind"] == "shard"


def test_exit_lease_lost_constant_is_distinct():
    assert EXIT_LEASE_LOST not in (0, 1, 2, 130)
