"""The deterministic parallel executor and its bench/verify integration."""

import pytest

from repro.harness.experiments import BENCH_CONFIG_KEYS, Lab
from repro.harness.parallel import run_tasks
from repro.harness.report import bench_json, render_all
from repro.workloads.registry import Workload

SOURCE = """
global xs[8];
global n = 0;
func main() {
    var s = 0;
    for (var i = 0; i < n; i = i + 1) {
        if (xs[i] > 3) { s = s + xs[i]; }
    }
    print(s);
}
"""


def _stub(name="awk", eval_inputs=None):
    return Workload(name=name, paper_benchmark="n/a", description="stub",
                    source=SOURCE,
                    train={"xs": [1, 5, 2, 6, 3, 7, 4, 8], "n": 8},
                    eval=(eval_inputs if eval_inputs is not None
                          else {"xs": [8, 1, 7, 2, 6, 3, 5, 4], "n": 8}))


# Workers must be module-level for pickling across the pool.
def _square(x):
    return x * x


def _explode_on_three(x):
    if x == 3:
        raise ValueError(f"boom {x}")
    return x


class _UnpicklableError(Exception):
    """An exception no pickle can ship: it holds a lambda."""

    def __init__(self, message):
        super().__init__(message)
        self.resource = lambda: None


def _raise_unpicklable(x):
    if x == 1:
        raise _UnpicklableError("cannot cross the pipe")
    return x


@pytest.mark.parametrize("jobs", [1, 2])
def test_run_tasks_preserves_order(jobs):
    outcomes = run_tasks(_square, list(range(8)), jobs=jobs)
    assert [o.index for o in outcomes] == list(range(8))
    assert [o.value for o in outcomes] == [i * i for i in range(8)]
    assert all(o.ok for o in outcomes)


@pytest.mark.parametrize("jobs", [1, 2])
def test_run_tasks_captures_errors_per_task(jobs):
    outcomes = run_tasks(_explode_on_three, [1, 2, 3, 4], jobs=jobs)
    assert [o.ok for o in outcomes] == [True, True, False, True]
    assert outcomes[2].error == "ValueError: boom 3"
    assert outcomes[2].value is None
    assert outcomes[3].value == 4


@pytest.mark.parametrize("jobs", [1, 2])
def test_unpicklable_exception_degrades_to_one_task(jobs):
    """Regression: an exception holding unpicklable state used to crash the
    pool when the worker tried to send it home.  Only its type name,
    message, and traceback text cross the process boundary."""
    outcomes = run_tasks(_raise_unpicklable, [0, 1, 2], jobs=jobs)
    assert [o.ok for o in outcomes] == [True, False, True]
    assert outcomes[1].kind == "exception"
    assert "_UnpicklableError" in outcomes[1].error
    assert "cannot cross the pipe" in outcomes[1].error
    assert "_raise_unpicklable" in (outcomes[1].traceback or "")


def test_supervised_populate_ships_worker_errors_home():
    """The bench integration: an exception raised inside a worker cell
    crosses the pipe as text (type name + message, never the object) and
    lands in ``Lab.errors`` as an ERR cell."""
    lab = Lab([_stub(name="notinregistry")])
    lab.populate(jobs=2)
    assert all("KeyError" in lab.errors[("notinregistry", key)]
               for key in BENCH_CONFIG_KEYS)
    from repro.harness.report import render_errors
    assert "notinregistry/scalar: KeyError" in render_errors(lab)


def test_policy_timeout_forces_a_supervised_pool():
    from repro.harness.resilience import SupervisionPolicy
    outcomes = run_tasks(_square, [1, 2], jobs=1,
                         policy=SupervisionPolicy(timeout=60.0))
    assert [o.value for o in outcomes] == [1, 4]


def test_bench_config_keys_cover_all_report_configs():
    assert "scalar" in BENCH_CONFIG_KEYS
    assert "dynamic" in BENCH_CONFIG_KEYS
    assert "dynamic_rename" in BENCH_CONFIG_KEYS
    assert len(BENCH_CONFIG_KEYS) == len(set(BENCH_CONFIG_KEYS))


def test_populate_serial_matches_lazy_render():
    lazy = Lab([_stub()])
    text_lazy = render_all(lazy)
    eager = Lab([_stub()])
    eager.populate(jobs=1)
    assert render_all(eager) == text_lazy


def test_cell_captures_value_and_key_errors():
    lab = Lab([_stub()])
    # Unknown configuration key: escapes as KeyError without the broadened
    # catch and would abort the whole report.
    assert lab.cell("awk", "no_such_config") is None
    assert "KeyError" in lab.errors[("awk", "no_such_config")]

    # A bad input image surfaces as ValueError from make_input_image.
    lab2 = Lab([_stub(eval_inputs={"nonexistent_global": 1})])
    assert lab2.cell("awk", "scalar") is None
    assert "ValueError" in lab2.errors[("awk", "scalar")]
    # The report still renders, degraded.
    assert "ERR" in render_all(lab2)


def test_bench_json_schema_and_degradation():
    lab = Lab([_stub()])
    data = bench_json(lab)
    assert data["schema"] == "repro-bench/1"
    assert data["table1"][0]["name"] == "awk"
    assert isinstance(data["table1"][0]["cycles"], int)
    assert set(data["figure8"]["geomeans"]) == {"bb", "global", "global_inf"}
    assert data["errors"] == {}

    degraded = bench_json(Lab([_stub(eval_inputs={"nonexistent_global": 1})]))
    assert degraded["table1"][0]["cycles"] is None
    assert any("ValueError" in v for v in degraded["errors"].values())
