"""The supervision layer: timeouts, worker replacement, retries, journals,
chaos injection, and graceful shutdown."""

import os
import signal
import time
import warnings
from pathlib import Path

import pytest

from repro.harness.resilience import (
    CampaignInterrupted, ChaosConfig, Journal, JournalError,
    SupervisionPolicy, graceful_signals, run_supervised,
)

#: fast retry schedule so the supervision tests don't sleep for real
FAST = dict(backoff=0.01, jitter=0.1)


# Workers must be module-level for pickling across the pool.
def _square(x):
    return x * x


def _sleepy(task):
    value, seconds = task
    time.sleep(seconds)
    return value


def _exit_on_two(x):
    if x == 2:
        os._exit(9)
    return x


def _flaky(task):
    """Fail until the ``needed``-th attempt, tracked via marker files (each
    attempt runs in a fresh worker process, so memory won't do)."""
    x, marker_dir, needed = task
    markers = Path(marker_dir)
    attempt = len(list(markers.glob(f"{x}-*"))) + 1
    (markers / f"{x}-{attempt}").touch()
    if attempt < needed:
        raise RuntimeError(f"flaky task {x} failing attempt {attempt}")
    return x * 10


def _return_lambda(x):
    return lambda: x


# ------------------------------------------------------------------- policy
def test_policy_backoff_deterministic_and_bounded():
    policy = SupervisionPolicy(retries=5, backoff=0.5, backoff_cap=2.0,
                               jitter=0.5, seed=3)
    delays = [policy.delay(4, attempt) for attempt in range(1, 6)]
    assert delays == [policy.delay(4, attempt) for attempt in range(1, 6)]
    for attempt, delay in enumerate(delays, start=1):
        base = min(2.0, 0.5 * 2 ** (attempt - 1))
        assert base <= delay <= base * 1.5
    # The jitter is per-(task, attempt): sibling tasks don't thunder in herd.
    assert policy.delay(4, 1) != policy.delay(5, 1)


def test_policy_attempt_budget():
    assert SupervisionPolicy().attempts_allowed() == 1
    assert SupervisionPolicy(retries=2).attempts_allowed() == 3


# -------------------------------------------------------------- supervision
def test_run_supervised_preserves_order():
    outcomes = run_supervised(_square, list(range(10)), jobs=3)
    assert [o.index for o in outcomes] == list(range(10))
    assert [o.value for o in outcomes] == [i * i for i in range(10)]
    assert all(o.ok and o.attempts == 1 for o in outcomes)


def test_hung_worker_is_killed_and_reported():
    policy = SupervisionPolicy(timeout=0.5)
    tasks = [(0, 0.0), (1, 60.0), (2, 0.0)]
    outcomes = run_supervised(_sleepy, tasks, jobs=2, policy=policy)
    assert outcomes[0].ok and outcomes[2].ok
    assert outcomes[1].kind == "timeout"
    assert "timeout" in outcomes[1].error


def test_killed_worker_is_replaced_and_siblings_survive():
    outcomes = run_supervised(_exit_on_two, [1, 2, 3, 4], jobs=2)
    assert [o.ok for o in outcomes] == [True, False, True, True]
    assert outcomes[1].kind == "killed"
    assert "died mid-task" in outcomes[1].error


def test_retries_eventually_succeed(tmp_path):
    policy = SupervisionPolicy(retries=3, **FAST)
    tasks = [(x, str(tmp_path), 3) for x in range(3)]
    outcomes = run_supervised(_flaky, tasks, jobs=2, policy=policy)
    assert [o.value for o in outcomes] == [0, 10, 20]
    assert all(o.attempts == 3 for o in outcomes)


def test_retry_exhaustion_records_the_budget(tmp_path):
    policy = SupervisionPolicy(retries=2, **FAST)
    outcomes = run_supervised(_flaky, [(7, str(tmp_path), 99)], jobs=1,
                              policy=policy)
    assert outcomes[0].kind == "exception"
    assert "(attempt 3/3)" in outcomes[0].error


def test_unpicklable_result_degrades_to_one_task():
    outcomes = run_supervised(_return_lambda, [1], jobs=1)
    assert outcomes[0].kind == "unpicklable"
    assert "not picklable" in outcomes[0].error


def test_unpicklable_task_fails_without_hanging():
    outcomes = run_supervised(_square, [lambda: 1], jobs=1)
    assert outcomes[0].kind == "unpicklable"
    assert "task not picklable" in outcomes[0].error


# -------------------------------------------------------------------- chaos
def test_chaos_run_converges_to_clean_values():
    clean = [o.value for o in run_supervised(_square, list(range(12)),
                                             jobs=2)]
    chaos = ChaosConfig(seed=5, hang=0.0)  # kills + corruptions, no hangs
    policy = SupervisionPolicy(retries=2, seed=5, **FAST)
    outcomes = run_supervised(_square, list(range(12)), jobs=2,
                              policy=policy, chaos=chaos)
    assert [o.value for o in outcomes] == clean
    assert all(o.ok for o in outcomes)


def test_chaos_hang_is_reaped_by_the_watchdog():
    chaos = ChaosConfig(seed=1, kill=0.0, corrupt=0.0, hang=1.0,
                        max_faults=1, hang_seconds=60.0)
    policy = SupervisionPolicy(timeout=0.4, retries=1, **FAST)
    outcomes = run_supervised(_square, [2, 3], jobs=2, policy=policy,
                              chaos=chaos)
    assert [o.value for o in outcomes] == [4, 9]
    assert all(o.attempts == 2 for o in outcomes)  # hang, reap, clean retry


def test_chaos_never_fires_past_max_faults():
    chaos = ChaosConfig(seed=0, kill=1.0, max_faults=2)
    chaos.misbehave(0, 3)  # would os._exit the test process if it fired


# ---------------------------------------------------------------- interrupts
def test_campaign_interrupted_is_a_keyboard_interrupt():
    err = CampaignInterrupted(3, 10)
    assert isinstance(err, KeyboardInterrupt)
    assert err.completed == 3 and err.total == 10
    assert "3/10" in str(err)


def test_graceful_signals_routes_sigterm_and_restores_handler():
    before = signal.getsignal(signal.SIGTERM)
    with pytest.raises(KeyboardInterrupt):
        with graceful_signals():
            os.kill(os.getpid(), signal.SIGTERM)
            time.sleep(0.5)  # let the handler run at a bytecode boundary
    assert signal.getsignal(signal.SIGTERM) is before


# ------------------------------------------------------------------ journal
@pytest.fixture
def fingerprint():
    return Journal.make_fingerprint(command="test", seeds=3)


def test_journal_round_trip(tmp_path, fingerprint):
    path = tmp_path / "c.journal"
    journal = Journal(path, fingerprint)
    journal.record("grep/scalar", (1, None))
    journal.record("grep/global", ("x", ["y"]))
    journal.close()
    resumed = Journal(path, fingerprint, resume=True)
    assert resumed.completed == {"grep/scalar": (1, None),
                                 "grep/global": ("x", ["y"])}
    assert resumed.recovered_bytes == 0
    resumed.record("grep/boost1", (3, None))
    resumed.close()
    again = Journal(path, fingerprint, resume=True)
    assert set(again.completed) == {"grep/scalar", "grep/global",
                                    "grep/boost1"}
    again.close()


def test_journal_truncates_torn_tail(tmp_path, fingerprint):
    path = tmp_path / "c.journal"
    journal = Journal(path, fingerprint)
    journal.record("a", 1)
    journal.record("b", 2)
    journal.close()
    intact = path.read_bytes()
    # A crash mid-append: half a record, no trailing newline.
    path.write_bytes(intact + b'{"key": "c", "sha": "0123", "da')
    resumed = Journal(path, fingerprint, resume=True)
    assert set(resumed.completed) == {"a", "b"}
    assert resumed.recovered_bytes > 0
    resumed.record("c", 3)  # appends cleanly after the truncation
    resumed.close()
    final = Journal(path, fingerprint, resume=True)
    assert final.completed == {"a": 1, "b": 2, "c": 3}
    final.close()


def test_journal_checksum_guards_each_record(tmp_path, fingerprint):
    path = tmp_path / "c.journal"
    journal = Journal(path, fingerprint)
    journal.record("a", 1)
    journal.record("b", 2)
    journal.close()
    header, rec_a, rec_b = path.read_bytes().splitlines(keepends=True)
    # Corrupt record a's payload: it and everything after it is discarded.
    path.write_bytes(header + rec_a.replace(b'"data": "', b'"data": "!')
                     + rec_b)
    resumed = Journal(path, fingerprint, resume=True)
    assert resumed.completed == {}
    resumed.close()


def test_journal_rejects_a_different_campaign(tmp_path, fingerprint):
    path = tmp_path / "c.journal"
    Journal(path, fingerprint).close()
    with pytest.raises(JournalError, match="different campaign"):
        Journal(path, "another-fingerprint", resume=True)


def test_journal_rejects_a_non_journal_file(tmp_path, fingerprint):
    path = tmp_path / "c.journal"
    path.write_text("hello\nworld\n")
    with pytest.raises(JournalError):
        Journal(path, fingerprint, resume=True)


def test_journal_without_resume_starts_fresh(tmp_path, fingerprint):
    path = tmp_path / "c.journal"
    journal = Journal(path, fingerprint)
    journal.record("a", 1)
    journal.close()
    fresh = Journal(path, fingerprint, resume=False)
    assert fresh.completed == {}
    fresh.close()
    assert Journal(path, fingerprint, resume=True).completed == {}


def test_make_fingerprint_is_stable_and_sensitive():
    assert (Journal.make_fingerprint(a=1, b=[2, 3])
            == Journal.make_fingerprint(b=[2, 3], a=1))
    assert (Journal.make_fingerprint(a=1)
            != Journal.make_fingerprint(a=2))


def test_torn_tail_truncation_warns_with_counts(tmp_path, fingerprint):
    path = tmp_path / "c.journal"
    journal = Journal(path, fingerprint)
    journal.record("a", 1)
    journal.record("b", 2)
    journal.close()
    intact = path.read_bytes()
    path.write_bytes(intact + b'{"key": "c", "sha": "0123", "da')
    with pytest.warns(UserWarning, match=r"kept 2 record\(s\), dropped 1"):
        Journal(path, fingerprint, resume=True).close()


def test_clean_resume_does_not_warn(tmp_path, fingerprint):
    path = tmp_path / "c.journal"
    journal = Journal(path, fingerprint)
    journal.record("a", 1)
    journal.close()
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        Journal(path, fingerprint, resume=True).close()


def test_fingerprint_mismatch_names_the_diverged_facet(tmp_path):
    path = tmp_path / "c.journal"
    theirs = dict(command="bench", seeds=3, workloads=["grep"])
    Journal(path, Journal.make_fingerprint(**theirs),
            facets=theirs).close()
    ours = dict(command="bench", seeds=5, workloads=["grep", "awk"])
    with pytest.raises(JournalError) as err:
        Journal(path, Journal.make_fingerprint(**ours), resume=True,
                facets=ours)
    message = str(err.value)
    assert "seeds: 3 -> 5" in message
    assert "workloads: ['grep'] -> ['grep', 'awk']" in message
    assert "command" not in message.split("diverged")[1]


def test_fingerprint_mismatch_without_facets_stays_generic(tmp_path,
                                                           fingerprint):
    path = tmp_path / "c.journal"
    Journal(path, fingerprint).close()
    with pytest.raises(JournalError, match="workloads/models/seeds changed"):
        Journal(path, "another-fingerprint", resume=True)


def test_peek_reads_without_truncating(tmp_path, fingerprint):
    path = tmp_path / "c.journal"
    journal = Journal(path, fingerprint)
    journal.record("a", 1, meta={"by": "shard-0", "stolen": False})
    journal.record("b", 2)
    journal.close()
    torn = path.read_bytes() + b'{"key": "c", "sha": "0123'
    path.write_bytes(torn)
    completed, meta = Journal.peek(path)
    assert completed == {"a": 1, "b": 2}
    assert meta == {"a": {"by": "shard-0", "stolen": False}}
    assert path.read_bytes() == torn  # untouched: a live writer may own it


def test_peek_verifies_the_fingerprint_when_given(tmp_path, fingerprint):
    path = tmp_path / "c.journal"
    Journal(path, fingerprint).close()
    Journal.peek(path, fingerprint)  # no raise
    with pytest.raises(JournalError):
        Journal.peek(path, "another-fingerprint")


def test_record_meta_round_trips(tmp_path, fingerprint):
    path = tmp_path / "c.journal"
    journal = Journal(path, fingerprint)
    journal.record("a", 1, meta={"by": "salvage", "stolen": True})
    journal.record("b", 2)
    journal.close()
    resumed = Journal(path, fingerprint, resume=True)
    assert resumed.meta == {"a": {"by": "salvage", "stolen": True}}
    assert resumed.completed == {"a": 1, "b": 2}
    resumed.close()


# ----------------------------------------------------------- batch deadline
def test_preemptive_property():
    assert not SupervisionPolicy().preemptive
    assert SupervisionPolicy(timeout=1.0).preemptive
    assert SupervisionPolicy(deadline=1.0).preemptive
    assert SupervisionPolicy(timeout=1.0, deadline=1.0).preemptive


def test_batch_deadline_expires_unstarted_and_running_tasks():
    # Two slow tasks on one worker against a 0.3s batch budget: the first
    # is running when the budget dies ("mid-task"), the second never got a
    # worker ("before the task ran").  Both degrade to kind "deadline".
    policy = SupervisionPolicy(deadline=0.3, retries=0, **FAST)
    tasks = [(1, 30.0), (2, 30.0)]
    t0 = time.monotonic()
    outcomes = run_supervised(_sleepy, tasks, jobs=1, policy=policy)
    assert time.monotonic() - t0 < 20.0  # nowhere near the task runtimes
    assert [o.kind for o in outcomes] == ["deadline", "deadline"]
    assert "mid-task" in outcomes[0].error
    assert "before the task ran" in outcomes[1].error
    assert not outcomes[0].ok and not outcomes[1].ok


def test_generous_deadline_changes_nothing():
    policy = SupervisionPolicy(deadline=120.0, retries=0, **FAST)
    outcomes = run_supervised(_square, list(range(6)), jobs=2,
                              policy=policy)
    assert [o.value for o in outcomes] == [x * x for x in range(6)]
    assert all(o.kind == "ok" for o in outcomes)


def test_deadline_alone_forces_a_pool():
    # A deadline needs preemption, so even jobs=1 must cross a process
    # boundary — otherwise a wedged task could never be interrupted.
    from repro.harness.parallel import run_tasks

    policy = SupervisionPolicy(deadline=0.2, retries=0, **FAST)
    outcomes = run_tasks(_sleepy, [(1, 30.0)], jobs=1, policy=policy)
    assert outcomes[0].kind == "deadline"


# ---------------------------------------------- cross-process jitter pinning
def test_retry_jitter_is_deterministic_across_processes():
    # The seeded backoff jitter must be a pure function of (seed, index,
    # attempt) — not of hash randomization, process start time, or any
    # other per-process state.  Compute the same delay grid in two fresh
    # interpreters (different PYTHONHASHSEED to be sure) and in-process.
    import subprocess
    import sys

    snippet = (
        "from repro.harness.resilience import SupervisionPolicy\n"
        "p = SupervisionPolicy(seed=42, backoff=0.25, jitter=0.5)\n"
        "grid = [p.delay(i, a) for i in range(8) for a in range(1, 4)]\n"
        "print(repr(grid))\n"
    )
    outs = []
    for hashseed in ("0", "1"):
        env = dict(os.environ, PYTHONHASHSEED=hashseed)
        env["PYTHONPATH"] = os.pathsep.join(
            ["src"] + env.get("PYTHONPATH", "").split(os.pathsep))
        result = subprocess.run([sys.executable, "-c", snippet],
                                capture_output=True, text=True, env=env,
                                check=True, cwd=str(Path(__file__).parents[2]))
        outs.append(result.stdout.strip())
    assert outs[0] == outs[1]
    policy = SupervisionPolicy(seed=42, backoff=0.25, jitter=0.5)
    local = repr([policy.delay(i, a)
                  for i in range(8) for a in range(1, 4)])
    assert outs[0] == local
