"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main

SOURCE = """
global data[8];
global n = 0;
func main() {
    var s = 0;
    for (var i = 0; i < n; i = i + 1) { s = s + data[i]; }
    print(s);
}
"""
TRAIN = json.dumps({"data": [1, 2, 3, 4, 5, 6, 7, 8], "n": 8})


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "demo.mc"
    path.write_text(SOURCE)
    return str(path)


def test_run_prints_output_and_stats(source_file, capsys):
    rc = main(["run", source_file, "--train", TRAIN])
    out, err = capsys.readouterr()
    assert rc == 0
    assert out.splitlines()[0] == "36"
    assert "cycles=" in err and "oracle=OK" in err


def test_run_scalar_machine(source_file, capsys):
    rc = main(["run", source_file, "--machine", "scalar",
               "--model", "NoBoost", "--scheduler", "bb",
               "--train", TRAIN])
    out, err = capsys.readouterr()
    assert rc == 0
    assert "scalar-r2000" in err


def test_compile_dumps_schedule(source_file, capsys):
    rc = main(["compile", source_file, "--model", "Boost7",
               "--train", TRAIN])
    out, _ = capsys.readouterr()
    assert rc == 0
    assert "proc main:" in out
    assert "<branch>" in out
    assert "boosted=" in out


def test_compile_with_unroll(source_file, capsys):
    rc = main(["compile", source_file, "--unroll", "2", "--train", TRAIN])
    out, _ = capsys.readouterr()
    assert rc == 0
    assert ".u1" in out  # the unrolled copy's labels


def test_workloads_listing(capsys):
    assert main(["workloads"]) == 0
    out, _ = capsys.readouterr()
    for name in ("awk", "compress", "eqntott", "espresso", "grep", "nroff",
                 "xlisp"):
        assert name in out


def test_models_listing(capsys):
    assert main(["models"]) == 0
    out, _ = capsys.readouterr()
    assert "MinBoost3" in out and "Squashing" in out


def test_bench_rejects_unknown_workload(capsys):
    assert main(["bench", "nonesuch"]) == 2


def test_bench_rejects_unknown_sabotage_target(capsys):
    assert main(["bench", "grep", "--sabotage", "nonesuch"]) == 2
    _, err = capsys.readouterr()
    assert "unknown sabotage workload" in err


@pytest.mark.parametrize("command", ["compile", "run"])
def test_missing_source_file_is_one_line_error(command, tmp_path, capsys):
    missing = str(tmp_path / "no" / "such.mc")
    rc = main([command, missing])
    out, err = capsys.readouterr()
    assert rc == 2
    assert out == ""
    assert err.count("\n") == 1
    assert err.startswith(f"repro: cannot read {missing}: ")


@pytest.mark.parametrize("command", ["compile", "run"])
def test_unreadable_source_file_is_one_line_error(command, tmp_path, capsys):
    # A directory triggers the OSError branch even when running as root.
    rc = main([command, str(tmp_path)])
    _, err = capsys.readouterr()
    assert rc == 2
    assert err.count("\n") == 1
    assert err.startswith(f"repro: cannot read {tmp_path}: ")


def test_verify_rejects_unknown_workload(capsys):
    rc = main(["verify", "--workloads", "nonesuch",
               "--seeds", "1", "--no-selftest"])
    _, err = capsys.readouterr()
    assert rc == 2
    assert "nonesuch" in err


def test_verify_rejects_unknown_model(capsys):
    rc = main(["verify", "--models", "nonesuch",
               "--seeds", "1", "--no-selftest"])
    _, err = capsys.readouterr()
    assert rc == 2
    assert "nonesuch" in err


def test_verify_single_seed_runs(capsys):
    rc = main(["verify", "--workloads", "grep", "--models", "boost1",
               "--seed", "3", "--no-selftest"])
    out, _ = capsys.readouterr()
    assert rc == 0
    assert "divergences: 0" in out


def test_bench_resume_refuses_a_foreign_journal(tmp_path, capsys):
    from repro.harness.resilience import Journal
    path = tmp_path / "bench.journal"
    Journal(path, "not-the-bench-fingerprint").close()
    rc = main(["bench", "grep", "--no-cache",
               "--journal", str(path), "--resume"])
    out, err = capsys.readouterr()
    assert rc == 2
    assert out == ""
    assert err.count("\n") == 1
    assert "different campaign" in err


def test_verify_journal_then_resume_is_byte_identical(tmp_path, capsys):
    cache = str(tmp_path / "cache")
    journal = str(tmp_path / "verify.journal")
    args = ["verify", "--workloads", "grep", "--models", "boost1",
            "--seeds", "1", "--no-selftest", "--cache-dir", cache,
            "--journal", journal]
    assert main(args) == 0
    clean, _ = capsys.readouterr()
    assert main(args + ["--resume"]) == 0
    resumed, err = capsys.readouterr()
    assert resumed == clean
    assert "preparing" not in err  # fully journaled: nothing recomputed


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


@pytest.mark.parametrize("command", ["compile", "run"])
@pytest.mark.parametrize("bad_source, fragment", [
    ("func main() { var x = ; }", "parse"),          # parse error
    ("func main() { y = 1; }", "y"),                 # codegen: unknown var
    ("func main() { var a = `; }", "`"),             # lex error
])
def test_minic_errors_are_one_line_exit_2(command, bad_source, fragment,
                                          tmp_path, capsys):
    path = tmp_path / "bad.mc"
    path.write_text(bad_source)
    rc = main([command, str(path)])
    out, err = capsys.readouterr()
    assert rc == 2
    assert out == ""
    assert err.count("\n") == 1
    assert err.startswith(f"repro: {path}: ")


def test_bench_journal_mismatch_names_the_diverged_field(tmp_path, capsys):
    from repro.harness.cache import CODE_VERSION
    from repro.harness.experiments import BENCH_CONFIG_KEYS
    from repro.harness.resilience import Journal

    # A real grep-only bench journal...
    facets = dict(command="bench", code_version=CODE_VERSION,
                  workloads=["grep"], sabotage=None,
                  configs=BENCH_CONFIG_KEYS, stats=False)
    path = tmp_path / "bench.journal"
    Journal(path, Journal.make_fingerprint(**facets), facets=facets).close()
    # ...resumed for a different workload set: the one-line exit-2 error
    # must say the workloads facet diverged (and not blame the others).
    rc = main(["bench", "awk", "--no-cache",
               "--journal", str(path), "--resume"])
    out, err = capsys.readouterr()
    assert rc == 2
    assert out == ""
    assert err.count("\n") == 1
    assert "different campaign" in err
    assert "workloads: ['grep'] -> ['awk']" in err
    assert "seeds" not in err and "configs" not in err


def test_verify_sharded_is_byte_identical_to_serial(tmp_path, capsys):
    cache = str(tmp_path / "cache")
    base = ["verify", "--workloads", "grep", "--models", "boost1",
            "squashing", "--seeds", "1", "--no-selftest",
            "--cache-dir", cache]
    assert main(base) == 0
    serial, _ = capsys.readouterr()
    journal = str(tmp_path / "verify.journal")
    assert main(base + ["--shards", "2", "--journal", journal]) == 0
    sharded, err = capsys.readouterr()
    assert sharded == serial
    assert "shards=2" in err
    # The campaign dir holds one lease-guarded journal per shard.
    assert (tmp_path / "verify.journal.shards").is_dir()


def test_verify_sharded_resume_refuses_a_foreign_campaign(tmp_path, capsys):
    cache = str(tmp_path / "cache")
    journal = str(tmp_path / "verify.journal")
    base = ["verify", "--workloads", "grep", "--models", "boost1",
            "--no-selftest", "--cache-dir", cache, "--journal", journal,
            "--shards", "2"]
    assert main(base + ["--seeds", "1"]) == 0
    capsys.readouterr()
    rc = main(base + ["--seeds", "2", "--resume"])
    _, err = capsys.readouterr()
    assert rc == 2
    assert "different campaign" in err
    assert "seeds: 1 -> 2" in err


# ------------------------------------------------- argparse-time validation
@pytest.mark.parametrize("argv, fragment", [
    (["bench", "--jobs", "0"], "must be at least 1"),
    (["bench", "--jobs", "-3"], "must be at least 1"),
    (["bench", "--jobs", "two"], "expected a positive integer"),
    (["verify", "--shards", "0"], "must be at least 1"),
    (["verify", "--shards", "1.5"], "expected a positive integer"),
    (["bench", "--retries", "-2"], "must be at least 0"),
    (["bench", "--retries", "many"], "expected a non-negative integer"),
    (["bench", "--timeout", "0"], "must be greater than 0"),
    (["bench", "--timeout", "-1"], "must be greater than 0"),
    (["bench", "--timeout", "nan"], "must be greater than 0"),
    (["bench", "--timeout", "soon"], "expected a positive number"),
])
def test_bad_parallel_options_fail_at_parse_time(argv, fragment, capsys):
    # Bad values must die in argparse with exit code 2 and a one-line
    # message — not hours later inside a worker pool.
    with pytest.raises(SystemExit) as exc:
        main(argv)
    assert exc.value.code == 2
    _, err = capsys.readouterr()
    # One diagnostic line after the usage text, fragment included.
    last = err.rstrip().splitlines()[-1]
    assert fragment in last
    assert last.startswith("repro")


def test_good_parallel_options_still_parse(tmp_path, capsys):
    rc = main(["bench", "awk", "--jobs", "2", "--timeout", "30",
               "--retries", "1", "--cache-dir", str(tmp_path / "cache")])
    assert rc == 0
