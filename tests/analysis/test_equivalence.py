"""Tests for data-dependence conflict detection (the 'data equivalence'
half of §3.2.2)."""

from repro.analysis.equivalence import conflicts_with, data_equivalent_over
from repro.isa import Instruction, Opcode, Reg

T0, T1, T2, T3 = (Reg.named(f"t{i}") for i in range(4))


def add(dst, a, b):
    return Instruction(Opcode.ADD, dst=dst, srcs=(a, b))


def test_raw_conflict():
    producer = add(T0, T1, T1)
    consumer = add(T2, T0, T0)
    assert conflicts_with(consumer, producer)


def test_war_conflict():
    reader = add(T2, T0, T0)
    writer = add(T0, T1, T1)
    assert conflicts_with(writer, reader)


def test_waw_conflict():
    a = add(T0, T1, T1)
    b = add(T0, T2, T2)
    assert conflicts_with(a, b)


def test_independent_no_conflict():
    a = add(T0, T1, T1)
    b = add(T2, T3, T3)
    assert not conflicts_with(a, b)


def test_memory_conflicts_are_conservative():
    store = Instruction(Opcode.SW, srcs=(T0, T1), imm=0)
    load = Instruction(Opcode.LW, dst=T2, srcs=(T3,), imm=100)
    assert conflicts_with(store, load)   # store moved above a load
    assert conflicts_with(load, store)   # load moved above a store
    load2 = Instruction(Opcode.LW, dst=T3, srcs=(T1,), imm=8)
    load3 = Instruction(Opcode.LW, dst=T2, srcs=(T1,), imm=0)
    assert not conflicts_with(load3, load2)  # loads commute


def test_call_is_a_barrier_for_everything():
    call = Instruction(Opcode.JAL, target="f")
    pure = add(T0, T1, T1)
    assert conflicts_with(pure, call)


def test_data_equivalent_over():
    moving = add(T0, T1, T1)
    clean_path = [add(T2, T3, T3)]
    dirty_path = [add(T1, T3, T3)]  # writes the moving instr's source
    assert data_equivalent_over(moving, clean_path)
    assert not data_equivalent_over(moving, dirty_path)
