"""Tests for dominators, postdominators, equivalence, and regions."""

from repro.analysis import ControlEquivalence, Dominators, PostDominators, RegionTree
from repro.isa import Reg, ZERO
from repro.program import CFG, ProcBuilder

T0, T1 = Reg.named("t0"), Reg.named("t1")


def build_diamond():
    b = ProcBuilder("p")
    b.label("A")
    b.beq(T0, ZERO, "C")
    b.label("B")
    b.j("D")
    b.label("C")
    b.label("D")
    b.halt()
    return CFG(b.build())


def test_dominators_diamond():
    dom = Dominators(build_diamond())
    assert dom.dominates("A", "D")
    assert dom.dominates("A", "B")
    assert not dom.dominates("B", "D")
    assert dom.idom["D"] == "A"
    assert dom.strictly_dominates("A", "D")
    assert not dom.strictly_dominates("A", "A")


def test_postdominators_diamond():
    pdom = PostDominators(build_diamond())
    assert pdom.postdominates("D", "A")
    assert pdom.postdominates("D", "B")
    assert not pdom.postdominates("B", "A")


def test_control_equivalence_figure3():
    # Figure 3 of the paper: A and D are equivalent; B and C are not.
    eq = ControlEquivalence(build_diamond())
    assert eq.equivalent("A", "D")
    assert not eq.equivalent("A", "B")
    assert not eq.equivalent("B", "D")


def test_regions_simple_loop():
    b = ProcBuilder("p")
    b.label("entry")
    b.li(T0, 10)
    b.label("loop")
    b.addi(T0, T0, -1)
    b.bgtz(T0, "loop")
    b.label("exit")
    b.halt()
    tree = RegionTree(CFG(b.build()))
    assert len(tree.loops) == 1
    loop = tree.loops[0]
    assert loop.header == "loop"
    assert loop.blocks == frozenset({"loop"})
    order = tree.schedule_order()
    assert order[0] is loop and order[-1] is tree.root


def test_regions_nested_loops():
    b = ProcBuilder("p")
    b.label("entry")
    b.label("outer")
    b.label("inner")
    b.addi(T0, T0, -1)
    b.bgtz(T0, "inner")
    b.label("outer_latch")
    b.addi(T1, T1, -1)
    b.bgtz(T1, "outer")
    b.label("exit")
    b.halt()
    tree = RegionTree(CFG(b.build()))
    assert len(tree.loops) == 2
    inner = tree.innermost_region_of("inner")
    outer = tree.innermost_region_of("outer_latch")
    assert inner.depth > outer.depth
    assert inner.blocks < outer.blocks
    assert inner.parent is outer
    # innermost-first schedule order
    order = tree.schedule_order()
    assert order.index(inner) < order.index(outer)
    assert not tree.same_region("inner", "exit")


def test_region_of_non_loop_block_is_root():
    cfg = build_diamond()
    tree = RegionTree(cfg)
    assert tree.innermost_region_of("B") is tree.root
    assert tree.root.is_loop is False
