"""Tests for memory disambiguation and the generic dataflow solver."""

import pytest

from repro.analysis.dataflow import solve_forward
from repro.analysis.memdep import access_size, base_reg, may_alias
from repro.isa import Instruction, Opcode, Reg
from repro.program import CFG, ProcBuilder

T0, T1 = Reg.named("t0"), Reg.named("t1")


def lw(base, off):
    return Instruction(Opcode.LW, dst=T0, srcs=(base,), imm=off)


def sw(base, off):
    return Instruction(Opcode.SW, srcs=(T0, base), imm=off)


def sb(base, off):
    return Instruction(Opcode.SB, srcs=(T0, base), imm=off)


class TestMemDep:
    def test_same_base_disjoint_offsets(self):
        assert not may_alias(sw(T1, 0), lw(T1, 4), same_base_value=True)

    def test_same_base_same_offset(self):
        assert may_alias(sw(T1, 0), lw(T1, 0), same_base_value=True)

    def test_byte_inside_word(self):
        assert may_alias(sb(T1, 2), lw(T1, 0), same_base_value=True)
        assert not may_alias(sb(T1, 4), lw(T1, 0), same_base_value=True)

    def test_different_base_conservative(self):
        assert may_alias(sw(T0, 0), lw(T1, 100), same_base_value=False)

    def test_access_sizes(self):
        assert access_size(lw(T1, 0)) == 4
        assert access_size(sb(T1, 0)) == 1

    def test_base_reg_extraction(self):
        assert base_reg(lw(T1, 0)) is T1
        assert base_reg(sw(T1, 0)) is T1
        with pytest.raises(ValueError):
            base_reg(Instruction(Opcode.ADD, dst=T0, srcs=(T0, T1)))


class TestForwardDataflow:
    def test_reaching_style_forward_solve(self):
        # A tiny "reaching labels" problem: each block generates its own
        # label; nothing kills.  IN of the join must contain both arms.
        b = ProcBuilder("p")
        b.label("A")
        b.beq(T0, Reg.named("zero"), "C")
        b.label("B")
        b.j("D")
        b.label("C")
        b.label("D")
        b.halt()
        cfg = CFG(b.build())

        result = solve_forward(
            cfg,
            gen=lambda lab: frozenset({lab}),
            kill=lambda lab: frozenset(),
        )
        assert result.in_["D"] >= {"B", "C"}
        assert "A" in result.out["A"]

    def test_forward_boundary_reaches_entry(self):
        b = ProcBuilder("p")
        b.label("only")
        b.halt()
        cfg = CFG(b.build())
        result = solve_forward(cfg, gen=lambda lab: frozenset(),
                               kill=lambda lab: frozenset(),
                               boundary=frozenset({"seed"}))
        assert "seed" in result.in_["only"]
        assert "seed" in result.out["only"]

    def test_kill_removes_from_flow(self):
        b = ProcBuilder("p")
        b.label("A")
        b.label("B")
        b.halt()
        cfg = CFG(b.build())
        result = solve_forward(
            cfg,
            gen=lambda lab: frozenset({lab}),
            kill=lambda lab: frozenset({"A"}) if lab == "B" else frozenset(),
        )
        assert "A" not in result.out["B"]
        assert "B" in result.out["B"]
