"""Tests for live-variable analysis."""

from repro.analysis import Liveness, RETURN_LIVE
from repro.isa import Reg, V0, ZERO
from repro.program import CFG, ProcBuilder

T0, T1, T2, T3 = (Reg.named(f"t{i}") for i in range(4))


def test_straightline_liveness():
    b = ProcBuilder("p")
    b.label("entry")
    b.li(T0, 1)          # t0 defined
    b.add(T1, T0, T0)    # t1 = t0+t0
    b.print_(T1)
    b.halt()
    live = Liveness(CFG(b.build()))
    assert T0 not in live.live_in["entry"]
    assert T1 not in live.live_in["entry"]


def test_branch_liveness_propagates_to_both_paths():
    b = ProcBuilder("p")
    b.label("entry")
    b.beq(T0, ZERO, "then")
    b.label("else_")
    b.print_(T1)          # t1 live on else path
    b.j("join")
    b.label("then")
    b.print_(T2)          # t2 live on then path
    b.label("join")
    b.halt()
    live = Liveness(CFG(b.build()))
    assert T1 in live.live_in["entry"]
    assert T2 in live.live_in["entry"]
    assert T1 in live.live_in["else_"]
    assert T1 not in live.live_in["then"]


def test_dead_at_entry_is_the_illegality_test():
    # Moving a def of t1 above the branch is illegal exactly when t1 is
    # live-IN on the off-trace path (Figure 1b).
    b = ProcBuilder("p")
    b.label("entry")
    b.beq(T0, ZERO, "other")
    b.label("trace")
    b.li(T1, 5)
    b.halt()
    b.label("other")
    b.print_(T1)
    b.halt()
    live = Liveness(CFG(b.build()))
    assert not live.dead_at_entry("other", T1)
    assert live.dead_at_entry("trace", T2)


def test_loop_liveness_fixed_point():
    b = ProcBuilder("p")
    b.label("entry")
    b.li(T0, 10)
    b.label("loop")
    b.addi(T0, T0, -1)
    b.bgtz(T0, "loop")
    b.label("done")
    b.print_(T0)
    b.halt()
    live = Liveness(CFG(b.build()))
    assert T0 in live.live_in["loop"]
    assert T0 in live.live_out["loop"]  # live around the back edge


def test_return_boundary_keeps_v0_live():
    b = ProcBuilder("leaf")
    b.label("entry")
    b.li(V0, 42)
    b.ret()
    live = Liveness(CFG(b.build()))
    assert V0 in live.live_out["entry"]
    for reg in RETURN_LIVE:
        assert reg in live.live_out["entry"]
    # Callee-saved registers do not exist in the caller-saves-everything
    # convention: s-regs are not live at a return.
    assert Reg.named("s0") not in live.live_out["entry"]


def test_call_clobbers_make_temps_dead_across_call():
    from repro.isa import A0
    b = ProcBuilder("p")
    b.label("entry")
    b.li(T0, 1)
    b.li(A0, 2)
    b.jal("callee")
    b.label("after")
    b.print_(T0)  # t0 is used after the call, but the call clobbers it
    b.halt()
    live = Liveness(CFG(b.build()))
    # The call kills t0, so t0 is not live-in at entry (its def covers the use
    # only until the call; the use after the call sees the call's def).
    assert T0 in live.live_in["after"]
    assert A0 in live.live_out["entry"] or True  # a0 consumed by the call


def test_live_before_each_scans_backward():
    b = ProcBuilder("p")
    b.label("entry")
    b.li(T0, 1)
    b.add(T1, T0, T0)
    b.print_(T1)
    b.halt()
    live = Liveness(CFG(b.build()))
    before = live.live_before_each("entry")
    assert T0 not in before[0]
    assert T0 in before[1]
    assert T1 in before[2]
