"""Ablation: loop unrolling (the paper's §4.3.2 negative result).

"Though performance did increase slightly, the improvement was well below
what we expected."  The bench unrolls eligible innermost loops 1/2/4 times
under MinBoost3 and checks that the improvement is real but small — and
that correctness is untouched.
"""

from repro.harness.pipeline import CompileConfig, SCALAR_CONFIG, compile_minic
from repro.sched.boostmodel import MINBOOST3
from repro.sched.machine import SUPERSCALAR
from repro.workloads import get

WORKLOADS = ("awk", "grep")
FACTORS = (1, 2, 4)


def _sweep():
    out = {}
    for wname in WORKLOADS:
        w = get(wname)
        ref = compile_minic(w.source, SCALAR_CONFIG,
                            w.train).run_functional(w.eval).output
        cycles = {}
        for factor in FACTORS:
            cfg = CompileConfig(machine=SUPERSCALAR, model=MINBOOST3,
                                unroll=factor)
            cp = compile_minic(w.source, cfg, w.train)
            res = cp.run(w.eval)
            assert res.output == ref, (wname, factor)
            cycles[factor] = res.cycle_count
        out[wname] = cycles
    return out


def test_unrolling_helps_only_slightly(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1,
                                 warmup_rounds=0)
    print("\nAblation: MinBoost3 cycles vs unroll factor")
    for wname, cycles in results.items():
        base = cycles[1]
        cells = "  ".join(f"x{f}: {c:,} ({100 * (base / c - 1):+.1f}%)"
                          for f, c in cycles.items())
        print(f"  {wname:8s} {cells}")
    for wname, cycles in results.items():
        gain = cycles[1] / cycles[4] - 1.0
        # The paper's observation: a slight change, nowhere near the gains
        # speculative execution delivered (Table 2's ~15-20%).
        assert -0.05 < gain < 0.12, (wname, gain)
