"""Bench: regenerate Table 1 — scalar cycles, IPC, branch-prediction
accuracy per benchmark.

The benchmark times one representative scalar simulation (awk); the test
body regenerates the whole table and checks its paper-shape invariants:
sub-1 IPC on every benchmark, grep the most predictable, eqntott the least.
"""

from repro.harness import render_table1, table1


def test_table1(lab, benchmark):
    rows = benchmark.pedantic(
        lambda: table1(lab), rounds=1, iterations=1, warmup_rounds=0)
    print()
    print(render_table1(lab))

    by_name = {r.name: r for r in rows}
    paper = {"awk", "compress", "eqntott", "espresso",
             "grep", "nroff", "xlisp"}
    # Seven paper workloads, plus any fuzz-promoted stress programs.
    assert paper <= set(by_name)
    # The paper's scalar machine sustains a bit under one IPC everywhere.
    for row in rows:
        assert 0.5 < row.ipc < 1.0, row
        assert 0.6 < row.prediction_accuracy <= 1.0, row
    # Shape over the paper's own set: grep/nroff are the most predictable,
    # eqntott the least (stress programs like branchmesh are deliberately
    # harder to predict and would skew the comparison).
    accuracies = {name: by_name[name].prediction_accuracy for name in paper}
    assert accuracies["eqntott"] == min(accuracies.values())
    assert accuracies["grep"] == max(accuracies.values())
    assert accuracies["grep"] > 0.95
