#!/usr/bin/env python
"""Metrics-regression gate: compare ``bench --stats`` against a baseline.

The observability counters (``repro-stats/1``, see ``docs/observability.md``)
are deterministic: the same source + config must produce byte-identical
scheduler and simulator statistics on every machine.  This script runs

    python -m repro bench grep compress fuzzalias branchmesh \\
        --stats --json <tmp> --no-cache

and compares the ``stats`` section against the committed baseline,
``benchmarks/BENCH_stats_baseline.json``.  Any drift — a counter that moved,
appeared, or vanished — fails the gate with a readable dotted-path diff.

Counter drift is usually *intentional* (a scheduler or simulator change that
legitimately alters the numbers).  When it is, refresh the baseline in one
command and commit the result alongside the change that caused it:

    PYTHONPATH=src python benchmarks/check_stats_baseline.py --refresh
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = Path(__file__).resolve().parent / "BENCH_stats_baseline.json"
BENCH_ARGS = ["bench", "grep", "compress", "fuzzalias", "branchmesh",
              "--stats", "--no-cache"]

#: diff lines shown before truncating — enough to see the shape of a
#: regression without drowning a genuine schema change in output
MAX_DIFF_LINES = 40


def collect_stats() -> dict:
    """Run the bench subset and return its ``stats`` JSON section."""
    with tempfile.TemporaryDirectory() as tmp:
        out = os.path.join(tmp, "bench.json")
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        proc = subprocess.run(
            [sys.executable, "-m", "repro", *BENCH_ARGS, "--json", out],
            cwd=REPO_ROOT,
            env=env,
            stdout=subprocess.DEVNULL,
        )
        if proc.returncode != 0:
            raise RuntimeError(f"bench exited {proc.returncode}; no stats")
        with open(out, encoding="utf-8") as fh:
            return json.load(fh)["stats"]


def flatten(value, prefix="", into=None) -> dict:
    """``{"a": {"b": 1}}`` -> ``{"a.b": 1}`` for leaf-level diffing."""
    if into is None:
        into = {}
    if isinstance(value, dict):
        if not value:
            into[prefix or "."] = {}
        for key in sorted(value):
            flatten(value[key], f"{prefix}.{key}" if prefix else str(key), into)
    else:
        into[prefix or "."] = value
    return into


def diff(baseline: dict, current: dict) -> list[str]:
    base, cur = flatten(baseline), flatten(current)
    lines = []
    for path in sorted(base.keys() | cur.keys()):
        if path not in cur:
            lines.append(f"- {path} = {base[path]!r}  (vanished)")
        elif path not in base:
            lines.append(f"+ {path} = {cur[path]!r}  (new)")
        elif base[path] != cur[path]:
            lines.append(f"! {path}: {base[path]!r} -> {cur[path]!r}")
    return lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE),
        help="baseline JSON path "
        "(default: benchmarks/BENCH_stats_baseline.json)",
    )
    parser.add_argument(
        "--refresh",
        action="store_true",
        help="rewrite the baseline from the current code "
        "instead of checking against it",
    )
    args = parser.parse_args(argv)

    print(f"stats-gate: running `repro {' '.join(BENCH_ARGS)}` ...", flush=True)
    current = collect_stats()

    if args.refresh:
        with open(args.baseline, "w", encoding="utf-8") as fh:
            json.dump(current, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"stats-gate: refreshed {args.baseline}")
        return 0

    try:
        with open(args.baseline, encoding="utf-8") as fh:
            baseline = json.load(fh)
    except FileNotFoundError:
        print(
            f"stats-gate: no baseline at {args.baseline}; create one "
            "with --refresh",
            file=sys.stderr,
        )
        return 2

    lines = diff(baseline, current)
    if not lines:
        print(
            "stats-gate: PASS — stats byte-match the baseline "
            f"({len(flatten(baseline))} counters)"
        )
        return 0
    print(
        f"stats-gate: FAIL — {len(lines)} counter(s) drifted from "
        f"{args.baseline}:",
        file=sys.stderr,
    )
    for line in lines[:MAX_DIFF_LINES]:
        print(f"  {line}", file=sys.stderr)
    if len(lines) > MAX_DIFF_LINES:
        print(f"  ... and {len(lines) - MAX_DIFF_LINES} more", file=sys.stderr)
    print(
        "stats-gate: if the drift is intentional, refresh with:\n"
        "  PYTHONPATH=src python benchmarks/check_stats_baseline.py --refresh",
        file=sys.stderr,
    )
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
