#!/usr/bin/env python
"""Metrics-regression gate: compare ``bench --stats`` against a baseline.

The observability counters (``repro-stats/1``, see ``docs/observability.md``)
are deterministic: the same source + config must produce byte-identical
scheduler and simulator statistics on every machine.  This script runs

    python -m repro bench grep compress fuzzalias branchmesh \\
        --stats --json <tmp> --no-cache

and compares the ``stats`` section against the committed baseline,
``benchmarks/BENCH_stats_baseline.json``.  Any drift — a counter that moved,
appeared, or vanished — fails the gate with a readable dotted-path diff.

Counter drift is usually *intentional* (a scheduler or simulator change that
legitimately alters the numbers).  When it is, refresh the baseline in one
command and commit the result alongside the change that caused it:

    PYTHONPATH=src python benchmarks/check_stats_baseline.py --refresh
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = Path(__file__).resolve().parent / "BENCH_stats_baseline.json"
BENCH_ARGS = ["bench", "grep", "compress", "fuzzalias", "branchmesh",
              "--stats", "--no-cache"]

#: diff lines shown before truncating — enough to see the shape of a
#: regression without drowning a genuine schema change in output
MAX_DIFF_LINES = 40


def collect_stats() -> dict:
    """Run the bench subset and return its ``stats`` JSON section."""
    with tempfile.TemporaryDirectory() as tmp:
        out = os.path.join(tmp, "bench.json")
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        proc = subprocess.run(
            [sys.executable, "-m", "repro", *BENCH_ARGS, "--json", out],
            cwd=REPO_ROOT,
            env=env,
            stdout=subprocess.DEVNULL,
        )
        if proc.returncode != 0:
            raise RuntimeError(f"bench exited {proc.returncode}; no stats")
        with open(out, encoding="utf-8") as fh:
            return json.load(fh)["stats"]


def flatten(value, prefix="", into=None) -> dict:
    """``{"a": {"b": 1}}`` -> ``{"a.b": 1}`` for leaf-level diffing."""
    if into is None:
        into = {}
    if isinstance(value, dict):
        if not value:
            into[prefix or "."] = {}
        for key in sorted(value):
            flatten(value[key], f"{prefix}.{key}" if prefix else str(key), into)
    else:
        into[prefix or "."] = value
    return into


def diff(baseline: dict, current: dict) -> dict[str, list[str]]:
    """Categorized dotted-path drift between the two stats payloads.

    Three buckets, reported separately so the common cases read at a
    glance: ``changed`` (a counter moved), ``only_in_run`` (the code now
    emits a counter the baseline has never seen — the usual shape right
    after adding instrumentation), and ``only_in_baseline`` (the run
    stopped emitting a counter the baseline expects — usually a
    collection bug, not intentional drift).
    """
    base, cur = flatten(baseline), flatten(current)
    out: dict[str, list[str]] = {
        "changed": [],
        "only_in_run": [],
        "only_in_baseline": [],
    }
    for path in sorted(base.keys() | cur.keys()):
        if path not in cur:
            out["only_in_baseline"].append(f"- {path} = {base[path]!r}")
        elif path not in base:
            out["only_in_run"].append(f"+ {path} = {cur[path]!r}")
        elif base[path] != cur[path]:
            out["changed"].append(f"! {path}: {base[path]!r} -> {cur[path]!r}")
    return out


#: bucket -> heading printed when the bucket is non-empty
_DIFF_HEADINGS = {
    "changed": "changed counters",
    "only_in_run": (
        "counters present in the run but MISSING FROM THE BASELINE "
        "(new instrumentation? refresh to adopt them)"
    ),
    "only_in_baseline": (
        "counters in the baseline but MISSING FROM THE RUN "
        "(collection regression?)"
    ),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE),
        help="baseline JSON path "
        "(default: benchmarks/BENCH_stats_baseline.json)",
    )
    parser.add_argument(
        "--refresh",
        action="store_true",
        help="rewrite the baseline from the current code "
        "instead of checking against it",
    )
    args = parser.parse_args(argv)

    print(f"stats-gate: running `repro {' '.join(BENCH_ARGS)}` ...", flush=True)
    current = collect_stats()

    if args.refresh:
        with open(args.baseline, "w", encoding="utf-8") as fh:
            json.dump(current, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"stats-gate: refreshed {args.baseline}")
        return 0

    try:
        with open(args.baseline, encoding="utf-8") as fh:
            baseline = json.load(fh)
    except FileNotFoundError:
        print(
            f"stats-gate: no baseline at {args.baseline}; create one "
            "with --refresh",
            file=sys.stderr,
        )
        return 2

    buckets = diff(baseline, current)
    total = sum(len(v) for v in buckets.values())
    if not total:
        print(
            "stats-gate: PASS — stats byte-match the baseline "
            f"({len(flatten(baseline))} counters)"
        )
        return 0
    print(
        f"stats-gate: FAIL — {total} counter(s) drifted from "
        f"{args.baseline}:",
        file=sys.stderr,
    )
    for bucket, lines in buckets.items():
        if not lines:
            continue
        print(f"  {_DIFF_HEADINGS[bucket]} ({len(lines)}):", file=sys.stderr)
        for line in lines[:MAX_DIFF_LINES]:
            print(f"    {line}", file=sys.stderr)
        if len(lines) > MAX_DIFF_LINES:
            print(
                f"    ... and {len(lines) - MAX_DIFF_LINES} more",
                file=sys.stderr,
            )
    print(
        "stats-gate: if the drift is intentional, refresh with:\n"
        "  PYTHONPATH=src python benchmarks/check_stats_baseline.py --refresh",
        file=sys.stderr,
    )
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
