"""Bench: regenerate Table 2 — % improvement over global scheduling for the
four boosting hardware models.

Paper shape (GM): Squashing 9.9% < Boost1 17.0% ≤ MinBoost3 19.3% ≤ Boost7
20.5%, with Boost7 adding little over MinBoost3 — the paper's headline
claim that minimal boosting hardware captures most of the benefit.
"""

from repro.harness import render_table2, table2


def test_table2(lab, benchmark):
    rows, means = benchmark.pedantic(
        lambda: table2(lab), rounds=1, iterations=1, warmup_rounds=0)
    print()
    print(render_table2(lab))

    # seven paper workloads + any fuzz-promoted stress programs
    assert len(rows) >= 7
    # Every hardware model improves on pure global scheduling in the mean.
    for key in ("squashing", "boost1", "minboost3", "boost7"):
        assert means[key] > 0, (key, means)
    # Ordering: more hardware never loses in the geometric mean...
    assert means["boost7"] >= means["minboost3"] - 0.5
    assert means["minboost3"] >= means["squashing"] - 0.5
    # ...and the paper's punchline: Boost7's huge hardware adds almost
    # nothing over MinBoost3.
    assert means["boost7"] - means["minboost3"] < 5.0
    # Per-benchmark sanity: no model may *hurt* by more than noise.
    for row in rows:
        for key, value in row.improvements.items():
            assert value > -3.0, (row.name, key, value)
