"""Ablation: where do the cycles come from?

Decomposes MinBoost3's advantage on one workload into the scheduler's
ingredients by toggling them: issue width (scalar vs 2-issue), scheduling
scope (basic-block vs global), and speculation hardware (none vs MinBoost3).
Mirrors the paper's narrative arc across Figures 8/9 and Table 2.
"""

from repro.harness.pipeline import CompileConfig, SCALAR_CONFIG, compile_minic
from repro.sched.boostmodel import MINBOOST3, NO_BOOST
from repro.sched.machine import SUPERSCALAR
from repro.workloads import get

STEPS = [
    ("scalar", SCALAR_CONFIG),
    ("2-issue bb", CompileConfig(machine=SUPERSCALAR, scheduler="bb")),
    ("2-issue global", CompileConfig(machine=SUPERSCALAR, model=NO_BOOST)),
    ("2-issue global+MinBoost3",
     CompileConfig(machine=SUPERSCALAR, model=MINBOOST3)),
]


def _ladder(wname: str):
    w = get(wname)
    out = []
    for name, cfg in STEPS:
        cp = compile_minic(w.source, cfg, w.train)
        out.append((name, cp.run(w.eval).cycle_count))
    return out


def test_cycle_ladder(benchmark):
    ladder = benchmark.pedantic(lambda: _ladder("nroff"),
                                rounds=1, iterations=1, warmup_rounds=0)
    scalar = ladder[0][1]
    print("\nAblation ladder (nroff): cycles and speedup vs scalar")
    for name, cycles in ladder:
        print(f"  {name:26s} {cycles:>9,}  {scalar / cycles:5.2f}x")
    cycles = [c for _, c in ladder]
    # Each rung must not regress, and the whole ladder must climb.
    assert cycles[1] <= cycles[0]
    assert cycles[2] <= cycles[1]
    assert cycles[3] <= cycles[2]
    assert scalar / cycles[3] > 1.3
