"""Shared fixtures for the benchmark harness.

The :class:`repro.harness.Lab` memoises every compile+simulate result, so
the four table/figure benches share one session-scoped instance and each
measurement is paid once.
"""

import pytest

from repro.harness import Lab


@pytest.fixture(scope="session")
def lab() -> Lab:
    return Lab()
