#!/usr/bin/env python
"""Perf-regression gate: compare a fresh perf_smoke record to a baseline.

Usage::

    python benchmarks/check_perf_baseline.py current.json baseline.json

Both files are ``repro-bench/1`` perf_smoke records (``BENCH_pr7.json`` is
the committed baseline; CI produces ``perf_smoke_ci.json`` fresh each run).
CI runners are noisy shared machines, so this gate is deliberately loose:
it fails only on a catastrophic slowdown — a tracked metric falling below
``baseline / SLOWDOWN_FACTOR`` — not on ordinary jitter.
"""

from __future__ import annotations

import argparse
import json
import sys

#: a metric must fall below baseline/2.5 before the gate fails — wide
#: enough for shared-runner noise, tight enough to catch a lost fast path
SLOWDOWN_FACTOR = 2.5

#: dotted paths of the higher-is-better throughput metrics we track
METRICS = [
    "simulators.functional.fast_instr_per_sec",
    "simulators.superscalar.fast_instr_per_sec",
    "backends.functional.translate_instr_per_sec",
    "backends.superscalar.translate_instr_per_sec",
    "backends.functional.interp_instr_per_sec",
    "backends.superscalar.interp_instr_per_sec",
    "compile_cache.cold_cells_per_sec",
    "compile_cache.warm_cells_per_sec",
    "end_to_end.speedup",
]


def lookup(record: dict, path: str):
    value = record
    for part in path.split("."):
        if not isinstance(value, dict) or part not in value:
            return None
        value = value[part]
    return value


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="fresh perf_smoke JSON record")
    parser.add_argument("baseline", help="committed baseline JSON record")
    parser.add_argument(
        "--factor",
        type=float,
        default=SLOWDOWN_FACTOR,
        help="failure threshold: current < baseline/factor "
        f"(default: {SLOWDOWN_FACTOR})",
    )
    args = parser.parse_args(argv)

    with open(args.current, encoding="utf-8") as fh:
        current = json.load(fh)
    with open(args.baseline, encoding="utf-8") as fh:
        baseline = json.load(fh)

    failed = []
    for path in METRICS:
        base = lookup(baseline, path)
        cur = lookup(current, path)
        if base is None:
            print(f"perf-gate: {path:45s} (not in baseline; skipped)")
            continue
        if cur is None:
            failed.append(f"{path}: missing from the current record")
            continue
        floor = base / args.factor
        verdict = "OK" if cur >= floor else "FAIL"
        print(
            f"perf-gate: {path:45s} {cur:>12,.2f} vs baseline "
            f"{base:>12,.2f} (floor {floor:,.2f}) {verdict}"
        )
        if cur < floor:
            failed.append(
                f"{path}: {cur:,.2f} < {floor:,.2f} "
                f"(baseline {base:,.2f} / {args.factor})"
            )

    if failed:
        print(
            f"perf-gate: FAIL — {len(failed)} metric(s) regressed by "
            f"more than {args.factor}x:",
            file=sys.stderr,
        )
        for msg in failed:
            print(f"  {msg}", file=sys.stderr)
        return 1
    print(
        f"perf-gate: PASS — all {len(METRICS)} metrics within "
        f"{args.factor}x of baseline"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
