"""Bench: Figure 7 / Section 4.3.2 hardware-cost figures.

Regenerates the decoder transistor-count comparison the paper quotes:
Boost1 costs ~33% more decode transistors than a plain 64-register file,
MinBoost3 ~50% more, and the full Boost7 multi-file design is out of scale.
"""

import pytest

from repro.hw.cost import boosting_file, plain_file, section_432_comparison
from repro.sched.boostmodel import BOOST1, BOOST7, MINBOOST3, SQUASHING


def test_hw_cost(benchmark):
    ratios = benchmark.pedantic(
        section_432_comparison, rounds=1, iterations=1, warmup_rounds=0)
    base = plain_file(64)
    print("\nSection 4.3.2 register-file decoder costs:")
    print(f"  {'design':14s} {'rows':>5s} {'inputs':>7s} "
          f"{'transistors':>12s} {'vs plain 64':>12s}")
    print(f"  {'plain-64':14s} {base.rows:>5d} {base.gate_inputs:>7d} "
          f"{base.decoder:>12d} {'—':>12s}")
    for model in (SQUASHING, BOOST1, MINBOOST3, BOOST7):
        cost = boosting_file(model)
        print(f"  {cost.name:14s} {cost.rows:>5d} {cost.gate_inputs:>7d} "
              f"{cost.decoder:>12d} {100 * cost.overhead_vs(base):>+11.1f}%")

    assert ratios["Boost1"] == pytest.approx(1 / 3, abs=0.01)
    assert ratios["MinBoost3"] == pytest.approx(0.5, abs=0.01)
    assert boosting_file(BOOST7).overhead_vs(base) > 1.0  # "unreasonable"
    # One added gate on the access path — the paper's cycle-time argument.
    assert boosting_file(MINBOOST3).access_path_gates == 1
