"""Bench: regenerate Figure 9 — MinBoost3 vs the dynamically-scheduled
superscalar (reservation stations + reorder buffer + BTB), speedups over the
scalar machine.

Paper shape: both machines land around 1.5x, i.e. the statically-scheduled
machine with minimal boosting hardware keeps pace with a far more complex
dynamically-scheduled design.
"""

from repro.harness import figure9, render_figure9


def test_figure9(lab, benchmark):
    rows, means = benchmark.pedantic(
        lambda: figure9(lab), rounds=1, iterations=1, warmup_rounds=0)
    print()
    print(render_figure9(lab))

    # seven paper workloads + any fuzz-promoted stress programs
    assert len(rows) >= 7
    for row in rows:
        assert row.minboost3_speedup > 1.0, row
        assert row.dynamic_speedup > 1.0, row
    # Both approaches sit in the same performance band (paper: ≈1.5x each).
    assert 1.2 < means["minboost3"] < 1.8
    assert 1.2 < means["dynamic"] < 1.9
    assert abs(means["minboost3"] - means["dynamic"]) < 0.45
    # Renaming helps the dynamic machine, at least a little, in the mean.
    assert means["dynamic_rename"] >= means["dynamic"] - 0.02
