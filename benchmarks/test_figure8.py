"""Bench: regenerate Figure 8 — speedup over scalar without speculation
hardware, basic-block vs global scheduling, 32 vs infinite registers.

Paper shape: global scheduling beats basic-block scheduling on every
benchmark (GM 1.24 vs 1.14 in the paper); the infinite-register model adds
a further margin in the geometric mean (paper: +7.8% over global).
"""

from repro.harness import figure8, render_figure8


def test_figure8(lab, benchmark):
    rows, means = benchmark.pedantic(
        lambda: figure8(lab), rounds=1, iterations=1, warmup_rounds=0)
    print()
    print(render_figure8(lab))

    # seven paper workloads + any fuzz-promoted stress programs
    assert len(rows) >= 7
    for row in rows:
        assert row.global_speedup >= row.bb_speedup - 1e-9, row
        assert row.bb_speedup >= 0.95, row
    assert 1.0 < means["bb"] < means["global"] < 1.6
    # The infinite register model bounds what an integrated allocator could
    # add (paper: a clearly positive but modest margin).
    assert means["global_inf"] > means["global"]
