"""Ablation: how much boosting depth is really necessary?

Sweeps the maximum boosting level of a single-shadow-file machine from 1 to
7 on two level-hungry workloads (awk and eqntott) and reports the
cycle-count improvement over global scheduling at each depth.  This is the
design-space question Section 4 poses — the answer (diminishing returns
after 2-3 levels) is the reason MinBoost3 exists.
"""

from repro.harness.pipeline import CompileConfig, compile_minic
from repro.sched.boostmodel import BoostModel
from repro.sched.machine import SUPERSCALAR
from repro.workloads import get

LEVELS = (1, 2, 3, 5, 7)
WORKLOADS = ("awk", "eqntott")


def _improvements(wname: str) -> dict[int, float]:
    w = get(wname)
    base_cfg = CompileConfig(machine=SUPERSCALAR)
    base = compile_minic(w.source, base_cfg, w.train).run(w.eval).cycle_count
    out = {}
    for level in LEVELS:
        model = BoostModel(f"MinBoost{level}", max_level=level,
                           boost_stores=False, multi_shadow_files=False)
        cfg = CompileConfig(machine=SUPERSCALAR, model=model)
        cycles = compile_minic(w.source, cfg, w.train).run(w.eval).cycle_count
        out[level] = (base / cycles - 1.0) * 100.0
    return out


def test_boost_level_sweep(benchmark):
    results = benchmark.pedantic(
        lambda: {w: _improvements(w) for w in WORKLOADS},
        rounds=1, iterations=1, warmup_rounds=0)
    print("\nAblation: % improvement over global scheduling vs boost depth")
    header = " ".join(f"{f'B{lvl}':>7s}" for lvl in LEVELS)
    print(f"  {'':8s} {header}")
    for wname, impr in results.items():
        cells = " ".join(f"{impr[lvl]:>6.1f}%" for lvl in LEVELS)
        print(f"  {wname:8s} {cells}")

    for wname, impr in results.items():
        # Depth never hurts materially ...
        assert impr[7] >= impr[1] - 1.0, (wname, impr)
        # ... and the step from 3 to 7 levels is small (MinBoost3's thesis).
        assert impr[7] - impr[3] < 4.0, (wname, impr)
