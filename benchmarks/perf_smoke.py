#!/usr/bin/env python
"""Perf-smoke microbenchmark: times the hot paths and writes BENCH_pr7.json.

Measures four things so future PRs have a perf trajectory to regress
against:

* **simulator instr/sec** — the default fast engine of ``FunctionalSim``
  and ``SuperscalarSim`` against the reference interpreters
  (``REPRO_FAST_SIM=0`` semantics), single-threaded;
* **backend shoot-out** — the ``interp`` fast interpreters against the
  ``translate`` generated-code engine, side by side on identical runs
  (the ``backends`` section);
* **compile cells/sec + cache hit rate** — cold compile vs warm reload
  through the on-disk :class:`~repro.harness.cache.CompileCache`;
* **end-to-end bench wall clock** — ``python -m repro bench`` baseline
  (reference interpreters, no cache, serial) vs optimized (fast sims, warm
  cache, ``--jobs N``).

Run from the repo root::

    PYTHONPATH=src python benchmarks/perf_smoke.py            # full suite
    PYTHONPATH=src python benchmarks/perf_smoke.py --quick    # CI subset

Exits non-zero if the single-threaded simulator speedup falls below the
1.3x floor this PR establishes.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.harness.cache import CompileCache                     # noqa: E402
from repro.harness.fsutil import atomic_write_json               # noqa: E402
from repro.harness.experiments import CONFIGS                    # noqa: E402
from repro.harness.pipeline import (                             # noqa: E402
    compile_minic, make_input_image,
)
from repro.hw.functional import FunctionalSim                    # noqa: E402
from repro.hw.superscalar import SuperscalarSim                  # noqa: E402
from repro.obs.stats import NullStats, SimStats                  # noqa: E402
from repro.workloads import all_workloads                        # noqa: E402

#: floor the acceptance criteria pin for the single-threaded fast paths
SIM_SPEEDUP_FLOOR = 1.3

#: ceiling on the cost of the no-op stats sink on the superscalar fast
#: path — the observability layer must be ~free when disabled (< 5%)
NOOP_STATS_OVERHEAD_CEIL = 1.05

REPO_ROOT = Path(__file__).resolve().parent.parent


def _time(fn) -> tuple[float, object]:
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


def _best3(fn) -> tuple[float, object]:
    """Best-of-three timing: the steady state of an engine (memoized
    traces warm, generated code bound), not its first-run setup costs."""
    best_dt, out = _time(fn)
    for _ in range(2):
        dt, out = _time(fn)
        best_dt = min(best_dt, dt)
    return best_dt, out


def sim_microbench(workload_names: list[str]) -> dict:
    """Single-threaded instr/sec, fast path vs reference interpreter."""
    workloads = [w for w in all_workloads() if w.name in workload_names]
    func = {"fast_s": 0.0, "ref_s": 0.0, "instr": 0}
    sup = {"fast_s": 0.0, "ref_s": 0.0, "instr": 0}
    for w in workloads:
        cp = compile_minic(w.source, CONFIGS["minboost3"], w.train)
        scalar = compile_minic(w.source, CONFIGS["scalar"], w.train)
        image = make_input_image(cp.program, w.eval)
        simage = make_input_image(scalar.program, w.eval)

        dt, res = _best3(lambda: FunctionalSim(
            scalar.reference, input_image=make_input_image(
                scalar.reference, w.eval), fast=True).run())
        func["fast_s"] += dt
        func["instr"] += res.instr_count
        dt, ref = _time(lambda: FunctionalSim(
            scalar.reference, input_image=make_input_image(
                scalar.reference, w.eval), fast=False).run())
        func["ref_s"] += dt
        assert ref.output == res.output, f"functional mismatch on {w.name}"

        dt, res = _best3(lambda: SuperscalarSim(
            cp.sched, input_image=image, fast=True).run())
        sup["fast_s"] += dt
        sup["instr"] += res.instr_count
        dt, ref = _time(lambda: SuperscalarSim(
            cp.sched, input_image=image, fast=False).run())
        sup["ref_s"] += dt
        assert ref.output == res.output, f"superscalar mismatch on {w.name}"

        dt, res = _best3(lambda: SuperscalarSim(
            scalar.sched, input_image=simage, fast=True).run())
        sup["fast_s"] += dt
        sup["instr"] += res.instr_count
        dt, ref = _time(lambda: SuperscalarSim(
            scalar.sched, input_image=simage, fast=False).run())
        sup["ref_s"] += dt
        assert ref.output == res.output

    def pack(d):
        return {
            "instructions": d["instr"],
            "fast_instr_per_sec": round(d["instr"] / d["fast_s"]),
            "reference_instr_per_sec": round(d["instr"] / d["ref_s"]),
            "speedup": round(d["ref_s"] / d["fast_s"], 2),
        }

    return {"functional": pack(func), "superscalar": pack(sup)}


def backends_microbench(workload_names: list[str]) -> dict:
    """``interp`` vs ``translate``, side by side on identical runs.

    Both engines consume the same compiled program (the translation unit is
    built at compile time), and each sample is best-of-three, so the ratio
    isolates execution-engine throughput from compile and binding costs.
    Every pair of runs is also checked for identical output — the perf
    record never reports a speedup the engines did not earn legally.
    """
    workloads = [w for w in all_workloads() if w.name in workload_names]
    acc = {
        "functional": {"interp_s": 0.0, "translate_s": 0.0, "instr": 0},
        "superscalar": {"interp_s": 0.0, "translate_s": 0.0, "instr": 0},
    }
    for w in workloads:
        cp = compile_minic(w.source, CONFIGS["minboost3"], w.train)
        scalar = compile_minic(w.source, CONFIGS["scalar"], w.train)
        fimage = make_input_image(scalar.reference, w.eval)
        simage = make_input_image(cp.program, w.eval)

        outputs = {}
        for backend in ("interp", "translate"):
            dt, res = _best3(lambda: FunctionalSim(
                scalar.reference, input_image=fimage,
                backend=backend).run())
            acc["functional"][f"{backend}_s"] += dt
            outputs[backend] = (res.output, res.instr_count)
            if backend == "translate":
                acc["functional"]["instr"] += res.instr_count
        assert outputs["interp"] == outputs["translate"], \
            f"functional backend mismatch on {w.name}"

        outputs = {}
        for backend in ("interp", "translate"):
            dt, res = _best3(lambda: SuperscalarSim(
                cp.sched, input_image=simage, backend=backend).run())
            acc["superscalar"][f"{backend}_s"] += dt
            outputs[backend] = (res.output, res.instr_count,
                                res.cycle_count)
            if backend == "translate":
                acc["superscalar"]["instr"] += res.instr_count
        assert outputs["interp"] == outputs["translate"], \
            f"superscalar backend mismatch on {w.name}"

    def pack(d):
        return {
            "instructions": d["instr"],
            "interp_instr_per_sec": round(d["instr"] / d["interp_s"]),
            "translate_instr_per_sec": round(d["instr"] / d["translate_s"]),
            "translate_speedup": round(d["interp_s"] / d["translate_s"], 2),
        }

    return {name: pack(d) for name, d in acc.items()}


def stats_overhead_microbench(workload_names: list[str]) -> dict:
    """Cost of the stats sinks on the superscalar fast path.

    Times three variants of the same run — ``stats=None`` (the default),
    ``NullStats()`` (the hook-shaped no-op), and ``SimStats()`` (full
    collection) — best of three each, and reports their ratios.  The
    NullStats ratio is the price of *having* the instrumentation seams in
    the hot loop; it is gated below :data:`NOOP_STATS_OVERHEAD_CEIL`.
    """
    workloads = [w for w in all_workloads() if w.name in workload_names]
    runs = []
    for w in workloads:
        cp = compile_minic(w.source, CONFIGS["minboost3"], w.train)
        image = make_input_image(cp.program, w.eval)
        runs.append((cp.sched, image))

    def timed(make_stats) -> float:
        t0 = time.perf_counter()
        for _ in range(2):  # long enough samples to ride out OS jitter
            for sched, image in runs:
                SuperscalarSim(sched, input_image=image, fast=True,
                               stats=make_stats()).run()
        return time.perf_counter() - t0

    # Shared/virtualized CI boxes show 20%+ run-to-run jitter, far above
    # the effect being measured, so absolute best-of times are useless
    # here.  Instead, pair the variants within each round (adjacent in
    # time, so they see the same machine state), compute per-round ratios
    # against that round's stats=None sample, and take the median ratio.
    # Rotating the within-round order cancels position effects too (the
    # second and third samples of a burst run measurably slower here).
    variants = [lambda: None, NullStats, SimStats]
    timed(variants[0])  # warm-up, untimed
    rounds = []
    for k in range(9):
        sample = [0.0] * len(variants)
        for j in range(len(variants)):
            i = (j + k) % len(variants)
            sample[i] = timed(variants[i])
        rounds.append(sample)
    # Lower quartile, not median: jitter only ever inflates a sample, so
    # the low end of the ratio distribution is the cleanest estimate —
    # and a *real* regression shifts every round, so it still trips.
    none_s = min(r[0] for r in rounds)
    q = len(rounds) // 4
    null_ratio = sorted(r[1] / r[0] for r in rounds)[q]
    full_ratio = sorted(r[2] / r[0] for r in rounds)[q]
    return {
        "baseline_seconds": round(none_s, 4),
        "null_sink_overhead": round(null_ratio, 3),
        "full_sink_overhead": round(full_ratio, 3),
        "ceiling": NOOP_STATS_OVERHEAD_CEIL,
    }


def cache_microbench(workload_names: list[str]) -> dict:
    """Cold compile vs warm reload through the on-disk cache."""
    workloads = [w for w in all_workloads() if w.name in workload_names]
    config_keys = ["scalar", "global", "minboost3"]
    with tempfile.TemporaryDirectory() as tmp:
        cache = CompileCache(tmp)
        cells = [(w, k) for w in workloads for k in config_keys]
        cold_s, _ = _time(lambda: [
            cache.compile_minic(w.source, CONFIGS[k], w.train)
            for w, k in cells])
        warm_cache = CompileCache(tmp)
        warm_s, _ = _time(lambda: [
            warm_cache.compile_minic(w.source, CONFIGS[k], w.train)
            for w, k in cells])
        return {
            "cells": len(cells),
            "cold_cells_per_sec": round(len(cells) / cold_s, 2),
            "warm_cells_per_sec": round(len(cells) / warm_s, 2),
            "warm_speedup": round(cold_s / warm_s, 1),
            "hit_rate": warm_cache.stats()["hit_rate"],
        }


def _run_bench(extra_args: list[str], env_extra: dict) -> float:
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"), **env_extra)
    t0 = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "bench", *extra_args],
        cwd=REPO_ROOT, env=env, stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL)
    if proc.returncode != 0:
        raise RuntimeError(f"bench {extra_args} exited {proc.returncode}")
    return time.perf_counter() - t0


def end_to_end_bench(workload_names: list[str], jobs: int) -> dict:
    """Baseline (reference sims, no cache, serial) vs optimized
    (fast sims, warm cache, ``--jobs N``) wall clock."""
    subset = [n for n in workload_names]
    with tempfile.TemporaryDirectory() as tmp:
        baseline_s = _run_bench([*subset, "--no-cache"],
                                {"REPRO_FAST_SIM": "0"})
        cold_s = _run_bench([*subset, "--cache-dir", tmp], {})
        warm_jobs_s = _run_bench(
            [*subset, "--cache-dir", tmp, "--jobs", str(jobs)], {})
    return {
        "workloads": subset,
        "jobs": jobs,
        "baseline_seconds": round(baseline_s, 1),
        "optimized_cold_seconds": round(cold_s, 1),
        "optimized_warm_seconds": round(warm_jobs_s, 1),
        "speedup": round(baseline_s / warm_jobs_s, 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI subset: two workloads, skips nothing else")
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker count for the end-to-end run "
                             "(default: 4)")
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_pr7.json"),
                        help="where to write the JSON record")
    args = parser.parse_args(argv)

    names = (["grep", "compress"] if args.quick
             else [w.name for w in all_workloads()])
    micro_names = ["grep", "compress"] if args.quick else \
        ["grep", "compress", "espresso"]

    print(f"perf_smoke: sim microbench on {micro_names} ...", flush=True)
    sims = sim_microbench(micro_names)
    print(f"  functional  {sims['functional']['speedup']}x "
          f"({sims['functional']['fast_instr_per_sec']:,} instr/s)")
    print(f"  superscalar {sims['superscalar']['speedup']}x "
          f"({sims['superscalar']['fast_instr_per_sec']:,} instr/s)")

    print("perf_smoke: backend shoot-out (interp vs translate) ...",
          flush=True)
    backends = backends_microbench(micro_names)
    for name in ("functional", "superscalar"):
        b = backends[name]
        print(f"  {name:11s} translate {b['translate_speedup']}x over "
              f"interp ({b['translate_instr_per_sec']:,} vs "
              f"{b['interp_instr_per_sec']:,} instr/s)")

    print("perf_smoke: stats-sink overhead microbench ...", flush=True)
    overhead = stats_overhead_microbench(micro_names)
    print(f"  null sink {overhead['null_sink_overhead']}x, "
          f"full sink {overhead['full_sink_overhead']}x "
          f"(ceiling {NOOP_STATS_OVERHEAD_CEIL}x for null)")

    print("perf_smoke: compile-cache microbench ...", flush=True)
    cache = cache_microbench(micro_names)
    print(f"  {cache['warm_cells_per_sec']} cells/s warm "
          f"(x{cache['warm_speedup']} vs cold, "
          f"hit rate {cache['hit_rate']:.2f})")

    print(f"perf_smoke: end-to-end bench on {names} "
          f"(--jobs {args.jobs}) ...", flush=True)
    e2e = end_to_end_bench(names, args.jobs)
    print(f"  baseline {e2e['baseline_seconds']}s -> warm "
          f"{e2e['optimized_warm_seconds']}s "
          f"({e2e['speedup']}x)")

    nproc = os.cpu_count() or 1
    record = {
        "schema": "repro-bench/1",
        "section": "perf_smoke",
        "environment": {"cpus": nproc, "python": sys.version.split()[0]},
        "simulators": sims,
        "backends": backends,
        "stats_overhead": overhead,
        "compile_cache": cache,
        "end_to_end": e2e,
        "targets": {
            "sim_speedup_floor": SIM_SPEEDUP_FLOOR,
            "noop_stats_overhead_ceil": NOOP_STATS_OVERHEAD_CEIL,
            "end_to_end_speedup_target": 2.0,
        },
    }
    atomic_write_json(args.output, record)
    print(f"wrote {args.output}")

    failed = []
    for name in ("functional", "superscalar"):
        if sims[name]["speedup"] < SIM_SPEEDUP_FLOOR:
            failed.append(f"{name} fast path {sims[name]['speedup']}x "
                          f"< {SIM_SPEEDUP_FLOOR}x floor")
    if overhead["null_sink_overhead"] > NOOP_STATS_OVERHEAD_CEIL:
        failed.append(f"no-op stats sink costs "
                      f"{overhead['null_sink_overhead']}x on the "
                      f"superscalar fast path "
                      f"(> {NOOP_STATS_OVERHEAD_CEIL}x ceiling)")
    for msg in failed:
        print(f"perf_smoke: FAIL: {msg}", file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
