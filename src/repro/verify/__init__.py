"""Fault-injection and differential verification of the boosting machinery.

The paper's central correctness claim (Section 2.3) is that boosting is
*safe*: squashed speculative state leaves no trace, and deferred exceptions
surface precisely through compiler-generated recovery code.  The benign
benchmark runs barely exercise those paths, so this package attacks them
directly:

* :mod:`repro.verify.faults` — seeded fault *plans*: forced traps on chosen
  sequential and boosted instructions, and adversarial inversion of the
  profile-derived static predictions (which drives shadow squashes,
  compensation blocks, and recovery jump tables at run time);
* :mod:`repro.verify.differential` — runs one scheduled program and its
  pre-schedule functional twin under the same plan and cross-checks output,
  final memory, and the precise trap (kind, architectural location,
  address), raising a :class:`~repro.verify.errors.DivergenceError` with a
  minimized reproduction recipe;
* :mod:`repro.verify.campaign` — whole campaigns over the workload suite ×
  boosting models × seeds, plus a self-test that plants a broken exception
  shift buffer and demands the checker catch it.

Entry point: ``python -m repro verify [--seeds N]``.
"""

from repro.verify.campaign import (
    CampaignResult, CampaignSummary, SelfTestResult, VerifyCampaign,
    run_selftest,
)
from repro.verify.differential import CheckReport, DifferentialChecker, RunOutcome
from repro.verify.errors import Divergence, DivergenceError
from repro.verify.faults import (
    FaultInjector, FaultPlan, TrapInjection, apply_flips, make_plan,
)

__all__ = [
    "CampaignResult", "CampaignSummary", "CheckReport", "DifferentialChecker",
    "Divergence", "DivergenceError", "FaultInjector", "FaultPlan",
    "RunOutcome", "SelfTestResult", "TrapInjection", "VerifyCampaign",
    "apply_flips", "make_plan", "run_selftest",
]
