"""Verification campaigns over the workload suite × boosting models × seeds.

One campaign cell is ``(workload, model, seed)``: a seeded fault plan is
drawn, the workload is scheduled for the model (re-scheduled from a clone
when the plan flips predictions — flips must be visible to the trace
selector), and the differential checker runs both machines.  The expensive
preparation (front end, optimizer, allocator, profile) happens once per
workload; the unflipped schedule once per (workload, model).

When a cell diverges the campaign *minimizes* the provocation before
reporting: it replays the cell with the benign plan, the trap alone, and
the flips alone, and blames the smallest plan that still disagrees.

The campaign also carries a **self-test**: it plants a deliberately broken
exception shift buffer (one that drops every committing fault) in the
superscalar machine and hunts seeds until the checker catches the resulting
misbehaviour.  A differential checker that cannot see a sabotaged machine
proves nothing about a healthy one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.frontend import compile_source
from repro.harness.cache import CompileCache
from repro.hw.backend import backend_choice
from repro.harness.parallel import run_tasks
from repro.harness.pipeline import (
    CompileConfig, make_input_image, prepare_ir, schedule_ir,
)
from repro.hw.exceptions import ExceptionShiftBuffer, PendingBoostException
from repro.program.procedure import Program, clone_program
from repro.sched.boostmodel import BOOST1, BOOST7, MINBOOST3, NO_BOOST, SQUASHING
from repro.sched.machine import SUPERSCALAR
from repro.verify.differential import CheckReport, DifferentialChecker
from repro.verify.errors import DivergenceError
from repro.verify.faults import FaultPlan, apply_flips, make_plan
from repro.workloads import all_workloads

#: model configurations the campaign exercises (all share one preparation:
#: same optimizer, allocator, and profile settings)
CAMPAIGN_CONFIGS: dict[str, CompileConfig] = {
    "global": CompileConfig(machine=SUPERSCALAR, model=NO_BOOST),
    "squashing": CompileConfig(machine=SUPERSCALAR, model=SQUASHING),
    "boost1": CompileConfig(machine=SUPERSCALAR, model=BOOST1),
    "minboost3": CompileConfig(machine=SUPERSCALAR, model=MINBOOST3),
    "boost7": CompileConfig(machine=SUPERSCALAR, model=BOOST7),
}

DEFAULT_MODELS = ("squashing", "boost1", "minboost3", "boost7")


def breaker_skip_error(jkey: str) -> str:
    """The error line a breaker-skipped cell degrades to.

    Shared with the campaign service (:mod:`repro.service`), which
    pre-seeds the same text into bench cells — the skip message is part of
    the deterministic report, so it lives next to the skip machinery."""
    return (f"{jkey}: skipped — circuit breaker open for this "
            f"configuration (recent workers timed out or were killed)")


def verify_repro_cmd(workload: str, model: str, seed: Optional[int] = None,
                     seeds: Optional[int] = None,
                     seed_start: int = 0) -> str:
    """A copy-pasteable one-line repro for a campaign cell.

    Every divergence and failure record carries one of these so triage
    never starts by reconstructing flags from a report by hand.  The
    current backend is always named: a repro that silently depends on the
    reader's ``REPRO_SIM_BACKEND`` is not a repro.
    """
    from repro.hw.backend import backend_choice

    cmd = f"python -m repro verify --workloads {workload} --models {model}"
    if seed is not None:
        cmd += f" --seed {seed}"
    elif seeds is not None:
        cmd += f" --seeds {seeds} --seed-start {seed_start}"
    return cmd + f" --backend {backend_choice()}"


@dataclass
class CampaignResult:
    """Aggregated outcome of one (workload, model) bucket."""

    workload: str
    config: str
    runs: int = 0
    trapped: int = 0
    clean: int = 0
    flipped: int = 0
    injected_hits: int = 0
    recoveries: int = 0
    boosted_squashed: int = 0
    divergent: int = 0
    errors: int = 0


@dataclass
class CampaignSummary:
    results: list[CampaignResult] = field(default_factory=list)
    divergences: list[DivergenceError] = field(default_factory=list)
    oracle_errors: list[str] = field(default_factory=list)

    @property
    def runs(self) -> int:
        return sum(r.runs for r in self.results)

    @property
    def ok(self) -> bool:
        return not self.divergences and not self.oracle_errors

    def format(self) -> str:
        lines = ["workload   model      runs  trap clean  flip   hits "
                 "recov squash   DIVERGE"]
        for r in self.results:
            lines.append(
                f"{r.workload:<10} {r.config:<10} {r.runs:>4} {r.trapped:>5} "
                f"{r.clean:>5} {r.flipped:>5} {r.injected_hits:>6} "
                f"{r.recoveries:>5} {r.boosted_squashed:>6} "
                f"{r.divergent:>9}")
        lines.append(f"total runs: {self.runs}, "
                     f"divergences: {len(self.divergences)}, "
                     f"oracle errors: {len(self.oracle_errors)}")
        for err in self.divergences:
            lines.append("")
            lines.append(err.describe())
        for msg in self.oracle_errors:
            lines.append(f"oracle error: {msg}")
        return "\n".join(lines)


class VerifyCampaign:
    def __init__(
        self,
        workload_names: Optional[list[str]] = None,
        model_keys: Optional[list[str]] = None,
        seeds: int = 20,
        seed_start: int = 0,
        checker: Optional[DifferentialChecker] = None,
        progress: Optional[Callable[[str], None]] = None,
        cache: Optional[CompileCache] = None,
    ) -> None:
        available = {w.name: w for w in all_workloads()}
        names = workload_names or sorted(available)
        unknown = [n for n in names if n not in available]
        if unknown:
            raise ValueError(f"unknown workload(s) {unknown}; "
                             f"available: {sorted(available)}")
        self.workloads = [available[n] for n in names]
        self.model_keys = list(model_keys or DEFAULT_MODELS)
        bad = [m for m in self.model_keys if m not in CAMPAIGN_CONFIGS]
        if bad:
            raise ValueError(f"unknown model(s) {bad}; "
                             f"available: {sorted(CAMPAIGN_CONFIGS)}")
        self.seeds = seeds
        self.seed_start = seed_start
        self._custom_checker = checker is not None
        self.checker = checker or DifferentialChecker()
        self.progress = progress or (lambda msg: None)
        self.cache = cache
        #: :class:`repro.harness.coordinator.ShardReport` from the last
        #: :meth:`run_sharded` call
        self.shard_report = None
        #: jkey -> structured supervision-failure record (kind, attempts,
        #: error) for buckets that degraded at the harness level during the
        #: last :meth:`run` — the campaign service reads these for its
        #: circuit-breaker accounting
        self.failures: dict[str, dict] = {}

    # ------------------------------------------------------------------- run
    def run(self, jobs: int = 1, policy=None, chaos=None, journal=None,
            skip=None) -> CampaignSummary:
        """Run the campaign; ``jobs>1`` fans (workload, model) buckets to
        worker processes and merges in serial order, so the formatted
        summary is byte-identical to ``jobs=1``.  A campaign carrying a
        custom checker always runs serially (closures don't cross process
        boundaries).

        ``journal`` (a :class:`repro.harness.resilience.Journal`) makes the
        campaign crash-safe: buckets already journaled are restored instead
        of re-run — their workload is not even re-prepared — and every
        completed bucket is durably appended the moment it finishes, so a
        SIGKILL'd campaign resumed with the same journal produces a
        byte-identical summary.  ``policy``/``chaos`` select supervised
        execution (timeouts, worker replacement, retries, fault
        injection).

        ``skip`` is a set of bucket keys (``"workload/model"``) that must
        not run — the campaign service passes the cells whose circuit
        breaker is open.  A skipped bucket degrades to an empty result plus
        an oracle error, and is never journaled (a later run with the
        circuit closed must be free to compute it)."""
        skip = frozenset(skip or ())
        supervised = (jobs > 1 or chaos is not None
                      or (policy is not None and policy.preemptive))
        if supervised and not self._custom_checker:
            return self._run_supervised(jobs, policy, chaos, journal, skip)
        summary = CampaignSummary()
        try:
            for w in self.workloads:
                todo = [m for m in self.model_keys
                        if f"{w.name}/{m}" not in skip
                        and (journal is None
                             or f"{w.name}/{m}" not in journal.completed)]
                prepared = image = plans = None
                if todo:
                    self.progress(f"preparing {w.name} ...")
                    prepared = self._prepare(w)
                    image = make_input_image(prepared, w.eval)
                    plans = [make_plan(prepared, seed) for seed in
                             range(self.seed_start,
                                   self.seed_start + self.seeds)]
                for model_key in self.model_keys:
                    jkey = f"{w.name}/{model_key}"
                    if jkey in skip:
                        summary.results.append(CampaignResult(
                            workload=w.name, config=model_key))
                        summary.oracle_errors.append(breaker_skip_error(jkey))
                        continue
                    if model_key not in todo:
                        bucket, divergences, oracle_errors = \
                            journal.completed[jkey]
                    else:
                        bucket, divergences, oracle_errors = self._run_bucket(
                            w.name, model_key, prepared, image, plans)
                        if journal is not None:
                            journal.record(
                                jkey, (bucket, divergences, oracle_errors))
                    summary.results.append(bucket)
                    summary.divergences.extend(divergences)
                    summary.oracle_errors.extend(oracle_errors)
        except KeyboardInterrupt:
            from repro.harness.resilience import CampaignInterrupted
            total = len(self.workloads) * len(self.model_keys)
            raise CampaignInterrupted(len(summary.results), total) from None
        return summary

    def _prepare(self, w) -> Program:
        config = CAMPAIGN_CONFIGS[self.model_keys[0]]
        if self.cache is not None:
            return self.cache.prepare_ir(w.source, config, w.train)
        return prepare_ir(compile_source(w.source), config, w.train)

    def _run_supervised(self, jobs: int, policy=None, chaos=None,
                        journal=None, skip=frozenset()) -> CampaignSummary:
        from repro.harness.resilience import CampaignInterrupted

        cache_dir = (str(self.cache.cache_dir) if self.cache is not None
                     else None)
        buckets = [(w.name, model_key)
                   for w in self.workloads for model_key in self.model_keys]
        todo = [(wname, model_key) for wname, model_key in buckets
                if f"{wname}/{model_key}" not in skip
                and (journal is None
                     or f"{wname}/{model_key}" not in journal.completed)]
        tasks = [(wname, model_key, self.seeds, self.seed_start, cache_dir)
                 for wname, model_key in todo]

        def checkpoint(outcome) -> None:
            # Only clean bucket results are journaled: a harness-level
            # failure (timeout, killed worker) must be retried on resume.
            if journal is None or outcome.error is not None:
                return
            wname, model_key = todo[outcome.index]
            journal.record(f"{wname}/{model_key}", outcome.value)

        try:
            outcomes = dict(zip(todo, run_tasks(
                _bucket_worker, tasks, jobs, policy=policy, chaos=chaos,
                on_result=checkpoint)))
        except CampaignInterrupted as intr:
            raise CampaignInterrupted(
                len(buckets) - len(todo) + intr.completed,
                len(buckets)) from None
        summary = CampaignSummary()
        for wname, model_key in buckets:
            if f"{wname}/{model_key}" in skip:
                summary.results.append(
                    CampaignResult(workload=wname, config=model_key))
                summary.oracle_errors.append(
                    breaker_skip_error(f"{wname}/{model_key}"))
                continue
            if (wname, model_key) not in outcomes:
                bucket, divergences, oracle_errors = \
                    journal.completed[f"{wname}/{model_key}"]
            else:
                outcome = outcomes[(wname, model_key)]
                if outcome.error is not None:
                    self.failures[f"{wname}/{model_key}"] = {
                        "kind": outcome.kind, "attempts": outcome.attempts,
                        "error": outcome.error}
                    summary.results.append(
                        CampaignResult(workload=wname, config=model_key))
                    summary.oracle_errors.append(
                        f"{wname}/{model_key}: worker failed: "
                        f"{outcome.error} (repro: "
                        + verify_repro_cmd(wname, model_key,
                                           seeds=self.seeds,
                                           seed_start=self.seed_start) + ")")
                    continue
                bucket, divergences, oracle_errors = outcome.value
            summary.results.append(bucket)
            summary.divergences.extend(divergences)
            summary.oracle_errors.extend(oracle_errors)
        return summary

    def run_sharded(self, shards: int, campaign_dir, fingerprint: str,
                    facets: Optional[dict] = None, jobs: int = 1,
                    policy=None, shard_policy=None, shard_chaos=None,
                    resume: bool = False, lease_ttl: float = 15.0
                    ) -> CampaignSummary:
        """Run the campaign across ``shards`` independent lease-guarded
        worker processes (see :mod:`repro.harness.coordinator`).

        Each shard runs its round-robin slice of the (workload, model)
        buckets through the supervised pool, checkpointing into its own
        journal under ``campaign_dir``; the merge back into the summary is
        in serial bucket order, so the formatted output is byte-identical
        to ``jobs=1``.  A bucket no shard could recover degrades to an
        empty :class:`CampaignResult` plus an oracle error — the campaign
        reports partial results instead of dying with a shard.  The
        resulting :class:`~repro.harness.coordinator.ShardReport` is
        stored on ``self.shard_report``.
        """
        from repro.harness.coordinator import run_sharded

        if self._custom_checker:
            raise ValueError("sharded campaigns cannot carry a custom "
                             "checker (closures don't cross process "
                             "boundaries)")
        cache_dir = (str(self.cache.cache_dir) if self.cache is not None
                     else None)
        buckets = [(w.name, model_key)
                   for w in self.workloads for model_key in self.model_keys]
        keys = [f"{wname}/{model_key}" for wname, model_key in buckets]
        tasks = [(wname, model_key, self.seeds, self.seed_start, cache_dir)
                 for wname, model_key in buckets]
        report = run_sharded(
            _bucket_worker, tasks, keys, campaign_dir, fingerprint,
            facets=facets, shards=shards, jobs=jobs, policy=policy,
            shard_policy=shard_policy, shard_chaos=shard_chaos,
            lease_ttl=lease_ttl, resume=resume, progress=self.progress)
        summary = CampaignSummary()
        for (wname, model_key), jkey in zip(buckets, keys):
            if jkey in report.completed:
                bucket, divergences, oracle_errors = report.completed[jkey]
                summary.results.append(bucket)
                summary.divergences.extend(divergences)
                summary.oracle_errors.extend(oracle_errors)
            else:
                info = report.failures.get(jkey) or {
                    "error": "bucket missing from every shard journal"}
                summary.results.append(
                    CampaignResult(workload=wname, config=model_key))
                summary.oracle_errors.append(
                    f"{wname}/{model_key}: shard failed: {info['error']} "
                    f"(repro: "
                    + verify_repro_cmd(wname, model_key, seeds=self.seeds,
                                       seed_start=self.seed_start) + ")")
        self.shard_report = report
        return summary

    def _run_bucket(self, wname: str, model_key: str, prepared: Program,
                    image, plans: list[FaultPlan],
                    ) -> tuple[CampaignResult, list[DivergenceError],
                               list[str]]:
        config = CAMPAIGN_CONFIGS[model_key]
        bucket = CampaignResult(workload=wname, config=model_key)
        divergences: list[DivergenceError] = []
        oracle_errors: list[str] = []
        base_prog = clone_program(prepared)
        base_ref = clone_program(prepared)
        base_sched, _ = schedule_ir(base_prog, config)
        for plan in plans:
            bucket.runs += 1
            try:
                if plan.flips:
                    bucket.flipped += 1
                    sched, ref = self._flipped(prepared, plan, config)
                else:
                    sched, ref = base_sched, base_ref
                report = self.checker.compare_only(
                    sched, ref, plan, image, workload=wname,
                    config=model_key)
            except RuntimeError as err:
                bucket.errors += 1
                oracle_errors.append(
                    f"{wname}/{model_key} seed={plan.seed}: "
                    f"{type(err).__name__}: {err} (repro: "
                    f"{verify_repro_cmd(wname, model_key, seed=plan.seed)})")
                continue
            bucket.trapped += 1 if report.trapped else 0
            bucket.clean += 1 if report.reference.completed else 0
            bucket.injected_hits += report.superscalar.injected_hits
            bucket.recoveries += report.superscalar.recoveries
            bucket.boosted_squashed += report.superscalar.boosted_squashed
            if report.divergences:
                bucket.divergent += 1
                err = self._minimize(wname, model_key, prepared, image,
                                     plan, base_sched, base_ref, report)
                divergences.append(err)
                self.progress(f"  DIVERGENCE {wname}/{model_key} "
                              f"seed={plan.seed}")
        self.progress(f"  {wname}/{model_key}: {bucket.runs} runs, "
                      f"{bucket.trapped} trapped, "
                      f"{bucket.recoveries} recoveries, "
                      f"{bucket.divergent} divergences")
        return bucket, divergences, oracle_errors

    def _flipped(self, prepared: Program, plan: FaultPlan,
                 config: CompileConfig):
        flipped = clone_program(prepared)
        apply_flips(flipped, plan.flips)
        ref = clone_program(flipped)
        sched, _ = schedule_ir(flipped, config)
        return sched, ref

    def _minimize(self, wname: str, model_key: str, prepared: Program,
                  image, plan: FaultPlan, base_sched, base_ref,
                  full_report: CheckReport) -> DivergenceError:
        """Blame the smallest sub-plan that still diverges."""
        variants: list[FaultPlan] = []
        if plan.traps or plan.flips:
            variants.append(FaultPlan(plan.seed))
        if plan.traps and plan.flips:
            variants.append(plan.without_flips())
            variants.append(plan.without_traps())
        config = CAMPAIGN_CONFIGS[model_key]
        for variant in variants:
            try:
                if variant.flips:
                    sched, ref = self._flipped(prepared, variant, config)
                else:
                    sched, ref = base_sched, base_ref
                report = self.checker.compare_only(
                    sched, ref, variant, image, workload=wname,
                    config=model_key)
            except RuntimeError:
                continue
            if report.divergences:
                return DivergenceError(
                    divergences=report.divergences, workload=wname,
                    config=model_key, seed=plan.seed,
                    plan_text=variant.describe(), minimized=True,
                    backend=backend_choice(),
                    context={"full_plan": plan.describe()})
        return DivergenceError(
            divergences=full_report.divergences, workload=wname,
            config=model_key, seed=plan.seed, plan_text=plan.describe(),
            backend=backend_choice(),
            context={"reference": full_report.reference.summary(),
                     "superscalar": full_report.superscalar.summary()})


def _bucket_worker(task: tuple) -> tuple[CampaignResult,
                                         list[DivergenceError], list[str]]:
    """One (workload, model) bucket in a worker process.

    Replays the exact serial code path — same preparation (via the shared
    on-disk cache when configured), same plans, same checker — and returns
    the pieces the parent merges in serial order.
    """
    wname, model_key, seeds, seed_start, cache_dir = task
    campaign = VerifyCampaign(
        workload_names=[wname], model_keys=[model_key],
        seeds=seeds, seed_start=seed_start,
        cache=CompileCache(cache_dir) if cache_dir else None)
    w = campaign.workloads[0]
    prepared = campaign._prepare(w)
    image = make_input_image(prepared, w.eval)
    plans = [make_plan(prepared, seed) for seed in
             range(seed_start, seed_start + seeds)]
    return campaign._run_bucket(wname, model_key, prepared, image, plans)


# ------------------------------------------------------------------ self-test
class BrokenShiftBuffer(ExceptionShiftBuffer):
    """Sabotaged hardware: committing boosted faults are silently dropped.

    A machine built with this buffer completes runs whose reference traps
    (or commits garbage a faulted instruction never produced) — the checker
    MUST notice, or the whole campaign is security theatre.
    """

    def shift(self, committing_branch_uid: int
              ) -> Optional[PendingBoostException]:
        super().shift(committing_branch_uid)
        return None


#: micro workload for the self-test: the load sits on the dominant arm of
#: the inner branch, so the global scheduler boosts it above the branch —
#: an injected fault on it must travel through the shift buffer to surface
_SELFTEST_SOURCE = """
global buf[8] = { 3, 1, 4, 1, 5, 9, 2, 6 };

func main() {
    var acc = 0;
    var i = 0;
    while (i < 32) {
        var v = 0 - 1;
        if (i % 8 < 7) {
            v = buf[i % 8];
        }
        acc = acc + v;
        print(acc);
        i = i + 1;
    }
}
"""


@dataclass
class SelfTestResult:
    caught: bool
    seed: Optional[int] = None
    seeds_tried: int = 0
    detail: str = ""

    def format(self) -> str:
        if self.caught:
            return (f"self-test PASSED: broken shift buffer caught at "
                    f"seed {self.seed} ({self.seeds_tried} seeds tried)\n"
                    f"{self.detail}")
        return (f"self-test FAILED: broken shift buffer escaped "
                f"{self.seeds_tried} seeds — the checker is blind")


def run_selftest(max_seeds: int = 64,
                 model_key: str = "minboost3") -> SelfTestResult:
    """Hunt seeds until the checker convicts the broken shift buffer.

    Every seed also runs against the *healthy* machine first; a divergence
    there would mean the checker (not the sabotage) is broken, and the
    self-test fails loudly rather than claiming a catch.
    """
    config = CAMPAIGN_CONFIGS[model_key]
    prepared = prepare_ir(compile_source(_SELFTEST_SOURCE), config, None)
    healthy = DifferentialChecker()
    broken = DifferentialChecker(
        shiftbuf_factory=lambda levels: BrokenShiftBuffer(levels))

    tried = 0
    for seed in range(max_seeds):
        plan = make_plan(prepared, seed)
        if not plan.traps:
            continue  # only a deferred fault can expose the sabotage
        tried += 1
        if plan.flips:
            program = clone_program(prepared)
            apply_flips(program, plan.flips)
        else:
            program = clone_program(prepared)
        ref = clone_program(program)
        sched, _ = schedule_ir(program, config)
        sane = healthy.compare_only(sched, ref, plan, None,
                                    workload="selftest", config=model_key)
        if sane.divergences:
            return SelfTestResult(
                caught=False, seed=seed, seeds_tried=tried,
                detail="healthy machine diverged: "
                       + "; ".join(str(d) for d in sane.divergences))
        try:
            broken.check(sched, ref, plan, None, workload="selftest",
                         config=model_key)
        except DivergenceError as err:
            return SelfTestResult(caught=True, seed=seed, seeds_tried=tried,
                                  detail=err.describe())
    return SelfTestResult(caught=False, seeds_tried=tried)
