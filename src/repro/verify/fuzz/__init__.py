"""Generative differential fuzzing for the boosting pipeline.

Three pieces, one loop:

* :mod:`repro.verify.fuzz.generator` — a seeded, grammar-driven Minic
  program generator.  Every program is guaranteed to compile and terminate;
  branch predictability is tuned across the paper's 72–98% spread; loops
  nest irregularly; excepting instructions (div/rem, raw memory) and
  store-to-load aliasing patterns are emitted on purpose, because those are
  the legality edges of boosting and of the translating backend's
  trace-reuse memoization.
* :mod:`repro.verify.fuzz.fuzzcampaign` — the differential campaign
  (``python -m repro fuzz``): each generated program runs through the full
  cross-product oracle — {reference, interp, translate} backends ×
  {functional, superscalar-per-boost-model, dynamic} machines × seeded
  fault plans — riding the same supervised pool, journal/``--resume``,
  ``--jobs``, ``--shards`` and ``--chaos`` machinery the bench/verify
  campaigns use, with byte-identical merged reports at any parallelism.
* :mod:`repro.verify.fuzz.reduce` — an automatic Minic source reducer
  (delta debugging over statements, blocks, and operands, re-checking the
  divergence signature each step) feeding a persistent triage corpus
  bucketed by signature.

See ``docs/fuzzing.md`` for the runbook.
"""

from repro.verify.fuzz.generator import (  # noqa: F401
    GenConfig, GeneratedProgram, SIZE_PROFILES, generate_program,
)
from repro.verify.fuzz.fuzzcampaign import (  # noqa: F401
    DYNAMIC_FUZZ_VARIANTS, FuzzCampaign, FuzzDivergence, FuzzSummary,
    SABOTAGES,
)
from repro.verify.fuzz.reduce import (  # noqa: F401
    ReduceResult, reduce_source, unparse,
)
