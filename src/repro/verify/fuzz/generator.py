"""Seeded, grammar-driven Minic program generator.

Every generated program is, by construction:

* **valid** — it uses only the grammar the real front end accepts, declares
  every name exactly once (Minic is C89-style about locals), and keeps
  shifts, divisors, and indices inside defined ranges;
* **terminating** — every loop is counted: the bound is a literal, the
  counter is *protected* (the statement generator never emits a write to
  it), and the increment is the unconditional last statement of the body.
  ``continue`` is only emitted inside ``for`` loops, whose step clause runs
  regardless; recursion counts down a parameter to a base case.
* **adversarial** — conditions are tuned so branch taken-rates span the
  paper's 72–98% predictability spread (Table 1); div/rem and raw
  loadw/storew are emitted deliberately (they are the fault-plan trap
  candidates and the boosting-recovery stress); stores and loads through
  both ``a[i]`` and ``loadw(addr(a) + 4*i)`` alias the same arrays, which
  is exactly the store-to-load legality edge of the translating backend's
  trace-reuse memoization.

Determinism: the program text, train inputs, and eval inputs are a pure
function of ``(seed, GenConfig)``.  The RNG is seeded from a string (CPython
hashes it with SHA-512, independent of ``PYTHONHASHSEED``), no container
with nondeterministic iteration order is ever iterated, and nothing reads
the clock — so generation is byte-identical across processes and hosts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Union

InputSet = dict[str, Union[list[int], bytes, int]]

#: size profiles: (statement budget for main, loop-iteration range,
#: input-array element count [power of two], helper-function budget)
SIZE_PROFILES: dict[str, dict] = {
    "small": dict(stmts=14, iters=(3, 10), arr_pow2=4, helpers=1),
    "medium": dict(stmts=26, iters=(6, 20), arr_pow2=5, helpers=2),
    "large": dict(stmts=42, iters=(12, 40), arr_pow2=6, helpers=2),
}


@dataclass(frozen=True)
class GenConfig:
    """Grammar knobs.  The defaults mirror the paper's workload shape."""

    size: str = "small"
    #: branch taken-probability targets span [pred_lo, pred_hi] — the
    #: Table-1 predictability spread (72–98%); each branch independently
    #: lands near one end or the other of its drawn probability
    pred_lo: float = 0.72
    pred_hi: float = 0.98
    #: deepest loop nest the generator will attempt
    max_loop_depth: int = 3
    #: deepest expression tree
    max_expr_depth: int = 3
    #: number of word arrays shared by array-syntax and raw-address access
    arrays: int = 3
    #: probability that a memory statement uses raw loadw/storew aliasing
    #: instead of ``a[i]`` syntax
    raw_mem_prob: float = 0.35
    #: probability a generated binary operator is div/rem (trap candidates)
    div_prob: float = 0.18
    #: probability main calls a helper function at an eligible site
    call_prob: float = 0.4

    def key(self) -> str:
        return (f"{self.size}:{self.pred_lo}:{self.pred_hi}:"
                f"{self.max_loop_depth}:{self.max_expr_depth}:{self.arrays}:"
                f"{self.raw_mem_prob}:{self.div_prob}:{self.call_prob}")


@dataclass(frozen=True)
class GeneratedProgram:
    """One generated workload: source plus split train/eval inputs."""

    name: str
    seed: int
    source: str
    train: InputSet
    eval: InputSet


# --------------------------------------------------------------------- writer
class _Writer:
    def __init__(self) -> None:
        self.lines: list[str] = []
        self.depth = 0

    def emit(self, text: str) -> None:
        self.lines.append("    " * self.depth + text)

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


# ------------------------------------------------------------------ generator
class _Gen:
    def __init__(self, seed: int, config: GenConfig) -> None:
        profile = SIZE_PROFILES[config.size]
        self.rng = random.Random(f"repro-fuzz/{seed}/{config.key()}")
        self.config = config
        self.stmt_budget = profile["stmts"]
        self.iter_lo, self.iter_hi = profile["iters"]
        self.arr_n = 1 << profile["arr_pow2"]
        self.helper_budget = profile["helpers"]
        self.w = _Writer()
        #: scalar locals readable at the current point
        self.scalars: list[str] = []
        #: names the statement generator must never write (loop counters)
        self.protected: set[str] = set()
        self.loop_depth = 0
        self.in_for = False
        self.counter = 0
        self.helpers: list[tuple[str, int]] = []   # (name, arity)
        self.recursive: list[str] = []

    def fresh(self, prefix: str) -> str:
        self.counter += 1
        return f"{prefix}{self.counter}"

    # -------------------------------------------------------------- top level
    def generate(self) -> str:
        w = self.w
        rng = self.rng
        n = self.arr_n
        for i in range(self.config.arrays):
            if i == 0:
                # input array: zero-initialised, patched by train/eval
                w.emit(f"global inp0[{n}];")
            else:
                init = ", ".join(str(rng.randint(-40, 90))
                                 for _ in range(n))
                w.emit(f"global arr{i}[{n}] = {{ {init} }};")
        w.emit("global gsum = 0;")
        w.emit("")
        self.gen_helpers()
        self.gen_main()
        return w.text()

    def gen_helpers(self) -> None:
        rng = self.rng
        for h in range(self.helper_budget):
            name = f"fn{h}"
            arity = rng.randint(1, 3)
            params = [f"p{i}" for i in range(arity)]
            self.w.emit(f"func {name}({', '.join(params)}) {{")
            self.w.depth += 1
            saved = (self.scalars, self.protected, self.stmt_budget)
            self.scalars = list(params)
            self.protected = set(params)
            self.stmt_budget = rng.randint(2, 5)
            if rng.random() < 0.5:
                # bounded recursion: count the first parameter down
                self.recursive.append(name)
                self.w.emit(f"if (p0 <= 0) {{ return {rng.randint(0, 9)}; }}")
                body_expr = self.expr(1)
                args = ["p0 - 1"] + [self.expr(1) for _ in params[1:]]
                self.w.emit(f"return ({body_expr}) + "
                            f"{name}({', '.join(args)});")
            else:
                acc = "p0"
                while self.stmt_budget > 0:
                    self.stmt()
                self.w.emit(f"return {acc} + ({self.expr(1)});")
            self.scalars, self.protected, self.stmt_budget = saved
            self.w.depth -= 1
            self.w.emit("}")
            self.w.emit("")
            self.helpers.append((name, arity))

    def gen_main(self) -> None:
        self.w.emit("func main() {")
        self.w.depth += 1
        self.w.emit("var acc = 1;")
        self.scalars = ["acc"]
        for _ in range(self.rng.randint(1, 3)):
            name = self.fresh("v")
            self.w.emit(f"var {name} = {self.rng.randint(-30, 70)};")
            self.scalars.append(name)
        while self.stmt_budget > 0:
            self.stmt()
        self.w.emit("print(acc);")
        self.w.emit("print(gsum);")
        self.w.depth -= 1
        self.w.emit("}")

    # ------------------------------------------------------------- statements
    def stmt(self) -> None:
        rng = self.rng
        self.stmt_budget -= 1
        roll = rng.random()
        can_loop = self.loop_depth < self.config.max_loop_depth
        if roll < 0.26 and can_loop:
            self.loop()
        elif roll < 0.48:
            self.branch()
        elif roll < 0.62:
            self.mem_store()
        elif roll < 0.70:
            name = self.fresh("v")
            self.w.emit(f"var {name} = {self.expr()};")
            self.scalars.append(name)
        elif roll < 0.78 and self.loop_depth:
            self.w.emit(f"print({self.pick_scalar()} & 1023);")
        elif roll < 0.84 and self.loop_depth and rng.random() < 0.4:
            # rare, guarded early exit so traces keep their off-ramps
            kind = "break" if (not self.in_for or rng.random() < 0.5) \
                else "continue"
            self.w.emit(f"if ({self.cond(rare=True)}) {{ {kind}; }}")
            self.stmt_budget += 1   # a guarded exit barely spends budget
        else:
            self.assign()

    def assign(self) -> None:
        target = self.pick_writable()
        if target is None:
            name = self.fresh("v")
            self.w.emit(f"var {name} = {self.expr()};")
            self.scalars.append(name)
            return
        self.w.emit(f"{target} = {self.expr()};")

    def loop(self) -> None:
        rng = self.rng
        counter = self.fresh("i")
        bound = rng.randint(self.iter_lo, self.iter_hi)
        body_budget = min(self.stmt_budget, rng.randint(2, 6))
        self.stmt_budget -= body_budget
        as_for = rng.random() < 0.5
        if as_for:
            self.w.emit(f"for (var {counter} = 0; {counter} < {bound}; "
                        f"{counter} = {counter} + 1) {{")
        else:
            self.w.emit(f"var {counter} = 0;")
            self.w.emit(f"while ({counter} < {bound}) {{")
        self.w.depth += 1
        self.scalars.append(counter)
        self.protected.add(counter)
        saved_budget, saved_for = self.stmt_budget, self.in_for
        saved_scalars = len(self.scalars)
        self.stmt_budget, self.in_for = body_budget, as_for
        self.loop_depth += 1
        while self.stmt_budget > 0:
            self.stmt()
        self.loop_depth -= 1
        self.stmt_budget, self.in_for = saved_budget, saved_for
        # locals declared inside the body go out of reach: Minic names are
        # function-scoped but a sibling block must not re-read a name whose
        # declaration may not have executed on this path
        del self.scalars[saved_scalars:]
        if not as_for:
            self.w.emit(f"{counter} = {counter} + 1;")
        self.w.depth -= 1
        self.w.emit("}")
        self.scalars.remove(counter)
        self.protected.discard(counter)

    def branch(self) -> None:
        rng = self.rng
        then_budget = min(self.stmt_budget, rng.randint(1, 4))
        self.stmt_budget -= then_budget
        self.w.emit(f"if ({self.cond()}) {{")
        self.w.depth += 1
        saved_budget = self.stmt_budget
        saved_scalars = len(self.scalars)
        self.stmt_budget = then_budget
        while self.stmt_budget > 0:
            self.stmt()
        self.stmt_budget = saved_budget
        del self.scalars[saved_scalars:]
        self.w.depth -= 1
        if rng.random() < 0.55:
            self.w.emit("} else {")
            self.w.depth += 1
            else_budget = min(self.stmt_budget, rng.randint(1, 3))
            self.stmt_budget -= else_budget
            saved_budget = self.stmt_budget
            saved_scalars = len(self.scalars)
            self.stmt_budget = else_budget
            while self.stmt_budget > 0:
                self.stmt()
            self.stmt_budget = saved_budget
            del self.scalars[saved_scalars:]
            self.w.depth -= 1
        self.w.emit("}")

    def mem_store(self) -> None:
        """A store that a nearby load may alias — through either syntax."""
        rng = self.rng
        arr = self.pick_array()
        idx = self.index_expr()
        value = self.expr(1)
        if rng.random() < self.config.raw_mem_prob:
            self.w.emit(f"storew(addr({arr}) + 4 * ({idx}), {value});")
        else:
            self.w.emit(f"{arr}[{idx}] = {value};")
        if rng.random() < 0.6:
            # immediately read the same array back (maybe the same slot):
            # the store-to-load pattern trace memoization must respect
            back = self.index_expr()
            if rng.random() < self.config.raw_mem_prob:
                load = f"loadw(addr({arr}) + 4 * ({back}))"
            else:
                load = f"{arr}[{back}]"
            target = self.pick_writable() or "gsum"
            self.w.emit(f"{target} = {target} + {load};")

    # ------------------------------------------------------------ expressions
    def pick_scalar(self) -> str:
        if not self.scalars:
            return "gsum"
        return self.rng.choice(self.scalars)

    def pick_writable(self):
        pool = [s for s in self.scalars if s not in self.protected]
        pool.append("gsum")
        return self.rng.choice(pool)

    def pick_array(self) -> str:
        i = self.rng.randrange(self.config.arrays)
        return "inp0" if i == 0 else f"arr{i}"

    def index_expr(self) -> str:
        """An always-in-bounds array index: ``& (n-1)`` of anything is
        non-negative and below the power-of-two array size."""
        return f"({self.expr(1)}) & {self.arr_n - 1}"

    def cond(self, rare: bool = False) -> str:
        """A condition whose taken-rate is tuned, not accidental.

        ``(x * A + B) & 255`` churns the low bits of a live value into a
        roughly uniform byte; comparing against ``round(256*p)`` yields a
        branch taken with probability ≈ p.  Drawing p from the configured
        [pred_lo, pred_hi] band — sometimes inverted — reproduces the
        paper's 72–98% predictability spread.  ``rare`` conditions guard
        break/continue and stay unlikely so loops keep most of their trip
        count.
        """
        rng = self.rng
        if rare:
            p = rng.uniform(0.04, 0.12)
        else:
            p = rng.uniform(self.config.pred_lo, self.config.pred_hi)
            if rng.random() < 0.5:
                p = 1.0 - p
        threshold = max(1, min(255, round(256 * p)))
        x = self.pick_scalar()
        a = rng.choice((29, 37, 53, 71, 89))
        b = rng.randint(0, 250)
        lhs = f"(({x} * {a} + {b}) & 255)"
        simple = f"{lhs} < {threshold}"
        if rng.random() < 0.3:
            # compound condition: short-circuit && / || is real control flow
            other = f"({self.pick_scalar()} & {rng.choice((1, 3, 7))}) " \
                    f"!= {rng.randint(0, 3)}"
            op = "&&" if rng.random() < 0.5 else "||"
            return f"{simple} {op} {other}"
        return simple

    def expr(self, depth: int = 0) -> str:
        rng = self.rng
        if depth >= self.config.max_expr_depth or rng.random() < 0.30:
            return self.leaf(depth)
        if rng.random() < self.config.div_prob:
            # div/rem are the excepting instructions fault plans target;
            # ``(x & 15) + k`` keeps the divisor in [k, 15+k], never zero
            num = self.expr(depth + 1)
            den = f"(({self.leaf(depth)}) & 15) + {rng.randint(1, 7)}"
            op = "/" if rng.random() < 0.5 else "%"
            return f"({num}) {op} ({den})"
        op = rng.choice(("+", "-", "*", "&", "|", "^", "+", "-"))
        lhs, rhs = self.expr(depth + 1), self.expr(depth + 1)
        if rng.random() < 0.12:
            shift = rng.randint(1, 7)
            lhs = f"({lhs} >> {shift})" if rng.random() < 0.5 \
                else f"({lhs} << {shift})"
        return f"({lhs}) {op} ({rhs})"

    def leaf(self, depth: int = 0) -> str:
        rng = self.rng
        roll = rng.random()
        if roll < 0.34:
            return self.pick_scalar()
        if roll < 0.44:
            return str(rng.randint(-100, 200))
        if roll < 0.70:
            arr = self.pick_array()
            idx = f"({self.pick_scalar()}) & {self.arr_n - 1}"
            if rng.random() < self.config.raw_mem_prob:
                return f"loadw(addr({arr}) + 4 * ({idx}))"
            return f"{arr}[{idx}]"
        if roll < 0.80 and self.helpers and depth < 2 \
                and rng.random() < self.config.call_prob:
            name, arity = rng.choice(self.helpers)
            args = [f"({self.pick_scalar()}) & 7"]
            args += [self.pick_scalar() for _ in range(arity - 1)]
            return f"{name}({', '.join(args)})"
        if roll < 0.9:
            return f"~({self.pick_scalar()})"
        return f"-({self.pick_scalar()})"


def _input_values(rng: random.Random, n: int) -> list[int]:
    """A skewed value distribution: mostly small positives (predictable
    data-dependent branches), a sprinkling of negatives and spikes."""
    out = []
    for _ in range(n):
        roll = rng.random()
        if roll < 0.70:
            out.append(rng.randint(0, 60))
        elif roll < 0.88:
            out.append(rng.randint(-50, -1))
        else:
            out.append(rng.randint(1000, 100_000))
    return out


def generate_program(seed: int,
                     config: GenConfig = GenConfig()) -> GeneratedProgram:
    """The pure function ``(seed, config) -> program`` everything rides on."""
    gen = _Gen(seed, config)
    source = gen.generate()
    n = gen.arr_n
    train_rng = random.Random(f"repro-fuzz-train/{seed}/{config.key()}")
    eval_rng = random.Random(f"repro-fuzz-eval/{seed}/{config.key()}")
    train: InputSet = {"inp0": _input_values(train_rng, n)}
    eval_: InputSet = {"inp0": _input_values(eval_rng, n)}
    return GeneratedProgram(name=f"fuzz-{seed:06d}", seed=seed,
                            source=source, train=train, eval=eval_)


__all__ = ["GenConfig", "GeneratedProgram", "SIZE_PROFILES",
           "generate_program"]
