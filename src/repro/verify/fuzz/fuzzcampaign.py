"""Differential fuzz campaigns over generated Minic programs.

One campaign cell is ``(program, plan, machine, model, backend)``:

* the **oracle** for a program/plan pair is the functional simulator on the
  ``reference`` backend — the slow, readable interpreter nothing else is
  allowed to disagree with;
* **backend cells** re-run the functional machine on each other backend
  (``interp``, ``translate``) and demand identical output, trap identity,
  and final memory — this is the cross-check that guards the translating
  backend's superblock generation and trace-reuse memoization;
* **model cells** run the scheduled superscalar machine for each boosting
  model × backend under the same fault plan, compared against the oracle
  with the usual differential rules (trap precision, prefix-consistent
  output under traps, byte-identical memory on clean exits);
* **dynamic cells** run the dynamically-scheduled comparator on the benign
  plan, one cell per variant in ``DYNAMIC_FUZZ_VARIANTS`` — renaming
  on/off, the load/store queue with store-to-load forwarding, and
  memory-dependence speculation at two queue sizes (the tight queue also
  exercises LSQ-full dispatch stalls) — the dynamic machine has no
  fault-hook port, so injected plans stay out of its cells.

Plans are deterministic per ``(program seed, plan index)``; plan index 0 is
always the explicit benign plan, the rest are drawn by
:func:`repro.verify.faults.make_plan` (traps + prediction flips).  A plan
that carries a trap forces both machines onto the interpreter engine (the
fault hook has no superblock port), so the translating backend is genuinely
exercised by the benign and flip-only cells.

The campaign rides the same machinery as ``bench``/``verify``: the
supervised worker pool (``--jobs``, timeouts, retries, ``--chaos``), the
append-only journal (``--journal``/``--resume``), and the lease-guarded
shard coordinator (``--shards``).  Results merge in serial seed order, so
the formatted report is byte-identical at any parallelism.

Divergences are grouped by **signature** — ``machine/model/backend/
observables/oracle-disposition`` — and the first divergence of each
signature is handed to the :mod:`repro.verify.fuzz.reduce` delta debugger,
which shrinks the generated source while the exact cell keeps reproducing
the exact signature.  Minimized sources land in a persistent triage corpus,
one directory per signature, each with a copy-pasteable one-line repro.

``--sabotage`` plants a deliberate bug so the whole loop can prove it would
notice one: a fuzzer that has never caught anything is indistinguishable
from a fuzzer that cannot.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

from repro.frontend import compile_source
from repro.harness.parallel import run_tasks
from repro.harness.pipeline import make_input_image, prepare_ir, schedule_ir
from repro.hw.dynamic import DynamicConfig, DynamicSim
from repro.hw.exceptions import Trap
from repro.obs.stats import FuzzStats
from repro.program.procedure import clone_program
from repro.sched.schedprog import ScheduledProgram
from repro.verify.campaign import CAMPAIGN_CONFIGS, BrokenShiftBuffer
from repro.verify.differential import DifferentialChecker, RunOutcome
from repro.verify.errors import Divergence
from repro.verify.faults import FaultPlan, apply_flips, make_plan
from repro.verify.fuzz.generator import GenConfig, generate_program
from repro.verify.fuzz.reduce import reduce_source

#: boosting models a fuzz campaign exercises by default: one eager-squash
#: model and the deepest boosting model — the two ends of the recovery
#: design space (more via ``--models``)
DEFAULT_FUZZ_MODELS = ("squashing", "boost7")

#: dynamic-machine comparator variants, benign plan only (subset via
#: ``--dynamic-variants``); generated programs lean on raw storew/loadw
#: aliasing, so the speculative variants are the forwarding/squash hunters
DYNAMIC_FUZZ_VARIANTS: dict[str, DynamicConfig] = {
    "norename": DynamicConfig(rename=False),
    "rename": DynamicConfig(rename=True),
    "lsq": DynamicConfig(rename=True, lsq_size=16, stlf=True),
    "memdep": DynamicConfig(rename=True, lsq_size=16, stlf=True,
                            memdep_speculate=True),
    "memdep-tight": DynamicConfig(rename=True, lsq_size=4, stlf=True,
                                  memdep_speculate=True),
}

#: deliberate bugs ``--sabotage`` can plant (self-test of the whole loop)
SABOTAGES = {
    "shiftbuf": "superscalar exception shift buffer silently drops "
                "committing boosted faults",
    "drop-print": "superscalar machine loses the last element of its "
                  "PRINT stream",
}

#: execution bounds for campaign cells — generated programs are small, so
#: anything that runs away is itself a finding (reported as oracle error)
_MAX_STEPS = 10_000_000
_MAX_CYCLES = 20_000_000
_WALL_LIMIT = 60.0
#: tighter bounds for reduction-predicate replays (they run many times)
_REDUCE_STEPS = 4_000_000
_REDUCE_CYCLES = 8_000_000
_REDUCE_WALL = 15.0


def _plan_seed(program_seed: int, index: int) -> int:
    """Plan seeds, decoupled from program seeds so neighbouring programs
    never share plan streams (100003 is prime and > any plan count)."""
    return program_seed * 100_003 + index


def fuzz_repro_cmd(seed: int, config: GenConfig, plans: int,
                   model: Optional[str] = None,
                   backend: Optional[str] = None,
                   sabotage: Optional[str] = None) -> str:
    """A copy-pasteable one-line repro for one generated program's cells.

    Regenerating from ``--seed-start N --count 1`` replays the identical
    program, inputs, and plan stream; naming the model/backend narrows the
    rerun to the diverging cell's row and column of the matrix.
    """
    cmd = (f"python -m repro fuzz --count 1 --seed-start {seed} "
           f"--plans {plans} --size {config.size}")
    default = GenConfig(size=config.size)
    if config.pred_lo != default.pred_lo:
        cmd += f" --pred-lo {config.pred_lo}"
    if config.pred_hi != default.pred_hi:
        cmd += f" --pred-hi {config.pred_hi}"
    if model is not None:
        cmd += f" --models {model}"
    if backend is not None and backend != "-":
        cmd += f" --backends {backend}"
    if sabotage:
        cmd += f" --sabotage {sabotage}"
    return cmd


def _signature(machine: str, model: str, backend: str,
               divergences: list[Divergence], oracle: RunOutcome) -> str:
    """Stable divergence signature: which cell disagreed, on which
    observables, under which oracle disposition (clean / trap kind)."""
    obs = "+".join(sorted({d.observable for d in divergences}))
    disposition = oracle.trap.kind.name if oracle.trap is not None else "clean"
    return f"{machine}/{model}/{backend}/{obs}/{disposition}"


@dataclass
class FuzzDivergence:
    """One diverging campaign cell, with everything triage needs."""

    program: str
    seed: int
    machine: str            # "functional" | "superscalar" | "dynamic"
    model: str              # boost model key, rename mode, or "-"
    backend: str            # execution engine, or "-" (dynamic machine)
    plan_seed: int
    plan_index: int
    plan_text: str
    benign: bool
    signature: str
    divergences: list[Divergence]
    repro_cmd: str
    source: str
    reduced_source: Optional[str] = None
    reduce_note: str = ""

    def describe(self) -> str:
        lines = [f"divergence in {self.program} cell "
                 f"{self.machine}/{self.model}/{self.backend} "
                 f"plan[{self.plan_index}]"]
        lines.append(f"  plan: {self.plan_text}")
        lines.append(f"  signature: {self.signature}")
        for d in self.divergences:
            lines.append(f"  - {d}")
        if self.reduce_note:
            lines.append(f"  {self.reduce_note}")
        lines.append(f"  repro: {self.repro_cmd}")
        return "\n".join(lines)


@dataclass
class FuzzProgramResult:
    """Aggregated outcome of one generated program's cells."""

    name: str
    seed: int
    plans: int = 0
    runs: int = 0
    trapped: int = 0
    flipped: int = 0
    injected_hits: int = 0
    backend_cells: int = 0
    model_cells: int = 0
    dynamic_cells: int = 0
    divergent: int = 0
    errors: int = 0
    instr_count: int = 0
    compile_error: Optional[str] = None


@dataclass
class TriageEntry:
    """One bucket of the persistent triage corpus."""

    signature: str
    bucket: str
    program: str
    seed: int
    occurrences: int
    reduced_lines: int
    note: str


@dataclass
class FuzzSummary:
    results: list[FuzzProgramResult] = field(default_factory=list)
    divergences: list[FuzzDivergence] = field(default_factory=list)
    oracle_errors: list[str] = field(default_factory=list)
    triage: list[TriageEntry] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (not self.divergences and not self.oracle_errors
                and not any(r.compile_error for r in self.results))

    def stats(self) -> FuzzStats:
        s = FuzzStats()
        for r in self.results:
            if r.compile_error is not None:
                s.compile_errors += 1
                continue
            s.programs += 1
            s.runs += r.runs
            s.plans += r.plans
            s.trapped += r.trapped
            s.flipped += r.flipped
            s.injected_hits += r.injected_hits
            s.divergent += r.divergent
            s.backend_cells += r.backend_cells
            s.model_cells += r.model_cells
            s.dynamic_cells += r.dynamic_cells
        s.oracle_errors = len(self.oracle_errors)
        s.reduced = sum(1 for d in self.divergences
                        if d.reduced_source is not None)
        s.triage_buckets = len(self.triage)
        return s

    def format(self) -> str:
        s = self.stats()
        lines = [
            f"fuzz campaign: {s.programs} programs, {s.runs} comparisons "
            f"({s.backend_cells} backend, {s.model_cells} model, "
            f"{s.dynamic_cells} dynamic cells)",
            f"plans: {s.plans} total, {s.trapped} trapping oracle runs, "
            f"{s.flipped} prediction-flipped, "
            f"{s.injected_hits} injected fault hits",
        ]
        for r in self.results:
            if r.compile_error is not None:
                lines.append(f"COMPILE ERROR {r.name}: {r.compile_error}")
        buckets: dict[str, int] = {}
        for d in self.divergences:
            buckets[d.signature] = buckets.get(d.signature, 0) + 1
        lines.append(f"divergences: {len(self.divergences)} in "
                     f"{len(buckets)} signature bucket(s), "
                     f"oracle errors: {len(self.oracle_errors)}")
        for sig in sorted(buckets):
            lines.append(f"  [{buckets[sig]}x] {sig}")
        for entry in self.triage:
            lines.append(f"  triage: {entry.bucket} "
                         f"({entry.reduced_lines} lines) {entry.note}")
        for d in self.divergences:
            lines.append("")
            lines.append(d.describe())
        for msg in self.oracle_errors:
            lines.append(f"oracle error: {msg}")
        return "\n".join(lines)


# ---------------------------------------------------------------- cell engine
def _apply_sabotage(sabotage: Optional[str], outcome: RunOutcome) -> None:
    if sabotage == "drop-print" and outcome.output:
        outcome.output = outcome.output[:-1]


def _shiftbuf_factory(sabotage: Optional[str]):
    if sabotage == "shiftbuf":
        return lambda levels: BrokenShiftBuffer(levels)
    return None


def _run_dynamic_outcome(program, image, variant: str,
                         max_cycles: int) -> RunOutcome:
    sim = DynamicSim(program, config=DYNAMIC_FUZZ_VARIANTS[variant],
                     max_cycles=max_cycles, input_image=image)
    outcome = RunOutcome(machine=f"dynamic/{variant}")
    try:
        sim.run()
    except Trap as trap:
        outcome.trap = trap
    except RuntimeError as err:
        outcome.error = f"{type(err).__name__}: {err}"
    outcome.output = sim.result.output
    outcome.trap = outcome.trap or sim.result.trap
    outcome.instr_count = sim.result.instr_count
    outcome.mispredicts = sim.result.mispredict_count
    if outcome.error is None:
        outcome.memory = sim.mem.snapshot()
    return outcome


def _run_program(seed: int, config: GenConfig, model_keys: tuple,
                 backends: tuple, nplans: int, sabotage: Optional[str],
                 dyn_variants: tuple = tuple(DYNAMIC_FUZZ_VARIANTS),
                 max_steps: int = _MAX_STEPS, max_cycles: int = _MAX_CYCLES,
                 wall_limit: Optional[float] = _WALL_LIMIT,
                 ) -> tuple[FuzzProgramResult, list[FuzzDivergence],
                            list[str]]:
    """All cells of one generated program — the unit of parallelism."""
    gp = generate_program(seed, config)
    res = FuzzProgramResult(name=gp.name, seed=seed)
    divergences: list[FuzzDivergence] = []
    errors: list[str] = []

    def repro(model=None, backend=None):
        return fuzz_repro_cmd(seed, config, nplans, model=model,
                              backend=backend, sabotage=sabotage)

    try:
        prepared = prepare_ir(compile_source(gp.source),
                              CAMPAIGN_CONFIGS[model_keys[0]], gp.train,
                              max_profile_steps=max_steps)
    except Exception as err:  # a generator bug, not a finding to swallow
        res.compile_error = f"{type(err).__name__}: {err}"
        errors.append(f"{gp.name}: failed to compile/prepare: "
                      f"{res.compile_error} (repro: {repro()})")
        return res, divergences, errors

    image = make_input_image(prepared, gp.eval)
    ref = clone_program(prepared)
    oracle_checker = DifferentialChecker(
        max_steps=max_steps, max_cycles=max_cycles,
        wall_clock_limit=wall_limit, backend="reference")
    shiftbuf = _shiftbuf_factory(sabotage)

    base_scheds: dict[str, ScheduledProgram] = {}
    for mk in model_keys:
        prog = clone_program(prepared)
        base_scheds[mk], _ = schedule_ir(prog, CAMPAIGN_CONFIGS[mk])

    plans = [FaultPlan(seed=_plan_seed(seed, 0))]
    plans += [make_plan(prepared, _plan_seed(seed, i))
              for i in range(1, nplans)]
    res.plans = len(plans)

    def record(machine, model, backend, plan, pidx, divs, oracle):
        res.divergent += 1
        divergences.append(FuzzDivergence(
            program=gp.name, seed=seed, machine=machine, model=model,
            backend=backend, plan_seed=plan.seed, plan_index=pidx,
            plan_text=plan.describe(), benign=(pidx == 0),
            signature=_signature(machine, model, backend, divs, oracle),
            divergences=divs, source=gp.source,
            repro_cmd=repro(model=model if machine == "superscalar" else None,
                            backend=backend)))

    for pidx, plan in enumerate(plans):
        try:
            oracle = oracle_checker.run_reference(ref, plan, image)
        except RuntimeError as err:
            res.errors += 1
            errors.append(f"{gp.name} plan[{pidx}]: oracle run failed: "
                          f"{type(err).__name__}: {err} (repro: {repro()})")
            continue
        res.trapped += 1 if oracle.trap is not None else 0
        res.flipped += 1 if plan.flips else 0
        if pidx == 0:
            res.instr_count = oracle.instr_count

        # functional machine across backends (the oracle is "reference")
        for b in backends:
            if b == "reference":
                continue
            res.backend_cells += 1
            res.runs += 1
            checker = DifferentialChecker(
                max_steps=max_steps, max_cycles=max_cycles,
                wall_clock_limit=wall_limit, backend=b)
            try:
                other = checker.run_reference(ref, plan, image)
            except RuntimeError as err:
                res.errors += 1
                errors.append(f"{gp.name} plan[{pidx}] functional/{b}: "
                              f"{type(err).__name__}: {err} "
                              f"(repro: {repro(backend=b)})")
                continue
            divs = DifferentialChecker.compare(oracle, other)
            if divs:
                record("functional", "-", b, plan, pidx, divs, oracle)

        # scheduled superscalar machine: models × backends
        flipped_scheds: dict[str, ScheduledProgram] = {}
        for mk in model_keys:
            if plan.flips:
                if mk not in flipped_scheds:
                    prog = clone_program(prepared)
                    apply_flips(prog, plan.flips)
                    flipped_scheds[mk], _ = schedule_ir(
                        prog, CAMPAIGN_CONFIGS[mk])
                sched = flipped_scheds[mk]
            else:
                sched = base_scheds[mk]
            for b in backends:
                res.model_cells += 1
                res.runs += 1
                checker = DifferentialChecker(
                    max_steps=max_steps, max_cycles=max_cycles,
                    wall_clock_limit=wall_limit, backend=b,
                    shiftbuf_factory=shiftbuf)
                try:
                    ssc = checker.run_superscalar(sched, plan, image)
                except RuntimeError as err:
                    res.errors += 1
                    errors.append(f"{gp.name} plan[{pidx}] {mk}/{b}: "
                                  f"{type(err).__name__}: {err} "
                                  f"(repro: {repro(model=mk, backend=b)})")
                    continue
                _apply_sabotage(sabotage, ssc)
                res.injected_hits += ssc.injected_hits
                divs = DifferentialChecker.compare(oracle, ssc)
                if divs:
                    record("superscalar", mk, b, plan, pidx, divs, oracle)

        # dynamically-scheduled comparator: benign plan only (no fault port)
        if pidx == 0:
            for variant in dyn_variants:
                res.dynamic_cells += 1
                res.runs += 1
                dyn = _run_dynamic_outcome(ref, image, variant, max_cycles)
                divs = DifferentialChecker.compare(oracle, dyn)
                if divs:
                    record("dynamic", variant, "-", plan, pidx, divs,
                           oracle)

    return res, divergences, errors


def _program_worker(task: tuple) -> tuple[FuzzProgramResult,
                                          list[FuzzDivergence], list[str]]:
    """One generated program in a worker process — everything in the task
    tuple is plain data, so the same worker serves the supervised pool and
    the shard coordinator."""
    seed, config, model_keys, backends, nplans, sabotage, dyn_variants = task
    return _run_program(seed, config, tuple(model_keys), tuple(backends),
                        nplans, sabotage, tuple(dyn_variants))


# ------------------------------------------------------------------- campaign
class FuzzCampaign:
    """Generate ``count`` programs from ``seed_start`` and run every cell."""

    def __init__(
        self,
        count: int = 50,
        seed_start: int = 0,
        config: GenConfig = GenConfig(),
        model_keys: Optional[list[str]] = None,
        backends: Optional[list[str]] = None,
        plans: int = 4,
        sabotage: Optional[str] = None,
        dynamic_variants: Optional[list[str]] = None,
        progress: Optional[Callable[[str], None]] = None,
    ) -> None:
        from repro.hw.backend import BACKENDS

        self.count = count
        self.seed_start = seed_start
        self.config = config
        self.model_keys = list(model_keys or DEFAULT_FUZZ_MODELS)
        bad = [m for m in self.model_keys if m not in CAMPAIGN_CONFIGS]
        if bad:
            raise ValueError(f"unknown model(s) {bad}; "
                             f"available: {sorted(CAMPAIGN_CONFIGS)}")
        self.backends = list(backends or BACKENDS)
        bad = [b for b in self.backends if b not in BACKENDS]
        if bad:
            raise ValueError(f"unknown backend(s) {bad}; "
                             f"available: {list(BACKENDS)}")
        if plans < 1:
            raise ValueError("--plans must be at least 1 (the benign plan)")
        self.plans = plans
        self.dynamic_variants = list(dynamic_variants
                                     or DYNAMIC_FUZZ_VARIANTS)
        bad = [v for v in self.dynamic_variants
               if v not in DYNAMIC_FUZZ_VARIANTS]
        if bad:
            raise ValueError(f"unknown dynamic variant(s) {bad}; "
                             f"available: {list(DYNAMIC_FUZZ_VARIANTS)}")
        if sabotage is not None and sabotage not in SABOTAGES:
            raise ValueError(f"unknown sabotage {sabotage!r}; "
                             f"available: {sorted(SABOTAGES)}")
        self.sabotage = sabotage
        self.progress = progress or (lambda msg: None)
        self.shard_report = None
        #: jkey -> structured supervision-failure record (kind, attempts,
        #: error) for programs that degraded at the harness level during the
        #: last :meth:`run` — the campaign service reads these for its
        #: circuit-breaker accounting
        self.failures: dict[str, dict] = {}

    # ----------------------------------------------------------------- facets
    def facets(self) -> dict:
        """The identity of this campaign, for journal fingerprints."""
        return {
            "kind": "fuzz",
            "count": self.count,
            "seed_start": self.seed_start,
            "gen": self.config.key(),
            "models": list(self.model_keys),
            "backends": list(self.backends),
            "plans": self.plans,
            "sabotage": self.sabotage or "",
            "dynamic_variants": list(self.dynamic_variants),
        }

    def _seeds(self) -> list[int]:
        return list(range(self.seed_start, self.seed_start + self.count))

    def _task(self, seed: int) -> tuple:
        return (seed, self.config, tuple(self.model_keys),
                tuple(self.backends), self.plans, self.sabotage,
                tuple(self.dynamic_variants))

    @staticmethod
    def _key(seed: int) -> str:
        return f"fuzz/{seed:08d}"

    # -------------------------------------------------------------------- run
    def run(self, jobs: int = 1, policy=None, chaos=None, journal=None
            ) -> FuzzSummary:
        """Run the campaign; merge order is seed order at any ``jobs``."""
        supervised = (jobs > 1 or chaos is not None
                      or (policy is not None and policy.preemptive))
        if supervised:
            return self._run_supervised(jobs, policy, chaos, journal)
        summary = FuzzSummary()
        seeds = self._seeds()
        try:
            for seed in seeds:
                jkey = self._key(seed)
                if journal is not None and jkey in journal.completed:
                    payload = journal.completed[jkey]
                else:
                    payload = _program_worker(self._task(seed))
                    if journal is not None:
                        journal.record(jkey, payload)
                self._merge(summary, payload)
        except KeyboardInterrupt:
            from repro.harness.resilience import CampaignInterrupted
            raise CampaignInterrupted(len(summary.results),
                                      len(seeds)) from None
        return summary

    def _merge(self, summary: FuzzSummary, payload) -> None:
        res, divergences, errors = payload
        summary.results.append(res)
        summary.divergences.extend(divergences)
        summary.oracle_errors.extend(errors)
        if divergences:
            self.progress(f"  DIVERGENCE {res.name}: "
                          + ", ".join(d.signature for d in divergences))
        elif res.compile_error:
            self.progress(f"  COMPILE ERROR {res.name}")

    def _run_supervised(self, jobs: int, policy=None, chaos=None,
                        journal=None) -> FuzzSummary:
        from repro.harness.resilience import CampaignInterrupted

        seeds = self._seeds()
        todo = [seed for seed in seeds
                if journal is None or self._key(seed) not in journal.completed]
        tasks = [self._task(seed) for seed in todo]

        def checkpoint(outcome) -> None:
            # only clean results are journaled; harness-level failures
            # (timeout, killed worker) must be retried on resume
            if journal is None or outcome.error is not None:
                return
            journal.record(self._key(todo[outcome.index]), outcome.value)

        try:
            outcomes = dict(zip(todo, run_tasks(
                _program_worker, tasks, jobs, policy=policy, chaos=chaos,
                on_result=checkpoint)))
        except CampaignInterrupted as intr:
            raise CampaignInterrupted(
                len(seeds) - len(todo) + intr.completed,
                len(seeds)) from None
        summary = FuzzSummary()
        for seed in seeds:
            if seed not in outcomes:
                payload = journal.completed[self._key(seed)]
            else:
                outcome = outcomes[seed]
                if outcome.error is not None:
                    self.failures[self._key(seed)] = {
                        "kind": outcome.kind, "attempts": outcome.attempts,
                        "error": outcome.error}
                    summary.results.append(FuzzProgramResult(
                        name=f"fuzz-{seed:06d}", seed=seed))
                    summary.oracle_errors.append(
                        f"fuzz-{seed:06d}: worker failed: {outcome.error} "
                        f"(repro: "
                        + fuzz_repro_cmd(seed, self.config, self.plans,
                                         sabotage=self.sabotage) + ")")
                    continue
                payload = outcome.value
            self._merge(summary, payload)
        return summary

    def run_sharded(self, shards: int, campaign_dir, fingerprint: str,
                    facets: Optional[dict] = None, jobs: int = 1,
                    policy=None, shard_policy=None, shard_chaos=None,
                    resume: bool = False, lease_ttl: float = 15.0
                    ) -> FuzzSummary:
        """Run across ``shards`` lease-guarded worker processes; see
        :meth:`repro.verify.campaign.VerifyCampaign.run_sharded` — the
        merge is in serial seed order, a program no shard could recover
        degrades to an empty result plus an oracle error."""
        from repro.harness.coordinator import run_sharded

        seeds = self._seeds()
        keys = [self._key(seed) for seed in seeds]
        tasks = [self._task(seed) for seed in seeds]
        report = run_sharded(
            _program_worker, tasks, keys, campaign_dir, fingerprint,
            facets=facets, shards=shards, jobs=jobs, policy=policy,
            shard_policy=shard_policy, shard_chaos=shard_chaos,
            lease_ttl=lease_ttl, resume=resume, progress=self.progress)
        summary = FuzzSummary()
        for seed, jkey in zip(seeds, keys):
            if jkey in report.completed:
                self._merge(summary, report.completed[jkey])
            else:
                info = report.failures.get(jkey) or {
                    "error": "program missing from every shard journal"}
                summary.results.append(FuzzProgramResult(
                    name=f"fuzz-{seed:06d}", seed=seed))
                summary.oracle_errors.append(
                    f"fuzz-{seed:06d}: shard failed: {info['error']} "
                    f"(repro: "
                    + fuzz_repro_cmd(seed, self.config, self.plans,
                                     sabotage=self.sabotage) + ")")
        self.shard_report = report
        return summary

    # -------------------------------------------------------- reduce + triage
    def _cell_signature(self, source: str, fd: FuzzDivergence
                        ) -> Optional[str]:
        """Replay exactly the diverging cell on candidate source; None when
        the candidate no longer compiles, runs away, or stops diverging."""
        try:
            prog = compile_source(source)
        except Exception:
            return None
        gp = generate_program(fd.seed, self.config)
        train = {k: v for k, v in gp.train.items() if k in prog.data}
        try:
            prepared = prepare_ir(prog, CAMPAIGN_CONFIGS[self.model_keys[0]],
                                  train, max_profile_steps=_REDUCE_STEPS)
            eval_in = {k: v for k, v in gp.eval.items()
                       if k in prepared.data}
            image = make_input_image(prepared, eval_in)
        except Exception:
            return None
        plan = (FaultPlan(seed=fd.plan_seed) if fd.benign
                else make_plan(prepared, fd.plan_seed))
        ref = clone_program(prepared)
        oracle_checker = DifferentialChecker(
            max_steps=_REDUCE_STEPS, max_cycles=_REDUCE_CYCLES,
            wall_clock_limit=_REDUCE_WALL, backend="reference")
        try:
            oracle = oracle_checker.run_reference(ref, plan, image)
            if fd.machine == "functional":
                checker = DifferentialChecker(
                    max_steps=_REDUCE_STEPS, max_cycles=_REDUCE_CYCLES,
                    wall_clock_limit=_REDUCE_WALL, backend=fd.backend)
                other = checker.run_reference(ref, plan, image)
            elif fd.machine == "superscalar":
                prog2 = clone_program(prepared)
                if plan.flips:
                    apply_flips(prog2, plan.flips)
                sched, _ = schedule_ir(prog2, CAMPAIGN_CONFIGS[fd.model])
                checker = DifferentialChecker(
                    max_steps=_REDUCE_STEPS, max_cycles=_REDUCE_CYCLES,
                    wall_clock_limit=_REDUCE_WALL, backend=fd.backend,
                    shiftbuf_factory=_shiftbuf_factory(self.sabotage))
                other = checker.run_superscalar(sched, plan, image)
                _apply_sabotage(self.sabotage, other)
            else:  # dynamic — fd.model names the variant
                other = _run_dynamic_outcome(ref, image, fd.model,
                                             _REDUCE_CYCLES)
        except Exception:
            return None
        divs = DifferentialChecker.compare(oracle, other)
        if not divs:
            return None
        return _signature(fd.machine, fd.model, fd.backend, divs, oracle)

    def finalize(self, summary: FuzzSummary,
                 triage_dir: Optional[Path] = None,
                 reduce: bool = True) -> FuzzSummary:
        """Reduce the first divergence of each signature and file the
        triage corpus.  Runs serially in the parent *after* the merge, on
        the already-deterministic divergence list — parallelism cannot
        change which divergence represents a bucket."""
        by_signature: dict[str, list[FuzzDivergence]] = {}
        for fd in summary.divergences:
            by_signature.setdefault(fd.signature, []).append(fd)
        for sig in sorted(by_signature):
            group = by_signature[sig]
            fd = group[0]
            if reduce:
                self.progress(f"  reducing {fd.program} [{sig}] ...")
                try:
                    result = reduce_source(
                        fd.source,
                        lambda src: self._cell_signature(src, fd) == sig)
                    fd.reduced_source = result.source
                    fd.reduce_note = result.summary()
                except ValueError as err:
                    fd.reduce_note = f"reduction skipped: {err}"
            entry = TriageEntry(
                signature=sig, bucket=_bucket_name(sig), program=fd.program,
                seed=fd.seed, occurrences=len(group),
                reduced_lines=len((fd.reduced_source
                                   or fd.source).splitlines()),
                note=fd.reduce_note or "not reduced")
            if triage_dir is not None:
                _write_bucket(Path(triage_dir), fd, entry)
            summary.triage.append(entry)
        return summary


def _bucket_name(signature: str) -> str:
    slug = re.sub(r"[^a-z0-9]+", "-", signature.lower()).strip("-")[:60]
    digest = hashlib.sha256(signature.encode()).hexdigest()[:8]
    return f"{slug}-{digest}"


def _write_bucket(triage_dir: Path, fd: FuzzDivergence,
                  entry: TriageEntry) -> None:
    """File one signature bucket: minimized source, original source, and a
    machine-readable record with the one-line repro."""
    bucket = triage_dir / entry.bucket
    bucket.mkdir(parents=True, exist_ok=True)
    (bucket / "repro.mc").write_text(fd.reduced_source or fd.source)
    (bucket / "original.mc").write_text(fd.source)
    record = {
        "schema": "repro-triage/1",
        "signature": fd.signature,
        "program": fd.program,
        "seed": fd.seed,
        "plan_seed": fd.plan_seed,
        "plan_index": fd.plan_index,
        "plan": fd.plan_text,
        "machine": fd.machine,
        "model": fd.model,
        "backend": fd.backend,
        "divergences": [str(d) for d in fd.divergences],
        "occurrences": entry.occurrences,
        "reduce": entry.note,
        "repro": fd.repro_cmd,
    }
    tmp = bucket / "record.json.tmp"
    tmp.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    tmp.replace(bucket / "record.json")


__all__ = ["DEFAULT_FUZZ_MODELS", "DYNAMIC_FUZZ_VARIANTS", "FuzzCampaign",
           "FuzzDivergence", "FuzzProgramResult", "FuzzSummary", "SABOTAGES",
           "TriageEntry", "fuzz_repro_cmd"]
