"""Automatic Minic source reduction by delta debugging.

Given a source file and a *predicate* ("does this source still show the
original divergence signature?"), the reducer shrinks the program through
the real front end: parse → mutate the AST → unparse → re-check.  The
compiler itself is the validity oracle — a mutation that removes a needed
declaration simply fails to compile and is rejected by the predicate, so
the reducer needs no language-specific dependency analysis.

Reduction passes, applied to fixpoint:

1. **statement deletion** — ddmin-style chunked removal over every
   statement list (function bodies, branch arms, loop bodies);
2. **block flattening** — an ``if`` is replaced by one of its arms, a loop
   by its body (run once) or by nothing;
3. **operand simplification** — a binary collapses to one operand, a
   unary/call/index to a literal, conditions to constants;
4. **declaration pruning** — unreferenced globals and functions drop.

Every accepted step re-checks the *full* divergence signature, so the
minimized program provokes the same disagreement as the original — not
merely "some" disagreement.  The pass order and chunk schedule are fixed,
making reduction deterministic for a deterministic predicate.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable, Optional

from repro.frontend import ast
from repro.frontend.parser import parse

# ------------------------------------------------------------------- unparse

_PREC = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}
_UNARY_PREC = 11


def _expr(e, parent_prec: int = 0) -> str:
    if isinstance(e, ast.IntLit):
        if e.value < 0:
            return _wrap(f"-{-e.value}", _UNARY_PREC, parent_prec)
        return str(e.value)
    if isinstance(e, ast.Var):
        return e.name
    if isinstance(e, ast.Unary):
        return _wrap(f"{e.op}{_expr(e.operand, _UNARY_PREC)}",
                     _UNARY_PREC, parent_prec)
    if isinstance(e, ast.Binary):
        prec = _PREC[e.op]
        text = (f"{_expr(e.lhs, prec)} {e.op} {_expr(e.rhs, prec + 1)}")
        return _wrap(text, prec, parent_prec)
    if isinstance(e, ast.Call):
        args = ", ".join(_expr(a) for a in e.args)
        return f"{e.name}({args})"
    if isinstance(e, ast.Index):
        return f"{e.name}[{_expr(e.index)}]"
    raise TypeError(f"unknown expression {e!r}")


def _wrap(text: str, prec: int, parent_prec: int) -> str:
    return f"({text})" if prec < parent_prec else text


def _simple_stmt(s) -> str:
    """A statement without its trailing semicolon (for ``for`` clauses)."""
    if isinstance(s, ast.VarDecl):
        init = f" = {_expr(s.init)}" if s.init is not None else ""
        return f"var {s.name}{init}"
    if isinstance(s, ast.Assign):
        return f"{s.name} = {_expr(s.value)}"
    if isinstance(s, ast.IndexAssign):
        return f"{s.name}[{_expr(s.index)}] = {_expr(s.value)}"
    if isinstance(s, ast.ExprStmt):
        return _expr(s.expr)
    raise TypeError(f"not a simple statement: {s!r}")


def _stmts(out: list[str], stmts: list, depth: int) -> None:
    pad = "    " * depth
    for s in stmts:
        if isinstance(s, (ast.VarDecl, ast.Assign, ast.IndexAssign,
                          ast.ExprStmt)):
            out.append(f"{pad}{_simple_stmt(s)};")
        elif isinstance(s, ast.If):
            out.append(f"{pad}if ({_expr(s.cond)}) {{")
            _stmts(out, s.then, depth + 1)
            if s.orelse:
                out.append(f"{pad}}} else {{")
                _stmts(out, s.orelse, depth + 1)
            out.append(f"{pad}}}")
        elif isinstance(s, ast.While):
            out.append(f"{pad}while ({_expr(s.cond)}) {{")
            _stmts(out, s.body, depth + 1)
            out.append(f"{pad}}}")
        elif isinstance(s, ast.For):
            init = _simple_stmt(s.init) if s.init is not None else ""
            cond = _expr(s.cond) if s.cond is not None else ""
            step = _simple_stmt(s.step) if s.step is not None else ""
            out.append(f"{pad}for ({init}; {cond}; {step}) {{")
            _stmts(out, s.body, depth + 1)
            out.append(f"{pad}}}")
        elif isinstance(s, ast.Return):
            value = f" {_expr(s.value)}" if s.value is not None else ""
            out.append(f"{pad}return{value};")
        elif isinstance(s, ast.Break):
            out.append(f"{pad}break;")
        elif isinstance(s, ast.Continue):
            out.append(f"{pad}continue;")
        else:
            raise TypeError(f"unknown statement {s!r}")


def unparse(module: ast.Module) -> str:
    """Render a Minic module back to source the parser round-trips."""
    out: list[str] = []
    for g in module.globals_:
        kw = "bytes" if g.is_bytes else "global"
        size = f"[{g.size}]" if g.size is not None else ""
        if isinstance(g.init, bytes):
            body = ", ".join(str(b) for b in g.init)
            init = f" = {{ {body} }}" if g.init else ""
        elif isinstance(g.init, list):
            init = f" = {{ {', '.join(str(v) for v in g.init)} }}"
        elif isinstance(g.init, int):
            init = f" = {g.init}"
        else:
            init = ""
        out.append(f"{kw} {g.name}{size}{init};")
    if module.globals_:
        out.append("")
    for fn in module.functions:
        out.append(f"func {fn.name}({', '.join(fn.params)}) {{")
        _stmts(out, fn.body, 1)
        out.append("}")
        out.append("")
    return "\n".join(out).rstrip("\n") + "\n"


# ----------------------------------------------------------------- reduction

@dataclass
class ReduceResult:
    """Outcome of one reduction run."""

    source: str
    original_lines: int
    reduced_lines: int
    rounds: int = 0
    attempts: int = 0
    accepted: int = 0

    def summary(self) -> str:
        return (f"reduced {self.original_lines} -> {self.reduced_lines} "
                f"lines in {self.rounds} round(s) "
                f"({self.accepted}/{self.attempts} mutations kept)")


def _stmt_lists(module: ast.Module) -> list[list]:
    """Every statement list in the module, outermost first."""
    lists: list[list] = []

    def walk(stmts: list) -> None:
        lists.append(stmts)
        for s in stmts:
            if isinstance(s, ast.If):
                walk(s.then)
                if s.orelse:
                    walk(s.orelse)
            elif isinstance(s, (ast.While, ast.For)):
                walk(s.body)

    for fn in module.functions:
        walk(fn.body)
    return lists


def _exprs(module: ast.Module) -> list[tuple[object, str]]:
    """Every (holder, attribute) slot containing an expression."""
    slots: list[tuple[object, str]] = []

    def expr_slots(holder, attr) -> None:
        e = getattr(holder, attr)
        if e is None:
            return
        slots.append((holder, attr))
        if isinstance(e, ast.Unary):
            expr_slots(e, "operand")
        elif isinstance(e, ast.Binary):
            expr_slots(e, "lhs")
            expr_slots(e, "rhs")
        elif isinstance(e, ast.Index):
            expr_slots(e, "index")
        elif isinstance(e, ast.Call):
            for i in range(len(e.args)):
                slots.append((e.args, i))

    def simple_slots(s) -> None:
        if isinstance(s, ast.VarDecl):
            expr_slots(s, "init")
        elif isinstance(s, ast.Assign):
            expr_slots(s, "value")
        elif isinstance(s, ast.IndexAssign):
            expr_slots(s, "index")
            expr_slots(s, "value")
        elif isinstance(s, ast.ExprStmt):
            expr_slots(s, "expr")

    def walk(stmts: list) -> None:
        for s in stmts:
            if isinstance(s, ast.If):
                expr_slots(s, "cond")
                walk(s.then)
                walk(s.orelse)
            elif isinstance(s, ast.While):
                expr_slots(s, "cond")
                walk(s.body)
            elif isinstance(s, ast.For):
                if s.init is not None:
                    simple_slots(s.init)
                expr_slots(s, "cond")
                if s.step is not None:
                    simple_slots(s.step)
                walk(s.body)
            elif isinstance(s, ast.Return):
                expr_slots(s, "value")
            else:
                simple_slots(s)

    for fn in module.functions:
        walk(fn.body)
    return slots


def _get_slot(slot):
    holder, attr = slot
    return holder[attr] if isinstance(attr, int) else getattr(holder, attr)


def _set_slot(slot, value) -> None:
    holder, attr = slot
    if isinstance(attr, int):
        holder[attr] = value
    else:
        setattr(holder, attr, value)


class _Reducer:
    def __init__(self, predicate: Callable[[str], bool]) -> None:
        self.predicate = predicate
        self.attempts = 0
        self.accepted = 0

    def try_variant(self, module: ast.Module) -> Optional[str]:
        """Unparse a candidate and ask the predicate; None on rejection."""
        try:
            text = unparse(module)
        except TypeError:
            return None
        self.attempts += 1
        if self.predicate(text):
            self.accepted += 1
            return text
        return None

    # every pass mutates ``module`` in place only on acceptance, returns
    # True when it changed anything (→ another fixpoint round)
    def pass_delete_statements(self, module: ast.Module) -> bool:
        changed = False
        progress = True
        while progress:
            progress = False
            for stmts in _stmt_lists(module):
                n = len(stmts)
                chunk = n
                while chunk >= 1:
                    start = 0
                    while start < len(stmts):
                        if not stmts:
                            break
                        saved = stmts[start:start + chunk]
                        if not saved:
                            break
                        del stmts[start:start + chunk]
                        if self.try_variant(module) is None:
                            stmts[start:start] = saved
                            start += chunk
                        else:
                            changed = progress = True
                    chunk //= 2
        return changed

    def pass_flatten_blocks(self, module: ast.Module) -> bool:
        changed = True
        any_change = False
        while changed:
            changed = False
            for stmts in _stmt_lists(module):
                for i, s in enumerate(list(stmts)):
                    if i >= len(stmts) or stmts[i] is not s:
                        continue
                    candidates: list[list] = []
                    if isinstance(s, ast.If):
                        candidates = [s.then, s.orelse]
                    elif isinstance(s, (ast.While, ast.For)):
                        candidates = [[], s.body]
                    for replacement in candidates:
                        saved = stmts[i]
                        stmts[i:i + 1] = replacement
                        if self.try_variant(module) is None:
                            stmts[i:i + len(replacement)] = [saved]
                        else:
                            changed = any_change = True
                            break
        return any_change

    def pass_simplify_exprs(self, module: ast.Module) -> bool:
        changed = True
        any_change = False
        while changed:
            changed = False
            for slot in _exprs(module):
                e = _get_slot(slot)
                replacements: list = []
                if isinstance(e, ast.Binary):
                    replacements = [e.lhs, e.rhs, ast.IntLit(1)]
                elif isinstance(e, ast.Unary):
                    replacements = [e.operand]
                elif isinstance(e, (ast.Call, ast.Index)):
                    replacements = [ast.IntLit(1)]
                elif isinstance(e, ast.Var):
                    replacements = [ast.IntLit(0)]
                for replacement in replacements:
                    _set_slot(slot, replacement)
                    if self.try_variant(module) is None:
                        _set_slot(slot, e)
                    else:
                        changed = any_change = True
                        break
        return any_change

    def pass_prune_decls(self, module: ast.Module) -> bool:
        changed = False
        for pool, keep_name in ((module.functions, "main"),
                                (module.globals_, None)):
            for item in list(pool):
                if item.name == keep_name:
                    continue
                idx = pool.index(item)
                del pool[idx]
                if self.try_variant(module) is None:
                    pool.insert(idx, item)
                else:
                    changed = True
        return changed


def reduce_source(source: str, predicate: Callable[[str], bool],
                  max_rounds: int = 6) -> ReduceResult:
    """Shrink ``source`` while ``predicate`` keeps holding.

    ``predicate`` receives candidate Minic source and must return True only
    when the candidate still exhibits the original divergence signature
    (compile failures, timeouts, and different divergences all count as
    False).  The original source must itself satisfy the predicate — a
    reducer that cannot reproduce the bug it is meant to shrink would
    silently return garbage.
    """
    if not predicate(source):
        raise ValueError("reduction predicate rejects the original source "
                         "— the divergence does not reproduce")
    module = parse(source)
    # normalize formatting first so line counts compare like for like
    normalized = unparse(copy.deepcopy(module))
    if predicate(normalized):
        source = normalized
        module = parse(source)
    red = _Reducer(predicate)
    rounds = 0
    for rounds in range(1, max_rounds + 1):
        changed = red.pass_delete_statements(module)
        changed |= red.pass_flatten_blocks(module)
        changed |= red.pass_simplify_exprs(module)
        changed |= red.pass_delete_statements(module)
        changed |= red.pass_prune_decls(module)
        if not changed:
            break
    final = unparse(module)
    if not predicate(final):                           # pragma: no cover
        raise AssertionError("reducer invariant broken: accepted source "
                             "stopped satisfying the predicate")
    return ReduceResult(
        source=final,
        original_lines=len(source.strip().splitlines()),
        reduced_lines=len(final.strip().splitlines()),
        rounds=rounds, attempts=red.attempts, accepted=red.accepted)


__all__ = ["ReduceResult", "reduce_source", "unparse"]
