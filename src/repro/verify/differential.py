"""Differential execution: scheduled machine vs functional reference.

Both machines run the same workload under the same :class:`FaultPlan`; the
checker then compares every observable that is *architecturally defined*:

* **trap identity** — kind, architectural instruction uid, faulting address.
  This is the paper's precision claim (Section 2.3): however far an
  excepting instruction was boosted, the fault must surface attributed to
  exactly the instruction the sequential semantics would blame.
* **output** — the PRINT stream.  Exact equality on clean exits.  When a
  run traps, the streams need only be prefix-consistent: the schedule may
  legally reorder a PRINT with an *independent* excepting instruction
  inside one basic block, so the two machines can cut the (identical)
  stream at slightly different points.
* **final memory** — compared byte-for-byte, but only when both machines
  exit cleanly, for the same reason: an independent store may legally sit
  on either side of the fault point within a block.

Register files are deliberately *not* compared: safe speculation leaves
different values in dead-at-exit registers, and that is correct behaviour,
not a divergence.

A machine failure (schedule-contract violation, shadow-state overflow,
watchdog timeout) on the superscalar side while the reference behaves is
itself a divergence — a wedged machine is as wrong as a corrupted one.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.hw.exceptions import ExceptionShiftBuffer, Trap
from repro.hw.functional import FunctionalSim
from repro.hw.superscalar import SuperscalarSim
from repro.program.procedure import Program
from repro.sched.schedprog import ScheduledProgram
from repro.verify.errors import Divergence, DivergenceError
from repro.verify.faults import FaultInjector, FaultPlan


@dataclass
class RunOutcome:
    """What one machine observably did."""

    machine: str
    output: list[int] = field(default_factory=list)
    trap: Optional[Trap] = None
    memory: Optional[bytes] = None
    #: machine failure (watchdog, schedule violation, ...), if any
    error: Optional[str] = None
    instr_count: int = 0
    injected_hits: int = 0
    recoveries: int = 0
    boosted_executed: int = 0
    boosted_squashed: int = 0
    mispredicts: int = 0

    @property
    def completed(self) -> bool:
        return self.error is None and self.trap is None

    def memory_digest(self) -> str:
        if self.memory is None:
            return "(none)"
        return hashlib.sha256(self.memory).hexdigest()[:16]

    def summary(self) -> str:
        if self.error is not None:
            return f"{self.machine}: ERROR {self.error}"
        tail = f"trap={self.trap}" if self.trap is not None else "clean"
        return (f"{self.machine}: {len(self.output)} outputs, "
                f"{self.instr_count} instrs, {tail}")


def _trap_key(trap: Trap) -> tuple:
    return (trap.kind, trap.instr_uid, trap.addr)


@dataclass
class CheckReport:
    """Result of one differential run."""

    workload: str
    config: str
    plan: FaultPlan
    reference: RunOutcome
    superscalar: RunOutcome
    divergences: list[Divergence] = field(default_factory=list)
    backend: str = ""

    @property
    def ok(self) -> bool:
        return not self.divergences

    @property
    def trapped(self) -> bool:
        return self.reference.trap is not None

    def raise_if_divergent(self) -> None:
        if self.divergences:
            raise DivergenceError(
                divergences=self.divergences, workload=self.workload,
                config=self.config, seed=self.plan.seed,
                plan_text=self.plan.describe(), backend=self.backend,
                context={"reference": self.reference.summary(),
                         "superscalar": self.superscalar.summary()})


class DifferentialChecker:
    """Runs one scheduled program and its reference under a fault plan."""

    def __init__(
        self,
        max_cycles: int = 20_000_000,
        max_steps: int = 20_000_000,
        wall_clock_limit: Optional[float] = 60.0,
        shiftbuf_factory: Optional[Callable[[int], ExceptionShiftBuffer]] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.max_cycles = max_cycles
        self.max_steps = max_steps
        self.wall_clock_limit = wall_clock_limit
        #: substitute exception shift buffer, ``levels -> buffer`` — used by
        #: the self-test to plant deliberately broken hardware
        self.shiftbuf_factory = shiftbuf_factory
        #: execution engine for both machines (None: the environment's
        #: choice) — the fuzz campaign's cross-backend oracle sets this
        self.backend = backend

    @staticmethod
    def _hook(plan: FaultPlan) -> Optional[FaultInjector]:
        """An injector only when the plan actually targets an instruction.

        A hook with no targets is behaviourally inert, but its mere
        presence forces both simulators off the translating engine (the
        generated superblocks have no per-instruction hook points) — so a
        benign or flip-only plan must run hook-free, or the backend under
        test silently degrades to the interpreter.
        """
        return FaultInjector(plan) if plan.traps else None

    # ------------------------------------------------------------------ runs
    def run_reference(self, reference: Program, plan: FaultPlan,
                      input_image) -> RunOutcome:
        injector = self._hook(plan)
        sim = FunctionalSim(reference, max_steps=self.max_steps,
                            input_image=input_image, fault_hook=injector,
                            wall_clock_limit=self.wall_clock_limit,
                            backend=self.backend)
        outcome = RunOutcome(machine="functional")
        try:
            sim.run()
        except Trap as trap:
            outcome.trap = trap
        outcome.output = sim.result.output
        outcome.trap = outcome.trap or sim.result.trap
        outcome.instr_count = sim.result.instr_count
        outcome.mispredicts = sim.result.mispredict_count
        outcome.injected_hits = injector.total_hits if injector else 0
        outcome.memory = sim.mem.snapshot()
        return outcome

    def run_superscalar(self, sched: ScheduledProgram, plan: FaultPlan,
                        input_image) -> RunOutcome:
        injector = self._hook(plan)
        shiftbuf = None
        if self.shiftbuf_factory is not None:
            shiftbuf = self.shiftbuf_factory(max(sched.model.max_level, 1))
        sim = SuperscalarSim(sched, max_cycles=self.max_cycles,
                             input_image=input_image, fault_hook=injector,
                             wall_clock_limit=self.wall_clock_limit,
                             shiftbuf=shiftbuf, backend=self.backend)
        outcome = RunOutcome(machine="superscalar")
        try:
            sim.run()
        except Trap as trap:
            outcome.trap = trap
        except RuntimeError as err:
            outcome.error = f"{type(err).__name__}: {err}"
        outcome.output = sim.result.output
        outcome.trap = outcome.trap or sim.result.trap
        outcome.instr_count = sim.result.instr_count
        outcome.mispredicts = sim.result.mispredict_count
        outcome.injected_hits = injector.total_hits if injector else 0
        outcome.recoveries = sim.recovery_invocations
        outcome.boosted_executed = sim.boosted_executed
        outcome.boosted_squashed = sim.boosted_squashed
        if outcome.error is None:
            outcome.memory = sim.mem.snapshot()
        return outcome

    # ------------------------------------------------------------ comparison
    @staticmethod
    def compare(ref: RunOutcome, ssc: RunOutcome) -> list[Divergence]:
        if ssc.error is not None:
            return [Divergence("machine-error", ref.summary(), ssc.error)]

        out: list[Divergence] = []
        trapped = ref.trap is not None or ssc.trap is not None
        if (ref.trap is None) != (ssc.trap is None):
            out.append(Divergence(
                "trap", str(ref.trap) if ref.trap else "no trap",
                str(ssc.trap) if ssc.trap else "no trap",
                "one machine faulted, the other did not"))
        elif ref.trap is not None and _trap_key(ref.trap) != _trap_key(ssc.trap):
            out.append(Divergence(
                "trap",
                f"{ref.trap.kind.name} uid={ref.trap.instr_uid} "
                f"addr={ref.trap.addr}",
                f"{ssc.trap.kind.name} uid={ssc.trap.instr_uid} "
                f"addr={ssc.trap.addr}",
                "fault surfaced imprecisely"))

        if trapped:
            short = min(len(ref.output), len(ssc.output))
            if ref.output[:short] != ssc.output[:short]:
                idx = next(i for i in range(short)
                           if ref.output[i] != ssc.output[i])
                out.append(Divergence(
                    "output", str(ref.output[idx]), str(ssc.output[idx]),
                    f"streams disagree at position {idx} (before the trap "
                    "cut-off, so block-local reordering cannot explain it)"))
        else:
            if ref.output != ssc.output:
                detail = f"lengths {len(ref.output)} vs {len(ssc.output)}"
                short = min(len(ref.output), len(ssc.output))
                for i in range(short):
                    if ref.output[i] != ssc.output[i]:
                        detail = f"first difference at position {i}"
                        break
                out.append(Divergence(
                    "output", f"{ref.output[:6]}...", f"{ssc.output[:6]}...",
                    detail))
            if (ref.memory is not None and ssc.memory is not None
                    and ref.memory != ssc.memory):
                offset = next(i for i, (a, b)
                              in enumerate(zip(ref.memory, ssc.memory))
                              if a != b)
                out.append(Divergence(
                    "memory", ref.memory_digest(), ssc.memory_digest(),
                    f"first differing byte at {offset:#x}"))
        return out

    # ----------------------------------------------------------------- check
    def check(
        self,
        sched: ScheduledProgram,
        reference: Program,
        plan: FaultPlan,
        input_image=None,
        workload: str = "?",
        config: str = "?",
    ) -> CheckReport:
        """Run both machines and compare; raises :class:`DivergenceError`
        on any disagreement."""
        ref = self.run_reference(reference, plan, input_image)
        ssc = self.run_superscalar(sched, plan, input_image)
        report = CheckReport(workload=workload, config=config, plan=plan,
                             reference=ref, superscalar=ssc,
                             divergences=self.compare(ref, ssc),
                             backend=self.backend or "")
        report.raise_if_divergent()
        return report

    def compare_only(self, sched, reference, plan, input_image=None,
                     workload: str = "?", config: str = "?") -> CheckReport:
        """Like :meth:`check` but never raises — the campaign's workhorse."""
        ref = self.run_reference(reference, plan, input_image)
        ssc = self.run_superscalar(sched, plan, input_image)
        return CheckReport(workload=workload, config=config, plan=plan,
                           reference=ref, superscalar=ssc,
                           divergences=self.compare(ref, ssc),
                           backend=self.backend or "")
