"""Structured divergence reporting.

A *divergence* is the differential checker's unit of failure: one observable
on which the scheduled superscalar machine and the functional reference
disagree.  :class:`DivergenceError` carries every divergence found in one
run plus the exact recipe (workload, configuration, seed, fault plan) needed
to reproduce it — a verification failure that cannot be replayed is worth
very little.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.hw.errors import SimulationError


@dataclass(frozen=True)
class Divergence:
    """One observable on which the two machines disagree."""

    #: what diverged: "output", "trap", "memory", or "machine-error"
    observable: str
    expected: str
    actual: str
    detail: str = ""

    def __str__(self) -> str:
        text = (f"{self.observable}: reference={self.expected} "
                f"superscalar={self.actual}")
        if self.detail:
            text += f" ({self.detail})"
        return text


@dataclass
class DivergenceError(SimulationError):
    """The scheduled machine observably disagrees with the reference.

    ``repro`` is a human-runnable recipe; ``plan_text`` describes the
    (possibly minimized) fault plan that still triggers the disagreement.
    """

    divergences: list[Divergence]
    workload: str = "?"
    config: str = "?"
    seed: Optional[int] = None
    plan_text: str = "(no faults injected)"
    minimized: bool = False
    context: dict = field(default_factory=dict)
    #: simulator engine the diverging run used ("" = environment default)
    backend: str = ""
    #: verbatim one-line repro command; when set it replaces the
    #: ``verify``-shaped default (the fuzz campaign points at
    #: ``python -m repro fuzz`` / a triage-bucket source path instead)
    repro_cmd: Optional[str] = None

    def __post_init__(self) -> None:
        super().__init__(self.describe())

    @property
    def repro(self) -> str:
        if self.repro_cmd is not None:
            return self.repro_cmd
        seed = "-" if self.seed is None else str(self.seed)
        cmd = (f"python -m repro verify --workloads {self.workload} "
               f"--models {self.config} --seed {seed}")
        if self.backend:
            cmd += f" --backend {self.backend}"
        return cmd

    def describe(self) -> str:
        lines = [f"divergence in {self.workload}/{self.config}"
                 + (f" seed={self.seed}" if self.seed is not None else "")]
        lines.append(f"  plan: {self.plan_text}"
                     + (" [minimized]" if self.minimized else ""))
        for d in self.divergences:
            lines.append(f"  - {d}")
        lines.append(f"  repro: {self.repro}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.describe()

    def __reduce__(self):
        # Exception pickling replays __init__ with ``self.args``, which does
        # not match the dataclass signature — rebuild from the fields so the
        # error crosses process boundaries intact.
        return (DivergenceError, (self.divergences, self.workload, self.config,
                                  self.seed, self.plan_text, self.minimized,
                                  self.context, self.backend, self.repro_cmd))
