"""Seeded fault plans: forced traps and adversarial branch predictions.

A :class:`FaultPlan` is a deterministic function of ``(program, seed)`` and
describes two kinds of provocation:

* **Trap injection** — one excepting instruction (load, store, divide) is
  chosen to *always fault*, whatever its operands.  The choice is keyed on
  the instruction's **architectural identity** (``origin or uid``), so the
  very same fault fires in the functional reference, in the sequential home
  copy, in a boosted speculative copy, in compensation code on an off-trace
  edge, and in compiler-generated recovery code.  A boosted hit must be
  deferred through the exception shift buffer and re-surface *precisely* —
  exactly the Section 2.3 machinery under test.  At most one instruction is
  targeted per plan: two independent excepting instructions in one block may
  legally reorder in the schedule, which would make "who faults first"
  schedule-dependent rather than architectural.

* **Prediction flips** — a subset of conditional branches has its
  profile-derived static prediction inverted *before scheduling*.  The
  scheduler then builds traces along the wrong paths and boosts instructions
  above branches that will usually mispredict, driving the shadow-squash and
  compensation paths hard at run time.  Architectural behaviour is unchanged
  (branch outcomes are data-driven), so the functional reference still
  defines the expected observables.

Trap targets always satisfy ``op.can_except``: those are the instructions
for which the compiler must provide recovery when boosted, and the three
injectable kinds (address error, unaligned, divide-by-zero) are the ISA's
real trap vocabulary.  Injecting on a never-excepting ALU op would instead
test a machine the compiler was never asked to build.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.hw.exceptions import Trap, TrapKind
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.program.procedure import Program

#: sentinel base for injected fault addresses — far outside the data
#: segment so a reported address is unmistakably ours
_ADDR_SENTINEL = 0xFA00_0000


@dataclass(frozen=True)
class TrapInjection:
    """Always-fault directive for one architectural instruction."""

    target_uid: int
    kind: TrapKind
    addr: Optional[int] = None
    #: mnemonic of the targeted op, for human-readable plan descriptions
    mnemonic: str = "?"

    def fresh_trap(self) -> Trap:
        """A new Trap instance per hit — the simulators mutate and raise
        these, so sharing one object across hits would corrupt reports."""
        return Trap(self.kind, addr=self.addr)

    def __str__(self) -> str:
        addr = f"@{self.addr:#x}" if self.addr is not None else ""
        return f"{self.kind.name}{addr} on uid {self.target_uid} ({self.mnemonic})"


@dataclass(frozen=True)
class FaultPlan:
    """Everything :func:`make_plan` decided for one seed."""

    seed: int
    traps: tuple[TrapInjection, ...] = ()
    #: uids of conditional branches whose static prediction is inverted
    flips: frozenset[int] = frozenset()

    @property
    def benign(self) -> bool:
        return not self.traps and not self.flips

    def without_traps(self) -> "FaultPlan":
        return FaultPlan(self.seed, (), self.flips)

    def without_flips(self) -> "FaultPlan":
        return FaultPlan(self.seed, self.traps, frozenset())

    def describe(self) -> str:
        parts = [str(t) for t in self.traps]
        if self.flips:
            uids = ", ".join(str(u) for u in sorted(self.flips))
            parts.append(f"flip predictions of branch uids {{{uids}}}")
        return "; ".join(parts) if parts else "(benign)"


def trap_candidates(program: Program) -> list[Instruction]:
    """Excepting body instructions, in deterministic program order."""
    out = []
    for proc in program.procedures.values():
        for block in proc.blocks:
            for instr in block.body:
                if instr.op.can_except:
                    out.append(instr)
    return out


def flip_candidates(program: Program) -> list[Instruction]:
    """Conditional branches carrying a profile-derived prediction."""
    out = []
    for proc in program.procedures.values():
        for block in proc.blocks:
            term = block.terminator
            if (term is not None and term.op.is_cond_branch
                    and term.predict_taken is not None):
                out.append(term)
    return out


def _injection_for(instr: Instruction, rng: random.Random) -> TrapInjection:
    uid = instr.origin or instr.uid
    if instr.op.is_mem:
        kind = rng.choice((TrapKind.ADDRESS_ERROR, TrapKind.UNALIGNED))
        addr = _ADDR_SENTINEL + 4 * (uid & 0xFFFF)
        if kind is TrapKind.UNALIGNED:
            addr += 1  # an unaligned report should carry an unaligned address
    else:  # DIV / REM
        kind = TrapKind.DIV_ZERO
        addr = None
    return TrapInjection(target_uid=uid, kind=kind, addr=addr,
                         mnemonic=instr.op.mnemonic)


def make_plan(
    program: Program,
    seed: int,
    trap_prob: float = 0.7,
    flip_prob: float = 0.5,
    max_flips: int = 3,
) -> FaultPlan:
    """Draw a deterministic fault plan for ``(program, seed)``.

    ``program`` must be the *prepared* (pre-schedule) IR: candidate uids are
    architectural identities, shared by every clone and schedule derived from
    the same preparation, so one plan applies to all of them.
    """
    rng = random.Random(seed)
    traps: tuple[TrapInjection, ...] = ()
    candidates = trap_candidates(program)
    if candidates and rng.random() < trap_prob:
        traps = (_injection_for(rng.choice(candidates), rng),)

    flips: frozenset[int] = frozenset()
    branches = flip_candidates(program)
    if branches and rng.random() < flip_prob:
        count = rng.randint(1, min(max_flips, len(branches)))
        flips = frozenset(b.uid for b in rng.sample(branches, count))
    return FaultPlan(seed=seed, traps=traps, flips=flips)


def apply_flips(program: Program, flips: frozenset[int]) -> int:
    """Invert the static prediction of every branch in ``flips`` (in place).

    Must run on a pre-schedule clone: the trace selector follows
    ``predict_taken`` (``cfg.predicted_succ``), so flipping before scheduling
    yields a schedule that is *internally consistent* but systematically
    boosts along usually-wrong paths.  ``taken_prob`` is inverted alongside
    so trace-growth probabilities agree with the flipped prediction.
    Returns the number of branches actually flipped.
    """
    hit = 0
    program.invalidate_caches()
    for proc in program.procedures.values():
        for block in proc.blocks:
            term = block.terminator
            if (term is None or not term.op.is_cond_branch
                    or term.uid not in flips):
                continue
            if term.predict_taken is None:
                continue
            term.predict_taken = not term.predict_taken
            if block.taken_prob is not None:
                block.taken_prob = 1.0 - block.taken_prob
            hit += 1
    return hit


class FaultInjector:
    """The ``fault_hook`` both simulators accept, driven by a plan.

    Matches on architectural identity so every copy of a targeted
    instruction faults — speculative hits are *supposed* to happen and be
    deferred or squashed; ``hits`` counts them for campaign statistics.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self._targets = {t.target_uid: t for t in plan.traps}
        self.hits: dict[int, int] = {}

    def __call__(self, instr: Instruction) -> Optional[Trap]:
        if instr.op is Opcode.NOP:
            return None
        injection = self._targets.get(instr.origin or instr.uid)
        if injection is None:
            return None
        uid = injection.target_uid
        self.hits[uid] = self.hits.get(uid, 0) + 1
        return injection.fresh_trap()

    @property
    def total_hits(self) -> int:
        return sum(self.hits.values())
