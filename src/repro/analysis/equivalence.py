"""Control equivalence (Section 3.2.2).

Two blocks are *control equivalent* iff the execution of one implies the
execution of the other.  For blocks on a path from ``A`` down to ``D`` this
is ``A dominates D`` **and** ``D postdominates A``.  *Data equivalence with
respect to a moving instruction* — no data dependence with any instruction on
any path between the pair — is checked separately by the code-motion engine,
which knows the instruction being moved; this module supplies the control
half plus a helper for the path-dependence test on a trace segment.
"""

from __future__ import annotations

from repro.analysis.dominators import Dominators, PostDominators
from repro.isa.instruction import Instruction
from repro.program.cfg import CFG
from repro.analysis.liveness import instr_defs, instr_uses


class ControlEquivalence:
    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        self.dom = Dominators(cfg)
        self.pdom = PostDominators(cfg)

    def equivalent(self, upper: str, lower: str) -> bool:
        """True iff ``upper`` and ``lower`` are control equivalent, with
        ``upper`` the earlier block on the path."""
        return (self.dom.dominates(upper, lower)
                and self.pdom.postdominates(lower, upper))


def conflicts_with(moving: Instruction, other: Instruction) -> bool:
    """True if ``other`` imposes a data dependence on ``moving`` —
    moving ``moving`` above ``other`` would be incorrect.

    Covers RAW, WAR and WAW register dependences and conservative memory
    dependences (refined by :mod:`repro.analysis.memdep` at the DDG level).
    """
    m_defs, m_uses = set(instr_defs(moving)), set(instr_uses(moving))
    o_defs, o_uses = set(instr_defs(other)), set(instr_uses(other))
    if m_uses & o_defs:      # RAW
        return True
    if m_defs & o_uses:      # WAR
        return True
    if m_defs & o_defs:      # WAW
        return True
    if moving.writes_memory() and (other.reads_memory() or other.writes_memory()):
        return True
    if moving.reads_memory() and other.writes_memory():
        return True
    if other.op.is_call and (moving.op.is_mem or m_defs or m_uses):
        # Calls are scheduling barriers.
        return True
    return False


def data_equivalent_over(moving: Instruction, between: list[Instruction]) -> bool:
    """True if ``moving`` has no data dependence with any instruction in
    ``between`` (the instructions on the path between a control-equivalent
    pair)."""
    return not any(conflicts_with(moving, other) for other in between)
