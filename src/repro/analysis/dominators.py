"""Dominators and postdominators (Cooper/Harvey/Kennedy iterative scheme).

Used for natural-loop (region) detection and for *control equivalence*: block
``A`` is control equivalent to ``D`` iff ``A`` dominates ``D`` and ``D``
postdominates ``A`` (Section 3.2.2's "equivalent basic blocks").
"""

from __future__ import annotations

from typing import Optional

from repro.program.cfg import CFG


def _compute_idoms(
    order: list[str],
    preds: dict[str, list[str]],
    entry: str,
) -> dict[str, Optional[str]]:
    """Iterative idom computation over ``order`` (an RPO from ``entry``)."""
    index = {label: i for i, label in enumerate(order)}
    idom: dict[str, Optional[str]] = {label: None for label in order}
    idom[entry] = entry

    def intersect(a: str, b: str) -> str:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]
            while index[b] > index[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for label in order:
            if label == entry:
                continue
            candidates = [p for p in preds.get(label, ()) if idom.get(p) is not None]
            if not candidates:
                continue
            new_idom = candidates[0]
            for p in candidates[1:]:
                new_idom = intersect(new_idom, p)
            if idom[label] != new_idom:
                idom[label] = new_idom
                changed = True
    idom[entry] = None
    return idom


class Dominators:
    """Immediate-dominator tree plus ``dominates`` queries."""

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        order = cfg.rpo()
        preds = {label: [p for p in cfg.preds(label) if p in set(order)]
                 for label in order}
        self.idom = _compute_idoms(order, preds, cfg.proc.entry.label)
        self._depth: dict[str, int] = {}
        for label in order:
            self._depth[label] = self._compute_depth(label)

    def _compute_depth(self, label: str) -> int:
        depth = 0
        node: Optional[str] = label
        while self.idom.get(node) is not None:
            node = self.idom[node]
            depth += 1
        return depth

    def dominates(self, a: str, b: str) -> bool:
        """True iff ``a`` dominates ``b`` (reflexive)."""
        node: Optional[str] = b
        while node is not None:
            if node == a:
                return True
            node = self.idom.get(node)
        return False

    def strictly_dominates(self, a: str, b: str) -> bool:
        return a != b and self.dominates(a, b)


_VIRTUAL_EXIT = "__exit__"


class PostDominators:
    """Postdominators, computed on the reversed CFG with a virtual exit."""

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        reachable = set(cfg.rpo())
        # Reverse graph: preds of the reverse graph are the succs of the CFG.
        exits = [label for label in reachable if not cfg.succs(label)]
        rev_succs: dict[str, list[str]] = {lab: [] for lab in reachable}
        rev_preds: dict[str, list[str]] = {lab: [] for lab in reachable}
        for label in reachable:
            for succ in cfg.succs(label):
                if succ in reachable:
                    rev_succs[succ].append(label)
                    rev_preds[label].append(succ)
        rev_succs[_VIRTUAL_EXIT] = list(exits)
        rev_preds[_VIRTUAL_EXIT] = []
        for e in exits:
            rev_preds[e].append(_VIRTUAL_EXIT)

        order = self._rpo(_VIRTUAL_EXIT, rev_succs)
        preds_in_order = {lab: [p for p in rev_preds[lab] if p in set(order)]
                          for lab in order}
        self.ipdom = _compute_idoms(order, preds_in_order, _VIRTUAL_EXIT)

    @staticmethod
    def _rpo(entry: str, succs: dict[str, list[str]]) -> list[str]:
        seen = {entry}
        order: list[str] = []

        def visit(node: str) -> None:
            stack = [(node, iter(succs.get(node, ())))]
            while stack:
                label, it = stack[-1]
                advanced = False
                for s in it:
                    if s not in seen:
                        seen.add(s)
                        stack.append((s, iter(succs.get(s, ()))))
                        advanced = True
                        break
                if not advanced:
                    order.append(label)
                    stack.pop()

        visit(entry)
        order.reverse()
        return order

    def postdominates(self, a: str, b: str) -> bool:
        """True iff ``a`` postdominates ``b`` (reflexive)."""
        node: Optional[str] = b
        while node is not None and node != _VIRTUAL_EXIT:
            if node == a:
                return True
            node = self.ipdom.get(node)
        return a == node
