"""Dataflow analyses: liveness, dominators, equivalence, regions, aliasing."""

from repro.analysis.dataflow import DataflowResult, solve_backward, solve_forward
from repro.analysis.dominators import Dominators, PostDominators
from repro.analysis.equivalence import (
    ControlEquivalence, conflicts_with, data_equivalent_over,
)
from repro.analysis.liveness import (
    CALL_DEFS, CALL_USES, RETURN_LIVE, Liveness, instr_defs, instr_uses,
)
from repro.analysis.memdep import access_size, base_reg, may_alias
from repro.analysis.regions import Region, RegionTree

__all__ = [
    "CALL_DEFS", "CALL_USES", "ControlEquivalence", "DataflowResult",
    "Dominators", "Liveness", "PostDominators", "RETURN_LIVE", "Region",
    "RegionTree", "access_size", "base_reg", "conflicts_with",
    "data_equivalent_over", "instr_defs", "instr_uses", "may_alias",
    "solve_backward", "solve_forward",
]
