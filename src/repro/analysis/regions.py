"""Regions for the global scheduler (Section 3.2.1).

A *region* is either a natural loop or the procedure body.  Scheduling
proceeds from innermost to outermost regions and never moves code across a
region boundary; traces are constrained to remain within a region.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.dominators import Dominators
from repro.program.cfg import CFG


@dataclass
class Region:
    """A schedulable region: a loop (with header) or the whole procedure."""

    header: str                       # loop header, or procedure entry
    blocks: frozenset[str]
    is_loop: bool
    depth: int = 0                    # nesting depth; 0 = procedure body
    parent: "Region | None" = None
    children: list["Region"] = field(default_factory=list)

    def __repr__(self) -> str:
        kind = "loop" if self.is_loop else "proc"
        return f"<Region {kind}@{self.header} depth={self.depth} |B|={len(self.blocks)}>"


def _natural_loop(cfg: CFG, head: str, tail: str) -> set[str]:
    """Blocks of the natural loop for back edge ``tail -> head``."""
    loop = {head, tail}
    stack = [tail] if tail != head else []
    while stack:
        node = stack.pop()
        for pred in cfg.preds(node):
            if pred not in loop:
                loop.add(pred)
                stack.append(pred)
    return loop


class RegionTree:
    """Loop nest of a procedure, presented innermost-first for scheduling."""

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        dom = Dominators(cfg)
        reachable = set(cfg.rpo())

        # Find back edges (tail -> head with head dominating tail) and merge
        # loops that share a header.
        loops_by_header: dict[str, set[str]] = {}
        for tail in reachable:
            for head in cfg.succs(tail):
                if head in reachable and dom.dominates(head, tail):
                    body = _natural_loop(cfg, head, tail)
                    loops_by_header.setdefault(head, set()).update(body)

        self.root = Region(
            header=cfg.proc.entry.label,
            blocks=frozenset(b.label for b in cfg.proc.blocks),
            is_loop=False,
        )
        loops = [
            Region(header=h, blocks=frozenset(b), is_loop=True)
            for h, b in loops_by_header.items()
        ]
        # Nest loops by containment: parent = smallest strictly-containing loop.
        loops.sort(key=lambda r: len(r.blocks))
        for i, inner in enumerate(loops):
            parent = self.root
            for outer in loops[i + 1:]:
                if inner.blocks < outer.blocks or (
                        inner.blocks == outer.blocks and inner is not outer):
                    parent = outer
                    break
            inner.parent = parent
            parent.children.append(inner)
        for loop in loops:
            depth, node = 0, loop
            while node.parent is not None:
                depth += 1
                node = node.parent
            loop.depth = depth
        self.loops = loops

    def schedule_order(self) -> list[Region]:
        """Regions innermost-first, ending with the procedure body."""
        return sorted(self.loops, key=lambda r: -r.depth) + [self.root]

    def innermost_region_of(self, label: str) -> Region:
        """The smallest region containing ``label``."""
        best = self.root
        for loop in self.loops:  # loops are sorted smallest-first
            if label in loop.blocks:
                return loop
        return best

    def same_region(self, a: str, b: str) -> bool:
        return self.innermost_region_of(a) is self.innermost_region_of(b)
