"""Simple static memory disambiguation.

Two memory accesses provably do not alias when they use the *same base
register* (with no intervening redefinition of that register between them)
and their access ranges ``[imm, imm+size)`` do not overlap.  Anything else is
conservatively assumed to alias — the paper itself notes that "better memory
disambiguation" is future work (Section 4.3.2).
"""

from __future__ import annotations

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode

_SIZES = {
    Opcode.LW: 4, Opcode.SW: 4,
    Opcode.LB: 1, Opcode.LBU: 1, Opcode.SB: 1,
}


def access_size(instr: Instruction) -> int:
    return _SIZES.get(instr.op, 4)


def base_reg(instr: Instruction):
    """Base-address register of a memory instruction."""
    if instr.op.is_load:
        return instr.srcs[0]
    if instr.op.is_store:
        return instr.srcs[1]
    raise ValueError(f"{instr} is not a memory access")


def may_alias(a: Instruction, b: Instruction, same_base_value: bool) -> bool:
    """Whether accesses ``a`` and ``b`` may touch overlapping bytes.

    ``same_base_value`` must be True only when the caller has proven that the
    base registers hold the same value at both accesses (same register, no
    intervening redefinition).
    """
    if not (a.op.is_mem and b.op.is_mem):
        raise ValueError("may_alias expects memory instructions")
    if not same_base_value or base_reg(a) is not base_reg(b):
        return True
    a_lo, a_hi = a.imm or 0, (a.imm or 0) + access_size(a)
    b_lo, b_hi = b.imm or 0, (b.imm or 0) + access_size(b)
    return a_lo < b_hi and b_lo < a_hi
