"""A small generic iterative dataflow solver.

Used by liveness (backward, union) and reaching-definitions style analyses.
Problems are described by per-block GEN/KILL sets over an arbitrary hashable
element type; the solver iterates to a fixed point over the CFG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generic, Hashable, TypeVar

from repro.program.cfg import CFG

T = TypeVar("T", bound=Hashable)


@dataclass
class DataflowResult(Generic[T]):
    """IN/OUT sets per block label."""

    in_: dict[str, frozenset[T]]
    out: dict[str, frozenset[T]]


def solve_backward(
    cfg: CFG,
    gen: Callable[[str], frozenset[T]],
    kill: Callable[[str], frozenset[T]],
    boundary: frozenset[T] = frozenset(),
) -> DataflowResult[T]:
    """Solve ``IN[b] = gen(b) ∪ (OUT[b] − kill(b))``, ``OUT[b] = ∪ IN[succ]``.

    ``boundary`` seeds OUT of exit blocks (e.g. registers live across a
    return: the caller's view of ``$v0``/``$sp`` and the callee-saves).
    """
    labels = [b.label for b in cfg.proc.blocks]
    gen_sets = {lab: gen(lab) for lab in labels}
    kill_sets = {lab: kill(lab) for lab in labels}
    in_: dict[str, frozenset[T]] = {lab: frozenset() for lab in labels}
    out: dict[str, frozenset[T]] = {lab: frozenset() for lab in labels}

    order = cfg.rpo()
    worklist = list(reversed(order)) + [lab for lab in labels if lab not in set(order)]
    pending = set(worklist)
    while worklist:
        label = worklist.pop()
        pending.discard(label)
        succs = cfg.succs(label)
        new_out = boundary if not succs else frozenset().union(
            *(in_[s] for s in succs))
        new_in = gen_sets[label] | (new_out - kill_sets[label])
        out[label] = new_out
        if new_in != in_[label]:
            in_[label] = new_in
            for pred in cfg.preds(label):
                if pred not in pending:
                    pending.add(pred)
                    worklist.append(pred)
    return DataflowResult(in_=in_, out=out)


def solve_forward(
    cfg: CFG,
    gen: Callable[[str], frozenset[T]],
    kill: Callable[[str], frozenset[T]],
    boundary: frozenset[T] = frozenset(),
) -> DataflowResult[T]:
    """Solve ``OUT[b] = gen(b) ∪ (IN[b] − kill(b))``, ``IN[b] = ∪ OUT[pred]``."""
    labels = [b.label for b in cfg.proc.blocks]
    gen_sets = {lab: gen(lab) for lab in labels}
    kill_sets = {lab: kill(lab) for lab in labels}
    in_: dict[str, frozenset[T]] = {lab: frozenset() for lab in labels}
    out: dict[str, frozenset[T]] = {lab: frozenset() for lab in labels}
    entry = cfg.proc.entry.label

    worklist = cfg.rpo()
    pending = set(worklist)
    while worklist:
        label = worklist.pop(0)
        pending.discard(label)
        preds = cfg.preds(label)
        if label == entry:
            new_in = boundary
            if preds:
                new_in = new_in | frozenset().union(*(out[p] for p in preds))
        elif preds:
            new_in = frozenset().union(*(out[p] for p in preds))
        else:
            new_in = frozenset()
        new_out = gen_sets[label] | (new_in - kill_sets[label])
        in_[label] = new_in
        if new_out != out[label]:
            out[label] = new_out
            for succ in cfg.succs(label):
                if succ not in pending:
                    pending.add(succ)
                    worklist.append(succ)
    return DataflowResult(in_=in_, out=out)
