"""Live-variable analysis (Section 3.2.2 uses live-IN sets to detect illegal
speculative movements).

Calls are handled with the standard calling-convention abstraction: a call
*uses* the argument registers plus ``$sp``/``$gp`` and *defines* (clobbers)
all caller-saved registers.  Returns keep the return value and the
callee-saved registers live.
"""

from __future__ import annotations

from repro.isa.instruction import Instruction
from repro.isa.registers import (
    A0, A1, A2, A3, FP, GP, RA, S_REGS, SP, T_REGS, V0, V1, Reg,
)
from repro.program.cfg import CFG
from repro.analysis.dataflow import solve_backward

#: Registers a callee may clobber (defined by a call site).  The calling
#: convention of this compiler is caller-saves-everything: the code generator
#: spills live values around calls, so callees are free to use every register
#: except ``$sp``/``$gp``/``$fp``.
CALL_DEFS: frozenset[Reg] = frozenset((V0, V1, A0, A1, A2, A3, RA,
                                       *T_REGS, *S_REGS))
#: Registers a call site reads (arguments + environment).
CALL_USES: frozenset[Reg] = frozenset((A0, A1, A2, A3, SP, GP))
#: Registers live at a return.
RETURN_LIVE: frozenset[Reg] = frozenset((V0, V1, SP, GP, FP))


def instr_uses(instr: Instruction) -> frozenset[Reg]:
    uses = frozenset(instr.uses())
    if instr.op.is_call:
        uses |= CALL_USES
    return uses


def instr_defs(instr: Instruction) -> frozenset[Reg]:
    defs = frozenset(instr.defs())
    if instr.op.is_call:
        defs |= CALL_DEFS
    return defs


class Liveness:
    """Per-block live-IN/live-OUT register sets for one procedure."""

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        proc = cfg.proc

        def gen(label: str) -> frozenset[Reg]:
            upward: set[Reg] = set()
            defined: set[Reg] = set()
            for instr in proc.block(label).instructions():
                upward.update(u for u in instr_uses(instr) if u not in defined)
                defined.update(instr_defs(instr))
            return frozenset(upward)

        def kill(label: str) -> frozenset[Reg]:
            defined: set[Reg] = set()
            for instr in proc.block(label).instructions():
                defined.update(instr_defs(instr))
            return frozenset(defined)

        result = solve_backward(cfg, gen, kill, boundary=RETURN_LIVE)
        self.live_in: dict[str, frozenset[Reg]] = result.in_
        self.live_out: dict[str, frozenset[Reg]] = result.out

    def live_before_each(self, label: str) -> list[frozenset[Reg]]:
        """Live set immediately *before* each instruction of the block
        (body followed by terminator), computed by a backward scan."""
        block = self.cfg.proc.block(label)
        instrs = list(block.instructions())
        live = set(self.live_out[label])
        before: list[frozenset[Reg]] = [frozenset()] * len(instrs)
        for i in range(len(instrs) - 1, -1, -1):
            instr = instrs[i]
            live -= instr_defs(instr)
            live |= instr_uses(instr)
            before[i] = frozenset(live)
        return before

    def dead_at_entry(self, label: str, reg: Reg) -> bool:
        """True if ``reg`` carries no useful value into block ``label`` —
        the legality test for speculative movement onto the other path."""
        return reg not in self.live_in[label]
