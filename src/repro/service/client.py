"""Thin blocking clients for the campaign service.

These are the whole of what ``repro submit`` / ``repro status`` /
``repro drain`` do: connect to the Unix socket, write one request line,
read response lines.  No retries, no state — the daemon owns all of that.
"""

from __future__ import annotations

import json
import socket
from typing import Iterator, Optional

from repro.service.protocol import encode

__all__ = ["ServiceError", "request", "submit", "status", "drain"]


class ServiceError(RuntimeError):
    """The service could not be reached or answered with garbage."""


def request(socket_path: str, req: dict,
            timeout: Optional[float] = None) -> Iterator[dict]:
    """Send one request; yield response objects until the daemon closes.

    Connection-level failures become :class:`ServiceError` with the socket
    path in the message — 'connection refused' alone helps nobody.
    """
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    try:
        sock.settimeout(timeout)
        try:
            sock.connect(socket_path)
            sock.sendall(encode(req))
        except OSError as err:
            reason = err.strerror or str(err)
            raise ServiceError(
                f"cannot reach the service at {socket_path}: {reason} "
                f"(is `repro serve` running?)") from None
        try:
            with sock.makefile("rb") as fh:
                for line in fh:
                    if not line.strip():
                        continue
                    try:
                        yield json.loads(line)
                    except ValueError:
                        raise ServiceError(
                            f"garbage from the service at {socket_path}: "
                            f"{line[:120]!r}") from None
        except ConnectionError:
            # E.g. a daemon SIGKILLed mid-response, or a stale socket
            # whose backlog accepted us just before the listener died.
            raise ServiceError(
                f"connection to the service at {socket_path} was reset "
                f"mid-stream") from None
    finally:
        sock.close()


def submit(socket_path: str, kind: str, params: Optional[dict] = None,
           deadline: Optional[float] = None, wait: bool = True,
           timeout: Optional[float] = None
           ) -> tuple[dict, Optional[dict]]:
    """Submit a job.  Returns ``(admission response, result or None)``.

    The result is ``None`` when the job was rejected or ``wait`` is off.
    """
    req = {"op": "submit", "kind": kind, "params": params or {},
           "deadline": deadline, "wait": wait}
    responses = request(socket_path, req, timeout=timeout)
    first = next(responses, None)
    if first is None:
        raise ServiceError(f"the service at {socket_path} closed the "
                           f"connection without answering")
    if first.get("event") != "accepted" or not wait:
        return first, None
    return first, next(responses, None)


def status(socket_path: str, job: Optional[str] = None,
           timeout: Optional[float] = None) -> dict:
    req = {"op": "status", "job": job}
    result = next(request(socket_path, req, timeout=timeout), None)
    if result is None:
        raise ServiceError(f"the service at {socket_path} closed the "
                           f"connection without answering")
    return result


def drain(socket_path: str, timeout: Optional[float] = None) -> dict:
    result = next(request(socket_path, {"op": "drain"}, timeout=timeout),
                  None)
    if result is None:
        raise ServiceError(f"the service at {socket_path} closed the "
                           f"connection without answering")
    return result
