"""Wire protocol of the campaign service: newline-delimited JSON.

One connection carries one request — a single JSON object on one line —
followed by one or more response lines, each again a single JSON object.
Every response carries ``"schema": "repro-service/1"`` and an ``"event"``
discriminator.  The protocol is deliberately line-oriented so ``nc -U`` and
a five-line client are both first-class citizens.

Requests
--------

* ``{"op": "submit", "kind": "bench"|"verify"|"fuzz", "params": {...},
  "deadline": SECS?, "wait": bool?}`` — enqueue a campaign job.  The
  immediate response is ``accepted`` (with the job id) or ``rejected``
  (with a structured reason: ``busy``, ``draining``, ``invalid``).  With
  ``wait`` (the default) the connection then stays open until the job
  reaches a terminal state, which arrives as a ``result`` event carrying
  the full report text.  A client that disconnects mid-wait abandons only
  the *stream* — the job itself runs to a terminal state regardless.
* ``{"op": "status", "job": ID?}`` — one ``status`` response: every job's
  lifecycle state plus the ``repro-service/1`` counters; with ``job``, that
  job's detail including the report text when terminal.
* ``{"op": "drain"}`` — begin a graceful drain (stop admitting, finish
  what is queued and running), then one ``drained`` response with the
  summary counters.  The daemon exits after responding.

Job lifecycle states
--------------------

``queued`` → ``running`` → one of the terminal states ``done`` (report
clean), ``failed`` (report carries errors, or the runner died beyond its
retry budget), ``deadline`` (the per-request budget expired; the report is
a structured partial).  Rejected submissions never become jobs at all —
that is what keeps the admission queue's memory bounded.
"""

from __future__ import annotations

import json
from typing import Optional

#: schema tag on every response line and on the service counters section
SERVICE_SCHEMA = "repro-service/1"

#: campaign kinds the service accepts
JOB_KINDS = ("bench", "verify", "fuzz")

#: terminal job lifecycle states (see module docstring)
TERMINAL_STATES = frozenset({"done", "failed", "deadline"})

#: parameters each kind accepts, mirrored from the CLI flags of the
#: corresponding command — anything else is rejected as ``invalid`` at
#: admission, never half-run
ALLOWED_PARAMS = {
    "bench": frozenset({"workloads"}),
    "verify": frozenset({"workloads", "models", "seeds", "seed_start"}),
    "fuzz": frozenset({"count", "seed_start", "plans", "models",
                       "backends"}),
}


def encode(obj: dict) -> bytes:
    """One response/request as a wire line (sorted keys: deterministic)."""
    return (json.dumps(obj, sort_keys=True) + "\n").encode("utf-8")


def decode(line: bytes) -> dict:
    """Parse one wire line; raises ``ValueError`` on garbage (the caller
    answers with a structured ``error`` event, never a traceback)."""
    obj = json.loads(line.decode("utf-8", errors="replace"))
    if not isinstance(obj, dict):
        raise ValueError("request must be a JSON object")
    return obj


def response(event: str, **fields) -> dict:
    return {"schema": SERVICE_SCHEMA, "event": event, **fields}


def validate_submit(req: dict) -> Optional[str]:
    """One-line reason a submit request is malformed, or ``None``.

    Validation happens entirely at admission: a job that reaches the queue
    can only fail by *running*, so the runner's retry budget is never spent
    on a request that was dead on arrival.
    """
    kind = req.get("kind")
    if kind not in JOB_KINDS:
        return (f"unknown kind {kind!r}; expected one of "
                f"{', '.join(JOB_KINDS)}")
    params = req.get("params", {})
    if not isinstance(params, dict):
        return "params must be a JSON object"
    unknown = sorted(set(params) - ALLOWED_PARAMS[kind])
    if unknown:
        return (f"unknown {kind} parameter(s): {', '.join(unknown)}; "
                f"allowed: {', '.join(sorted(ALLOWED_PARAMS[kind]))}")
    for key in ("workloads", "models", "backends"):
        value = params.get(key)
        if value is not None and (not isinstance(value, list) or not all(
                isinstance(v, str) for v in value)):
            return f"{key} must be a list of strings"
    for key in ("seeds", "seed_start", "count", "plans"):
        value = params.get(key)
        if value is not None and (not isinstance(value, int)
                                  or isinstance(value, bool)):
            return f"{key} must be an integer"
    deadline = req.get("deadline")
    if deadline is not None:
        if not isinstance(deadline, (int, float)) or isinstance(
                deadline, bool) or deadline <= 0:
            return "deadline must be a positive number of seconds"
    return None
