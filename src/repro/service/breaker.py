"""Per-configuration circuit breaker for the campaign service.

A worker that times out or gets killed on one configuration cell (a bench
config key, a verify model) tends to do it again: the cell is the expensive
axis, not the workload.  Re-running it on every subsequent job burns the
whole retry budget each time and turns one pathological configuration into
service-wide latency.  The breaker trips after ``threshold`` *consecutive*
harness-level failures (``kind`` ``timeout`` or ``killed``) on a cell;
while the circuit is open, jobs touching that cell degrade those cells to
a structured skip in their report instead of running them.

States follow the classic pattern:

* **closed** — normal operation; failures count, a success resets the
  count.
* **open** — entered at ``threshold`` consecutive failures.  Requests
  against the cell are refused (skipped) until ``cooldown`` seconds pass
  on the monotonic clock.
* **half-open** — after the cooldown, exactly one job is allowed through
  as a probe.  A clean outcome closes the circuit; another failure
  re-opens it for a fresh cooldown.

The clock is injectable (monotonic by default) so the transition logic is
testable without sleeping.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["CircuitBreaker", "CellState"]

#: failure kinds that indicate an unhealthy worker rather than a broken
#: program — only these trip the breaker
TRIPPING_KINDS = ("timeout", "killed")


@dataclass
class CellState:
    """Breaker bookkeeping for one configuration cell."""

    state: str = "closed"  # closed | open | half_open
    consecutive_failures: int = 0
    opened_at: Optional[float] = None  # monotonic reading at the last open
    #: a half-open probe is in flight (only one job may carry it)
    probing: bool = False


class CircuitBreaker:
    """Consecutive-failure circuit breaker keyed by configuration cell."""

    def __init__(self, threshold: int = 3, cooldown: float = 30.0,
                 clock=time.monotonic) -> None:
        if threshold < 1:
            raise ValueError("breaker threshold must be at least 1")
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._cells: Dict[str, CellState] = {}
        # Counters surfaced in the repro-service/1 stats section.
        self.opened_total = 0
        self.half_open_probes = 0
        self.closed_total = 0

    def _cell(self, key: str) -> CellState:
        return self._cells.setdefault(key, CellState())

    # ---------------------------------------------------------------- queries
    def allow(self, key: str) -> bool:
        """May a job run this cell right now?

        Calling this *consumes* the half-open probe slot when the cooldown
        has elapsed: the caller that gets ``True`` on an open circuit is
        the probe, and must report the outcome via :meth:`record_success`
        or :meth:`record_failure`.
        """
        cell = self._cells.get(key)
        if cell is None or cell.state == "closed":
            return True
        if cell.state == "half_open":
            return not cell.probing or self._probe(cell)
        # open: has the cooldown elapsed?
        if self._clock() - cell.opened_at < self.cooldown:
            return False
        cell.state = "half_open"
        return self._probe(cell)

    def _probe(self, cell: CellState) -> bool:
        if cell.probing:
            return False
        cell.probing = True
        self.half_open_probes += 1
        return True

    def state(self, key: str) -> str:
        cell = self._cells.get(key)
        return cell.state if cell is not None else "closed"

    def open_cells(self) -> list[str]:
        return sorted(k for k, c in self._cells.items()
                      if c.state in ("open", "half_open"))

    # --------------------------------------------------------------- outcomes
    def record_success(self, key: str) -> None:
        cell = self._cells.get(key)
        if cell is None:
            return
        if cell.state != "closed":
            self.closed_total += 1
        cell.state = "closed"
        cell.consecutive_failures = 0
        cell.opened_at = None
        cell.probing = False

    def record_failure(self, key: str, kind: str = "timeout") -> bool:
        """Record one harness-level failure; ``True`` if this call opened
        (or re-opened) the circuit.  Kinds outside :data:`TRIPPING_KINDS`
        are ignored — a deterministic exception is the program's fault,
        not the worker's."""
        if kind not in TRIPPING_KINDS:
            return False
        cell = self._cell(key)
        cell.consecutive_failures += 1
        failed_probe = cell.state == "half_open"
        if failed_probe or cell.consecutive_failures >= self.threshold:
            already_open = cell.state == "open"
            cell.state = "open"
            cell.opened_at = self._clock()
            cell.probing = False
            if not already_open:
                self.opened_total += 1
                return True
        return False
