"""Job state and the runner child of the campaign service.

A *job* is one queued campaign (bench, verify, or fuzz).  Everything the
daemon knows about a job lives under its own directory,
``<state-dir>/jobs/<id>/``:

* ``job.json`` — the admission record (kind, params, deadline) plus the
  current lifecycle state, rewritten atomically on every transition;
* ``journal`` — the campaign's crash-safe checkpoint journal
  (:class:`repro.harness.resilience.Journal`), written by the runner as
  cells complete.  A runner killed mid-job resumes from it, so the final
  report converges to the same bytes however many times the runner died;
* ``report.json`` — the terminal report, written atomically by the runner
  as its very last act.  Its presence *is* the signal that the job's
  computation finished; the daemon never parses a half-written one.

The runner is a forked child (:func:`run_job`) so a hung or dying campaign
can be SIGKILLed without taking the daemon down, and so ``serve --resume``
can re-adopt a half-finished job by simply spawning a fresh runner against
the surviving journal.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.harness.fsutil import atomic_write_json

JOB_SCHEMA = "repro-service-job/1"
REPORT_SCHEMA = "repro-service-report/1"


def cell_key(jkey: str) -> str:
    """The circuit-breaker cell of a journal key.

    Journal keys are ``workload/config`` (bench) or ``workload/model``
    (verify); the breaker tracks the *configuration* axis — the expensive
    one that makes workers time out — so the cell is the last component.
    """
    return jkey.rsplit("/", 1)[-1]


@dataclass
class JobRecord:
    """The durable admission record of one job (``job.json``)."""

    id: str
    kind: str
    params: dict = field(default_factory=dict)
    deadline: Optional[float] = None  # seconds from admission, None = none
    state: str = "queued"  # queued | running | done | failed | deadline
    attempts: int = 0  # runner processes spawned for this job
    error: Optional[str] = None

    def save(self, job_dir: Path) -> None:
        atomic_write_json(job_dir / "job.json", {
            "schema": JOB_SCHEMA, "id": self.id, "kind": self.kind,
            "params": self.params, "deadline": self.deadline,
            "state": self.state, "attempts": self.attempts,
            "error": self.error,
        })

    @classmethod
    def load(cls, job_dir: Path) -> Optional["JobRecord"]:
        try:
            record = json.loads(
                (job_dir / "job.json").read_text(encoding="utf-8"))
            return cls(id=record["id"], kind=record["kind"],
                       params=record.get("params") or {},
                       deadline=record.get("deadline"),
                       state=record.get("state", "queued"),
                       attempts=int(record.get("attempts", 0)),
                       error=record.get("error"))
        except (OSError, ValueError, KeyError, TypeError):
            return None


def load_jobs(state_dir: Path) -> list[JobRecord]:
    """Every job record under ``state_dir``, in admission (id) order."""
    jobs_dir = Path(state_dir) / "jobs"
    if not jobs_dir.is_dir():
        return []
    records = []
    for job_dir in sorted(jobs_dir.iterdir()):
        record = JobRecord.load(job_dir)
        if record is not None:
            records.append(record)
    return records


def next_job_id(state_dir: Path) -> int:
    """First unused numeric job id (ids are ``job-%06d``)."""
    highest = 0
    jobs_dir = Path(state_dir) / "jobs"
    if jobs_dir.is_dir():
        for job_dir in jobs_dir.iterdir():
            name = job_dir.name
            if name.startswith("job-") and name[4:].isdigit():
                highest = max(highest, int(name[4:]))
    return highest + 1


# -------------------------------------------------------------- admission
def admission_error(kind: str, params: dict) -> Optional[str]:
    """Reject bad campaign parameters at admission, not in the runner.

    A deterministic construction error (unknown workload, unknown model)
    must never reach the runner: the runner's retry budget exists for
    crashes and kills, and burning it on a request that could never run
    would also mis-train the circuit breaker.
    """
    from repro.workloads import all_workloads

    if kind == "bench":
        known = {w.name for w in all_workloads()}
        unknown = sorted(set(params.get("workloads") or ()) - known)
        if unknown:
            return f"unknown workload(s): {', '.join(unknown)}"
        return None
    try:
        if kind == "verify":
            from repro.verify import VerifyCampaign
            VerifyCampaign(workload_names=params.get("workloads") or None,
                           model_keys=params.get("models") or None,
                           seeds=params.get("seeds", 20),
                           seed_start=params.get("seed_start", 0))
        else:  # fuzz
            from repro.verify.fuzz import FuzzCampaign
            FuzzCampaign(count=params.get("count", 50),
                         seed_start=params.get("seed_start", 0),
                         plans=params.get("plans", 4),
                         model_keys=params.get("models") or None,
                         backends=params.get("backends") or None)
    except ValueError as err:
        return str(err)
    return None


def breaker_cells(kind: str, params: dict) -> dict[str, list[str]]:
    """Configuration cell -> the job's journal keys under that cell.

    This is the daemon's pre-flight map: before spawning a runner it asks
    the breaker about each cell and turns refused cells into the runner's
    ``skip`` list.  Fuzz jobs have no configuration axis a breaker could
    reasonably isolate (every program is new work), so they are not gated.
    """
    from repro.workloads import all_workloads

    names = [w.name for w in all_workloads()]
    if kind == "bench":
        from repro.harness.experiments import BENCH_CONFIG_KEYS
        workloads = params.get("workloads") or names
        configs = BENCH_CONFIG_KEYS
    elif kind == "verify":
        from repro.verify.campaign import DEFAULT_MODELS
        workloads = params.get("workloads") or sorted(names)
        configs = params.get("models") or list(DEFAULT_MODELS)
    else:
        return {}
    return {config: [f"{w}/{config}" for w in workloads]
            for config in configs}


# ----------------------------------------------------------------- runner
def run_job(job_dir: str, kind: str, params: dict, runtime: dict) -> None:
    """Runner-child entry: execute one campaign, write ``report.json``.

    ``runtime`` carries the daemon's execution knobs: ``jobs``,
    ``timeout``, ``retries``, ``backoff``, ``cache_dir``, ``no_cache``,
    ``deadline`` (the job's *remaining* budget in seconds — it becomes the
    batch deadline of the :class:`SupervisionPolicy`, so expiry degrades
    every unfinished cell to a structured ``kind: deadline`` failure
    instead of leaving a corpse), and ``skip`` (journal keys whose circuit
    breaker is open; they degrade to deterministic skip errors and are
    never journaled).

    The report is written atomically as the last act; any exception
    becomes a terminal ``failed`` report rather than a retryable crash —
    by the time a request is here it was validated at admission, so an
    exception is deterministic and retrying it would only waste budget.
    """
    import os

    try:
        # Lead a fresh process group so a SIGKILL aimed at this runner
        # (chaos, deadline backstop, orphan fencing) takes the supervised
        # pool workers down too.  An orphaned worker is not just a leak:
        # it holds an inherited copy of this process's sentinel pipe, so
        # leaving one alive would make the daemon wait forever for a
        # runner that is already dead.
        os.setpgid(0, 0)
    except OSError:  # pragma: no cover — already a leader, or restricted
        pass
    path = Path(job_dir)
    try:
        report = _execute(path, kind, params, runtime)
    except Exception as err:  # noqa: BLE001 — the report IS the error path
        report = _report("failed", ok=False, text="",
                         error=f"{type(err).__name__}: {err}")
    atomic_write_json(path / "report.json", report)


def _report(state: str, ok: bool, text: str, failures=None, completed=None,
            error: Optional[str] = None) -> dict:
    return {"schema": REPORT_SCHEMA, "state": state, "ok": ok,
            "text": text, "failures": failures or [],
            "completed": completed or [], "error": error}


def _policy(runtime: dict):
    from repro.harness.resilience import SupervisionPolicy

    timeout = runtime.get("timeout")
    retries = runtime.get("retries")
    deadline = runtime.get("deadline")
    if timeout is None and retries is None and deadline is None:
        return None
    return SupervisionPolicy(
        timeout=timeout, retries=retries if retries is not None else 2,
        backoff=runtime.get("backoff", 0.5), deadline=deadline)


def _cache(runtime: dict):
    from repro.harness.cache import CompileCache

    if runtime.get("no_cache"):
        return None
    return CompileCache(runtime.get("cache_dir"))


def _terminal_state(failures: list[dict], ok: bool) -> str:
    if any(f.get("kind") == "deadline" for f in failures):
        return "deadline"
    return "done" if ok else "failed"


def _execute(job_dir: Path, kind: str, params: dict, runtime: dict) -> dict:
    from repro.harness.cache import CODE_VERSION
    from repro.harness.resilience import Journal

    jobs = runtime.get("jobs", 1)
    policy = _policy(runtime)
    cache = _cache(runtime)
    skip = sorted(runtime.get("skip") or ())

    if kind == "bench":
        from repro.harness.experiments import BENCH_CONFIG_KEYS, Lab
        from repro.harness.report import render_all
        from repro.verify.campaign import breaker_skip_error
        from repro.workloads import all_workloads

        workloads = all_workloads()
        if params.get("workloads"):
            selected = set(params["workloads"])
            workloads = [w for w in workloads if w.name in selected]
        facets = dict(command="bench", code_version=CODE_VERSION,
                      workloads=[w.name for w in workloads], sabotage=None,
                      configs=BENCH_CONFIG_KEYS, stats=False)
        journal = Journal(job_dir / "journal",
                          Journal.make_fingerprint(**facets),
                          resume=True, facets=facets)
        lab = Lab(workloads, cache=cache)
        for jkey in skip:
            wname, _, config = jkey.rpartition("/")
            lab.errors[(wname, config)] = breaker_skip_error(jkey)
            lab.failures[(wname, config)] = {
                "kind": "breaker", "attempts": 0,
                "error": lab.errors[(wname, config)]}
        try:
            lab.populate(jobs=jobs, policy=policy, journal=journal)
        finally:
            journal.close()
        text = render_all(lab)
        failures = [{"key": f"{w}/{c}", **record}
                    for (w, c), record in sorted(lab.failures.items())]
        failed_keys = {f["key"] for f in failures}
        completed = [f"{w.name}/{config}" for w in workloads
                     for config in BENCH_CONFIG_KEYS
                     if f"{w.name}/{config}" not in failed_keys]
        ok = not lab.errors
        return _report(_terminal_state(failures, ok), ok=ok, text=text,
                       failures=failures, completed=completed)

    if kind == "verify":
        from repro.verify import VerifyCampaign

        campaign = VerifyCampaign(
            workload_names=params.get("workloads") or None,
            model_keys=params.get("models") or None,
            seeds=params.get("seeds", 20),
            seed_start=params.get("seed_start", 0), cache=cache)
        facets = dict(command="verify", code_version=CODE_VERSION,
                      workloads=[w.name for w in campaign.workloads],
                      models=campaign.model_keys, seeds=campaign.seeds,
                      seed_start=campaign.seed_start)
        journal = Journal(job_dir / "journal",
                          Journal.make_fingerprint(**facets),
                          resume=True, facets=facets)
        try:
            summary = campaign.run(jobs=jobs, policy=policy,
                                   journal=journal, skip=skip)
        finally:
            journal.close()
        text = summary.format()
        failures = ([{"key": k, **record}
                     for k, record in sorted(campaign.failures.items())]
                    + [{"key": jkey, "kind": "breaker", "attempts": 0,
                        "error": "circuit breaker open"} for jkey in skip])
        failed_keys = {f["key"] for f in failures}
        completed = [f"{w.name}/{m}" for w in campaign.workloads
                     for m in campaign.model_keys
                     if f"{w.name}/{m}" not in failed_keys]
        ok = summary.ok
        return _report(_terminal_state(failures, ok), ok=ok, text=text,
                       failures=failures, completed=completed)

    # fuzz: no triage/reduction in service mode — the report is the
    # pre-finalize summary, which is what the parallel/chaos machinery
    # guarantees byte-identical (reduction is a separate, interactive step)
    from repro.verify.fuzz import FuzzCampaign

    campaign = FuzzCampaign(
        count=params.get("count", 50),
        seed_start=params.get("seed_start", 0),
        plans=params.get("plans", 4),
        model_keys=params.get("models") or None,
        backends=params.get("backends") or None)
    facets = dict(command="fuzz", code_version=CODE_VERSION,
                  **campaign.facets())
    journal = Journal(job_dir / "journal",
                      Journal.make_fingerprint(**facets),
                      resume=True, facets=facets)
    try:
        summary = campaign.run(jobs=jobs, policy=policy, journal=journal)
    finally:
        journal.close()
    text = summary.format()
    failures = [{"key": k, **record}
                for k, record in sorted(campaign.failures.items())]
    ok = summary.ok
    return _report(_terminal_state(failures, ok), ok=ok, text=text,
                   failures=failures, completed=[])
