"""Campaign service: bench/verify/fuzz as queued jobs behind a daemon.

``python -m repro serve`` runs :class:`CampaignService` — an asyncio
Unix-socket daemon with bounded admission, per-request deadlines, a
per-configuration circuit breaker, crash-safe job journaling, and graceful
drain.  ``repro submit`` / ``repro status`` / ``repro drain`` are thin
clients over the same newline-delimited JSON protocol
(:mod:`repro.service.protocol`).  See ``docs/service.md``.
"""

from repro.service.breaker import CircuitBreaker
from repro.service.client import ServiceError, drain, status, submit
from repro.service.daemon import CampaignService, ServiceChaosConfig
from repro.service.protocol import JOB_KINDS, SERVICE_SCHEMA, TERMINAL_STATES

__all__ = [
    "CampaignService", "CircuitBreaker", "JOB_KINDS", "SERVICE_SCHEMA",
    "ServiceChaosConfig", "ServiceError", "TERMINAL_STATES", "drain",
    "status", "submit",
]
