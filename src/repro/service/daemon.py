"""The campaign service daemon: ``python -m repro serve``.

A long-running asyncio process that turns bench/verify/fuzz campaigns into
queued jobs over a Unix socket (newline-delimited JSON, see
:mod:`repro.service.protocol`).  The design goals, in order:

* **bounded memory** — admission is gated by ``queue_bound``: at most that
  many jobs may be admitted-but-not-terminal at once.  Overload is a
  structured ``rejected: busy`` response, never an unbounded queue.
* **no lost work** — every job journals its cells as it runs; a runner
  killed at any instant (chaos, OOM, deadline backstop) is respawned
  against the journal and converges to the same report bytes.  A daemon
  killed at any instant leaves ``job.json`` records that ``serve
  --resume`` re-adopts.
* **bounded latency** — a per-request deadline becomes the batch deadline
  of the runner's :class:`SupervisionPolicy`, so expiry produces a
  structured partial report (every unfinished cell ``kind: deadline``)
  rather than a hung job; a SIGKILL backstop covers a runner too wedged
  to notice.
* **failure isolation** — a per-configuration circuit breaker
  (:mod:`repro.service.breaker`) stops one pathological config cell from
  burning every job's retry budget; open cells degrade to deterministic
  skips, and half-open probes restore them.
* **graceful drain** — SIGTERM (or the ``drain`` op) stops admission,
  finishes what is queued and running, prints a one-line summary, and
  exits 0.

Jobs execute strictly in admission order, one at a time — parallelism
lives *inside* a job (the supervised worker pool), where it is already
proven byte-deterministic.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import signal
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.obs.stats import ServiceStats
from repro.service.breaker import TRIPPING_KINDS, CircuitBreaker
from repro.service.jobs import (
    JobRecord, admission_error, breaker_cells, cell_key, load_jobs,
    next_job_id, run_job,
)
from repro.service.protocol import (
    TERMINAL_STATES, decode, encode, response, validate_submit,
)

__all__ = ["CampaignService", "ServiceChaosConfig"]


@dataclass
class ServiceChaosConfig:
    """Seeded fault injection for the service-layer chaos self-test.

    Whether a runner attempt gets SIGKILLed — and when — is a pure
    function of ``(seed, job id, attempt)``, so a chaos run is exactly
    reproducible.  Kills only fire while ``attempt <= max_faults``; with
    ``max_faults`` at or below the daemon's runner retry budget every job
    eventually gets an unkilled attempt, which (with the journal carrying
    earlier attempts' cells) is what lets the self-test demand reports
    byte-identical to a clean serial oracle.
    """

    seed: int
    max_faults: int = 2
    #: kill delay band in seconds — early enough to land mid-campaign
    kill_after: tuple = (0.05, 0.6)

    def kill_delay(self, job_id: str, attempt: int) -> Optional[float]:
        if attempt > self.max_faults:
            return None
        rng = random.Random(f"service:{self.seed}:{job_id}:{attempt}")
        if rng.random() >= 0.8:
            return None
        lo, hi = self.kill_after
        return lo + (hi - lo) * rng.random()


class _Job:
    """In-memory state of one admitted job."""

    def __init__(self, record: JobRecord, job_dir: Path) -> None:
        self.record = record
        self.dir = job_dir
        self.admitted_mono = time.monotonic()
        self.done = asyncio.Event()
        self.report: Optional[dict] = None


class CampaignService:
    #: extra seconds past a job's deadline before the backstop SIGKILL —
    #: the in-runner batch deadline should always fire first and produce
    #: the structured partial report; the backstop only reaps a runner too
    #: wedged to run its own expiry path
    DEADLINE_GRACE = 10.0

    def __init__(self, socket_path: str, state_dir: str, *,
                 queue_bound: int = 4, runtime: Optional[dict] = None,
                 chaos: Optional[ServiceChaosConfig] = None,
                 resume: bool = False, breaker_threshold: int = 3,
                 breaker_cooldown: float = 30.0,
                 banner: bool = True) -> None:
        self.socket_path = str(socket_path)
        self.state_dir = Path(state_dir)
        self.queue_bound = queue_bound
        self.runtime = dict(runtime or {})
        self.chaos = chaos
        self.resume = resume
        self.banner = banner
        self.breaker = CircuitBreaker(threshold=breaker_threshold,
                                      cooldown=breaker_cooldown)
        self.stats = ServiceStats()
        self.jobs: dict[str, _Job] = {}
        self._pending = 0  # admitted but not yet terminal
        self._draining = False
        self._queue: Optional[asyncio.Queue] = None
        self._drain_requested: Optional[asyncio.Event] = None
        self._drained: Optional[asyncio.Event] = None
        self._conns: set[asyncio.Task] = set()

    # ------------------------------------------------------------ lifecycle
    async def run(self) -> int:
        loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._drain_requested = asyncio.Event()
        self._drained = asyncio.Event()
        # Signal handlers before anything slow (orphan fencing, job
        # re-adoption): a SIGTERM racing startup must drain, not kill.
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, self.begin_drain)
        (self.state_dir / "jobs").mkdir(parents=True, exist_ok=True)
        resumed = self._adopt_jobs() if self.resume else 0
        self.stats.resumed_jobs = resumed

        socket_path = Path(self.socket_path)
        socket_path.parent.mkdir(parents=True, exist_ok=True)
        if socket_path.exists():
            socket_path.unlink()  # stale socket from a killed daemon
        server = await asyncio.start_unix_server(self._on_connection,
                                                 path=self.socket_path)
        if self.banner:
            print(f"serve: socket={self.socket_path} "
                  f"queue-bound={self.queue_bound} "
                  f"jobs={self.runtime.get('jobs', 1)} "
                  f"cache={self._cache_label()} resumed={resumed}",
                  file=sys.stderr, flush=True)

        consumer = asyncio.create_task(self._consume())
        await self._drain_requested.wait()
        await self._queue.put(None)  # sentinel: behind all admitted jobs
        await consumer
        server.close()
        await server.wait_closed()
        self._drained.set()
        if self._conns:  # let drain/status responders flush
            await asyncio.wait(self._conns, timeout=5)
        try:
            socket_path.unlink()
        except OSError:
            pass
        s = self.stats
        print(f"serve: drained — admitted={s.admitted} "
              f"rejected={s.rejected} completed={s.completed} "
              f"failed={s.failed} deadline-expired={s.deadline_expired} "
              f"breaker-opened={self.breaker.opened_total}",
              file=sys.stderr, flush=True)
        return 0

    def begin_drain(self) -> None:
        self._draining = True
        self._drain_requested.set()

    def _cache_label(self) -> str:
        if self.runtime.get("no_cache"):
            return "off"
        from repro.harness.cache import CompileCache
        return str(CompileCache(self.runtime.get("cache_dir")).cache_dir)

    def _adopt_jobs(self) -> int:
        """Re-queue every non-terminal job from a previous daemon life.

        Their journals carry what earlier runners finished, so the
        re-adopted report is byte-identical to one from an uninterrupted
        daemon.  Deadline budgets restart from re-admission — the original
        admission clock died with the original daemon.
        """
        adopted = 0
        for record in load_jobs(self.state_dir):
            job = _Job(record, self.state_dir / "jobs" / record.id)
            if record.state in TERMINAL_STATES:
                job.report = self._read_report(job)
                job.done.set()
                self.jobs[record.id] = job
                continue
            self._fence_orphan_runner(job)
            record.state = "queued"
            record.save(job.dir)
            self.jobs[record.id] = job
            self._pending += 1
            self._queue.put_nowait(job)
            adopted += 1
        return adopted

    def _fence_orphan_runner(self, job: _Job) -> None:
        """Kill a runner group left over from a previous daemon life.

        A SIGKILLed daemon cannot clean up its children, so a job being
        re-adopted may still have its old runner appending to the journal.
        Two writers would corrupt it; fence the orphan before spawning a
        replacement.  The pid file is best-effort — a recycled pid is only
        killed when it still leads a process group of ours.
        """
        pid_path = job.dir / "runner.pid"
        try:
            pid = int(pid_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        try:
            if os.getpgid(pid) == pid:  # still the group leader we made
                os.killpg(pid, signal.SIGKILL)
        except (OSError, ValueError):
            pass  # long dead
        try:
            pid_path.unlink()
        except OSError:
            pass

    # ----------------------------------------------------------- connections
    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._conns.add(task)
        try:
            await self._serve_connection(reader, writer)
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass  # the client hung up mid-stream; its jobs keep running
        finally:
            self._conns.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):
                pass

    async def _serve_connection(self, reader, writer) -> None:
        line = await reader.readline()
        if not line:
            return
        try:
            req = decode(line)
        except ValueError as err:
            await self._send(writer, response("error", message=str(err)))
            return
        op = req.get("op")
        if op == "submit":
            await self._op_submit(req, writer)
        elif op == "status":
            await self._op_status(req, writer)
        elif op == "drain":
            await self._op_drain(writer)
        else:
            await self._send(writer, response(
                "error", message=f"unknown op {op!r}"))

    async def _send(self, writer, obj: dict) -> None:
        writer.write(encode(obj))
        await writer.drain()

    # ------------------------------------------------------------------- ops
    async def _op_submit(self, req: dict, writer) -> None:
        reason = validate_submit(req)
        if reason is None:
            reason = admission_error(req["kind"], req.get("params") or {})
        if reason is not None:
            self.stats.rejected_invalid += 1
            await self._send(writer, response(
                "rejected", reason="invalid", message=reason))
            return
        if self._draining:
            self.stats.rejected_draining += 1
            await self._send(writer, response(
                "rejected", reason="draining",
                message="service is draining; not admitting new jobs"))
            return
        if self._pending >= self.queue_bound:
            self.stats.rejected_busy += 1
            await self._send(writer, response(
                "rejected", reason="busy", queued=self._pending,
                bound=self.queue_bound,
                message=f"admission queue full "
                        f"({self._pending}/{self.queue_bound} jobs "
                        f"in flight); retry after a job completes"))
            return

        record = JobRecord(
            id=f"job-{next_job_id(self.state_dir):06d}",
            kind=req["kind"], params=req.get("params") or {},
            deadline=req.get("deadline"))
        job = _Job(record, self.state_dir / "jobs" / record.id)
        job.dir.mkdir(parents=True, exist_ok=True)
        record.save(job.dir)
        self.jobs[record.id] = job
        self._pending += 1
        self.stats.admitted += 1
        await self._queue.put(job)
        await self._send(writer, response(
            "accepted", job=record.id, queued=self._pending))
        if req.get("wait", True):
            await job.done.wait()
            await self._send(writer, self._result_event(job))

    def _result_event(self, job: _Job) -> dict:
        report = job.report or {}
        return response(
            "result", job=job.record.id, state=job.record.state,
            ok=bool(report.get("ok")), text=report.get("text", ""),
            failures=report.get("failures", []),
            attempts=job.record.attempts, error=job.record.error)

    async def _op_status(self, req: dict, writer) -> None:
        job_id = req.get("job")
        if job_id is not None:
            job = self.jobs.get(job_id)
            if job is None:
                await self._send(writer, response(
                    "error", message=f"unknown job {job_id!r}"))
                return
            await self._send(writer, self._result_event(job))
            return
        jobs = [{"id": j.record.id, "kind": j.record.kind,
                 "state": j.record.state, "attempts": j.record.attempts}
                for _, j in sorted(self.jobs.items())]
        await self._send(writer, response(
            "status", jobs=jobs, draining=self._draining,
            breaker_open=self.breaker.open_cells(),
            stats=self._stats_snapshot()))

    async def _op_drain(self, writer) -> None:
        self.begin_drain()
        await self._drained.wait()
        await self._send(writer, response(
            "drained", stats=self._stats_snapshot()))

    def _stats_snapshot(self) -> dict:
        self.stats.breaker_opened = self.breaker.opened_total
        self.stats.breaker_half_open_probes = self.breaker.half_open_probes
        self.stats.breaker_closed = self.breaker.closed_total
        return self.stats.snapshot()

    # ------------------------------------------------------------------ jobs
    async def _consume(self) -> None:
        while True:
            job = await self._queue.get()
            if job is None:
                return
            try:
                await self._run_job(job)
            except Exception as err:  # noqa: BLE001 — one job, not the daemon
                job.record.state = "failed"
                job.record.error = f"{type(err).__name__}: {err}"
                job.record.save(job.dir)
            self._pending -= 1
            self._count_terminal(job.record.state)
            job.done.set()

    def _count_terminal(self, state: str) -> None:
        if state == "done":
            self.stats.completed += 1
        elif state == "deadline":
            self.stats.deadline_expired += 1
        else:
            self.stats.failed += 1

    def _read_report(self, job: _Job) -> Optional[dict]:
        try:
            return json.loads(
                (job.dir / "report.json").read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None

    async def _run_job(self, job: _Job) -> None:
        record = job.record
        record.state = "running"
        record.save(job.dir)
        deadline_at = (job.admitted_mono + record.deadline
                       if record.deadline is not None else None)
        skip = self._breaker_skips(record)
        retries = self.runtime.get("retries")
        budget = retries if retries is not None else 2
        report_path = job.dir / "report.json"

        while True:
            if report_path.exists():
                # Written by a previous attempt (killed after its last
                # act) or a previous daemon life: adopt as-is.
                report = self._read_report(job)
                if report is not None:
                    break
                report_path.unlink()  # unreadable: recompute
            remaining = None
            if deadline_at is not None:
                remaining = max(deadline_at - time.monotonic(), 0.0)
            record.attempts += 1
            record.save(job.dir)
            await self._spawn_runner(job, remaining, skip)
            if report_path.exists():
                report = self._read_report(job)
                if report is not None:
                    break
            if deadline_at is not None and time.monotonic() >= deadline_at:
                report = {"state": "deadline", "ok": False, "text": "",
                          "failures": [{"key": "*", "kind": "deadline",
                                        "attempts": record.attempts,
                                        "error": "runner killed at the "
                                                 "deadline backstop"}],
                          "completed": [],
                          "error": "deadline expired before the runner "
                                   "produced a report"}
                break
            if record.attempts > budget:
                report = {"state": "failed", "ok": False, "text": "",
                          "failures": [], "completed": [],
                          "error": f"runner died {record.attempts} time(s) "
                                   f"without producing a report "
                                   f"(retry budget {budget} exhausted)"}
                break
            self.stats.runner_restarts += 1

        job.report = report
        self._account_breaker(report)
        record.state = report.get("state", "failed")
        record.error = report.get("error")
        record.save(job.dir)

    def _breaker_skips(self, record: JobRecord) -> list[str]:
        skip: list[str] = []
        for cell, jkeys in sorted(
                breaker_cells(record.kind, record.params).items()):
            if not self.breaker.allow(cell):
                skip.extend(jkeys)
        return sorted(skip)

    def _account_breaker(self, report: dict) -> None:
        for failure in report.get("failures", ()):
            kind = failure.get("kind")
            if kind in TRIPPING_KINDS:
                self.breaker.record_failure(cell_key(failure["key"]), kind)
        for jkey in report.get("completed", ()):
            self.breaker.record_success(cell_key(jkey))

    async def _spawn_runner(self, job: _Job, remaining: Optional[float],
                            skip: list[str]) -> None:
        import multiprocessing

        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover — non-fork platforms
            ctx = multiprocessing.get_context()
        runtime = dict(self.runtime)
        runtime["deadline"] = remaining
        runtime["skip"] = skip
        # Not a daemon process: the runner spawns its own supervised pool.
        proc = ctx.Process(target=run_job,
                           args=(str(job.dir), job.record.kind,
                                 job.record.params, runtime))
        proc.start()
        try:
            # Mirror the child's own setpgid to close the race where a
            # kill timer fires before the child reaches it.
            os.setpgid(proc.pid, proc.pid)
        except OSError:
            pass  # the child beat us to it, or already exited
        pid_path = job.dir / "runner.pid"
        pid_path.write_text(str(proc.pid), encoding="utf-8")
        loop = asyncio.get_running_loop()
        exited = loop.create_future()
        loop.add_reader(proc.sentinel,
                        lambda: exited.done() or exited.set_result(None))
        timers = []
        if self.chaos is not None:
            delay = self.chaos.kill_delay(job.record.id, job.record.attempts)
            if delay is not None:
                timers.append(loop.call_later(
                    delay, self._kill_runner, proc, "chaos"))
        if remaining is not None:
            timers.append(loop.call_later(
                remaining + self.DEADLINE_GRACE,
                self._kill_runner, proc, "deadline backstop"))
        try:
            while True:
                done, _ = await asyncio.wait({exited}, timeout=1.0)
                if done:
                    break
                # Fallback: a SIGKILLed runner's sentinel can be held
                # open by an orphaned grandchild that inherited the pipe;
                # is_alive() reaps via waitpid and sees through that.
                if not proc.is_alive():
                    break
        finally:
            loop.remove_reader(proc.sentinel)
            for timer in timers:
                timer.cancel()
            proc.join()
            try:
                proc.close()
            except Exception:  # pragma: no cover
                pass
            try:
                pid_path.unlink()
            except OSError:
                pass

    def _kill_runner(self, proc, why: str) -> None:
        if why == "chaos":
            self.stats.chaos_kills += 1
        if proc.pid is None:
            return
        try:  # the whole runner group: the campaign pool dies with it
            os.killpg(proc.pid, signal.SIGKILL)
        except (OSError, ValueError):
            try:
                os.kill(proc.pid, signal.SIGKILL)
            except (OSError, ValueError):  # already gone
                pass
