"""Functional instruction-set simulator — the reference semantics.

This machine executes the IR directly (no schedule, no timing).  Every other
machine model in :mod:`repro.hw` must produce exactly the same observable
behaviour (PRINT stream, final trap if any); the test suite enforces this
invariant on every workload.

The simulator also doubles as the *profiler*: with ``profile=True`` it counts
per-branch taken/not-taken outcomes and per-block execution counts, which the
compiler turns into static predictions and trace probabilities.

Two interpreter loops implement the same semantics:

* the **fast path** (default) pre-decodes every instruction once into a flat
  dispatch tuple — opcode handler, register *indices*, immediate — hoists the
  hot state into locals, and accounts fuel at *block* granularity; when the
  remaining fuel could run out inside a block it hands the machine state to
  the reference loop, so :class:`FuelExhausted` still fires on exactly the
  same instruction;
* the **reference path** (``fast=False``) interprets :class:`Instruction`
  objects directly, one attribute lookup at a time.  It is the readable
  specification; ``tests/hw/test_fastpath.py`` pins the fast path to it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.hw.alu import ALU_FUNCS, BRANCH_FUNCS, branch_taken, execute_alu, s32
from repro.hw.backend import resolve_backend
from repro.hw.errors import FuelExhausted, WallClockExceeded
from repro.hw.exceptions import ExecutionResult, Trap, TrapKind
from repro.hw.memory import Memory
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.registers import RA, SP, Reg
from repro.program.procedure import Program

__all__ = [
    "BranchProfile", "EXIT_TOKEN", "FuelExhausted", "FunctionalSim",
    "profile_program", "run_functional",
]

EXIT_TOKEN = 0x4000_0000
_TOKEN_STRIDE = 16

# Dispatch tags for the pre-decoded fast path (body instructions).
_T_ALU, _T_LW, _T_LB, _T_LBU, _T_SW, _T_SB, _T_PRINT, _T_NOP = range(8)
# Terminator kinds.
_K_COND, _K_JUMP, _K_CALL, _K_RET, _K_HALT = range(5)

_RA_INDEX = RA.index


def _ridx(reg: Optional[Reg]) -> int:
    """Register index for reads; -1 encodes the hard-wired zero register."""
    return -1 if reg is None or reg.is_zero else reg.index


@dataclass
class BranchProfile:
    """Dynamic branch statistics collected by a profiling run."""

    taken: dict[int, int] = field(default_factory=dict)
    not_taken: dict[int, int] = field(default_factory=dict)
    block_counts: dict[tuple[str, str], int] = field(default_factory=dict)

    def record(self, uid: int, taken: bool) -> None:
        book = self.taken if taken else self.not_taken
        book[uid] = book.get(uid, 0) + 1

    def taken_prob(self, uid: int) -> Optional[float]:
        t = self.taken.get(uid, 0)
        n = self.not_taken.get(uid, 0)
        if t + n == 0:
            return None
        return t / (t + n)


class FunctionalSim:
    """Reference interpreter over the IR."""

    def __init__(
        self,
        program: Program,
        max_steps: int = 50_000_000,
        profile: bool = False,
        trap_handler: Optional[Callable[[Trap], Optional[int]]] = None,
        input_image: Optional[list[tuple[int, bytes]]] = None,
        fault_hook: Optional[Callable[[Instruction], Optional[Trap]]] = None,
        wall_clock_limit: Optional[float] = None,
        fast: Optional[bool] = None,
        stats=None,
        backend: Optional[str] = None,
    ) -> None:
        self.program = program
        self.max_steps = max_steps
        self.profile = BranchProfile() if profile else None
        self.trap_handler = trap_handler
        self.fault_hook = fault_hook
        self.wall_clock_limit = wall_clock_limit
        self.backend = resolve_backend(backend, fast)
        self.fast = self.backend != "reference"

        nregs = max(program.max_register_index() + 1, 32)
        self.regs = [0] * nregs
        self.mem = Memory(program.mem_size)
        self.mem.write_image(program.data.initial_image())
        if input_image:
            self.mem.write_image(input_image)
        self.regs[SP.index] = program.mem_size - 64
        self.regs[RA.index] = EXIT_TOKEN

        #: return-address token -> (procedure name, resume block index)
        self._tokens: dict[int, tuple[str, int]] = {}
        self._next_token = EXIT_TOKEN + _TOKEN_STRIDE
        self.result = ExecutionResult()
        self._block_index: dict[str, dict[str, int]] = {
            name: {b.label: i for i, b in enumerate(p.blocks)}
            for name, p in program.procedures.items()
        }
        self._decoded: Optional[dict[str, list[tuple]]] = None
        #: optional observability sink (repro.obs); None costs one test per
        #: executed basic block.  A non-collecting sink (NullStats) is
        #: hidden from the interpreter loops entirely.
        self._stats = stats
        self._stats_hot = stats if stats is not None and stats.collecting \
            else None

    # --------------------------------------------------------------- plumbing
    def _read(self, reg: Reg) -> int:
        return 0 if reg.is_zero else self.regs[reg.index]

    def _write(self, reg: Reg, value: int) -> None:
        if not reg.is_zero:
            self.regs[reg.index] = value & 0xFFFFFFFF

    def _handle_trap(self, trap: Trap, instr: Instruction) -> bool:
        """Returns True if the handler resumed execution with a value."""
        # Architectural identity: duplicated instructions (unrolled copies,
        # compensation code) report their origin, matching the timing sims.
        trap.instr_uid = instr.origin or instr.uid
        if self.trap_handler is not None:
            fix = self.trap_handler(trap)
            if fix is not None:
                if instr.dst is not None:
                    self._write(instr.dst, fix)
                return True
        self.result.trap = trap
        raise trap

    # ----------------------------------------------------------------- decode
    def _decode_body(self, instr: Instruction) -> tuple:
        op = instr.op
        if op is Opcode.NOP:
            return (_T_NOP, instr)
        if op is Opcode.PRINT:
            return (_T_PRINT, _ridx(instr.srcs[0]), instr)
        if op.is_load:
            tag = (_T_LW if op is Opcode.LW
                   else _T_LB if op is Opcode.LB else _T_LBU)
            return (tag, _ridx(instr.dst), _ridx(instr.srcs[0]),
                    instr.imm or 0, instr)
        if op.is_store:
            tag = _T_SW if op is Opcode.SW else _T_SB
            return (tag, _ridx(instr.srcs[0]), _ridx(instr.srcs[1]),
                    instr.imm or 0, instr)
        fn = ALU_FUNCS.get(op)
        if fn is None:
            raise ValueError(f"cannot decode {instr}")
        aidx = _ridx(instr.srcs[0]) if instr.srcs else -1
        bidx = _ridx(instr.srcs[1]) if len(instr.srcs) > 1 else -1
        return (_T_ALU, fn, _ridx(instr.dst), aidx, bidx, instr.imm or 0,
                instr)

    def _decode_term(self, term: Instruction, index: dict[str, int]) -> tuple:
        op = term.op
        if op is Opcode.HALT:
            return (_K_HALT,)
        if op.is_cond_branch:
            srcs = term.srcs
            aidx = _ridx(srcs[0])
            bidx = _ridx(srcs[1]) if len(srcs) > 1 else -1
            return (_K_COND, BRANCH_FUNCS[op], aidx, bidx, term.predict_taken,
                    term.uid, index[term.target])
        if op is Opcode.J:
            return (_K_JUMP, index[term.target])
        if op is Opcode.JAL:
            return (_K_CALL, term.target)
        if op is Opcode.JR:
            return (_K_RET, _ridx(term.srcs[0]), term)
        if op is Opcode.JALR:
            raise NotImplementedError("indirect calls use jal in this IR")
        raise ValueError(f"unhandled terminator {term}")

    def _decode(self) -> dict[str, list[tuple]]:
        """Flatten every block into ``(entries, terminator, fuel cost,
        profile key)`` with register indices resolved and handlers bound."""
        decoded: dict[str, list[tuple]] = {}
        for pname, proc in self.program.procedures.items():
            index = self._block_index[pname]
            blocks = []
            for block in proc.blocks:
                entries = tuple(self._decode_body(i) for i in block.body)
                term = block.terminator
                dterm = None if term is None else self._decode_term(term, index)
                cost = len(block.body) + (0 if term is None else 1)
                blocks.append((entries, dterm, cost, (pname, block.label)))
            decoded[pname] = blocks
        return decoded

    # -------------------------------------------------------------- execution
    def run(self, entry: Optional[str] = None) -> ExecutionResult:
        name = entry or self.program.entry
        deadline = (time.monotonic() + self.wall_clock_limit
                    if self.wall_clock_limit is not None else None)
        result = None
        if (self.backend == "translate" and self.profile is None
                and self.fault_hook is None and self.trap_handler is None):
            # instrumentation hooks need per-instruction visibility the
            # generated superblocks do not expose — those runs fall back
            # to the pre-decoded interpreter, which is observably
            # identical.
            from repro.hw import translate
            if translate.functional_unit(self.program,
                                          len(self.regs)) is not None:
                result = translate.run_functional_translated(
                    self, name, self.max_steps, deadline)
        if result is None:
            if self.fast:
                result = self._run_fast(name, self.max_steps, deadline)
            else:
                result = self._interp(name, 0, self.max_steps, deadline)
        if self._stats is not None:
            shapes = {}
            for pname, proc in self.program.procedures.items():
                for block in proc.blocks:
                    n = len(block.body) \
                        + (0 if block.terminator is None else 1)
                    shapes[(pname, block.label)] = (n, n, 1)
            self._stats.finalize_functional(self, shapes)
            result.sim_stats = self._stats
        return result

    def _run_fast(self, entry_name: str, fuel: int,
                  deadline: Optional[float]) -> ExecutionResult:
        if self._decoded is None:
            self._decoded = self._decode()
        decoded = self._decoded
        regs = self.regs
        mem = self.mem
        result = self.result
        output = result.output
        profile = self.profile
        fault_hook = self.fault_hook
        load_word = mem.load_word
        load_byte = mem.load_byte
        store_word = mem.store_word
        store_byte = mem.store_byte
        monotonic = time.monotonic
        tokens = self._tokens
        st = self._stats_hot
        execs = st.block_execs if st is not None else None

        proc_name = entry_name
        blocks = decoded[proc_name]
        nblocks = len(blocks)
        block_idx = 0
        ic = 0  # instructions retired since the last flush to result

        while True:
            if deadline is not None and monotonic() > deadline:
                result.instr_count += ic
                raise WallClockExceeded(
                    f"exceeded {self.wall_clock_limit}s wall clock "
                    f"({result.instr_count:,} instructions executed)")
            entries, term, cost, pkey = blocks[block_idx]
            if fuel < cost:
                # Not provably enough fuel for this block: hand the machine
                # state to the reference loop, which checks per instruction
                # and exhausts on exactly the right one.
                result.instr_count += ic
                return self._interp(proc_name, block_idx, fuel, deadline)
            fuel -= cost
            if profile is not None:
                bc = profile.block_counts
                bc[pkey] = bc.get(pkey, 0) + 1
            if execs is not None:
                execs[pkey] = execs.get(pkey, 0) + 1

            for entry in entries:
                tag = entry[0]
                if tag == _T_NOP:
                    result.nop_count += 1
                    continue
                ic += 1
                try:
                    if tag == _T_ALU:
                        _, fn, d, ai, bi, imm, instr = entry
                        if fault_hook is not None:
                            injected = fault_hook(instr)
                            if injected is not None:
                                raise injected
                        v = fn(regs[ai] if ai >= 0 else 0,
                               regs[bi] if bi >= 0 else 0, imm)
                        if d >= 0:
                            regs[d] = v
                    elif tag == _T_LW or tag == _T_LB or tag == _T_LBU:
                        _, d, base, off, instr = entry
                        if fault_hook is not None:
                            injected = fault_hook(instr)
                            if injected is not None:
                                raise injected
                        addr = ((regs[base] if base >= 0 else 0) + off) \
                            & 0xFFFFFFFF
                        if tag == _T_LW:
                            v = load_word(addr)
                        else:
                            v = load_byte(addr, signed=(tag == _T_LB))
                        if d >= 0:
                            regs[d] = v & 0xFFFFFFFF
                    elif tag == _T_SW or tag == _T_SB:
                        _, vi, base, off, instr = entry
                        if fault_hook is not None:
                            injected = fault_hook(instr)
                            if injected is not None:
                                raise injected
                        addr = ((regs[base] if base >= 0 else 0) + off) \
                            & 0xFFFFFFFF
                        value = regs[vi] if vi >= 0 else 0
                        if tag == _T_SW:
                            store_word(addr, value)
                        else:
                            store_byte(addr, value)
                    else:  # _T_PRINT
                        _, ai, instr = entry
                        v = regs[ai] if ai >= 0 else 0
                        output.append(v - 0x100000000 if v >= 0x80000000
                                      else v)
                except Trap as trap:
                    result.instr_count += ic
                    ic = 0
                    self._handle_trap(trap, entry[-1])

            if term is None:
                block_idx += 1
                if block_idx >= nblocks:
                    result.instr_count += ic
                    return result
                continue

            ic += 1
            kind = term[0]
            if kind == _K_COND:
                _, fn, ai, bi, predict, uid, tidx = term
                taken = fn(regs[ai] if ai >= 0 else 0,
                           regs[bi] if bi >= 0 else 0)
                result.branch_count += 1
                if predict is not None and taken != predict:
                    result.mispredict_count += 1
                if profile is not None:
                    profile.record(uid, taken)
                block_idx = tidx if taken else block_idx + 1
                continue
            if kind == _K_JUMP:
                block_idx = term[1]
                continue
            if kind == _K_CALL:
                token = self._next_token
                self._next_token += _TOKEN_STRIDE
                tokens[token] = (proc_name, block_idx + 1)
                regs[_RA_INDEX] = token
                proc_name = term[1]
                blocks = decoded[proc_name]
                nblocks = len(blocks)
                block_idx = 0
                continue
            if kind == _K_RET:
                ai = term[1]
                addr = regs[ai] if ai >= 0 else 0
                if addr == EXIT_TOKEN:
                    result.instr_count += ic
                    return result
                frame = tokens.get(addr)
                if frame is None:
                    result.instr_count += ic
                    ic = 0
                    trap = Trap(TrapKind.ADDRESS_ERROR, addr=addr,
                                instr_uid=term[2].uid)
                    self._handle_trap(trap, term[2])
                    return result
                proc_name, block_idx = frame
                blocks = decoded[proc_name]
                nblocks = len(blocks)
                continue
            # _K_HALT
            result.instr_count += ic
            return result

    def _interp(self, proc_name: str, block_idx: int, fuel: int,
                deadline: Optional[float]) -> ExecutionResult:
        """The reference interpreter loop, resumable at any block."""
        proc = self.program.proc(proc_name)
        result = self.result
        profile = self.profile

        while True:
            if deadline is not None and time.monotonic() > deadline:
                raise WallClockExceeded(
                    f"exceeded {self.wall_clock_limit}s wall clock "
                    f"({result.instr_count:,} instructions executed)")
            block = proc.blocks[block_idx]
            if profile is not None:
                key = (proc.name, block.label)
                profile.block_counts[key] = profile.block_counts.get(key, 0) + 1
            if self._stats_hot is not None:
                execs = self._stats_hot.block_execs
                key = (proc.name, block.label)
                execs[key] = execs.get(key, 0) + 1

            for instr in block.body:
                fuel -= 1
                if fuel < 0:
                    raise FuelExhausted(f"exceeded {self.max_steps} steps")
                result.instr_count += 1
                try:
                    self._execute_straightline(instr)
                except Trap as trap:
                    self._handle_trap(trap, instr)

            term = block.terminator
            if term is None:
                block_idx += 1
                if block_idx >= len(proc.blocks):
                    return result
                continue

            fuel -= 1
            if fuel < 0:
                raise FuelExhausted(f"exceeded {self.max_steps} steps")
            result.instr_count += 1
            op = term.op
            if op is Opcode.HALT:
                return result
            if op.is_cond_branch:
                srcs = term.srcs
                a = self._read(srcs[0])
                b = self._read(srcs[1]) if len(srcs) > 1 else 0
                taken = branch_taken(term, a, b)
                result.branch_count += 1
                if term.predict_taken is not None and taken != term.predict_taken:
                    result.mispredict_count += 1
                if profile is not None:
                    profile.record(term.uid, taken)
                if taken:
                    block_idx = self._block_index[proc.name][term.target]
                else:
                    block_idx += 1
                continue
            if op is Opcode.J:
                block_idx = self._block_index[proc.name][term.target]
                continue
            if op is Opcode.JAL:
                token = self._next_token
                self._next_token += _TOKEN_STRIDE
                self._tokens[token] = (proc.name, block_idx + 1)
                self._write(RA, token)
                proc = self.program.proc(term.target)
                block_idx = 0
                continue
            if op is Opcode.JR:
                addr = self._read(term.srcs[0])
                if addr == EXIT_TOKEN:
                    return result
                frame = self._tokens.get(addr)
                if frame is None:
                    trap = Trap(TrapKind.ADDRESS_ERROR, addr=addr,
                                instr_uid=term.uid)
                    self._handle_trap(trap, term)
                    return result
                proc = self.program.proc(frame[0])
                block_idx = frame[1]
                continue
            if op is Opcode.JALR:
                raise NotImplementedError("indirect calls use jal in this IR")
            raise ValueError(f"unhandled terminator {term}")

    def _execute_straightline(self, instr: Instruction) -> None:
        op = instr.op
        if op is Opcode.NOP:
            self.result.nop_count += 1
            self.result.instr_count -= 1
            return
        if self.fault_hook is not None and op is not Opcode.PRINT:
            injected = self.fault_hook(instr)
            if injected is not None:
                raise injected
        if op is Opcode.PRINT:
            self.result.output.append(s32(self._read(instr.srcs[0])))
            return
        if op.is_load:
            addr = (self._read(instr.srcs[0]) + (instr.imm or 0)) & 0xFFFFFFFF
            if op is Opcode.LW:
                value = self.mem.load_word(addr)
            elif op is Opcode.LB:
                value = self.mem.load_byte(addr, signed=True)
            else:
                value = self.mem.load_byte(addr, signed=False)
            self._write(instr.dst, value)
            return
        if op.is_store:
            value = self._read(instr.srcs[0])
            addr = (self._read(instr.srcs[1]) + (instr.imm or 0)) & 0xFFFFFFFF
            if op is Opcode.SW:
                self.mem.store_word(addr, value)
            else:
                self.mem.store_byte(addr, value)
            return
        a = self._read(instr.srcs[0]) if instr.srcs else 0
        b = self._read(instr.srcs[1]) if len(instr.srcs) > 1 else 0
        self._write(instr.dst, execute_alu(instr, a, b))


def run_functional(program: Program, **kwargs) -> ExecutionResult:
    """Convenience wrapper: run ``program`` from its entry to completion."""
    return FunctionalSim(program, **kwargs).run()


def profile_program(program: Program, max_steps: int = 50_000_000,
                    input_image=None) -> BranchProfile:
    """Run a profiling pass and return the branch statistics."""
    sim = FunctionalSim(program, max_steps=max_steps, profile=True,
                        input_image=input_image)
    sim.run()
    return sim.profile
