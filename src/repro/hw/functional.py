"""Functional instruction-set simulator — the reference semantics.

This machine executes the IR directly (no schedule, no timing).  Every other
machine model in :mod:`repro.hw` must produce exactly the same observable
behaviour (PRINT stream, final trap if any); the test suite enforces this
invariant on every workload.

The simulator also doubles as the *profiler*: with ``profile=True`` it counts
per-branch taken/not-taken outcomes and per-block execution counts, which the
compiler turns into static predictions and trace probabilities.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.hw.alu import branch_taken, execute_alu, s32
from repro.hw.errors import FuelExhausted, WallClockExceeded
from repro.hw.exceptions import ExecutionResult, Trap, TrapKind
from repro.hw.memory import Memory
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.registers import RA, SP, Reg
from repro.program.procedure import Procedure, Program

__all__ = [
    "BranchProfile", "EXIT_TOKEN", "FuelExhausted", "FunctionalSim",
    "profile_program", "run_functional",
]

EXIT_TOKEN = 0x4000_0000
_TOKEN_STRIDE = 16


@dataclass
class BranchProfile:
    """Dynamic branch statistics collected by a profiling run."""

    taken: dict[int, int] = field(default_factory=dict)
    not_taken: dict[int, int] = field(default_factory=dict)
    block_counts: dict[tuple[str, str], int] = field(default_factory=dict)

    def record(self, uid: int, taken: bool) -> None:
        book = self.taken if taken else self.not_taken
        book[uid] = book.get(uid, 0) + 1

    def taken_prob(self, uid: int) -> Optional[float]:
        t = self.taken.get(uid, 0)
        n = self.not_taken.get(uid, 0)
        if t + n == 0:
            return None
        return t / (t + n)


class FunctionalSim:
    """Reference interpreter over the IR."""

    def __init__(
        self,
        program: Program,
        max_steps: int = 50_000_000,
        profile: bool = False,
        trap_handler: Optional[Callable[[Trap], Optional[int]]] = None,
        input_image: Optional[list[tuple[int, bytes]]] = None,
        fault_hook: Optional[Callable[[Instruction], Optional[Trap]]] = None,
        wall_clock_limit: Optional[float] = None,
    ) -> None:
        self.program = program
        self.max_steps = max_steps
        self.profile = BranchProfile() if profile else None
        self.trap_handler = trap_handler
        self.fault_hook = fault_hook
        self.wall_clock_limit = wall_clock_limit

        nregs = max(program.max_register_index() + 1, 32)
        self.regs = [0] * nregs
        self.mem = Memory(program.mem_size)
        self.mem.write_image(program.data.initial_image())
        if input_image:
            self.mem.write_image(input_image)
        self.regs[SP.index] = program.mem_size - 64
        self.regs[RA.index] = EXIT_TOKEN

        self._tokens: dict[int, tuple[Procedure, int]] = {}
        self._next_token = EXIT_TOKEN + _TOKEN_STRIDE
        self.result = ExecutionResult()
        self._block_index: dict[str, dict[str, int]] = {
            name: {b.label: i for i, b in enumerate(p.blocks)}
            for name, p in program.procedures.items()
        }

    # --------------------------------------------------------------- plumbing
    def _read(self, reg: Reg) -> int:
        return 0 if reg.is_zero else self.regs[reg.index]

    def _write(self, reg: Reg, value: int) -> None:
        if not reg.is_zero:
            self.regs[reg.index] = value & 0xFFFFFFFF

    def _handle_trap(self, trap: Trap, instr: Instruction) -> bool:
        """Returns True if the handler resumed execution with a value."""
        # Architectural identity: duplicated instructions (unrolled copies,
        # compensation code) report their origin, matching the timing sims.
        trap.instr_uid = instr.origin or instr.uid
        if self.trap_handler is not None:
            fix = self.trap_handler(trap)
            if fix is not None:
                if instr.dst is not None:
                    self._write(instr.dst, fix)
                return True
        self.result.trap = trap
        raise trap

    # -------------------------------------------------------------- execution
    def run(self, entry: Optional[str] = None) -> ExecutionResult:
        proc = self.program.proc(entry or self.program.entry)
        block_idx = 0
        fuel = self.max_steps
        result = self.result
        profile = self.profile
        deadline = (time.monotonic() + self.wall_clock_limit
                    if self.wall_clock_limit is not None else None)

        while True:
            if deadline is not None and time.monotonic() > deadline:
                raise WallClockExceeded(
                    f"exceeded {self.wall_clock_limit}s wall clock "
                    f"({result.instr_count:,} instructions executed)")
            block = proc.blocks[block_idx]
            if profile is not None:
                key = (proc.name, block.label)
                profile.block_counts[key] = profile.block_counts.get(key, 0) + 1

            for instr in block.body:
                fuel -= 1
                if fuel < 0:
                    raise FuelExhausted(f"exceeded {self.max_steps} steps")
                result.instr_count += 1
                try:
                    self._execute_straightline(instr)
                except Trap as trap:
                    self._handle_trap(trap, instr)

            term = block.terminator
            if term is None:
                block_idx += 1
                if block_idx >= len(proc.blocks):
                    return result
                continue

            fuel -= 1
            if fuel < 0:
                raise FuelExhausted(f"exceeded {self.max_steps} steps")
            result.instr_count += 1
            op = term.op
            if op is Opcode.HALT:
                return result
            if op.is_cond_branch:
                srcs = term.srcs
                a = self._read(srcs[0])
                b = self._read(srcs[1]) if len(srcs) > 1 else 0
                taken = branch_taken(term, a, b)
                result.branch_count += 1
                if term.predict_taken is not None and taken != term.predict_taken:
                    result.mispredict_count += 1
                if profile is not None:
                    profile.record(term.uid, taken)
                if taken:
                    block_idx = self._block_index[proc.name][term.target]
                else:
                    block_idx += 1
                continue
            if op is Opcode.J:
                block_idx = self._block_index[proc.name][term.target]
                continue
            if op is Opcode.JAL:
                token = self._next_token
                self._next_token += _TOKEN_STRIDE
                self._tokens[token] = (proc, block_idx + 1)
                self._write(RA, token)
                proc = self.program.proc(term.target)
                block_idx = 0
                continue
            if op is Opcode.JR:
                addr = self._read(term.srcs[0])
                if addr == EXIT_TOKEN:
                    return result
                frame = self._tokens.get(addr)
                if frame is None:
                    trap = Trap(TrapKind.ADDRESS_ERROR, addr=addr,
                                instr_uid=term.uid)
                    self._handle_trap(trap, term)
                    return result
                proc, block_idx = frame
                continue
            if op is Opcode.JALR:
                raise NotImplementedError("indirect calls use jal in this IR")
            raise ValueError(f"unhandled terminator {term}")

    def _execute_straightline(self, instr: Instruction) -> None:
        op = instr.op
        if op is Opcode.NOP:
            self.result.nop_count += 1
            self.result.instr_count -= 1
            return
        if self.fault_hook is not None and op is not Opcode.PRINT:
            injected = self.fault_hook(instr)
            if injected is not None:
                raise injected
        if op is Opcode.PRINT:
            self.result.output.append(s32(self._read(instr.srcs[0])))
            return
        if op.is_load:
            addr = (self._read(instr.srcs[0]) + (instr.imm or 0)) & 0xFFFFFFFF
            if op is Opcode.LW:
                value = self.mem.load_word(addr)
            elif op is Opcode.LB:
                value = self.mem.load_byte(addr, signed=True)
            else:
                value = self.mem.load_byte(addr, signed=False)
            self._write(instr.dst, value)
            return
        if op.is_store:
            value = self._read(instr.srcs[0])
            addr = (self._read(instr.srcs[1]) + (instr.imm or 0)) & 0xFFFFFFFF
            if op is Opcode.SW:
                self.mem.store_word(addr, value)
            else:
                self.mem.store_byte(addr, value)
            return
        a = self._read(instr.srcs[0]) if instr.srcs else 0
        b = self._read(instr.srcs[1]) if len(instr.srcs) > 1 else 0
        self._write(instr.dst, execute_alu(instr, a, b))


def run_functional(program: Program, **kwargs) -> ExecutionResult:
    """Convenience wrapper: run ``program`` from its entry to completion."""
    return FunctionalSim(program, **kwargs).run()


def profile_program(program: Program, max_steps: int = 50_000_000,
                    input_image=None) -> BranchProfile:
    """Run a profiling pass and return the branch statistics."""
    sim = FunctionalSim(program, max_steps=max_steps, profile=True,
                        input_image=input_image)
    sim.run()
    return sim.profile
