"""Traps and the boosted-exception shift buffer (Section 2.3).

A sequential (non-boosted) instruction that faults raises :class:`Trap`
immediately — a precise exception.  A *boosted* instruction that faults must
not signal anything yet: the hardware records the fault in a one-bit shift
buffer indexed by boosting level.  Each correctly-predicted branch shifts the
buffer; if the out-shifted bit is set, the speculative state is discarded and
the machine vectors to compiler-generated *recovery code*, where the fault
re-occurs on a sequential instruction and can be handled precisely.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class TrapKind(enum.Enum):
    ADDRESS_ERROR = "address error"
    UNALIGNED = "unaligned access"
    DIV_ZERO = "divide by zero"


@dataclass
class Trap(Exception):
    """A synchronous exception raised by instruction execution."""

    kind: TrapKind
    addr: Optional[int] = None
    instr_uid: Optional[int] = None
    #: filled in by the simulators: where the trap was (precisely) signalled
    location: Optional[str] = None

    def __str__(self) -> str:
        where = f" at {self.location}" if self.location else ""
        target = f" (addr={self.addr:#x})" if self.addr is not None else ""
        return f"{self.kind.value}{target}{where}"

    def __reduce__(self):
        # Exception's default reduce replays __init__ with ``self.args``,
        # which a dataclass leaves empty — rebuild from the fields instead
        # so a Trap survives pickling across worker processes.
        return (Trap, (self.kind, self.addr, self.instr_uid, self.location))


@dataclass
class PendingBoostException:
    """What the shift buffer remembers about one deferred fault."""

    trap: Trap
    branch_uid: int  # the committing branch whose recovery code must run


class ExceptionShiftBuffer:
    """The one-bit-per-level shift buffer of Section 2.3.

    ``record(level, trap, branch_uid)`` notes a fault on an instruction
    boosted ``level`` branches up.  ``shift()`` models a correctly-predicted
    branch: every pending fault moves one level closer to commit, and the
    fault (if any) that reaches level zero is returned so the machine can
    invoke recovery.  ``clear()`` models a misprediction: all speculative
    faults vanish.
    """

    def __init__(self, levels: int) -> None:
        self.levels = levels
        self._slots: list[Optional[PendingBoostException]] = [None] * (levels + 1)

    def record(self, level: int, trap: Trap, branch_uid: int) -> None:
        if not 1 <= level <= self.levels:
            raise ValueError(f"boost level {level} out of range 1..{self.levels}")
        # Multiple faults at one level collapse to one bit; first wins, which
        # matches program order on an in-order machine.
        if self._slots[level] is None:
            self._slots[level] = PendingBoostException(trap, branch_uid)

    def shift(self, committing_branch_uid: int) -> Optional[PendingBoostException]:
        """Correct prediction: shift down one level; return any fault that
        commits (its bit shifted out at level 1)."""
        out = self._slots[1]
        for level in range(1, self.levels):
            self._slots[level] = self._slots[level + 1]
        self._slots[self.levels] = None
        if out is not None:
            out.branch_uid = committing_branch_uid
        return out

    def clear(self) -> None:
        """Incorrect prediction: discard every speculative fault."""
        for level in range(len(self._slots)):
            self._slots[level] = None

    def pending(self) -> bool:
        return any(slot is not None for slot in self._slots)


@dataclass
class ExecutionResult:
    """Observable outcome of running a program on any of the machines."""

    output: list[int] = field(default_factory=list)
    instr_count: int = 0
    cycle_count: int = 0
    nop_count: int = 0
    branch_count: int = 0
    mispredict_count: int = 0
    trap: Optional[Trap] = None
    #: observability sinks attached by instrumented runs (repro.obs);
    #: None unless stats collection was requested
    sim_stats: Optional[object] = None
    sched_stats: Optional[object] = None

    @property
    def ipc(self) -> float:
        return self.instr_count / self.cycle_count if self.cycle_count else 0.0

    @property
    def prediction_accuracy(self) -> float:
        if self.branch_count == 0:
            return 1.0
        return 1.0 - self.mispredict_count / self.branch_count
