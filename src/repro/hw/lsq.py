"""Load/store queue for the dynamically-scheduled machine.

The conservative :class:`~repro.hw.dynamic.DynamicSim` memory pipeline
(``lsq_size=0``) refuses to execute a load while *any* older store address
is unknown.  The LSQ relaxes that, one mechanism at a time:

* **age-ordered entries** — every in-flight load and store occupies one
  queue slot from dispatch to commit (or squash), in program order, so
  memory-ordering questions are answered by a bounded scan instead of a
  walk of the whole reorder buffer;
* **store-to-load forwarding** (``stlf``) — a load whose youngest
  overlapping older store is an exact address/size match takes the store's
  data straight from the queue, without waiting for stores older than the
  match to resolve (their values are dead: the match masks them);
* **memory-dependence speculation** (``speculate``) — a load may execute
  past *unresolved* older store addresses on the bet that they will not
  alias.  Every such load is flagged; when an older store later resolves
  to an overlapping address, :meth:`aliasing_victim` names the oldest
  mis-speculated load, and the simulator squashes it (and everything
  younger) through the same recovery path a branch misprediction uses.

A load that forwarded from store ``S`` is *not* a victim of a
later-resolving store older than ``S`` — the forward already took the
youngest older value, so the resolving store's data was dead for this
load.  :attr:`_Entry.fwd_seq` records the forwarding store's age to make
that test cheap.

The queue never touches memory itself: stores drain to memory at commit
(in program order, by the simulator), which is also what a waiting load
observes when its blocking store leaves the queue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(slots=True)
class LoadProbe:
    """Memory-ordering answer for one ready load (see :meth:`probe_load`).

    ``wait`` means the load must retry next cycle.  Otherwise it may
    execute now: ``value`` carries forwarded store data (``None`` = read
    memory), ``fwd_seq`` the forwarding store's sequence number (0 = no
    forward), and ``speculative`` whether the load is executing past at
    least one unresolved older store address.
    """

    wait: bool = False
    value: Optional[int] = None
    fwd_seq: int = 0
    speculative: bool = False


class LoadStoreQueue:
    """Age-ordered queue of in-flight memory operations.

    Entries are the simulator's ROB entries themselves (``seq`` orders
    them; ``addr``/``mem_size``/``store_data`` resolve at issue); the
    queue only adds the ordering decisions and the occupancy/forwarding
    counters the ``repro-stats/1`` section reports.
    """

    def __init__(self, size: int, stlf: bool, speculate: bool) -> None:
        self.size = size
        self.stlf = stlf
        self.speculate = speculate
        self.entries: list = []      # _Entry refs in seq (program) order
        # counters surfaced through SimStats.finalize_dynamic
        self.high_water = 0
        self.occupancy_sum = 0
        self.stlf_hits = 0

    # ------------------------------------------------------------ occupancy
    def full(self) -> bool:
        return len(self.entries) >= self.size

    def allocate(self, entry) -> None:
        """Dispatch: append in program order (caller checked :meth:`full`)."""
        self.entries.append(entry)
        if len(self.entries) > self.high_water:
            self.high_water = len(self.entries)

    def retire(self, entry) -> None:
        """Commit: memory ops leave in program order, so this is the head."""
        if self.entries and self.entries[0] is entry:
            self.entries.pop(0)
        else:  # pragma: no cover - commit is in-order by construction
            self.entries.remove(entry)

    def drop_flushed(self) -> None:
        """After any squash: shed entries the simulator just flushed."""
        self.entries = [e for e in self.entries if not e.flushed]

    # -------------------------------------------------------------- ordering
    def probe_load(self, load) -> LoadProbe:
        """Decide whether a ready load may execute, and from where.

        Scans older stores youngest-first; the first overlapping resolved
        store settles the question (an exact match forwards under
        ``stlf``, anything else waits for the store to drain at commit).
        An unresolved older store address met before the verdict forces a
        wait in conservative mode and marks the load speculative under
        ``speculate``.
        """
        probe = LoadProbe()
        lo = load.addr
        hi = lo + load.mem_size
        for other in reversed(self.entries):
            if other.seq >= load.seq or not other.dec.is_store:
                continue
            if other.addr is None:
                if not self.speculate:
                    probe.wait = True
                    return probe
                probe.speculative = True
                continue
            o_lo = other.addr
            o_hi = o_lo + other.mem_size
            if o_hi <= lo or hi <= o_lo:
                continue
            if o_lo == lo and other.mem_size == load.mem_size:
                if self.stlf:
                    probe.value = other.store_data
                    probe.fwd_seq = other.seq
                    self.stlf_hits += 1
                else:
                    probe.wait = True  # forwarding disabled: drain first
                return probe
            probe.wait = True          # partial overlap: wait for commit
            return probe
        return probe

    def aliasing_victim(self, store):
        """The oldest younger load this resolving store proves wrong.

        Only loads that executed speculatively (past this store while its
        address was unknown) qualify, and a load that forwarded from a
        store *younger* than this one is immune — its value came from the
        write that supersedes this store.  ``None`` means the speculation
        held.
        """
        s_lo = store.addr
        s_hi = s_lo + store.mem_size
        for other in self.entries:  # program order: first hit is oldest
            if (other.seq <= store.seq or not other.dec.is_load
                    or not other.done or not other.mem_speculative):
                continue
            if other.fwd_seq > store.seq:
                continue
            o_lo = other.addr
            o_hi = o_lo + other.mem_size
            if o_hi <= s_lo or s_hi <= o_lo:
                continue
            return other
        return None


__all__ = ["LoadProbe", "LoadStoreQueue"]
