"""Byte-addressable memory with faulting semantics.

Low addresses (below the data base) are unmapped so that dereferencing a null
or wild pointer raises an addressing exception — the behaviour that makes
speculative loads *unsafe* (Section 2.1, Figure 1c) and motivates boosting's
exception postponement.
"""

from __future__ import annotations

from repro.hw.exceptions import Trap, TrapKind
from repro.program.procedure import DATA_BASE, DEFAULT_MEM_SIZE

_MASK32 = 0xFFFFFFFF


class Memory:
    def __init__(self, size: int = DEFAULT_MEM_SIZE, base: int = DATA_BASE) -> None:
        self.size = size
        self.base = base
        self._mem = bytearray(size)

    # ----------------------------------------------------------------- checks
    def check(self, addr: int, nbytes: int) -> None:
        """Raise the :class:`Trap` an access of ``nbytes`` at ``addr`` would
        take, if any."""
        if addr < self.base or addr + nbytes > self.size:
            raise Trap(TrapKind.ADDRESS_ERROR, addr=addr)
        if nbytes == 4 and addr % 4 != 0:
            raise Trap(TrapKind.UNALIGNED, addr=addr)

    _check = check

    def valid(self, addr: int, nbytes: int = 4) -> bool:
        return (self.base <= addr and addr + nbytes <= self.size
                and (nbytes != 4 or addr % 4 == 0))

    # ------------------------------------------------------------------ loads
    def load_word(self, addr: int) -> int:
        self._check(addr, 4)
        return int.from_bytes(self._mem[addr:addr + 4], "little")

    def load_byte(self, addr: int, signed: bool = True) -> int:
        self._check(addr, 1)
        value = self._mem[addr]
        if signed and value >= 0x80:
            value -= 0x100
        return value & _MASK32

    # ----------------------------------------------------------------- stores
    def store_word(self, addr: int, value: int) -> None:
        self._check(addr, 4)
        self._mem[addr:addr + 4] = (value & _MASK32).to_bytes(4, "little")

    def store_byte(self, addr: int, value: int) -> None:
        self._check(addr, 1)
        self._mem[addr] = value & 0xFF

    # ------------------------------------------------------------------- misc
    def snapshot(self) -> bytes:
        """The full memory image, for state comparison between machines."""
        return bytes(self._mem)

    def write_image(self, image: list[tuple[int, bytes]]) -> None:
        for addr, raw in image:
            self._mem[addr:addr + len(raw)] = raw

    def read_bytes(self, addr: int, nbytes: int) -> bytes:
        self._check(addr, 1)
        return bytes(self._mem[addr:addr + nbytes])
