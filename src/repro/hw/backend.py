"""Simulator backend selection.

One documented knob chooses which execution engine the simulators use:

* ``REPRO_SIM_BACKEND=translate`` (the default) — decoded basic blocks are
  compiled to generated Python superblocks with dynamic trace-reuse
  memoization (:mod:`repro.hw.translate`);
* ``REPRO_SIM_BACKEND=interp`` — the pre-decoded flat-tuple fast
  interpreters from the PR-2 fast paths;
* ``REPRO_SIM_BACKEND=reference`` — the readable reference interpreters
  (one :class:`Instruction` attribute lookup at a time).

The legacy ``REPRO_FAST_SIM=0`` escape hatch is kept as an alias for
``REPRO_SIM_BACKEND=reference``; an explicit ``REPRO_SIM_BACKEND`` wins when
both are set.  The environment is consulted at *simulator construction*
time, never at import time, so tests and harnesses can flip the knob
per-run (``monkeypatch.setenv`` works).

All three backends are observably identical — same output, same counters,
same traps — and the test suite pins that equivalence
(``tests/hw/test_fastpath.py``, ``tests/hw/test_translate.py``).
"""

from __future__ import annotations

import os

__all__ = ["BACKENDS", "backend_choice", "resolve_backend"]

BACKENDS = ("reference", "interp", "translate")

_ENV = "REPRO_SIM_BACKEND"
_LEGACY_ENV = "REPRO_FAST_SIM"


def backend_choice() -> str:
    """The environment-selected backend name.

    Raises :class:`ValueError` on an unknown ``REPRO_SIM_BACKEND`` value so
    a typo'd knob fails loudly instead of silently benchmarking the wrong
    engine.
    """
    env = os.environ.get(_ENV)
    if env:
        if env not in BACKENDS:
            raise ValueError(
                f"{_ENV}={env!r}: unknown backend "
                f"(choose from {', '.join(BACKENDS)})")
        return env
    if os.environ.get(_LEGACY_ENV, "1") == "0":
        return "reference"
    return "translate"


def resolve_backend(backend, fast) -> str:
    """Combine an explicit ``backend=`` argument with the legacy ``fast=``
    argument and the environment into one backend name.

    Precedence: an explicit ``backend`` wins; then ``fast=False`` forces the
    reference interpreter and ``fast=True`` forces a fast engine (the
    environment picks *which* fast engine, never demoting to reference);
    then the environment decides.
    """
    if backend is not None:
        if backend not in BACKENDS:
            raise ValueError(
                f"backend={backend!r}: unknown backend "
                f"(choose from {', '.join(BACKENDS)})")
        return backend
    if fast is False:
        return "reference"
    choice = backend_choice()
    if fast is True and choice == "reference":
        return "interp"
    return choice
