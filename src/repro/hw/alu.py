"""Shared operation semantics for all machine models.

Register values are kept as unsigned 32-bit integers (0 .. 2**32-1); signed
operations convert on the way in and out.  Divide truncates toward zero and
traps on a zero divisor (C semantics on the R2000's runtime).
"""

from __future__ import annotations

from repro.hw.exceptions import Trap, TrapKind
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode

MASK32 = 0xFFFFFFFF


def u32(x: int) -> int:
    return x & MASK32


def s32(x: int) -> int:
    x &= MASK32
    return x - 0x100000000 if x >= 0x80000000 else x


def execute_alu(instr: Instruction, a: int = 0, b: int = 0) -> int:
    """Compute the result of a non-memory, non-branch instruction.

    ``a``/``b`` are the source register values (unsigned 32-bit); the
    immediate is taken from the instruction.  Raises :class:`Trap` for
    divide-by-zero.
    """
    op = instr.op
    imm = instr.imm or 0
    if op is Opcode.ADD:
        return u32(a + b)
    if op is Opcode.ADDI:
        return u32(a + imm)
    if op is Opcode.SUB:
        return u32(a - b)
    if op is Opcode.AND:
        return a & b
    if op is Opcode.ANDI:
        return a & u32(imm)
    if op is Opcode.OR:
        return a | b
    if op is Opcode.ORI:
        return a | u32(imm)
    if op is Opcode.XOR:
        return a ^ b
    if op is Opcode.XORI:
        return a ^ u32(imm)
    if op is Opcode.NOR:
        return u32(~(a | b))
    if op is Opcode.SLT:
        return 1 if s32(a) < s32(b) else 0
    if op is Opcode.SLTI:
        return 1 if s32(a) < imm else 0
    if op is Opcode.SLTU:
        return 1 if a < b else 0
    if op is Opcode.SLTIU:
        return 1 if a < u32(imm) else 0
    if op is Opcode.LUI:
        return u32(imm << 16)
    if op is Opcode.LI:
        return u32(imm)
    if op is Opcode.MOVE:
        return a
    if op is Opcode.SLL:
        return u32(a << (imm & 31))
    if op is Opcode.SRL:
        return a >> (imm & 31)
    if op is Opcode.SRA:
        return u32(s32(a) >> (imm & 31))
    if op is Opcode.SLLV:
        return u32(a << (b & 31))
    if op is Opcode.SRLV:
        return a >> (b & 31)
    if op is Opcode.SRAV:
        return u32(s32(a) >> (b & 31))
    if op is Opcode.MUL:
        return u32(s32(a) * s32(b))
    if op is Opcode.DIV:
        if b == 0:
            raise Trap(TrapKind.DIV_ZERO, instr_uid=instr.uid)
        q = abs(s32(a)) // abs(s32(b))
        return u32(-q if (s32(a) < 0) != (s32(b) < 0) else q)
    if op is Opcode.REM:
        if b == 0:
            raise Trap(TrapKind.DIV_ZERO, instr_uid=instr.uid)
        q = abs(s32(a)) % abs(s32(b))
        return u32(-q if s32(a) < 0 else q)
    raise ValueError(f"execute_alu cannot evaluate {instr}")


def branch_taken(instr: Instruction, a: int = 0, b: int = 0) -> bool:
    """Evaluate a conditional branch's condition."""
    op = instr.op
    if op is Opcode.BEQ:
        return a == b
    if op is Opcode.BNE:
        return a != b
    if op is Opcode.BLEZ:
        return s32(a) <= 0
    if op is Opcode.BGTZ:
        return s32(a) > 0
    if op is Opcode.BLTZ:
        return s32(a) < 0
    if op is Opcode.BGEZ:
        return s32(a) >= 0
    raise ValueError(f"{instr} is not a conditional branch")
