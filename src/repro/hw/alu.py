"""Shared operation semantics for all machine models.

Register values are kept as unsigned 32-bit integers (0 .. 2**32-1); signed
operations convert on the way in and out.  Divide truncates toward zero and
traps on a zero divisor (C semantics on the R2000's runtime).
"""

from __future__ import annotations

from repro.hw.exceptions import Trap, TrapKind
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode

MASK32 = 0xFFFFFFFF


def u32(x: int) -> int:
    return x & MASK32


def s32(x: int) -> int:
    x &= MASK32
    return x - 0x100000000 if x >= 0x80000000 else x


def _div(a: int, b: int, _imm: int) -> int:
    if b == 0:
        raise Trap(TrapKind.DIV_ZERO)
    q = abs(s32(a)) // abs(s32(b))
    return u32(-q if (s32(a) < 0) != (s32(b) < 0) else q)


def _rem(a: int, b: int, _imm: int) -> int:
    if b == 0:
        raise Trap(TrapKind.DIV_ZERO)
    q = abs(s32(a)) % abs(s32(b))
    return u32(-q if s32(a) < 0 else q)


#: ``op -> f(a, b, imm)`` for every non-memory, non-branch opcode.  The
#: simulators' pre-decoded fast paths look the function up once per static
#: instruction instead of walking an ``is``-chain per dynamic instruction.
ALU_FUNCS = {
    Opcode.ADD: lambda a, b, imm: (a + b) & MASK32,
    Opcode.ADDI: lambda a, b, imm: (a + imm) & MASK32,
    Opcode.SUB: lambda a, b, imm: (a - b) & MASK32,
    Opcode.AND: lambda a, b, imm: a & b,
    Opcode.ANDI: lambda a, b, imm: a & (imm & MASK32),
    Opcode.OR: lambda a, b, imm: a | b,
    Opcode.ORI: lambda a, b, imm: a | (imm & MASK32),
    Opcode.XOR: lambda a, b, imm: a ^ b,
    Opcode.XORI: lambda a, b, imm: a ^ (imm & MASK32),
    Opcode.NOR: lambda a, b, imm: ~(a | b) & MASK32,
    Opcode.SLT: lambda a, b, imm: 1 if s32(a) < s32(b) else 0,
    Opcode.SLTI: lambda a, b, imm: 1 if s32(a) < imm else 0,
    Opcode.SLTU: lambda a, b, imm: 1 if a < b else 0,
    Opcode.SLTIU: lambda a, b, imm: 1 if a < (imm & MASK32) else 0,
    Opcode.LUI: lambda a, b, imm: (imm << 16) & MASK32,
    Opcode.LI: lambda a, b, imm: imm & MASK32,
    Opcode.MOVE: lambda a, b, imm: a,
    Opcode.SLL: lambda a, b, imm: (a << (imm & 31)) & MASK32,
    Opcode.SRL: lambda a, b, imm: a >> (imm & 31),
    Opcode.SRA: lambda a, b, imm: (s32(a) >> (imm & 31)) & MASK32,
    Opcode.SLLV: lambda a, b, imm: (a << (b & 31)) & MASK32,
    Opcode.SRLV: lambda a, b, imm: a >> (b & 31),
    Opcode.SRAV: lambda a, b, imm: (s32(a) >> (b & 31)) & MASK32,
    Opcode.MUL: lambda a, b, imm: (s32(a) * s32(b)) & MASK32,
    Opcode.DIV: _div,
    Opcode.REM: _rem,
}


def execute_alu(instr: Instruction, a: int = 0, b: int = 0) -> int:
    """Compute the result of a non-memory, non-branch instruction.

    ``a``/``b`` are the source register values (unsigned 32-bit); the
    immediate is taken from the instruction.  Raises :class:`Trap` for
    divide-by-zero.
    """
    fn = ALU_FUNCS.get(instr.op)
    if fn is None:
        raise ValueError(f"execute_alu cannot evaluate {instr}")
    try:
        return fn(a, b, instr.imm or 0)
    except Trap as trap:
        trap.instr_uid = instr.uid
        raise


#: ``op -> f(a, b)`` for the conditional branches.
BRANCH_FUNCS = {
    Opcode.BEQ: lambda a, b: a == b,
    Opcode.BNE: lambda a, b: a != b,
    Opcode.BLEZ: lambda a, b: s32(a) <= 0,
    Opcode.BGTZ: lambda a, b: s32(a) > 0,
    Opcode.BLTZ: lambda a, b: s32(a) < 0,
    Opcode.BGEZ: lambda a, b: s32(a) >= 0,
}


def branch_taken(instr: Instruction, a: int = 0, b: int = 0) -> bool:
    """Evaluate a conditional branch's condition."""
    fn = BRANCH_FUNCS.get(instr.op)
    if fn is None:
        raise ValueError(f"{instr} is not a conditional branch")
    return fn(a, b)


# --------------------------------------------------------------------------
# Expression templates for the translating backend (repro.hw.translate).
#
# Each entry renders the same semantics as the ALU_FUNCS/BRANCH_FUNCS lambda
# above as a Python *expression* over operand expressions, so generated
# superblock code inlines the operation instead of calling through the
# table.  ``{a}``/``{b}`` are operand expressions (already masked unsigned
# 32-bit values); immediates are folded into literals by ``alu_expr``.
# ``tests/hw/test_translate.py`` sweeps every template against its table
# function so the two can never drift apart.
#
# Signed tricks: for masked 32-bit x, ``(x ^ 0x80000000) - 0x80000000`` is
# s32(x), and xoring the top bit of both sides turns a signed comparison
# into an unsigned one.

_H = 0x80000000


def alu_expr(op: Opcode, a: str, b: str, imm: int):
    """Inline expression for ``ALU_FUNCS[op](a, b, imm)``, or ``None`` when
    the operation cannot be inlined (traps, out-of-range immediates) and
    must go through the table function instead."""
    m, h = MASK32, _H
    if op is Opcode.ADD:
        return f"({a} + {b}) & {m}"
    if op is Opcode.ADDI:
        return f"({a} + {imm}) & {m}"
    if op is Opcode.SUB:
        return f"({a} - {b}) & {m}"
    if op is Opcode.AND:
        return f"{a} & {b}"
    if op is Opcode.ANDI:
        return f"{a} & {imm & m}"
    if op is Opcode.OR:
        return f"{a} | {b}"
    if op is Opcode.ORI:
        return f"{a} | {imm & m}"
    if op is Opcode.XOR:
        return f"{a} ^ {b}"
    if op is Opcode.XORI:
        return f"{a} ^ {imm & m}"
    if op is Opcode.NOR:
        return f"~({a} | {b}) & {m}"
    if op is Opcode.SLT:
        return f"1 if ({a} ^ {h}) < ({b} ^ {h}) else 0"
    if op is Opcode.SLTI:
        if not -(2 ** 31) <= imm < 2 ** 31:
            return None
        return f"1 if ({a} ^ {h}) < {(imm & m) ^ _H} else 0"
    if op is Opcode.SLTU:
        return f"1 if {a} < {b} else 0"
    if op is Opcode.SLTIU:
        return f"1 if {a} < {imm & m} else 0"
    if op is Opcode.LUI:
        return f"{(imm << 16) & m}"
    if op is Opcode.LI:
        return f"{imm & m}"
    if op is Opcode.MOVE:
        return a
    if op is Opcode.SLL:
        return f"({a} << {imm & 31}) & {m}"
    if op is Opcode.SRL:
        return f"{a} >> {imm & 31}"
    if op is Opcode.SRA:
        return f"((({a} ^ {h}) - {h}) >> {imm & 31}) & {m}"
    if op is Opcode.SLLV:
        return f"({a} << ({b} & 31)) & {m}"
    if op is Opcode.SRLV:
        return f"{a} >> ({b} & 31)"
    if op is Opcode.SRAV:
        return f"((({a} ^ {h}) - {h}) >> ({b} & 31)) & {m}"
    if op is Opcode.MUL:
        # (s32(a) * s32(b)) & MASK32 == (a * b) & MASK32 (mod-2**32).
        return f"({a} * {b}) & {m}"
    return None  # DIV/REM trap — they stay table calls


def branch_expr(op: Opcode, a: str, b: str, negate: bool = False) -> str:
    """Inline condition expression for ``BRANCH_FUNCS[op](a, b)`` (or its
    negation), over masked unsigned 32-bit operand expressions."""
    h = _H
    if negate:
        op = _BRANCH_NEG[op]
    if op is Opcode.BEQ:
        return f"{a} == {b}"
    if op is Opcode.BNE:
        return f"{a} != {b}"
    if op is Opcode.BLEZ:  # s32(a) <= 0
        return f"({a} == 0 or {a} >= {h})"
    if op is Opcode.BGTZ:  # s32(a) > 0
        return f"0 < {a} < {h}"
    if op is Opcode.BLTZ:  # s32(a) < 0
        return f"{a} >= {h}"
    if op is Opcode.BGEZ:  # s32(a) >= 0
        return f"{a} < {h}"
    raise ValueError(f"{op} is not a conditional branch")


#: each conditional branch's logical negation, for emitting off-trace exits
_BRANCH_NEG = {
    Opcode.BEQ: Opcode.BNE, Opcode.BNE: Opcode.BEQ,
    Opcode.BLEZ: Opcode.BGTZ, Opcode.BGTZ: Opcode.BLEZ,
    Opcode.BLTZ: Opcode.BGEZ, Opcode.BGEZ: Opcode.BLTZ,
}
