"""Shared operation semantics for all machine models.

Register values are kept as unsigned 32-bit integers (0 .. 2**32-1); signed
operations convert on the way in and out.  Divide truncates toward zero and
traps on a zero divisor (C semantics on the R2000's runtime).
"""

from __future__ import annotations

from repro.hw.exceptions import Trap, TrapKind
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode

MASK32 = 0xFFFFFFFF


def u32(x: int) -> int:
    return x & MASK32


def s32(x: int) -> int:
    x &= MASK32
    return x - 0x100000000 if x >= 0x80000000 else x


def _div(a: int, b: int, _imm: int) -> int:
    if b == 0:
        raise Trap(TrapKind.DIV_ZERO)
    q = abs(s32(a)) // abs(s32(b))
    return u32(-q if (s32(a) < 0) != (s32(b) < 0) else q)


def _rem(a: int, b: int, _imm: int) -> int:
    if b == 0:
        raise Trap(TrapKind.DIV_ZERO)
    q = abs(s32(a)) % abs(s32(b))
    return u32(-q if s32(a) < 0 else q)


#: ``op -> f(a, b, imm)`` for every non-memory, non-branch opcode.  The
#: simulators' pre-decoded fast paths look the function up once per static
#: instruction instead of walking an ``is``-chain per dynamic instruction.
ALU_FUNCS = {
    Opcode.ADD: lambda a, b, imm: (a + b) & MASK32,
    Opcode.ADDI: lambda a, b, imm: (a + imm) & MASK32,
    Opcode.SUB: lambda a, b, imm: (a - b) & MASK32,
    Opcode.AND: lambda a, b, imm: a & b,
    Opcode.ANDI: lambda a, b, imm: a & (imm & MASK32),
    Opcode.OR: lambda a, b, imm: a | b,
    Opcode.ORI: lambda a, b, imm: a | (imm & MASK32),
    Opcode.XOR: lambda a, b, imm: a ^ b,
    Opcode.XORI: lambda a, b, imm: a ^ (imm & MASK32),
    Opcode.NOR: lambda a, b, imm: ~(a | b) & MASK32,
    Opcode.SLT: lambda a, b, imm: 1 if s32(a) < s32(b) else 0,
    Opcode.SLTI: lambda a, b, imm: 1 if s32(a) < imm else 0,
    Opcode.SLTU: lambda a, b, imm: 1 if a < b else 0,
    Opcode.SLTIU: lambda a, b, imm: 1 if a < (imm & MASK32) else 0,
    Opcode.LUI: lambda a, b, imm: (imm << 16) & MASK32,
    Opcode.LI: lambda a, b, imm: imm & MASK32,
    Opcode.MOVE: lambda a, b, imm: a,
    Opcode.SLL: lambda a, b, imm: (a << (imm & 31)) & MASK32,
    Opcode.SRL: lambda a, b, imm: a >> (imm & 31),
    Opcode.SRA: lambda a, b, imm: (s32(a) >> (imm & 31)) & MASK32,
    Opcode.SLLV: lambda a, b, imm: (a << (b & 31)) & MASK32,
    Opcode.SRLV: lambda a, b, imm: a >> (b & 31),
    Opcode.SRAV: lambda a, b, imm: (s32(a) >> (b & 31)) & MASK32,
    Opcode.MUL: lambda a, b, imm: (s32(a) * s32(b)) & MASK32,
    Opcode.DIV: _div,
    Opcode.REM: _rem,
}


def execute_alu(instr: Instruction, a: int = 0, b: int = 0) -> int:
    """Compute the result of a non-memory, non-branch instruction.

    ``a``/``b`` are the source register values (unsigned 32-bit); the
    immediate is taken from the instruction.  Raises :class:`Trap` for
    divide-by-zero.
    """
    fn = ALU_FUNCS.get(instr.op)
    if fn is None:
        raise ValueError(f"execute_alu cannot evaluate {instr}")
    try:
        return fn(a, b, instr.imm or 0)
    except Trap as trap:
        trap.instr_uid = instr.uid
        raise


#: ``op -> f(a, b)`` for the conditional branches.
BRANCH_FUNCS = {
    Opcode.BEQ: lambda a, b: a == b,
    Opcode.BNE: lambda a, b: a != b,
    Opcode.BLEZ: lambda a, b: s32(a) <= 0,
    Opcode.BGTZ: lambda a, b: s32(a) > 0,
    Opcode.BLTZ: lambda a, b: s32(a) < 0,
    Opcode.BGEZ: lambda a, b: s32(a) >= 0,
}


def branch_taken(instr: Instruction, a: int = 0, b: int = 0) -> bool:
    """Evaluate a conditional branch's condition."""
    fn = BRANCH_FUNCS.get(instr.op)
    if fn is None:
        raise ValueError(f"{instr} is not a conditional branch")
    return fn(a, b)
