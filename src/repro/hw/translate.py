"""Translating simulator backend: basic blocks compiled to Python superblocks.

The interpreters in :mod:`repro.hw.functional` and
:mod:`repro.hw.superscalar` dispatch one pre-decoded tuple per dynamic
instruction.  This module removes that dispatch entirely, the way classic
binary-translation simulators (Shade, Embra) do: every decoded basic block
is compiled **once** into generated Python source — opcode semantics inlined
as expressions via the templates in :mod:`repro.hw.alu`, register reads
hoisted into locals, memory accessed through an aligned ``uint32`` view of
the backing ``bytearray`` — and hot successor blocks are chained into
*superblocks* along the statically predicted branch direction, so a loop
whose backedge follows its prediction runs entirely inside one generated
function.  Fuel, NOP and branch counters are charged once per superblock
iteration as static constants; off-trace exits re-add the unexecuted tail,
and trap sites carry literal correction tables back to the exact
per-instruction accounting of the interpreters.

On top of the functional path sits dynamic **trace-reuse memoization**
(after "Decanting the Contribution of Instruction Types and Loop Structures
in the Reuse of Traces", see PAPERS.md): a looping superblock that turns hot
records its architectural read/write set — input registers, every loaded
``(addr, size, value)``, every stored ``(addr, size, value)``, counter
deltas and its exit — and later invocations whose input-register slice and
memory read-set match replay the recorded effects instead of re-executing.
Reuse is *never* legal when the recorded run trapped, handed fuel off, or
printed; stale memory is detected by validating every recorded load against
live memory and invalidating on mismatch.

Exactness contract: every observable — PRINT stream, ``instr_count``,
``nop_count``, ``branch_count``, ``mispredict_count``, trap identity
(kind/addr/uid), fuel exhaustion and per-block stats counters — is
byte-identical to the interpreters.  ``tests/hw/test_translate.py`` pins
this on every workload; the backend hands off to the reference loop at any
block boundary where fuel could run out inside the superblock, exactly like
the PR-2 fast path does per block.

Generated artifacts are plain data (source strings + literal tables), so a
:class:`TranslationUnit` pickles inside ``CompileCache`` payloads and the
translation survives a warm-cache round trip; ``compile()`` of a source
string is memoized per process.
"""

from __future__ import annotations

import sys
import time

from repro.hw.alu import ALU_FUNCS, alu_expr, branch_expr
from repro.hw.errors import WallClockExceeded
from repro.hw.exceptions import Trap, TrapKind
from repro.isa.opcodes import Opcode

__all__ = [
    "CHAIN_CAP", "HOT_THRESHOLD", "TRACE_CAP", "DISABLE_LOOKUPS",
    "EFFECT_CAP", "TranslationUnit", "functional_unit",
    "run_functional_translated", "superscalar_unit",
    "run_superscalar_translated",
]

#: longest superblock, in chained basic blocks
CHAIN_CAP = 16
#: executions before a looping superblock arms its memo table
HOT_THRESHOLD = 16
#: memoized traces kept per superblock
TRACE_CAP = 4
#: an armed superblock that reaches this many lookups with zero hits is
#: disabled — the key never repeats, stop paying for it
DISABLE_LOOKUPS = 64
#: recorded traces longer than this many loads or stores are not inserted
#: (the recording lists also saturate at EFFECT_CAP + 1 so an unbounded
#: loop cannot grow them without bound)
EFFECT_CAP = 4096

_M32 = 0xFFFFFFFF
_MEM_BASE = 0x1000  # Memory.base (DATA_BASE); pinned by tests

# Generated functions return a 4-tuple ``(kind, a, b, fuel)``:
#   (0, idx, 0, fuel)            goto block ``idx`` in the same procedure
#   (1, idx, 0, fuel)            fuel may run out inside the superblock —
#                                resume the reference loop at block ``idx``
#   (2, target, resume, fuel)    call: JAL to procedure ``target``, resume
#                                frame is (current proc, ``resume``)
#   (3, addr, uid, fuel)         return: JR to token ``addr`` (``uid`` is
#                                the trap identity for a bad token)
#   (4, 0, 0, fuel)              halt / program end

#: generated-source string -> compiled code object, shared across sims
_CODE_CACHE: dict[str, object] = {}


def _code_for(source: str):
    code = _CODE_CACHE.get(source)
    if code is None:
        if len(_CODE_CACHE) > 128:
            _CODE_CACHE.clear()
        code = compile(source, "<repro-translate>", "exec")
        _CODE_CACHE[source] = code
    return code


class _WordView:
    """Word-indexed fallback view for big-endian hosts (or odd-sized
    memories) where ``memoryview.cast("I")`` would not be little-endian."""

    __slots__ = ("m",)

    def __init__(self, m):
        self.m = m

    def __getitem__(self, i):
        a = i << 2
        return int.from_bytes(self.m[a:a + 4], "little")

    def __setitem__(self, i, v):
        a = i << 2
        self.m[a:a + 4] = v.to_bytes(4, "little")


def _word_view(m: bytearray):
    """Aligned uint32 view over the memory bytearray.

    Generated code addresses words as ``W[addr >> 2]`` — one subscript
    instead of a slice allocation plus ``int.from_bytes``.  Word accesses
    are alignment-checked before reaching the view, so the cast view is
    exact on little-endian hosts; everywhere else the slow fallback keeps
    the same semantics.
    """
    if sys.byteorder == "little" and len(m) % 4 == 0:
        return memoryview(m).cast("I")
    return _WordView(m)


class TranslationUnit:
    """Plain-data result of translating one program (pickles in the cache).

    ``sources`` maps variant name (``plain``/``stats``/``record`` for the
    functional engine, ``sched`` for the superscalar engine) to generated
    module source; ``tables`` maps generated function name to its literal
    side tables (trap-site corrections, table-call opcode names); ``fns``
    maps procedure name to the tuple of per-block function names (``None``
    for an untranslated block).  Everything else is counters and memo
    metadata.  Runtime binding happens in ``_bind_*`` below.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self.sources: dict[str, str] = {}
        self.tables: dict[str, dict] = {}
        self.fns: dict[str, tuple] = {}
        #: flat gid -> (procedure name, block label | index) for stats
        self.block_keys: list = []
        #: procedure -> {entry block idx -> (key_regs, written_regs)}
        self.memo: dict[str, dict] = {}
        self.translated_blocks = 0
        self.superblocks_chained = 0
        #: highest register index the generated code touches — a staleness
        #: tripwire against in-place IR mutation under a cached unit
        self.max_reg = 0
        #: superscalar only: procedure -> {block idx -> ctl spec}
        self.ctl: dict[str, dict] = {}


def _rx(reg) -> int:
    return -1 if reg is None or reg.is_zero else reg.index


# =========================================================================
# Functional engine
# =========================================================================

def _build_chain(blocks, entry: int, index) -> tuple[list[int], bool]:
    """Follow predicted branch directions from ``entry`` into a superblock.

    Returns the chained block indices and whether the chain closes into a
    loop (last successor == entry).
    """
    chain = [entry]
    while len(chain) < CHAIN_CAP:
        k = chain[-1]
        term = blocks[k].terminator
        if term is None:
            succ = k + 1
            if succ >= len(blocks):
                break  # program end
        else:
            op = term.op
            if op.is_cond_branch:
                succ = index[term.target] if term.predict_taken is True \
                    else k + 1
            elif op is Opcode.J:
                succ = index[term.target]
            else:
                break  # JAL / JR / HALT end the chain
        if succ == chain[0]:
            return chain, True
        if succ in chain or succ >= len(blocks):
            break
        chain.append(succ)
    return chain, False


class _FnBuild:
    """One superblock's emission state, shared across the three variants."""

    def __init__(self, pname, proc, entry, index, mem_size, gid_of):
        self.pname = pname
        self.proc = proc
        self.entry = entry
        self.index = index
        self.mem_size = mem_size
        self.gid_of = gid_of
        self.chain, self.looped = _build_chain(proc.blocks, entry, index)
        self.seg_cost = sum(
            len(proc.blocks[k].body)
            + (0 if proc.blocks[k].terminator is None else 1)
            for k in self.chain)
        # linear-order register analysis (the superblock has one on-trace
        # path, so emission order is execution order for reads/writes)
        reads_before_write: set[int] = set()
        written: set[int] = set()
        used: set[int] = set()
        first_block_defs: set[int] = set()
        self.has_print = False
        self.total_nops = 0
        self.total_branches = 0
        for pos, k in enumerate(self.chain):
            block = proc.blocks[k]
            for instr in block.body:
                if instr.op is Opcode.NOP:
                    self.total_nops += 1
                    continue
                if instr.op is Opcode.PRINT:
                    self.has_print = True
                for s in instr.srcs:
                    i = _rx(s)
                    if i >= 0:
                        used.add(i)
                        if i not in written:
                            reads_before_write.add(i)
                d = _rx(getattr(instr, "dst", None))
                if d >= 0 and not instr.op.is_store:
                    used.add(d)
                    written.add(d)
                    if pos == 0:
                        first_block_defs.add(d)
            term = block.terminator
            if term is not None:
                if term.op.is_cond_branch:
                    self.total_branches += 1
                for s in term.srcs:
                    i = _rx(s)
                    if i >= 0:
                        used.add(i)
                        if i not in written:
                            reads_before_write.add(i)
        self.used = sorted(used)
        self.written = sorted(written)
        self.has_nops = self.total_nops > 0
        self.has_branches = self.total_branches > 0
        # memo key: registers whose entry value can influence the run.  A
        # written register not provably assigned on every exit path (i.e.
        # not defined in the first block's body) is keyed too, because the
        # recorded final value may just be its entry value written back.
        self.key_regs = tuple(sorted(
            reads_before_write | (written - first_block_defs)))
        self.memo_ok = self.looped and not self.has_print


def _flush_lines(fb: _FnBuild, fuel_adj: int = 0, np_adj: int = 0,
                 bc_adj: int = 0) -> list[str]:
    """Counter flush at an exit: re-add the unexecuted tail of the current
    iteration (the static adjustments), write locals back, publish."""
    lines = []
    if fuel_adj:
        lines.append(f"fuel += {fuel_adj}")
    if fb.has_nops and np_adj:
        lines.append(f"np -= {np_adj}")
    if fb.has_branches and bc_adj:
        lines.append(f"bc -= {bc_adj}")
    if fb.written:
        lines.append("; ".join(f"regs[{i}] = r{i}" for i in fb.written))
    if fb.has_nops:
        lines.append("res.instr_count += F0 - fuel - np")
        lines.append("res.nop_count += np")
    else:
        lines.append("res.instr_count += F0 - fuel")
    if fb.has_branches:
        lines.append("res.branch_count += bc")
    return lines


def _chain_has_sites(fb: _FnBuild) -> bool:
    for k in fb.chain:
        for instr in fb.proc.blocks[k].body:
            op = instr.op
            if op.is_load or op.is_store:
                return True
            if op in (Opcode.DIV, Opcode.REM):
                return True
            if op is Opcode.SLTI and instr.imm is not None \
                    and not -(2 ** 31) <= instr.imm < 2 ** 31:
                return True
    return False


def _emit_backedge(body: list[str], ind: str, fb: _FnBuild) -> None:
    body.append(ind + "if dl is not None and MONO() > dl:")
    for ln in _flush_lines(fb):
        body.append(ind + "    " + ln)
    body.append(ind + '    raise WCE(f"exceeded {WCL}s wall clock "')
    body.append(ind + '              f"({res.instr_count:,} instructions '
                'executed)")')
    body.append(ind + f"if fuel < {fb.seg_cost}:")
    for ln in _flush_lines(fb):
        body.append(ind + "    " + ln)
    body.append(ind + f"    return (1, {fb.entry}, 0, fuel)")
    body.append(ind + "continue")


def _emit_functional_fn(fb: _FnBuild, fname: str, stats: bool, record: bool,
                        tables_out) -> str:
    """Emit one variant of one superblock function.

    ``tables_out`` (a dict) is filled with the literal side tables on the
    first call; emission is deterministic, so every variant produces the
    same site/table layout.
    """
    proc, index, chain = fb.proc, fb.index, fb.chain
    limw = fb.mem_size - 4
    limb = fb.mem_size - 1
    seg, npt, nbt = fb.seg_cost, fb.total_nops, fb.total_branches
    sites: list[tuple[int, int, int, int]] = []  # (TA, TN, TB, TU)
    ip_lines: list[int] = []  # body indices of "_ip = k" lines
    fb_ops: list[str] = []

    def reg_expr(reg) -> str:
        i = _rx(reg)
        return f"r{i}" if i >= 0 else "0"

    body: list[str] = []
    ind = "    "
    has_sites = _chain_has_sites(fb)
    if has_sites:
        body.append(ind + "try:")
        ind += "    "
    if fb.looped:
        body.append(ind + "while True:")
        ind += "    "
    # the whole iteration's fuel/NOP/branch accounting, charged up front
    acct = [f"fuel -= {seg}"]
    if fb.has_nops:
        acct.append(f"np += {npt}")
    if fb.has_branches:
        acct.append(f"bc += {nbt}")
    body.append(ind + "; ".join(acct))

    cost_run = nop_run = nonnop_run = br_run = 0
    for pos, k in enumerate(chain):
        block = proc.blocks[k]
        term = block.terminator
        cost = len(block.body) + (0 if term is None else 1)
        nops = sum(1 for i in block.body if i.op is Opcode.NOP)
        if stats:
            body.append(ind + f"BE[{fb.gid_of[(fb.pname, block.label)]}] += 1")
        cost_run += cost
        np_prev = nop_run
        nop_run += nops
        ln = 0   # non-NOP body instructions emitted so far in this block
        lnp = 0  # NOPs seen so far in this block

        def site(instr) -> None:
            # fuel/np/bc were charged for the whole iteration up front;
            # each trap site stores the delta back to the architectural
            # truth (``ln`` already counts the trapping instruction).
            sites.append((nonnop_run + ln - (seg - npt),
                          np_prev + lnp - npt,
                          nbt - br_run,
                          instr.origin or instr.uid))
            ip_lines.append(len(body))
            body.append(ind + f"_ip = {len(sites) - 1}")

        for instr in block.body:
            op = instr.op
            if op is Opcode.NOP:
                lnp += 1
                continue
            ln += 1
            if op is Opcode.PRINT:
                a = reg_expr(instr.srcs[0]) if instr.srcs else "0"
                if a == "0":
                    body.append(ind + "out.append(0)")
                else:
                    body.append(
                        ind + f"out.append({a} - 4294967296 "
                        f"if {a} >= 2147483648 else {a})")
                continue
            if op.is_load:
                d = _rx(instr.dst)
                base = reg_expr(instr.srcs[0])
                off = instr.imm or 0
                site(instr)
                if off:
                    body.append(ind + f"_a = ({base} + {off}) & {_M32}")
                else:
                    body.append(ind + f"_a = {base}")
                if op is Opcode.LW:
                    body.append(ind + f"if _a < {_MEM_BASE} or _a > {limw} "
                                "or _a & 3:")
                    body.append(ind + "    MC(_a, 4)")
                    if d >= 0:
                        body.append(ind + f"r{d} = W[_a >> 2]")
                        if record:
                            body.append(
                                ind + f"if len(LL) <= {EFFECT_CAP}: "
                                f"LL.append((_a, 4, r{d}))")
                else:
                    body.append(ind + f"if _a < {_MEM_BASE} or _a > {limb}:")
                    body.append(ind + "    MC(_a, 1)")
                    if d >= 0:
                        if op is Opcode.LB or record:
                            body.append(ind + "_v = M[_a]")
                            if record:
                                body.append(
                                    ind + f"if len(LL) <= {EFFECT_CAP}: "
                                    "LL.append((_a, 1, _v))")
                            if op is Opcode.LB:
                                body.append(
                                    ind + f"r{d} = _v + 4294967040 "
                                    "if _v >= 128 else _v")
                            else:
                                body.append(ind + f"r{d} = _v")
                        else:
                            body.append(ind + f"r{d} = M[_a]")
                continue
            if op.is_store:
                v = reg_expr(instr.srcs[0])
                base = reg_expr(instr.srcs[1])
                off = instr.imm or 0
                site(instr)
                if off:
                    body.append(ind + f"_a = ({base} + {off}) & {_M32}")
                else:
                    body.append(ind + f"_a = {base}")
                if op is Opcode.SW:
                    body.append(ind + f"if _a < {_MEM_BASE} or _a > {limw} "
                                "or _a & 3:")
                    body.append(ind + "    MC(_a, 4)")
                    body.append(ind + f"W[_a >> 2] = {v}")
                    if record:
                        body.append(ind + f"if len(LS) <= {EFFECT_CAP}: "
                                    f"LS.append((_a, 4, {v}))")
                else:
                    body.append(ind + f"if _a < {_MEM_BASE} or _a > {limb}:")
                    body.append(ind + "    MC(_a, 1)")
                    byte = f"{v} & 255" if v != "0" else "0"
                    if record:
                        body.append(ind + f"_d = {byte}")
                        body.append(ind + "M[_a] = _d")
                        body.append(ind + f"if len(LS) <= {EFFECT_CAP}: "
                                    "LS.append((_a, 1, _d))")
                    else:
                        body.append(ind + f"M[_a] = {byte}")
                continue
            if ALU_FUNCS.get(op) is None:
                raise ValueError(f"cannot translate {instr}")
            d = _rx(instr.dst)
            a = reg_expr(instr.srcs[0]) if instr.srcs else "0"
            b = reg_expr(instr.srcs[1]) if len(instr.srcs) > 1 else "0"
            imm = instr.imm or 0
            expr = alu_expr(op, a, b, imm)
            if expr is not None:
                if d >= 0:
                    body.append(ind + f"r{d} = {expr}")
                # pure expression with a zero destination: no effect at all
            else:
                site(instr)
                j = len(fb_ops)
                fb_ops.append(op.name)
                tgt = f"r{d} = " if d >= 0 else ""
                body.append(ind + f"{tgt}FB[{j}]({a}, {b}, {imm})")

        # --- terminator / chain continuation -----------------------------
        last = pos == len(chain) - 1

        def emit_exit(lines_ind, kind, a="0", b="0"):
            for fl in _flush_lines(fb, seg - cost_run, npt - nop_run,
                                   nbt - br_run):
                body.append(lines_ind + fl)
            body.append(lines_ind + f"return ({kind}, {a}, {b}, fuel)")

        if term is None:
            nonnop_run += cost - nops
            succ = k + 1
            if not last:
                continue  # falls into the next emitted block
            if fb.looped:
                _emit_backedge(body, ind, fb)
            elif succ >= len(proc.blocks):
                emit_exit(ind, 4)
            else:
                emit_exit(ind, 0, str(succ))
            continue

        op = term.op
        if op.is_cond_branch:
            br_run += 1
            nonnop_run += cost - nops
            a = reg_expr(term.srcs[0]) if term.srcs else "0"
            b = reg_expr(term.srcs[1]) if len(term.srcs) > 1 else "0"
            on_taken = term.predict_taken is True
            tidx = index[term.target]
            off_idx = k + 1 if on_taken else tidx
            # off-trace test: negate when the trace follows the taken edge
            body.append(
                ind + f"if {branch_expr(op, a, b, negate=on_taken)}:")
            if term.predict_taken is not None:
                body.append(ind + "    res.mispredict_count += 1")
            emit_exit(ind + "    ", 0, str(off_idx))
            if last:
                on_idx = tidx if on_taken else k + 1
                if fb.looped:
                    _emit_backedge(body, ind, fb)
                else:
                    emit_exit(ind, 0, str(on_idx))
            continue
        nonnop_run += cost - nops
        if op is Opcode.J:
            if not last:
                continue  # target is the next emitted block
            if fb.looped:
                _emit_backedge(body, ind, fb)
            else:
                emit_exit(ind, 0, str(index[term.target]))
            continue
        if op is Opcode.JAL:
            emit_exit(ind, 2, f"{term.target!r}", str(k + 1))
            continue
        if op is Opcode.JR:
            uid = term.origin or term.uid
            emit_exit(ind, 3, reg_expr(term.srcs[0]), str(uid))
            continue
        if op is Opcode.HALT:
            emit_exit(ind, 4)
            continue
        raise ValueError(f"cannot translate terminator {term}")

    # ---- except handler ----------------------------------------------------
    tabs: dict[str, tuple] = {}
    if has_sites:

        def term_expr(tag: str, vals: list[int]):
            if len(set(vals)) == 1:
                return vals[0]
            tabs[tag] = tuple(vals)
            return f"{tag}[_ip]"

        ta = term_expr("TA", [s[0] for s in sites])
        h = "    "
        body.append(h + "except TRAP as _t:")
        h += "    "
        if fb.written:
            body.append(h + "; ".join(
                f"regs[{i}] = r{i}" for i in fb.written))
        base_ic = "res.instr_count += F0 - fuel - np" if fb.has_nops \
            else "res.instr_count += F0 - fuel"
        body.append(h + (base_ic if ta == 0 else f"{base_ic} + ({ta})"))
        if fb.has_nops:
            tn = term_expr("TN", [s[1] for s in sites])
            body.append(h + ("res.nop_count += np" if tn == 0
                             else f"res.nop_count += np + ({tn})"))
        if fb.has_branches:
            tb = term_expr("TB", [s[2] for s in sites])
            body.append(h + ("res.branch_count += bc" if tb == 0
                             else f"res.branch_count += bc - ({tb})"))
        tu = term_expr("TU", [s[3] for s in sites])
        body.append(h + f"_t.instr_uid = {tu}")
        body.append(h + "res.trap = _t")
        body.append(h + "raise")
        if not tabs:
            # every correction folded to a constant: drop site tracking
            for i in reversed(ip_lines):
                body.pop(i)

    # ---- header ------------------------------------------------------------
    params = ["fuel", "dl", "regs=REGS", "M=M", "W=W", "MC=MC",
              "out=OUT", "res=RES", "MONO=MONO"]
    if stats:
        params.append("BE=BE")
    if record:
        params.append("LL=LL")
        params.append("LS=LS")
    if fb_ops:
        params.append(f"FB=FB_{fname}")
    for tag in ("TA", "TN", "TB", "TU"):
        if tag in tabs:
            params.append(f"{tag}={tag}_{fname}")
    head = [f"def {fname}({', '.join(params)}):"]
    head.append("    if dl is not None and MONO() > dl:")
    head.append('        raise WCE(f"exceeded {WCL}s wall clock "')
    head.append('                  f"({res.instr_count:,} instructions '
                'executed)")')
    head.append(f"    if fuel < {seg}:")
    head.append(f"        return (1, {fb.entry}, 0, fuel)")
    if fb.used:
        head.append("    " + "; ".join(f"r{i} = regs[{i}]" for i in fb.used))
    head.append("    F0 = fuel")
    if fb.has_nops:
        head.append("    np = 0")
    if fb.has_branches:
        head.append("    bc = 0")

    if tables_out is not None and (fb_ops or tabs):
        tab = dict(tabs)
        if fb_ops:
            tab["FB"] = tuple(fb_ops)
        tables_out[fname] = tab
    return "\n".join(head + body)


def build_functional_unit(program) -> TranslationUnit:
    """Translate every basic block of ``program`` into superblock sources."""
    unit = TranslationUnit("functional")
    gid_of = {}
    for pname, proc in program.procedures.items():
        for b in proc.blocks:
            gid_of[(pname, b.label)] = len(unit.block_keys)
            unit.block_keys.append((pname, b.label))
    parts = {"plain": [], "stats": [], "record": []}
    for pord, (pname, proc) in enumerate(program.procedures.items()):
        index = {b.label: i for i, b in enumerate(proc.blocks)}
        names = []
        pmemo = {}
        for k in range(len(proc.blocks)):
            fname = f"S{pord}_{k}"
            fb = _FnBuild(pname, proc, k, index, program.mem_size, gid_of)
            parts["plain"].append(
                _emit_functional_fn(fb, fname, False, False, unit.tables))
            parts["stats"].append(
                _emit_functional_fn(fb, fname, True, False, None))
            parts["record"].append(
                _emit_functional_fn(fb, fname, True, True, None))
            names.append(fname)
            unit.translated_blocks += 1
            if fb.used and fb.used[-1] > unit.max_reg:
                unit.max_reg = fb.used[-1]
            if len(fb.chain) > 1:
                unit.superblocks_chained += 1
            if fb.memo_ok:
                pmemo[k] = (fb.key_regs, tuple(fb.written))
        unit.fns[pname] = tuple(names)
        if pmemo:
            unit.memo[pname] = pmemo
    unit.sources = {v: "\n\n".join(lines) for v, lines in parts.items()}
    return unit


def functional_unit(program, nregs=None):
    """Get-or-build the cached translation for ``program``.

    A build failure (undecodable instruction) marks the program
    untranslatable — callers fall back to the interpreter.  The unit rides
    along in ``CompileCache`` payloads because it is stored as a plain
    attribute on the (plain-dataclass) program.

    IR-mutating passes call ``Program.invalidate_caches`` to drop a stale
    unit; ``nregs`` (the simulator's register-file size) is a backstop that
    catches an externally mutated program whose cached unit now references
    out-of-range registers.
    """
    for _ in range(2):
        unit = getattr(program, "_translation_unit", None)
        if unit is None:
            try:
                unit = build_functional_unit(program)
            except Exception:
                unit = False
            program._translation_unit = unit
        if isinstance(unit, TranslationUnit) and nregs is not None \
                and unit.max_reg >= nregs:
            program._translation_unit = None
            continue
        break
    return unit if isinstance(unit, TranslationUnit) else None


def _bind_functional(unit: TranslationUnit, sim, variant: str, be=None):
    """Exec one generated-source variant against a live simulator's state.

    Returns the namespace; generated functions close over the register
    list, memory views and result object through default arguments.
    """
    ns = {
        "REGS": sim.regs, "M": sim.mem._mem, "W": _word_view(sim.mem._mem),
        "MC": sim.mem.check, "OUT": sim.result.output, "RES": sim.result,
        "MONO": time.monotonic, "WCE": WallClockExceeded, "TRAP": Trap,
        "WCL": sim.wall_clock_limit,
    }
    for fname, tab in unit.tables.items():
        for tag, vals in tab.items():
            if tag == "FB":
                ns["FB_" + fname] = tuple(
                    ALU_FUNCS[Opcode[n]] for n in vals)
            else:
                ns[tag + "_" + fname] = vals
    if variant != "plain":
        ns["BE"] = be if be is not None else [0] * len(unit.block_keys)
    if variant == "record":
        ns["LL"] = []
        ns["LS"] = []
    exec(_code_for(unit.sources[variant]), ns)
    return ns


def run_functional_translated(sim, entry_name: str, fuel: int, deadline):
    """Drive a FunctionalSim through its translated superblocks.

    Mirrors ``FunctionalSim._run_fast`` observables exactly; adds the
    trace-reuse memo layer for looping superblocks.
    """
    from repro.hw.functional import EXIT_TOKEN, _RA_INDEX, _TOKEN_STRIDE

    unit = functional_unit(sim.program)
    stats_on = sim._stats_hot is not None
    ns = _bind_functional(unit, sim, "stats" if stats_on else "plain")
    fnmap = {p: tuple(ns[n] for n in names)
             for p, names in unit.fns.items()}
    BE = ns.get("BE")
    result = sim.result
    regs = sim.regs
    tokens = sim._tokens
    M = sim.mem._mem
    WV = _word_view(M)

    # per-run memo state: [phase, execs, lookups, hits, {key: trace},
    #                      key_regs, written_regs]
    mstates = {p: [None] * len(names) for p, names in unit.fns.items()}
    for p, pmemo in unit.memo.items():
        for idx2, (kregs, wregs) in pmemo.items():
            mstates[p][idx2] = [0, 0, 0, 0, {}, kregs, wregs]
    hits = misses = invals = 0
    rb = None  # lazily bound record-variant namespace

    def _record(pname2, idx2, mst2, key, f, dl):
        """Execute via the recording variant and memoize the trace."""
        nonlocal rb
        if rb is None:
            rns = _bind_functional(unit, sim, "record", be=BE)
            rb = ({p: tuple(rns[n] for n in names)
                   for p, names in unit.fns.items()},
                  rns["LL"], rns["LS"])
        rfns, LL, LS = rb
        LL.clear()
        LS.clear()
        i0, n0 = result.instr_count, result.nop_count
        b0, m0 = result.branch_count, result.mispredict_count
        pre = BE[:] if BE is not None else None
        f0 = f
        k, a, b, f = rfns[pname2][idx2](f, dl)
        # a fuel handoff exit is fuel-dependent, not input-dependent, and
        # saturated effect logs mean the trace was truncated: don't insert
        if k != 1 and len(LL) <= EFFECT_CAP and len(LS) <= EFFECT_CAP \
                and len(mst2[4]) < TRACE_CAP:
            bed = ()
            if pre is not None:
                bed = tuple((g, BE[g] - v) for g, v in enumerate(pre)
                            if BE[g] != v)
            mst2[4][key] = (
                tuple(LL), tuple(LS),
                tuple(regs[i] for i in mst2[6]),
                result.instr_count - i0, result.nop_count - n0,
                result.branch_count - b0, result.mispredict_count - m0,
                f0 - f, (k, a, b), bed)
        return k, a, b, f

    proc = entry_name
    pf = fnmap[proc]
    ml = mstates[proc]
    idx = 0
    try:
        while True:
            mst = ml[idx]
            if mst is None:
                k, a, b, fuel = pf[idx](fuel, deadline)
            else:
                ph = mst[0]
                if ph == 1:
                    key = tuple(regs[i] for i in mst[5])
                    entries = mst[4]
                    ent = entries.get(key)
                    mst[2] += 1
                    if ent is not None:
                        ok = True
                        for ea, es, ev in ent[0]:
                            if (M[ea] if es == 1 else WV[ea >> 2]) != ev:
                                ok = False
                                break
                        if ok and fuel >= ent[7]:
                            wregs = mst[6]
                            wvals = ent[2]
                            for i2 in range(len(wregs)):
                                regs[wregs[i2]] = wvals[i2]
                            for ea, es, ep in ent[1]:
                                if es == 4:
                                    WV[ea >> 2] = ep
                                else:
                                    M[ea] = ep
                            result.instr_count += ent[3]
                            result.nop_count += ent[4]
                            result.branch_count += ent[5]
                            result.mispredict_count += ent[6]
                            fuel -= ent[7]
                            if BE is not None:
                                for g, d2 in ent[9]:
                                    BE[g] += d2
                            mst[3] += 1
                            hits += 1
                            k, a, b = ent[8]
                        elif not ok:
                            del entries[key]
                            invals += 1
                            misses += 1
                            k, a, b, fuel = _record(
                                proc, idx, mst, key, fuel, deadline)
                        else:
                            # not enough fuel to legally replay: execute,
                            # letting the handoff logic fire exactly
                            k, a, b, fuel = pf[idx](fuel, deadline)
                    else:
                        misses += 1
                        if len(entries) < TRACE_CAP:
                            k, a, b, fuel = _record(
                                proc, idx, mst, key, fuel, deadline)
                        else:
                            k, a, b, fuel = pf[idx](fuel, deadline)
                        if mst[2] >= DISABLE_LOOKUPS and mst[3] == 0:
                            mst[0] = 2
                            entries.clear()
                elif ph == 0:
                    mst[1] += 1
                    if mst[1] >= HOT_THRESHOLD:
                        mst[0] = 1
                    k, a, b, fuel = pf[idx](fuel, deadline)
                else:  # disabled
                    k, a, b, fuel = pf[idx](fuel, deadline)
            if k == 0:
                idx = a
                continue
            if k == 2:
                token = sim._next_token
                sim._next_token += _TOKEN_STRIDE
                tokens[token] = (proc, b)
                regs[_RA_INDEX] = token
                proc = a
                pf = fnmap[a]
                ml = mstates[a]
                idx = 0
                continue
            if k == 3:
                if a == EXIT_TOKEN:
                    return result
                frame = tokens.get(a)
                if frame is None:
                    trap = Trap(TrapKind.ADDRESS_ERROR, addr=a, instr_uid=b)
                    result.trap = trap
                    raise trap
                proc, idx = frame
                pf = fnmap[proc]
                ml = mstates[proc]
                continue
            if k == 1:
                return sim._interp(proc, a, fuel, deadline)
            return result  # k == 4: halt / program end
    finally:
        if BE is not None:
            execs = sim._stats_hot.block_execs
            bkeys = unit.block_keys
            for g, n in enumerate(BE):
                if n:
                    kk = bkeys[g]
                    execs[kk] = execs.get(kk, 0) + n
        sim.translate_counters = {
            "translated_blocks": unit.translated_blocks,
            "superblocks_chained": unit.superblocks_chained,
            "trace_hits": hits,
            "trace_misses": misses,
            "trace_invalidations": invals,
        }


# =========================================================================
# Superscalar engine
# =========================================================================
#
# The scheduled machine is translated at basic-block granularity: a block
# whose every issue slot is sequential (boost level 0) compiles to one
# generated function that unrolls the scoreboard interlock, the
# read-before-write issue phases and the opcode semantics of its cycle
# rows, then publishes the terminator outcome through ``sim._ctl`` exactly
# like ``_resolve_terminator`` does.  Block-end boosting machinery —
# shadow commit/squash, the exception shift buffer, recovery vectoring —
# stays in ``SuperscalarSim._block_end``, which the driver reuses
# verbatim, so boosted state flowing *across* a translated block behaves
# identically.  Blocks containing boosted slots fall back to the decoded
# row interpreter (``_run_sched_rows`` below, the same inner loop as
# ``_run_fast``).

def _sched_eligible(block) -> bool:
    """A scheduled block translates when every slot is sequential and
    decodable; boosted slots need the shadow machinery per instruction."""
    for row in block.cycles:
        for instr in row:
            if instr is None:
                continue
            if instr.boost != 0:
                return False
            op = instr.op
            if op is Opcode.NOP or op is Opcode.PRINT or op.is_load \
                    or op.is_store or instr.is_terminator:
                continue
            if ALU_FUNCS.get(op) is None:
                return False
    return True


def _emit_superscalar_fn(proc, k, mem_size, fname, tables_out) -> str:
    """Emit the generated function for one all-sequential scheduled block."""
    block = proc.blocks[k]
    limw = mem_size - 4
    limb = mem_size - 1
    sites: list[tuple[int, int, int]] = []  # (TA, TN, TU)
    ip_lines: list[int] = []
    fb_ops: list[str] = []
    body: list[str] = []
    ind = "        "
    nn = 0   # non-NOP slots retired so far (slot order == retire order)
    nnop = 0
    total = sum(1 for row in block.cycles for i in row
                if i is not None and i.op is not Opcode.NOP)
    nops = sum(1 for row in block.cycles for i in row
               if i is not None and i.op is Opcode.NOP)
    ctl_kind = None

    def texpr(reg) -> str:
        i = _rx(reg)
        return f"_t{i}" if i >= 0 else "0"

    def site(instr) -> None:
        sites.append((nn, nnop, instr.origin or instr.uid))
        ip_lines.append(len(body))
        body.append(ind + f"_ip = {len(sites) - 1}")

    for row in block.cycles:
        entries = [i for i in row if i is not None]
        watch = sorted({_rx(s) for i in entries for s in i.srcs
                        if _rx(s) >= 0})
        # scoreboard interlock: the whole issue packet waits
        for i in watch:
            body.append(ind + f"_r = RG({i}, 0)")
            body.append(ind + "if _r > now: now = _r")
        # phase 1: all operands read before any result is written
        if watch:
            body.append(ind + "; ".join(
                f"_t{i} = regs[{i}]" for i in watch))
        # phase 2: execute in slot order
        for instr in entries:
            op = instr.op
            if op is Opcode.NOP:
                nnop += 1
                continue
            nn += 1
            if instr.is_terminator:
                if op.is_cond_branch:
                    a = texpr(instr.srcs[0]) if instr.srcs else "0"
                    b = texpr(instr.srcs[1]) if len(instr.srcs) > 1 else "0"
                    body.append(
                        ind + f"SIM._ctl = CT if "
                        f"{branch_expr(op, a, b)} else CF")
                    ctl_kind = "cond"
                elif op is Opcode.J:
                    body.append(ind + "SIM._ctl = CJ")
                    ctl_kind = "jump"
                elif op is Opcode.JAL:
                    body.append(ind + "_k = SIM._next_token")
                    body.append(ind + "SIM._next_token += 16")
                    body.append(ind + "SIM._tokens[_k] = FR")
                    body.append(ind + "regs[31] = _k")
                    body.append(ind + "RD[31] = now + 1")
                    body.append(ind + "SIM._ctl = CA")
                    ctl_kind = "call"
                elif op is Opcode.JR:
                    body.append(
                        ind + f'SIM._ctl = ("return", '
                        f"{texpr(instr.srcs[0]) if instr.srcs else '0'})")
                    ctl_kind = "return"
                elif op is Opcode.HALT:
                    body.append(ind + "SIM._ctl = CH")
                    ctl_kind = "halt"
                else:
                    raise ValueError(f"cannot translate terminator {instr}")
                continue
            if op is Opcode.PRINT:
                a = texpr(instr.srcs[0]) if instr.srcs else "0"
                if a == "0":
                    body.append(ind + "out.append(0)")
                else:
                    body.append(
                        ind + f"out.append({a} - 4294967296 "
                        f"if {a} >= 2147483648 else {a})")
                continue
            if op.is_load:
                d = _rx(instr.dst)
                base = texpr(instr.srcs[0])
                off = instr.imm or 0
                site(instr)
                if off:
                    body.append(ind + f"_a = ({base} + {off}) & {_M32}")
                else:
                    body.append(ind + f"_a = {base}")
                if op is Opcode.LW:
                    body.append(ind + f"if _a < {_MEM_BASE} or _a > {limw} "
                                "or _a & 3:")
                    body.append(ind + "    MC(_a, 4)")
                    if d >= 0:
                        body.append(ind + f"regs[{d}] = W[_a >> 2]; "
                                    f"RD[{d}] = now + 2")
                else:
                    body.append(ind + f"if _a < {_MEM_BASE} or _a > {limb}:")
                    body.append(ind + "    MC(_a, 1)")
                    if d >= 0:
                        if op is Opcode.LB:
                            body.append(ind + "_v = M[_a]")
                            body.append(
                                ind + f"regs[{d}] = _v + 4294967040 "
                                f"if _v >= 128 else _v; RD[{d}] = now + 2")
                        else:
                            body.append(ind + f"regs[{d}] = M[_a]; "
                                        f"RD[{d}] = now + 2")
                continue
            if op.is_store:
                v = texpr(instr.srcs[0])
                base = texpr(instr.srcs[1])
                off = instr.imm or 0
                site(instr)
                if off:
                    body.append(ind + f"_a = ({base} + {off}) & {_M32}")
                else:
                    body.append(ind + f"_a = {base}")
                if op is Opcode.SW:
                    body.append(ind + f"if _a < {_MEM_BASE} or _a > {limw} "
                                "or _a & 3:")
                    body.append(ind + "    MC(_a, 4)")
                    body.append(ind + f"W[_a >> 2] = {v}")
                else:
                    body.append(ind + f"if _a < {_MEM_BASE} or _a > {limb}:")
                    body.append(ind + "    MC(_a, 1)")
                    byte = f"{v} & 255" if v != "0" else "0"
                    body.append(ind + f"M[_a] = {byte}")
                continue
            d = _rx(instr.dst)
            a = texpr(instr.srcs[0]) if instr.srcs else "0"
            b = texpr(instr.srcs[1]) if len(instr.srcs) > 1 else "0"
            imm = instr.imm or 0
            expr = alu_expr(op, a, b, imm)
            if expr is not None:
                if d >= 0:
                    body.append(ind + f"regs[{d}] = {expr}; "
                                f"RD[{d}] = now + {op.latency}")
            else:
                site(instr)
                j = len(fb_ops)
                fb_ops.append(op.name)
                if d >= 0:
                    body.append(ind + f"regs[{d}] = FB[{j}]({a}, {b}, "
                                f"{imm}); RD[{d}] = now + {op.latency}")
                else:
                    body.append(ind + f"FB[{j}]({a}, {b}, {imm})")
        body.append(ind + "now += 1")

    tabs: dict[str, tuple] = {}
    tail: list[str] = []
    if sites:

        def term_expr(tag: str, vals: list[int]):
            if len(set(vals)) == 1:
                return vals[0]
            tabs[tag] = tuple(vals)
            return f"{tag}[_ip]"

        ta = term_expr("TA", [s[0] for s in sites])
        tail.append("    except TRAP as _t:")
        tail.append("        SIM.now = now")
        if ta != 0:
            tail.append(f"        res.instr_count += {ta}")
        tn = term_expr("TN", [s[1] for s in sites])
        if tn != 0:
            tail.append(f"        res.nop_count += {tn}")
        tu = term_expr("TU", [s[2] for s in sites])
        tail.append(f"        _t.instr_uid = {tu}")
        tail.append("        res.trap = _t")
        tail.append("        raise")
        if not tabs:
            for i in reversed(ip_lines):
                body.pop(i)
        body = ["    try:"] + body + tail
    else:
        body = [ln[4:] for ln in body]
    if total:
        body.append(f"    res.instr_count += {total}")
    if nops:
        body.append(f"    res.nop_count += {nops}")
    body.append("    return now")

    params = ["now", "regs=REGS", "RD=RD", "RG=RG", "M=M", "W=W", "MC=MC",
              "out=OUT", "res=RES", "SIM=SIM"]
    if ctl_kind == "cond":
        params += [f"CT=CT_{fname}", f"CF=CF_{fname}"]
    elif ctl_kind == "jump":
        params.append(f"CJ=CJ_{fname}")
    elif ctl_kind == "call":
        params += [f"FR=FR_{fname}", f"CA=CA_{fname}"]
    elif ctl_kind == "halt":
        params.append(f"CH=CH_{fname}")
    if fb_ops:
        params.append(f"FB=FB_{fname}")
    for tag in ("TA", "TN", "TU"):
        if tag in tabs:
            params.append(f"{tag}={tag}_{fname}")
    if tables_out is not None and (fb_ops or tabs):
        tab = dict(tabs)
        if fb_ops:
            tab["FB"] = tuple(fb_ops)
        tables_out[fname] = tab
    return "\n".join([f"def {fname}({', '.join(params)}):"] + body)


def build_superscalar_unit(sched) -> TranslationUnit:
    unit = TranslationUnit("superscalar")
    parts = []
    for pord, (pname, proc) in enumerate(sched.procedures.items()):
        names = []
        pctl = {}
        for k, block in enumerate(proc.blocks):
            if not _sched_eligible(block):
                names.append(None)
                continue
            fname = f"B{pord}_{k}"
            parts.append(_emit_superscalar_fn(
                proc, k, sched.program.mem_size, fname, unit.tables))
            term = next((i for row in block.cycles for i in row
                         if i is not None and i.is_terminator), None)
            pctl[k] = None if term is None else term.op.name
            names.append(fname)
            unit.translated_blocks += 1
        unit.fns[pname] = tuple(names)
        unit.ctl[pname] = pctl
    unit.sources = {"sched": "\n\n".join(parts)}
    return unit


def superscalar_unit(sched):
    """Get-or-build the cached translation for a scheduled program."""
    unit = getattr(sched, "_translation_unit", None)
    if unit is None:
        try:
            unit = build_superscalar_unit(sched)
        except Exception:
            unit = False
        sched._translation_unit = unit
    return unit if isinstance(unit, TranslationUnit) else None


def _bind_superscalar(unit: TranslationUnit, sim):
    ns = {
        "REGS": sim.regs, "RD": sim._ready, "RG": sim._ready.get,
        "M": sim.mem._mem, "W": _word_view(sim.mem._mem),
        "MC": sim.mem.check, "OUT": sim.result.output, "RES": sim.result,
        "SIM": sim, "TRAP": Trap,
    }
    for fname, tab in unit.tables.items():
        for tag, vals in tab.items():
            if tag == "FB":
                ns["FB_" + fname] = tuple(
                    ALU_FUNCS[Opcode[n]] for n in vals)
            else:
                ns[tag + "_" + fname] = vals
    # terminator outcome tuples, prebuilt so generated code publishes one
    # constant through sim._ctl instead of building a tuple per block
    for pname, pctl in unit.ctl.items():
        proc = sim.sched.procedures[pname]
        names = unit.fns[pname]
        for k, opname in pctl.items():
            fname = names[k]
            if opname is None:
                continue
            term = next(i for row in proc.blocks[k].cycles for i in row
                        if i is not None and i.is_terminator)
            if opname in ("BEQ", "BNE", "BLEZ", "BGTZ", "BLTZ", "BGEZ"):
                ns["CT_" + fname] = ("cond", term, True)
                ns["CF_" + fname] = ("cond", term, False)
            elif opname == "J":
                ns["CJ_" + fname] = ("jump", term.target)
            elif opname == "JAL":
                ns["FR_" + fname] = (proc, k + 1)
                ns["CA_" + fname] = ("call", term.target)
            elif opname == "HALT":
                ns["CH_" + fname] = ("halt",)
    exec(_code_for(unit.sources["sched"]), ns)
    return ns


def _run_sched_rows(sim, rows, now: int) -> int:
    """Decoded-row fallback for blocks with boosted slots: the same inner
    loop as ``SuperscalarSim._run_fast`` for one block."""
    regs = sim.regs
    ready = sim._ready
    ready_get = ready.get
    shadow_read = sim.shadow.read
    shadow_write = sim.shadow.write
    storebuf = sim.storebuf
    mem = sim.mem
    mem_check = mem.check
    result = sim.result
    output = result.output
    st = sim._stats_hot
    for entries, watch in rows:
        for idx in watch:
            r = ready_get(idx, 0)
            if r > now:
                now = r
        values = []
        for entry in entries:
            boost = entry[2]
            if boost:
                vals = []
                for idx in entry[3]:
                    if idx < 0:
                        vals.append(0)
                    else:
                        hit = shadow_read(idx, boost)
                        vals.append(regs[idx] if hit is None else hit)
                values.append(tuple(vals))
            else:
                values.append(tuple(0 if idx < 0 else regs[idx]
                                    for idx in entry[3]))
        for entry, vals in zip(entries, values):
            tag = entry[0]
            if tag == 5:  # _S_NOP
                result.nop_count += 1
                continue
            result.instr_count += 1
            instr = entry[1]
            boost = entry[2]
            if boost:
                sim.boosted_executed += 1
                if st is not None:
                    st.note_boosted(boost)
            if tag == 4:  # _S_TERM
                sim.now = now
                sim._resolve_terminator(instr, vals)
                continue
            if tag == 3:  # _S_PRINT
                v = vals[0] & 0xFFFFFFFF
                output.append(v - 0x100000000 if v >= 0x80000000 else v)
                continue
            if tag == 0:  # _S_ALU
                _, _, _, _, dst, lat, imm, fn = entry
                try:
                    value = fn(vals[0] if vals else 0,
                               vals[1] if len(vals) > 1 else 0, imm)
                except Trap as trap:
                    fix = sim._trap(trap, instr)
                    if fix is None:
                        continue
                    value = fix
                if dst >= 0:
                    if boost:
                        shadow_write(dst, boost, value & 0xFFFFFFFF)
                    else:
                        regs[dst] = value & 0xFFFFFFFF
                    ready[dst] = now + lat
            elif tag == 1:  # _S_LOAD
                _, _, _, _, dst, lat, off, size, signed = entry
                addr = (vals[0] + off) & 0xFFFFFFFF
                try:
                    mem_check(addr, size)
                except Trap as trap:
                    fix = sim._trap(trap, instr)
                    if fix is None:
                        continue
                    value = fix
                else:
                    if storebuf is not None:
                        raw = storebuf.load(mem, addr, size, boost)
                    else:
                        raw = mem.read_bytes(addr, size)
                    value = int.from_bytes(raw, "little")
                    if signed and value >= 0x80:
                        value -= 0x100
                if dst >= 0:
                    if boost:
                        shadow_write(dst, boost, value & 0xFFFFFFFF)
                    else:
                        regs[dst] = value & 0xFFFFFFFF
                    ready[dst] = now + lat
            else:  # _S_STORE
                _, _, _, _, off, size = entry
                value, base = vals
                addr = (base + off) & 0xFFFFFFFF
                try:
                    mem_check(addr, size)
                except Trap as trap:
                    sim._trap(trap, instr)
                    continue
                if boost:
                    data = (value & 0xFFFFFFFF).to_bytes(4, "little")[:size]
                    storebuf.store(boost, addr, data)
                elif size == 4:
                    mem.store_word(addr, value)
                else:
                    mem.store_byte(addr, value)
        now += 1
    return now


def run_superscalar_translated(sim, entry_name):
    """Drive a SuperscalarSim through translated blocks, falling back to
    the decoded row interpreter for blocks with boosted slots.  Block-end
    commit/squash/recovery is ``sim._block_end``, shared with the
    interpreters."""
    from repro.hw.errors import CycleLimitExceeded

    unit = superscalar_unit(sim.sched)
    ns = _bind_superscalar(unit, sim)
    fnmap = {p: tuple(ns[n] if n else None for n in names)
             for p, names in unit.fns.items()}
    if sim._decoded is None:
        sim._decoded = sim._decode()
    decoded = sim._decoded
    proc = sim.sched.proc(entry_name or sim.program.entry)
    tf = fnmap[proc.name]
    blocks = decoded[proc.name]
    block_idx = 0
    deadline = (time.monotonic() + sim.wall_clock_limit
                if sim.wall_clock_limit is not None else None)
    monotonic = time.monotonic
    max_cycles = sim.max_cycles
    result = sim.result
    st = sim._stats_hot
    execs = st.block_execs if st is not None else None
    now = sim.now
    try:
        while True:
            if now > max_cycles:
                sim.now = now
                raise CycleLimitExceeded(f"exceeded {max_cycles} cycles")
            if deadline is not None and monotonic() > deadline:
                sim.now = now
                raise WallClockExceeded(
                    f"exceeded {sim.wall_clock_limit}s wall clock "
                    f"({now:,} cycles simulated)")
            sim._ctl = None
            sim._cur = (proc, block_idx)
            if execs is not None:
                k = (proc.name, block_idx)
                execs[k] = execs.get(k, 0) + 1
            f = tf[block_idx]
            if f is not None:
                now = f(now)
            else:
                now = _run_sched_rows(sim, blocks[block_idx], now)
            sim.now = now
            nxt = sim._block_end(proc, block_idx, blocks[block_idx])
            now = sim.now  # recovery may have advanced the clock
            if nxt is None:
                result.cycle_count = now
                return result
            proc, block_idx = nxt
            tf = fnmap[proc.name]
            blocks = decoded[proc.name]
    finally:
        sim.translate_counters = {
            "translated_blocks": unit.translated_blocks,
            "superblocks_chained": unit.superblocks_chained,
            "trace_hits": 0,
            "trace_misses": 0,
            "trace_invalidations": 0,
        }
