"""Analytic hardware-cost model for the boosting register files.

Reproduces the claims of Section 4.3.2:

* the decoder for a Boost1 machine with 32 sequential registers contains
  ~33% more transistors than a normal decoder for a 64-register file;
* ~50% more for a MinBoost3 implementation;
* the shadow logic adds a single gate to the register-file access path.

The counting model is structural: a register file with ``rows`` rows needs
one decode gate per row with ``log2(rows)`` address inputs, at 2 transistors
per input.  A single-shadow-file boosting design (Figure 7) doubles the rows
(each sequential register has a shadow partner) and widens every decode gate
with the select inputs that steer an access between the pair:

* Boost1 — 2 extra inputs (the valid bit and the which-is-shadow flip-flop);
* MinBoost*n* — 1 + ceil(log2(n+1)) extra inputs (valid plus the counter
  comparison).

With 32 sequential registers this yields 64 gates of 8 inputs for Boost1
versus 64 gates of 6 inputs for a plain 64-register file — exactly the
paper's 33% — and 9-input gates (+50%) for MinBoost3.  The full multi-file
Boost7 design multiplies rows by (levels+1), which is why the paper calls
that hardware "obviously unreasonable".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.sched.boostmodel import BoostModel

#: transistors per decode-gate input (complementary pair)
_PER_INPUT = 2


def _address_bits(rows: int) -> int:
    return max(1, math.ceil(math.log2(rows)))


def decoder_transistors(rows: int, extra_inputs: int = 0) -> int:
    """Decode-gate transistors for ``rows`` rows, each gate widened by
    ``extra_inputs`` select inputs."""
    return rows * (_address_bits(rows) + extra_inputs) * _PER_INPUT


@dataclass(frozen=True)
class RegisterFileCost:
    name: str
    rows: int
    gate_inputs: int
    decoder: int
    #: extra gate delays on the register-file access path
    access_path_gates: int

    def overhead_vs(self, baseline: "RegisterFileCost") -> float:
        """Fractional decoder-transistor overhead versus ``baseline``."""
        return self.decoder / baseline.decoder - 1.0


def plain_file(num_regs: int) -> RegisterFileCost:
    return RegisterFileCost(
        name=f"plain-{num_regs}",
        rows=num_regs,
        gate_inputs=_address_bits(num_regs),
        decoder=decoder_transistors(num_regs),
        access_path_gates=0,
    )


def select_inputs(model: BoostModel) -> int:
    """Extra decode-gate inputs the boosting select logic needs."""
    if model.max_level < 1:
        return 0
    if model.max_level == 1:
        return 2  # valid bit + which-is-shadow flip-flop
    return 1 + math.ceil(math.log2(model.max_level + 1))


def boosting_file(model: BoostModel, num_arch_regs: int = 32) -> RegisterFileCost:
    """Decode-path cost of the register file for a boosting model."""
    if model.max_level < 1:
        return plain_file(num_arch_regs)
    if model.multi_shadow_files:
        rows = num_arch_regs * (model.max_level + 1)
    else:
        rows = num_arch_regs * 2
    extra = select_inputs(model)
    return RegisterFileCost(
        name=f"{model.name}-file",
        rows=rows,
        gate_inputs=_address_bits(rows) + extra,
        decoder=decoder_transistors(rows, extra),
        access_path_gates=1,
    )


def section_432_comparison(num_arch_regs: int = 32) -> dict[str, float]:
    """The paper's quoted ratios: decoder overhead of the Boost1 and
    MinBoost3 files over a conventional 64-register file."""
    from repro.sched.boostmodel import BOOST1, MINBOOST3

    baseline = plain_file(num_arch_regs * 2)
    return {
        "Boost1": boosting_file(BOOST1, num_arch_regs).overhead_vs(baseline),
        "MinBoost3": boosting_file(MINBOOST3,
                                   num_arch_regs).overhead_vs(baseline),
    }
