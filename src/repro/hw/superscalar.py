"""The statically-scheduled pipeline simulator.

Executes a :class:`~repro.sched.schedprog.ScheduledProgram` — cycle rows of
issue slots — with the boosting hardware of the schedule's machine model:

* operands are read at issue (register file reads before writes in a cycle);
* boosted results go to the shadow register file / shadow store buffer;
* a conditional branch resolves at the end of its cycle; the following delay
  cycle always executes; at the end of the block the branch's outcome
  commits (correct prediction) or squashes (misprediction) the speculative
  state;
* exceptions on boosted instructions are deferred through the one-bit shift
  buffer; when a deferred fault commits, the machine discards speculative
  state, pays the recovery overhead, and executes the compiler-generated
  recovery code, where the fault re-occurs precisely (Section 2.3);
* a scoreboard interlock stalls an issue row until its operands are ready,
  so cross-block latency violations cost cycles instead of corrupting state
  (the schedulers fill delay slots; the interlock only catches the
  boundaries).

The same simulator runs the scalar R2000-like baseline: a width-1 schedule
with the NO_BOOST model.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.hw.alu import branch_taken, execute_alu, s32
from repro.hw.errors import (
    CycleLimitExceeded, ScheduleError, SimulationError, WallClockExceeded,
)
from repro.hw.exceptions import ExecutionResult, ExceptionShiftBuffer, Trap, TrapKind
from repro.hw.functional import EXIT_TOKEN
from repro.hw.memory import Memory
from repro.hw.shadow import make_shadow_file
from repro.hw.storebuf import ShadowStoreBuffer
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.registers import RA, SP, Reg
from repro.sched.schedprog import ScheduledProcedure, ScheduledProgram

__all__ = ["SimulationError", "SuperscalarSim", "run_scheduled"]

_TOKEN_STRIDE = 16

#: called before an eligible instruction executes; returning a Trap makes
#: the machine behave as if the instruction itself faulted (fault injection)
FaultHook = Callable[[Instruction], Optional[Trap]]


class SuperscalarSim:
    def __init__(
        self,
        sched: ScheduledProgram,
        max_cycles: int = 100_000_000,
        trap_handler: Optional[Callable[[Trap], Optional[int]]] = None,
        input_image: Optional[list[tuple[int, bytes]]] = None,
        fault_hook: Optional[FaultHook] = None,
        wall_clock_limit: Optional[float] = None,
        shiftbuf: Optional[ExceptionShiftBuffer] = None,
    ) -> None:
        self.sched = sched
        self.program = sched.program
        self.model = sched.model
        self.machine = sched.machine
        self.max_cycles = max_cycles
        self.trap_handler = trap_handler
        self.fault_hook = fault_hook
        self.wall_clock_limit = wall_clock_limit

        nregs = max(self.program.max_register_index() + 1, 32)
        self.regs = [0] * nregs
        self.mem = Memory(self.program.mem_size)
        self.mem.write_image(self.program.data.initial_image())
        if input_image:
            self.mem.write_image(input_image)
        self.regs[SP.index] = self.program.mem_size - 64
        self.regs[RA.index] = EXIT_TOKEN

        self.shadow = make_shadow_file(self.model.max_level,
                                       self.model.multi_shadow_files)
        self.storebuf = (ShadowStoreBuffer(self.model.max_level)
                         if self.model.max_level > 0 and self.model.boost_stores
                         else None)
        # Injectable for fault-injection self-tests (a deliberately broken
        # buffer must be detectable by the differential checker).
        self.shiftbuf = (shiftbuf if shiftbuf is not None
                         else ExceptionShiftBuffer(max(self.model.max_level, 1)))

        self._ready: dict[int, int] = {}
        self._tokens: dict[int, tuple[ScheduledProcedure, int]] = {}
        self._next_token = EXIT_TOKEN + _TOKEN_STRIDE
        self._block_index = {
            name: {b.label: i for i, b in enumerate(p.blocks)}
            for name, p in sched.procedures.items()
        }
        self.result = ExecutionResult()
        self.recovery_invocations = 0
        self.boosted_executed = 0
        self.boosted_squashed = 0
        self._ctl: Optional[tuple] = None
        self.now = 0

    # ------------------------------------------------------------- primitives
    def _read(self, reg: Reg, level: int) -> int:
        if reg.is_zero:
            return 0
        if level > 0:
            hit = self.shadow.read(reg.index, level)
            if hit is not None:
                return hit
        return self.regs[reg.index]

    def _write(self, instr: Instruction, value: int) -> None:
        reg = instr.dst
        if reg is None or reg.is_zero:
            return
        if instr.boost > 0:
            self.shadow.write(reg.index, instr.boost, value & 0xFFFFFFFF)
        else:
            self.regs[reg.index] = value & 0xFFFFFFFF
        self._ready[reg.index] = self.now + instr.op.latency

    def _trap(self, trap: Trap, instr: Instruction) -> Optional[int]:
        """Handle a fault at issue.  For boosted instructions the fault is
        deferred; for sequential ones it is precise.

        The reported location is the *architectural* identity of the
        instruction (``origin`` for recovery/compensation copies), so a fault
        surfacing from compiler-generated recovery code names the same source
        instruction the functional reference would.
        """
        trap.instr_uid = instr.origin or instr.uid
        if instr.boost > 0:
            self.shiftbuf.record(instr.boost, trap, branch_uid=0)
            return None
        if self.trap_handler is not None:
            fix = self.trap_handler(trap)
            if fix is not None:
                return fix
        self.result.trap = trap
        raise trap

    # -------------------------------------------------------------- execution
    def run(self, entry: Optional[str] = None) -> ExecutionResult:
        proc = self.sched.proc(entry or self.program.entry)
        block_idx = 0
        deadline = (time.monotonic() + self.wall_clock_limit
                    if self.wall_clock_limit is not None else None)
        while True:
            if self.now > self.max_cycles:
                raise CycleLimitExceeded(f"exceeded {self.max_cycles} cycles")
            if deadline is not None and time.monotonic() > deadline:
                raise WallClockExceeded(
                    f"exceeded {self.wall_clock_limit}s wall clock "
                    f"({self.now:,} cycles simulated)")
            block = proc.blocks[block_idx]
            self._ctl = None
            self._cur = (proc, block_idx)
            for row in block.cycles:
                self._issue_row(row)
            nxt = self._block_end(proc, block_idx, block)
            if nxt is None:
                self.result.cycle_count = self.now
                return self.result
            proc, block_idx = nxt

    def _issue_row(self, row: list[Optional[Instruction]]) -> None:
        instrs = [i for i in row if i is not None]
        # Scoreboard interlock: the whole issue packet waits for operands.
        t = self.now
        for instr in instrs:
            for reg in instr.srcs:
                if not reg.is_zero:
                    t = max(t, self._ready.get(reg.index, 0))
        self.now = t
        # Phase 1: all operands read before any result is written.
        values = [tuple(self._read(r, instr.boost) for r in instr.srcs)
                  for instr in instrs]
        # Phase 2: execute.
        for instr, vals in zip(instrs, values):
            self._execute(instr, vals)
        self.now += 1

    def _execute(self, instr: Instruction, vals: tuple[int, ...]) -> None:
        op = instr.op
        result = self.result
        if op is Opcode.NOP:
            result.nop_count += 1
            return
        result.instr_count += 1
        if instr.boost > 0:
            self.boosted_executed += 1
        if (self.fault_hook is not None and op is not Opcode.PRINT
                and not instr.is_terminator):
            injected = self.fault_hook(instr)
            if injected is not None:
                fix = self._trap(injected, instr)
                if fix is not None:
                    self._write(instr, fix)
                return
        if op is Opcode.PRINT:
            result.output.append(s32(vals[0]))
            return
        if op.is_load:
            self._execute_load(instr, vals)
            return
        if op.is_store:
            self._execute_store(instr, vals)
            return
        if instr.is_terminator:
            self._resolve_terminator(instr, vals)
            return
        try:
            value = execute_alu(instr, *vals)
        except Trap as trap:
            fix = self._trap(trap, instr)
            if fix is None:
                return
            value = fix
        self._write(instr, value)

    def _execute_load(self, instr: Instruction, vals: tuple[int, ...]) -> None:
        addr = (vals[0] + (instr.imm or 0)) & 0xFFFFFFFF
        size = 4 if instr.op is Opcode.LW else 1
        try:
            self.mem.check(addr, size)
        except Trap as trap:
            fix = self._trap(trap, instr)
            if fix is not None:
                self._write(instr, fix)
            return
        if self.storebuf is not None:
            raw = self.storebuf.load(self.mem, addr, size, instr.boost)
        else:
            raw = self.mem.read_bytes(addr, size)
        value = int.from_bytes(raw, "little")
        if instr.op is Opcode.LB and value >= 0x80:
            value -= 0x100
        self._write(instr, value)

    def _execute_store(self, instr: Instruction, vals: tuple[int, ...]) -> None:
        value, base = vals
        addr = (base + (instr.imm or 0)) & 0xFFFFFFFF
        size = 4 if instr.op is Opcode.SW else 1
        try:
            self.mem.check(addr, size)
        except Trap as trap:
            self._trap(trap, instr)
            return
        data = (value & 0xFFFFFFFF).to_bytes(4, "little")[:size]
        if instr.boost > 0:
            if self.storebuf is None:
                raise ScheduleError(
                    f"{self.model.name}: boosted store but no shadow store "
                    f"buffer ({instr})")
            self.storebuf.store(instr.boost, addr, data)
            return
        if size == 4:
            self.mem.store_word(addr, value)
        else:
            self.mem.store_byte(addr, value)

    def _resolve_terminator(self, instr: Instruction,
                            vals: tuple[int, ...]) -> None:
        op = instr.op
        if op.is_cond_branch:
            taken = branch_taken(instr, *vals)
            self._ctl = ("cond", instr, taken)
        elif op is Opcode.J:
            self._ctl = ("jump", instr.target)
        elif op is Opcode.JAL:
            proc, block_idx = self._cur
            token = self._next_token
            self._next_token += _TOKEN_STRIDE
            self._tokens[token] = (proc, block_idx + 1)
            self.regs[RA.index] = token
            self._ready[RA.index] = self.now + 1
            self._ctl = ("call", instr.target)
        elif op is Opcode.JR:
            self._ctl = ("return", vals[0])
        elif op is Opcode.HALT:
            self._ctl = ("halt",)
        else:
            raise ScheduleError(f"unhandled terminator {instr}")

    # -------------------------------------------------------------- block end
    def _block_end(self, proc: ScheduledProcedure, block_idx: int,
                   block) -> Optional[tuple[ScheduledProcedure, int]]:
        ctl = self._ctl
        index = self._block_index[proc.name]
        if ctl is None:
            if block_idx + 1 >= len(proc.blocks):
                return None
            return (proc, block_idx + 1)
        kind = ctl[0]
        if kind == "halt":
            return None
        if kind == "jump":
            return (proc, index[ctl[1]])
        if kind == "call":
            callee = self.sched.proc(ctl[1])
            return (callee, 0)
        if kind == "return":
            addr = ctl[1]
            if addr == EXIT_TOKEN:
                return None
            frame = self._tokens.get(addr)
            if frame is None:
                raise Trap(TrapKind.ADDRESS_ERROR, addr=addr)
            return frame
        # Conditional branch: commit or squash the speculative state.
        _, instr, taken = ctl
        self.result.branch_count += 1
        predicted = bool(instr.predict_taken)
        if taken == predicted:
            pending = self.shiftbuf.shift(instr.uid)
            if pending is not None:
                resume = self._run_recovery(proc, instr.uid)
                return (proc, index[resume])
            for reg, value in self.shadow.commit().items():
                self.regs[reg] = value
            if self.storebuf is not None:
                self.storebuf.commit(self.mem)
        else:
            self.result.mispredict_count += 1
            self.boosted_squashed += self.shadow.outstanding()
            self.shadow.squash()
            if self.storebuf is not None:
                self.storebuf.squash()
            self.shiftbuf.clear()
        if taken:
            return (proc, index[instr.target])
        if block_idx + 1 >= len(proc.blocks):
            return None
        return (proc, block_idx + 1)

    def _run_recovery(self, proc: ScheduledProcedure, branch_uid: int) -> str:
        """Execute the boosted-exception recovery code; returns the label to
        resume at (the predicted target of the committing branch)."""
        recov = proc.recovery.get(branch_uid)
        if recov is None:
            raise ScheduleError(
                f"boosted exception committed at branch {branch_uid} but the "
                "compiler generated no recovery code")
        self.recovery_invocations += 1
        # The hardware discards all speculative state before vectoring.
        self.shadow.squash()
        if self.storebuf is not None:
            self.storebuf.squash()
        self.shiftbuf.clear()
        self.now += self.machine.recovery_overhead
        for instr in recov.instructions:
            vals = tuple(self._read(r, instr.boost) for r in instr.srcs)
            self._execute(instr, vals)
            self.now += 1
        return recov.resume_label


def run_scheduled(sched: ScheduledProgram, **kwargs) -> ExecutionResult:
    """Convenience wrapper: run a scheduled program to completion."""
    return SuperscalarSim(sched, **kwargs).run()
