"""The statically-scheduled pipeline simulator.

Executes a :class:`~repro.sched.schedprog.ScheduledProgram` — cycle rows of
issue slots — with the boosting hardware of the schedule's machine model:

* operands are read at issue (register file reads before writes in a cycle);
* boosted results go to the shadow register file / shadow store buffer;
* a conditional branch resolves at the end of its cycle; the following delay
  cycle always executes; at the end of the block the branch's outcome
  commits (correct prediction) or squashes (misprediction) the speculative
  state;
* exceptions on boosted instructions are deferred through the one-bit shift
  buffer; when a deferred fault commits, the machine discards speculative
  state, pays the recovery overhead, and executes the compiler-generated
  recovery code, where the fault re-occurs precisely (Section 2.3);
* a scoreboard interlock stalls an issue row until its operands are ready,
  so cross-block latency violations cost cycles instead of corrupting state
  (the schedulers fill delay slots; the interlock only catches the
  boundaries).

The same simulator runs the scalar R2000-like baseline: a width-1 schedule
with the NO_BOOST model.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.hw.alu import ALU_FUNCS, branch_taken, execute_alu, s32
from repro.hw.backend import resolve_backend
from repro.hw.errors import (
    CycleLimitExceeded, ScheduleError, SimulationError, WallClockExceeded,
)
from repro.hw.exceptions import ExecutionResult, ExceptionShiftBuffer, Trap, TrapKind
from repro.hw.functional import EXIT_TOKEN
from repro.hw.memory import Memory
from repro.hw.shadow import make_shadow_file
from repro.hw.storebuf import ShadowStoreBuffer
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.registers import RA, SP, Reg
from repro.sched.schedprog import ScheduledProcedure, ScheduledProgram

__all__ = ["SimulationError", "SuperscalarSim", "run_scheduled"]

_TOKEN_STRIDE = 16

#: called before an eligible instruction executes; returning a Trap makes
#: the machine behave as if the instruction itself faulted (fault injection)
FaultHook = Callable[[Instruction], Optional[Trap]]

# Dispatch tags for the pre-decoded fast path.
_S_ALU, _S_LOAD, _S_STORE, _S_PRINT, _S_TERM, _S_NOP = range(6)


def _ridx(reg) -> int:
    """Register index for reads; -1 encodes the hard-wired zero register."""
    return -1 if reg is None or reg.is_zero else reg.index


class SuperscalarSim:
    def __init__(
        self,
        sched: ScheduledProgram,
        max_cycles: int = 100_000_000,
        trap_handler: Optional[Callable[[Trap], Optional[int]]] = None,
        input_image: Optional[list[tuple[int, bytes]]] = None,
        fault_hook: Optional[FaultHook] = None,
        wall_clock_limit: Optional[float] = None,
        shiftbuf: Optional[ExceptionShiftBuffer] = None,
        fast: Optional[bool] = None,
        backend: Optional[str] = None,
        stats=None,
        trace=None,
    ) -> None:
        self.sched = sched
        self.program = sched.program
        self.model = sched.model
        self.machine = sched.machine
        self.max_cycles = max_cycles
        self.trap_handler = trap_handler
        self.fault_hook = fault_hook
        self.wall_clock_limit = wall_clock_limit

        nregs = max(self.program.max_register_index() + 1, 32)
        self.regs = [0] * nregs
        self.mem = Memory(self.program.mem_size)
        self.mem.write_image(self.program.data.initial_image())
        if input_image:
            self.mem.write_image(input_image)
        self.regs[SP.index] = self.program.mem_size - 64
        self.regs[RA.index] = EXIT_TOKEN

        self.shadow = make_shadow_file(self.model.max_level,
                                       self.model.multi_shadow_files)
        self.storebuf = (ShadowStoreBuffer(self.model.max_level)
                         if self.model.max_level > 0 and self.model.boost_stores
                         else None)
        # Injectable for fault-injection self-tests (a deliberately broken
        # buffer must be detectable by the differential checker).
        self.shiftbuf = (shiftbuf if shiftbuf is not None
                         else ExceptionShiftBuffer(max(self.model.max_level, 1)))

        self._ready: dict[int, int] = {}
        self._tokens: dict[int, tuple[ScheduledProcedure, int]] = {}
        self._next_token = EXIT_TOKEN + _TOKEN_STRIDE
        self._block_index = {
            name: {b.label: i for i, b in enumerate(p.blocks)}
            for name, p in sched.procedures.items()
        }
        self.result = ExecutionResult()
        self.recovery_invocations = 0
        self.boosted_executed = 0
        self.boosted_squashed = 0
        self._ctl: Optional[tuple] = None
        self.now = 0
        self.backend = resolve_backend(backend, fast)
        self.fast = self.backend != "reference"
        self._decoded: Optional[dict[str, list]] = None
        #: optional observability sinks (repro.obs); None keeps the fast
        #: path at one ``is not None`` test per basic block.  A sink with
        #: ``collecting = False`` (NullStats) is hidden from the hot loops
        #: entirely — it only sees the final ``finalize_superscalar``.
        self._stats = stats
        self._stats_hot = stats if stats is not None and stats.collecting \
            else None
        self._trace = trace

    # ------------------------------------------------------------- primitives
    def _read(self, reg: Reg, level: int) -> int:
        if reg.is_zero:
            return 0
        if level > 0:
            hit = self.shadow.read(reg.index, level)
            if hit is not None:
                return hit
        return self.regs[reg.index]

    def _write(self, instr: Instruction, value: int) -> None:
        reg = instr.dst
        if reg is None or reg.is_zero:
            return
        if instr.boost > 0:
            self.shadow.write(reg.index, instr.boost, value & 0xFFFFFFFF)
        else:
            self.regs[reg.index] = value & 0xFFFFFFFF
        self._ready[reg.index] = self.now + instr.op.latency

    def _trap(self, trap: Trap, instr: Instruction) -> Optional[int]:
        """Handle a fault at issue.  For boosted instructions the fault is
        deferred; for sequential ones it is precise.

        The reported location is the *architectural* identity of the
        instruction (``origin`` for recovery/compensation copies), so a fault
        surfacing from compiler-generated recovery code names the same source
        instruction the functional reference would.
        """
        trap.instr_uid = instr.origin or instr.uid
        if instr.boost > 0:
            self.shiftbuf.record(instr.boost, trap, branch_uid=0)
            return None
        if self.trap_handler is not None:
            fix = self.trap_handler(trap)
            if fix is not None:
                return fix
        self.result.trap = trap
        raise trap

    # ----------------------------------------------------------------- decode
    def _decode_slot(self, instr: Instruction) -> tuple:
        """Flat dispatch tuple for one issue slot: tag, operand register
        indices, and everything ``_execute`` would otherwise look up per
        dynamic instance."""
        op = instr.op
        boost = instr.boost
        srcs = tuple(_ridx(r) for r in instr.srcs)
        if op is Opcode.NOP:
            return (_S_NOP, instr, boost, srcs)
        if instr.is_terminator:
            return (_S_TERM, instr, boost, srcs)
        if op is Opcode.PRINT:
            return (_S_PRINT, instr, boost, srcs)
        dst = _ridx(instr.dst)
        if op.is_load:
            return (_S_LOAD, instr, boost, srcs, dst, op.latency,
                    instr.imm or 0, 4 if op is Opcode.LW else 1,
                    op is Opcode.LB)
        if op.is_store:
            return (_S_STORE, instr, boost, srcs, instr.imm or 0,
                    4 if op is Opcode.SW else 1)
        fn = ALU_FUNCS.get(op)
        if fn is None:
            raise ScheduleError(f"cannot decode {instr}")
        return (_S_ALU, instr, boost, srcs, dst, op.latency, instr.imm or 0,
                fn)

    def _decode(self) -> dict[str, list]:
        """Per procedure: per block, the issue rows with ``None`` slots
        dropped and the scoreboard watch set precomputed."""
        decoded: dict[str, list] = {}
        for name, proc in self.sched.procedures.items():
            blocks = []
            for block in proc.blocks:
                rows = []
                for row in block.cycles:
                    entries = tuple(self._decode_slot(i) for i in row
                                    if i is not None)
                    watch = tuple({idx for e in entries for idx in e[3]
                                   if idx >= 0})
                    rows.append((entries, watch))
                blocks.append(rows)
            decoded[name] = blocks
        return decoded

    # -------------------------------------------------------------- execution
    def run(self, entry: Optional[str] = None) -> ExecutionResult:
        result = None
        if (self.backend == "translate" and self.fault_hook is None
                and self.trap_handler is None and self._trace is None):
            from repro.hw import translate
            unit = translate.superscalar_unit(self.sched)
            if unit is not None and unit.translated_blocks:
                result = translate.run_superscalar_translated(self, entry)
        if result is None:
            result = (self._run_fast(entry) if self.fast
                      else self._run_slow(entry))
        if self._stats is not None:
            self._stats.finalize_superscalar(self)
            result.sim_stats = self._stats
        return result

    def _run_slow(self, entry: Optional[str] = None) -> ExecutionResult:
        st = self._stats_hot
        execs = st.block_execs if st is not None else None
        tr = self._trace
        proc = self.sched.proc(entry or self.program.entry)
        block_idx = 0
        deadline = (time.monotonic() + self.wall_clock_limit
                    if self.wall_clock_limit is not None else None)
        while True:
            if self.now > self.max_cycles:
                raise CycleLimitExceeded(f"exceeded {self.max_cycles} cycles")
            if deadline is not None and time.monotonic() > deadline:
                raise WallClockExceeded(
                    f"exceeded {self.wall_clock_limit}s wall clock "
                    f"({self.now:,} cycles simulated)")
            block = proc.blocks[block_idx]
            self._ctl = None
            self._cur = (proc, block_idx)
            if execs is not None:
                k = (proc.name, block_idx)
                execs[k] = execs.get(k, 0) + 1
            t0 = self.now
            for row in block.cycles:
                self._issue_row(row)
            if tr is not None:
                tr.complete(f"{proc.name}:{block.label}", t0, self.now - t0)
            nxt = self._block_end(proc, block_idx, block)
            if nxt is None:
                self.result.cycle_count = self.now
                return self.result
            proc, block_idx = nxt

    def _run_fast(self, entry: Optional[str] = None) -> ExecutionResult:
        if self._decoded is None:
            self._decoded = self._decode()
        decoded = self._decoded
        proc = self.sched.proc(entry or self.program.entry)
        blocks = decoded[proc.name]
        block_idx = 0
        deadline = (time.monotonic() + self.wall_clock_limit
                    if self.wall_clock_limit is not None else None)
        monotonic = time.monotonic
        max_cycles = self.max_cycles

        regs = self.regs
        ready = self._ready
        ready_get = ready.get
        shadow = self.shadow
        shadow_read = shadow.read
        shadow_write = shadow.write
        storebuf = self.storebuf
        mem = self.mem
        mem_check = mem.check
        result = self.result
        output = result.output
        fault_hook = self.fault_hook
        st = self._stats_hot
        execs = st.block_execs if st is not None else None
        tr = self._trace
        t0 = 0
        now = self.now

        while True:
            if now > max_cycles:
                self.now = now
                raise CycleLimitExceeded(f"exceeded {max_cycles} cycles")
            if deadline is not None and monotonic() > deadline:
                self.now = now
                raise WallClockExceeded(
                    f"exceeded {self.wall_clock_limit}s wall clock "
                    f"({now:,} cycles simulated)")
            self._ctl = None
            self._cur = (proc, block_idx)
            if execs is not None:
                k = (proc.name, block_idx)
                execs[k] = execs.get(k, 0) + 1
            if tr is not None:
                t0 = now
            for entries, watch in blocks[block_idx]:
                # Scoreboard interlock: the whole issue packet waits.
                for idx in watch:
                    r = ready_get(idx, 0)
                    if r > now:
                        now = r
                # Phase 1: all operands read before any result is written.
                values = []
                for entry in entries:
                    boost = entry[2]
                    if boost:
                        vals = []
                        for idx in entry[3]:
                            if idx < 0:
                                vals.append(0)
                            else:
                                hit = shadow_read(idx, boost)
                                vals.append(regs[idx] if hit is None else hit)
                        values.append(tuple(vals))
                    else:
                        values.append(tuple(0 if idx < 0 else regs[idx]
                                            for idx in entry[3]))
                # Phase 2: execute.
                for entry, vals in zip(entries, values):
                    tag = entry[0]
                    if tag == _S_NOP:
                        result.nop_count += 1
                        continue
                    result.instr_count += 1
                    instr = entry[1]
                    boost = entry[2]
                    if boost:
                        self.boosted_executed += 1
                        if st is not None:
                            st.note_boosted(boost)
                    if tag == _S_TERM:
                        self.now = now
                        self._resolve_terminator(instr, vals)
                        continue
                    if tag == _S_PRINT:
                        v = vals[0] & 0xFFFFFFFF
                        output.append(v - 0x100000000 if v >= 0x80000000
                                      else v)
                        continue
                    if fault_hook is not None:
                        injected = fault_hook(instr)
                        if injected is not None:
                            fix = self._trap(injected, instr)
                            if fix is not None:
                                self.now = now
                                self._write(instr, fix)
                            continue
                    if tag == _S_ALU:
                        _, _, _, _, dst, lat, imm, fn = entry
                        try:
                            value = fn(vals[0] if vals else 0,
                                       vals[1] if len(vals) > 1 else 0, imm)
                        except Trap as trap:
                            fix = self._trap(trap, instr)
                            if fix is None:
                                continue
                            value = fix
                        if dst >= 0:
                            if boost:
                                shadow_write(dst, boost, value & 0xFFFFFFFF)
                            else:
                                regs[dst] = value & 0xFFFFFFFF
                            ready[dst] = now + lat
                    elif tag == _S_LOAD:
                        _, _, _, _, dst, lat, off, size, signed = entry
                        addr = (vals[0] + off) & 0xFFFFFFFF
                        try:
                            mem_check(addr, size)
                        except Trap as trap:
                            fix = self._trap(trap, instr)
                            if fix is None:
                                continue
                            value = fix
                        else:
                            if storebuf is not None:
                                raw = storebuf.load(mem, addr, size, boost)
                            else:
                                raw = mem.read_bytes(addr, size)
                            value = int.from_bytes(raw, "little")
                            if signed and value >= 0x80:
                                value -= 0x100
                        if dst >= 0:
                            if boost:
                                shadow_write(dst, boost, value & 0xFFFFFFFF)
                            else:
                                regs[dst] = value & 0xFFFFFFFF
                            ready[dst] = now + lat
                    elif tag == _S_STORE:
                        _, _, _, _, off, size = entry
                        value, base = vals
                        addr = (base + off) & 0xFFFFFFFF
                        try:
                            mem_check(addr, size)
                        except Trap as trap:
                            self._trap(trap, instr)
                            continue
                        if boost:
                            if storebuf is None:
                                raise ScheduleError(
                                    f"{self.model.name}: boosted store but "
                                    f"no shadow store buffer ({instr})")
                            data = (value & 0xFFFFFFFF).to_bytes(
                                4, "little")[:size]
                            storebuf.store(boost, addr, data)
                        elif size == 4:
                            mem.store_word(addr, value)
                        else:
                            mem.store_byte(addr, value)
                now += 1
            if tr is not None:
                tr.complete(
                    f"{proc.name}:{proc.blocks[block_idx].label}",
                    t0, now - t0)
            self.now = now
            nxt = self._block_end(proc, block_idx, blocks[block_idx])
            now = self.now  # recovery may have advanced the clock
            if nxt is None:
                result.cycle_count = now
                return result
            proc, block_idx = nxt
            blocks = decoded[proc.name]

    def _issue_row(self, row: list[Optional[Instruction]]) -> None:
        instrs = [i for i in row if i is not None]
        # Scoreboard interlock: the whole issue packet waits for operands.
        t = self.now
        for instr in instrs:
            for reg in instr.srcs:
                if not reg.is_zero:
                    t = max(t, self._ready.get(reg.index, 0))
        self.now = t
        # Phase 1: all operands read before any result is written.
        values = [tuple(self._read(r, instr.boost) for r in instr.srcs)
                  for instr in instrs]
        # Phase 2: execute.
        for instr, vals in zip(instrs, values):
            self._execute(instr, vals)
        self.now += 1

    def _execute(self, instr: Instruction, vals: tuple[int, ...]) -> None:
        op = instr.op
        result = self.result
        if op is Opcode.NOP:
            result.nop_count += 1
            return
        result.instr_count += 1
        if instr.boost > 0:
            self.boosted_executed += 1
            if self._stats_hot is not None:
                self._stats_hot.note_boosted(instr.boost)
        if (self.fault_hook is not None and op is not Opcode.PRINT
                and not instr.is_terminator):
            injected = self.fault_hook(instr)
            if injected is not None:
                fix = self._trap(injected, instr)
                if fix is not None:
                    self._write(instr, fix)
                return
        if op is Opcode.PRINT:
            result.output.append(s32(vals[0]))
            return
        if op.is_load:
            self._execute_load(instr, vals)
            return
        if op.is_store:
            self._execute_store(instr, vals)
            return
        if instr.is_terminator:
            self._resolve_terminator(instr, vals)
            return
        try:
            value = execute_alu(instr, *vals)
        except Trap as trap:
            fix = self._trap(trap, instr)
            if fix is None:
                return
            value = fix
        self._write(instr, value)

    def _execute_load(self, instr: Instruction, vals: tuple[int, ...]) -> None:
        addr = (vals[0] + (instr.imm or 0)) & 0xFFFFFFFF
        size = 4 if instr.op is Opcode.LW else 1
        try:
            self.mem.check(addr, size)
        except Trap as trap:
            fix = self._trap(trap, instr)
            if fix is not None:
                self._write(instr, fix)
            return
        if self.storebuf is not None:
            raw = self.storebuf.load(self.mem, addr, size, instr.boost)
        else:
            raw = self.mem.read_bytes(addr, size)
        value = int.from_bytes(raw, "little")
        if instr.op is Opcode.LB and value >= 0x80:
            value -= 0x100
        self._write(instr, value)

    def _execute_store(self, instr: Instruction, vals: tuple[int, ...]) -> None:
        value, base = vals
        addr = (base + (instr.imm or 0)) & 0xFFFFFFFF
        size = 4 if instr.op is Opcode.SW else 1
        try:
            self.mem.check(addr, size)
        except Trap as trap:
            self._trap(trap, instr)
            return
        data = (value & 0xFFFFFFFF).to_bytes(4, "little")[:size]
        if instr.boost > 0:
            if self.storebuf is None:
                raise ScheduleError(
                    f"{self.model.name}: boosted store but no shadow store "
                    f"buffer ({instr})")
            self.storebuf.store(instr.boost, addr, data)
            return
        if size == 4:
            self.mem.store_word(addr, value)
        else:
            self.mem.store_byte(addr, value)

    def _resolve_terminator(self, instr: Instruction,
                            vals: tuple[int, ...]) -> None:
        op = instr.op
        if op.is_cond_branch:
            taken = branch_taken(instr, *vals)
            self._ctl = ("cond", instr, taken)
        elif op is Opcode.J:
            self._ctl = ("jump", instr.target)
        elif op is Opcode.JAL:
            proc, block_idx = self._cur
            token = self._next_token
            self._next_token += _TOKEN_STRIDE
            self._tokens[token] = (proc, block_idx + 1)
            self.regs[RA.index] = token
            self._ready[RA.index] = self.now + 1
            self._ctl = ("call", instr.target)
        elif op is Opcode.JR:
            self._ctl = ("return", vals[0])
        elif op is Opcode.HALT:
            self._ctl = ("halt",)
        else:
            raise ScheduleError(f"unhandled terminator {instr}")

    # -------------------------------------------------------------- block end
    def _block_end(self, proc: ScheduledProcedure, block_idx: int,
                   block) -> Optional[tuple[ScheduledProcedure, int]]:
        ctl = self._ctl
        index = self._block_index[proc.name]
        if ctl is None:
            if block_idx + 1 >= len(proc.blocks):
                return None
            return (proc, block_idx + 1)
        kind = ctl[0]
        if kind == "halt":
            return None
        if kind == "jump":
            return (proc, index[ctl[1]])
        if kind == "call":
            callee = self.sched.proc(ctl[1])
            return (callee, 0)
        if kind == "return":
            addr = ctl[1]
            if addr == EXIT_TOKEN:
                return None
            frame = self._tokens.get(addr)
            if frame is None:
                raise Trap(TrapKind.ADDRESS_ERROR, addr=addr)
            return frame
        # Conditional branch: commit or squash the speculative state.
        _, instr, taken = ctl
        self.result.branch_count += 1
        predicted = bool(instr.predict_taken)
        st = self._stats_hot
        if taken == predicted:
            pending = self.shiftbuf.shift(instr.uid)
            if pending is not None:
                resume = self._run_recovery(proc, instr.uid)
                return (proc, index[resume])
            if st is not None:
                st.note_branch_commit(
                    self.shadow.outstanding(),
                    self.storebuf.outstanding()
                    if self.storebuf is not None else 0)
            for reg, value in self.shadow.commit().items():
                self.regs[reg] = value
            if self.storebuf is not None:
                self.storebuf.commit(self.mem)
        else:
            self.result.mispredict_count += 1
            squashed = self.shadow.outstanding()
            if st is not None:
                st.note_squash(
                    squashed,
                    self.storebuf.outstanding()
                    if self.storebuf is not None else 0)
            if self._trace is not None and squashed:
                self._trace.instant("squash", self.now,
                                    args={"shadow": squashed})
            self.boosted_squashed += squashed
            self.shadow.squash()
            if self.storebuf is not None:
                self.storebuf.squash()
            self.shiftbuf.clear()
        if taken:
            return (proc, index[instr.target])
        if block_idx + 1 >= len(proc.blocks):
            return None
        return (proc, block_idx + 1)

    def _run_recovery(self, proc: ScheduledProcedure, branch_uid: int) -> str:
        """Execute the boosted-exception recovery code; returns the label to
        resume at (the predicted target of the committing branch)."""
        recov = proc.recovery.get(branch_uid)
        if recov is None:
            raise ScheduleError(
                f"boosted exception committed at branch {branch_uid} but the "
                "compiler generated no recovery code")
        self.recovery_invocations += 1
        if self._stats_hot is not None:
            self._stats_hot.note_recovery(self.machine.recovery_overhead,
                                          len(recov.instructions))
        if self._trace is not None:
            self._trace.complete(
                "recovery", self.now,
                self.machine.recovery_overhead + len(recov.instructions),
                tid=1, args={"branch_uid": branch_uid})
        # The hardware discards all speculative state before vectoring.
        self.shadow.squash()
        if self.storebuf is not None:
            self.storebuf.squash()
        self.shiftbuf.clear()
        self.now += self.machine.recovery_overhead
        for instr in recov.instructions:
            vals = tuple(self._read(r, instr.boost) for r in instr.srcs)
            self._execute(instr, vals)
            self.now += 1
        return recov.resume_label


def run_scheduled(sched: ScheduledProgram, **kwargs) -> ExecutionResult:
    """Convenience wrapper: run a scheduled program to completion."""
    return SuperscalarSim(sched, **kwargs).run()
