"""The dynamically-scheduled superscalar comparator of Figure 9.

Configuration straight from Section 4.3.2: fetch/decode two instructions per
cycle, 30 reservation-station locations, a 16-entry reorder buffer
implementing speculative out-of-order execution with in-order commit, a
2048-entry 4-way set-associative branch target buffer, the same functional
units as the statically-scheduled machine (two integer ALUs, one shifter,
one branch unit, one multiply/divide unit, one memory port), and up to six
instructions issued to units per cycle.  Register renaming is optional —
Figure 9 reports the machine with and without it; without renaming a
register may have only one write in flight, so anti- and output-dependences
stall dispatch.

The machine consumes the optimized, register-allocated IR directly (the
same input the static schedulers see).  It has no architectural delay
slots — branch effects are handled by speculative fetch plus flush on
misprediction, with stores, PRINTs, and traps deferred to commit so
wrong-path execution can never become architectural.

Memory ordering is conservative by default — a load waits until every
older store address is known — matching the paper-era comparator.  With
``lsq_size > 0`` in-flight memory operations run through a
:class:`~repro.hw.lsq.LoadStoreQueue` instead: store-to-load forwarding
(``stlf``), optional memory-dependence speculation
(``memdep_speculate``), and a memory-order squash through the same
recovery path as a branch misprediction when a speculated load turns out
to alias a later-resolving store (see ``docs/memory-speculation.md``).
``fetch_rate`` widens instruction fetch while the fetch queue refills
after a redirect — the variable-fetch-rate front end of arXiv 1707.04657
in its simplest deterministic form.

Like the functional and superscalar simulators, every static instruction is
decoded once (``_Dec``) into pre-resolved handlers, register indices, and
flat branch targets; the per-cycle stages then dispatch on plain ints
instead of walking enum property chains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.hw.alu import ALU_FUNCS, BRANCH_FUNCS, s32
from repro.hw.btb import BranchTargetBuffer
from repro.hw.exceptions import ExecutionResult, Trap, TrapKind
from repro.hw.functional import EXIT_TOKEN
from repro.hw.lsq import LoadStoreQueue
from repro.hw.memory import Memory
from repro.isa.instruction import Instruction
from repro.isa.opcodes import FU, Opcode
from repro.isa.registers import RA, SP
from repro.program.procedure import Program

_TOKEN_STRIDE = 16
_PC_BASE = 0x0040_0000
_FAR_FUTURE = 1 << 60

# Decode kinds: how _try_execute / _predict_next / _commit treat the op.
(_K_ALU, _K_LOAD, _K_STORE, _K_CBR, _K_JR, _K_JAL, _K_J, _K_HALT,
 _K_NOP, _K_PRINT, _K_OTHER) = range(11)

# Functional-unit slots: indices into the per-cycle issue counters.
_FU_ALU, _FU_SHIFT, _FU_BRANCH, _FU_MULDIV, _FU_MEM, _FU_NONE = range(6)

_FU_SLOT = {FU.ALU: _FU_ALU, FU.SHIFT: _FU_SHIFT, FU.BRANCH: _FU_BRANCH,
            FU.MULDIV: _FU_MULDIV, FU.MEM: _FU_MEM}


class _Dec:
    """One static instruction, decoded once for the cycle loop."""

    __slots__ = ("kind", "fu_slot", "is_term", "is_cbr", "is_load",
                 "is_store", "src_idxs", "def_idxs", "dst_idx", "imm",
                 "latency", "mem_size", "is_lb", "pc", "target_idx",
                 "alu_fn", "cbr_fn")

    def __init__(self, sim: "DynamicSim", idx: int,
                 instr: Instruction) -> None:
        op = instr.op
        if op.is_load:
            self.kind = _K_LOAD
        elif op.is_store:
            self.kind = _K_STORE
        elif op.is_cond_branch:
            self.kind = _K_CBR
        elif op is Opcode.JR:
            self.kind = _K_JR
        elif op is Opcode.JAL:
            self.kind = _K_JAL
        elif op is Opcode.J:
            self.kind = _K_J
        elif op is Opcode.HALT:
            self.kind = _K_HALT
        elif op is Opcode.NOP:
            self.kind = _K_NOP
        elif op is Opcode.PRINT:
            self.kind = _K_PRINT
        elif op in ALU_FUNCS:
            self.kind = _K_ALU
        else:
            self.kind = _K_OTHER
        self.fu_slot = _FU_SLOT.get(op.fu, _FU_NONE)
        self.is_term = instr.is_terminator
        self.is_cbr = self.kind == _K_CBR
        self.is_load = self.kind == _K_LOAD
        self.is_store = self.kind == _K_STORE
        self.src_idxs = tuple(-1 if r.is_zero else r.index
                              for r in instr.srcs)
        self.def_idxs = tuple(r.index for r in instr.defs())
        self.dst_idx = (instr.dst.index
                        if instr.dst is not None and not instr.dst.is_zero
                        else -1)
        self.imm = instr.imm or 0
        self.latency = op.latency
        self.mem_size = 4 if op in (Opcode.LW, Opcode.SW) else 1
        self.is_lb = op is Opcode.LB
        self.pc = _PC_BASE + 4 * idx
        if self.kind in (_K_J, _K_CBR):
            self.target_idx = sim._target_idx(idx, instr.target)
        elif self.kind == _K_JAL:
            self.target_idx = sim.entry_idx[instr.target]
        else:
            self.target_idx = None
        self.alu_fn = ALU_FUNCS.get(op)
        self.cbr_fn = BRANCH_FUNCS.get(op)


@dataclass(slots=True)
class DynamicConfig:
    fetch_width: int = 2
    commit_width: int = 2
    issue_width: int = 6              # dispatch-to-FU per cycle
    rob_entries: int = 16
    reservation_stations: int = 30
    rename: bool = True
    fetch_buffer: int = 8
    btb_entries: int = 2048
    btb_ways: int = 4
    #: fetch bubble after any taken (non-sequential) control transfer —
    #: the single-ported instruction fetch of the era cannot follow a
    #: redirect in the same cycle
    taken_fetch_bubble: int = 1
    #: front-end refill after a misprediction flush
    mispredict_restart: int = 2
    #: load/store queue entries; 0 = no LSQ — the conservative memory
    #: pipeline (a load waits for every older store address)
    lsq_size: int = 0
    #: store-to-load forwarding from the youngest exact-matching older
    #: store (LSQ only; without it a matching load drains the store first)
    stlf: bool = True
    #: let loads execute past unresolved older store addresses; a
    #: later-resolving aliasing store squashes the load and everything
    #: younger (LSQ only)
    memdep_speculate: bool = False
    #: fetch budget while the fetch queue is empty (post-redirect refill);
    #: 0 = always ``fetch_width`` (arXiv 1707.04657's variable fetch rate)
    fetch_rate: int = 0


@dataclass(slots=True)
class _Entry:
    seq: int
    idx: int                          # flat instruction index
    instr: Instruction
    dec: _Dec
    dispatch_cycle: int
    src_entries: list = field(default_factory=list)
    src_values: list = field(default_factory=list)
    started: bool = False
    done: bool = False
    complete_cycle: int = _FAR_FUTURE
    value: Optional[int] = None
    addr: Optional[int] = None        # resolved memory address
    mem_size: int = 4
    store_data: Optional[int] = None
    trap: Optional[Trap] = None
    predicted_next: Optional[int] = None
    actual_next: Optional[int] = None
    flushed: bool = False
    #: load executed past >=1 unresolved older store address (LSQ)
    mem_speculative: bool = False
    #: seq of the store this load forwarded from; 0 = read memory
    fwd_seq: int = 0


class DynamicSim:
    """Execution-driven speculative Tomasulo + ROB simulator."""

    def __init__(self, program: Program, config: Optional[DynamicConfig] = None,
                 max_cycles: int = 100_000_000,
                 input_image: Optional[list[tuple[int, bytes]]] = None,
                 stats=None) -> None:
        self.program = program
        self.config = config or DynamicConfig()
        self.max_cycles = max_cycles
        #: optional observability sink (repro.obs); a non-collecting sink
        #: (NullStats) is hidden from the cycle loop entirely.
        self._stats = stats
        self._stats_hot = stats if stats is not None and stats.collecting \
            else None

        # Flatten the program: one global instruction array, 4 bytes per pc.
        self.flat: list[Instruction] = []
        self.entry_idx: dict[str, int] = {}
        self.block_idx: dict[tuple[str, str], int] = {}
        for proc in program.procedures.values():
            self.entry_idx[proc.name] = len(self.flat)
            for block in proc.blocks:
                self.block_idx[(proc.name, block.label)] = len(self.flat)
                for instr in block.instructions():
                    self.flat.append(instr)
        self._proc_of_idx: dict[int, str] = {}
        for proc in program.procedures.values():
            self._proc_of_idx[self.entry_idx[proc.name]] = proc.name
        # Branch targets are resolved within the owning procedure.
        self._owner: list[str] = []
        for proc in program.procedures.values():
            n = sum(1 for b in proc.blocks for _ in b.instructions())
            self._owner.extend([proc.name] * n)
        self._dec: list[_Dec] = [_Dec(self, i, instr)
                                 for i, instr in enumerate(self.flat)]

        nregs = max(program.max_register_index() + 1, 32)
        self.arch_regs = [0] * nregs
        self.mem = Memory(program.mem_size)
        self.mem.write_image(program.data.initial_image())
        if input_image:
            self.mem.write_image(input_image)
        self.arch_regs[SP.index] = program.mem_size - 64
        self.arch_regs[RA.index] = EXIT_TOKEN

        self.btb = BranchTargetBuffer(self.config.btb_entries,
                                      self.config.btb_ways)
        self.rename: dict[int, _Entry] = {}
        self.rob: list[_Entry] = []
        self.fetch_queue: list[_Entry] = []
        self.fetch_idx: Optional[int] = self.entry_idx[program.entry]
        self.fetch_stalled_on: Optional[_Entry] = None  # unresolved jr
        self._tokens: dict[int, int] = {}
        self._next_token = EXIT_TOKEN + _TOKEN_STRIDE
        self._seq = 0
        self.cycle = 0
        self._fetch_resume = 0
        self.halted = False
        self.result = ExecutionResult()
        # multiply/divide unit is unpipelined
        self._muldiv_free = 0
        self._mem_free = 0
        # Load/store queue (None = conservative legacy memory pipeline).
        cfg = self.config
        self.lsq = (LoadStoreQueue(cfg.lsq_size, cfg.stlf,
                                   cfg.memdep_speculate)
                    if cfg.lsq_size > 0 else None)
        self.memdep_squashes = 0
        self.memdep_stall_cycles = 0
        self._memdep_wait = False     # a ready load stalled on ordering
        self._memdep_victim = None    # load proven wrong by a store resolve

    # ------------------------------------------------------------ helpers
    def _pc(self, idx: int) -> int:
        return _PC_BASE + 4 * idx

    def _target_idx(self, idx: int, label: str) -> int:
        return self.block_idx[(self._owner[idx], label)]

    def _read_operand(self, ridx: int) -> tuple[Optional[_Entry], Optional[int]]:
        if ridx < 0:
            return (None, 0)
        producer = self.rename.get(ridx)
        if producer is None:
            return (None, self.arch_regs[ridx])
        if producer.done:
            return (None, producer.value if producer.value is not None
                    else self.arch_regs[ridx])
        return (producer, None)

    # ---------------------------------------------------------------- fetch
    def _predict_next(self, entry: _Entry) -> Optional[int]:
        """Where fetch continues after this instruction; None = stall."""
        dec = entry.dec
        idx = entry.idx
        if not dec.is_term:
            return idx + 1
        kind = dec.kind
        if kind == _K_HALT:
            return None
        if kind == _K_J or kind == _K_JAL:
            return dec.target_idx
        if kind == _K_CBR:
            hit = self.btb.lookup(dec.pc)
            if hit is None:
                entry.predicted_next = idx + 1  # fall through on a miss
            else:
                predict_taken, _ = hit
                entry.predicted_next = (dec.target_idx if predict_taken
                                        else idx + 1)
            return entry.predicted_next
        if kind == _K_JR:
            hit = self.btb.lookup(dec.pc)
            if hit is None:
                entry.predicted_next = None
                self.fetch_stalled_on = entry
                return None
            entry.predicted_next = hit[1]
            return entry.predicted_next
        raise ValueError(f"unhandled terminator {entry.instr}")

    def _fetch(self) -> None:
        if self.cycle < self._fetch_resume:
            return
        flat = self.flat
        dec = self._dec
        width = self.config.fetch_width
        if self.config.fetch_rate > width and not self.fetch_queue:
            # Variable fetch rate: widen fetch while the queue refills
            # after a redirect (or at start-up), then settle back to the
            # steady-state width once dispatch has something to chew on.
            width = self.config.fetch_rate
        for _ in range(width):
            if self.fetch_idx is None or self.fetch_stalled_on is not None:
                return
            if len(self.fetch_queue) >= self.config.fetch_buffer:
                return
            idx = self.fetch_idx
            if idx >= len(flat):
                self.fetch_idx = None
                return
            self._seq += 1
            entry = _Entry(seq=self._seq, idx=idx, instr=flat[idx],
                           dec=dec[idx], dispatch_cycle=-1)
            self.fetch_queue.append(entry)
            self.fetch_idx = self._predict_next(entry)
            if self.fetch_idx is not None and self.fetch_idx != idx + 1:
                # Redirected fetch: pay the taken-branch bubble.
                self._fetch_resume = (self.cycle + 1
                                      + self.config.taken_fetch_bubble)
                return

    # -------------------------------------------------------------- dispatch
    def _dispatch(self) -> None:
        cfg = self.config
        rename = self.rename
        # Done-ness cannot change mid-dispatch, so count once and track.
        in_flight = sum(1 for e in self.rob if not e.done)
        for _ in range(cfg.fetch_width):
            if not self.fetch_queue:
                return
            if len(self.rob) >= cfg.rob_entries:
                return
            if in_flight >= cfg.reservation_stations:
                return
            entry = self.fetch_queue[0]
            dec = entry.dec
            if (self.lsq is not None and (dec.is_load or dec.is_store)
                    and self.lsq.full()):
                return  # no free LSQ slot: memory ops stall dispatch
            if not cfg.rename:
                # Without renaming: one outstanding write per register.
                for di in dec.def_idxs:
                    producer = rename.get(di)
                    if producer is not None and not producer.done:
                        if self._stats_hot is not None:
                            self._stats_hot.rename_stall_events += 1
                        return
            self.fetch_queue.pop(0)
            entry.dispatch_cycle = self.cycle
            read = self._read_operand
            for ridx in dec.src_idxs:
                producer, value = read(ridx)
                entry.src_entries.append(producer)
                entry.src_values.append(value)
            for di in dec.def_idxs:
                rename[di] = entry
            self.rob.append(entry)
            if self.lsq is not None and (dec.is_load or dec.is_store):
                self.lsq.allocate(entry)
            in_flight += 1

    # ----------------------------------------------------------------- issue
    def _operands_ready(self, entry: _Entry) -> bool:
        for i, producer in enumerate(entry.src_entries):
            if producer is None:
                continue
            if producer.flushed:
                # Producer was squashed after we captured it; its register
                # now comes from the architectural file.
                entry.src_entries[i] = None
                entry.src_values[i] = self.arch_regs[entry.dec.src_idxs[i]]
                continue
            if not producer.done or producer.complete_cycle > self.cycle:
                return False
            entry.src_values[i] = producer.value
            entry.src_entries[i] = None
        return True

    def _earlier_stores_resolved(self, entry: _Entry) -> Optional[int]:
        """None if the load must wait; else the forwarded value or -1 for
        'read memory'."""
        seq = entry.seq
        for other in self.rob:
            if other.seq >= seq:
                break
            if other.dec.kind != _K_STORE:
                continue
            if other.addr is None:
                return None  # unknown earlier store address
        value = None
        for other in self.rob:
            if other.seq >= seq:
                break
            if other.dec.kind != _K_STORE or other.addr is None:
                continue
            o_lo, o_hi = other.addr, other.addr + other.mem_size
            lo, hi = entry.addr, entry.addr + entry.mem_size
            if o_hi <= lo or hi <= o_lo:
                continue
            if other.addr == entry.addr and other.mem_size == entry.mem_size:
                value = other.store_data
            else:
                return None  # partial overlap: wait for commit
        return -1 if value is None else value

    def _issue(self) -> None:
        issued = 0
        issue_width = self.config.issue_width
        cycle = self.cycle
        fu_used = [0, 0, 0]           # ALU, SHIFT, BRANCH
        operands_ready = self._operands_ready
        try_execute = self._try_execute
        self._memdep_wait = False
        for entry in self.rob:
            if issued >= issue_width:
                break
            if entry.started or entry.done:
                continue
            if entry.dispatch_cycle >= cycle:
                continue
            if not operands_ready(entry):
                continue
            if not try_execute(entry, fu_used):
                continue
            issued += 1
            if self._memdep_victim is not None:
                # The store that just executed resolved to an address a
                # younger speculated load already used.  Squash from that
                # load and stop issuing — the tail of self.rob we were
                # iterating has just been flushed.
                victim = self._memdep_victim
                self._memdep_victim = None
                self._memdep_squash(victim)
                break
        if self._memdep_wait:
            self.memdep_stall_cycles += 1

    def _try_execute(self, entry: _Entry, fu_used: list) -> bool:
        dec = entry.dec
        slot = dec.fu_slot
        if slot == _FU_ALU:
            if fu_used[_FU_ALU] >= 2:
                return False
        elif slot == _FU_SHIFT:
            if fu_used[_FU_SHIFT] >= 1:
                return False
        elif slot == _FU_BRANCH:
            if fu_used[_FU_BRANCH] >= 1:
                return False
        elif slot == _FU_MULDIV:
            if self._muldiv_free > self.cycle:
                return False
        elif slot == _FU_MEM:
            if self._mem_free > self.cycle:
                return False

        vals = entry.src_values
        kind = dec.kind
        if kind == _K_LOAD or kind == _K_STORE:
            base = vals[0] if kind == _K_LOAD else vals[1]
            entry.addr = (base + dec.imm) & 0xFFFFFFFF
            entry.mem_size = dec.mem_size
            if kind == _K_STORE:
                entry.store_data = vals[0]
                try:
                    self.mem.check(entry.addr, entry.mem_size)
                except Trap as trap:
                    entry.trap = trap
                self._finish(entry, 1)
                self._mem_free = self.cycle + 1
                if self.lsq is not None and self.lsq.speculate:
                    # The address just resolved: did any younger load
                    # already execute past it on a bad bet?
                    self._memdep_victim = self.lsq.aliasing_victim(entry)
                return True
            if self.lsq is not None:
                probe = self.lsq.probe_load(entry)
                if probe.wait:
                    self._memdep_wait = True
                    return False
                fwd = -1 if probe.value is None else probe.value
                entry.mem_speculative = probe.speculative
                entry.fwd_seq = probe.fwd_seq
            else:
                fwd = self._earlier_stores_resolved(entry)
                if fwd is None:
                    return False
            try:
                self.mem.check(entry.addr, entry.mem_size)
            except Trap as trap:
                entry.trap = trap
                self._finish(entry, dec.latency)
                self._mem_free = self.cycle + 1
                return True
            if fwd != -1:
                value = fwd & (0xFFFFFFFF if entry.mem_size == 4 else 0xFF)
            else:
                raw = self.mem.read_bytes(entry.addr, entry.mem_size)
                value = int.from_bytes(raw, "little")
            if dec.is_lb and value >= 0x80:
                value -= 0x100
            entry.value = value & 0xFFFFFFFF
            self._finish(entry, dec.latency)
            self._mem_free = self.cycle + 1
            return True

        if kind == _K_CBR:
            a = vals[0] if vals else 0
            b = vals[1] if len(vals) > 1 else 0
            taken = dec.cbr_fn(a, b)
            entry.actual_next = (dec.target_idx if taken else entry.idx + 1)
            entry.value = int(taken)
            self._finish(entry, 1)
            fu_used[_FU_BRANCH] += 1
            return True
        if kind == _K_JAL:
            token = self._next_token
            self._next_token += _TOKEN_STRIDE
            self._tokens[token] = entry.idx + 1
            entry.value = token
            self._finish(entry, 1)
            fu_used[_FU_BRANCH] += 1
            return True
        if kind == _K_JR:
            addr = vals[0]
            entry.actual_next = (self._tokens.get(addr, -1)
                                 if addr != EXIT_TOKEN else -2)
            self._finish(entry, 1)
            fu_used[_FU_BRANCH] += 1
            return True
        if kind in (_K_J, _K_HALT, _K_NOP, _K_PRINT):
            # J resolves at fetch; HALT/PRINT act at commit.
            if vals:
                entry.value = vals[0]
            self._finish(entry, 1)
            if slot == _FU_BRANCH:
                fu_used[_FU_BRANCH] += 1
            elif slot == _FU_ALU:
                fu_used[_FU_ALU] += 1
            return True

        fn = dec.alu_fn
        if fn is None:
            raise ValueError(f"execute_alu cannot evaluate {entry.instr}")
        a = vals[0] if vals else 0
        b = vals[1] if len(vals) > 1 else 0
        try:
            entry.value = fn(a, b, dec.imm)
        except Trap as trap:
            trap.instr_uid = entry.instr.uid
            entry.trap = trap
        latency = dec.latency
        self._finish(entry, latency)
        if slot == _FU_MULDIV:
            self._muldiv_free = self.cycle + latency
        elif slot == _FU_SHIFT:
            fu_used[_FU_SHIFT] += 1
        else:
            fu_used[_FU_ALU] += 1
        return True

    def _finish(self, entry: _Entry, latency: int) -> None:
        entry.started = True
        entry.complete_cycle = self.cycle + latency
        entry.done = True

    # -------------------------------------------------------------- writeback
    def _writeback(self) -> None:
        """Verify resolved control flow; flush on mispredictions."""
        cycle = self.cycle
        for entry in self.rob:
            if not entry.done or entry.complete_cycle != cycle:
                continue
            dec = entry.dec
            if dec.is_cbr:
                self.result.branch_count += 1
                taken = bool(entry.value)
                self.btb.update(dec.pc, taken, dec.target_idx)
                if entry.predicted_next != entry.actual_next:
                    self.result.mispredict_count += 1
                    self._flush_after(entry)
                    return
            elif dec.kind == _K_JR:
                if entry.actual_next == -2:
                    continue  # program exit; handled at commit
                self.btb.update(dec.pc, True,
                                entry.actual_next if entry.actual_next >= 0
                                else 0)
                if self.fetch_stalled_on is entry:
                    self.fetch_stalled_on = None
                    self.fetch_idx = (entry.actual_next
                                      if entry.actual_next >= 0 else None)
                    self._fetch_resume = (self.cycle + 1
                                          + self.config.taken_fetch_bubble)
                elif entry.predicted_next != entry.actual_next:
                    self.result.mispredict_count += 1
                    self._flush_after(entry)
                    return

    def _squash_younger(self, keep_seq: int,
                        restart_idx: Optional[int]) -> None:
        """Shared recovery path: flush every entry with ``seq > keep_seq``
        and refetch from ``restart_idx`` after the restart penalty.  Both
        branch mispredictions and memory-order violations land here."""
        if self._stats_hot is not None:
            self._stats_hot.flushes += 1
        keep: list[_Entry] = []
        for other in self.rob:
            if other.seq <= keep_seq:
                keep.append(other)
            else:
                other.flushed = True
        self.rob = keep
        for e in self.fetch_queue:
            e.flushed = True
        self.fetch_queue.clear()
        self.fetch_stalled_on = None
        if self.lsq is not None:
            self.lsq.drop_flushed()
        self._memdep_victim = None
        # Rebuild the rename table from the surviving entries.
        self.rename = {}
        for other in self.rob:
            for di in other.dec.def_idxs:
                self.rename[di] = other
        self.fetch_idx = restart_idx
        self._fetch_resume = self.cycle + self.config.mispredict_restart

    def _flush_after(self, entry: _Entry) -> None:
        restart = entry.actual_next if entry.actual_next is not None \
            and entry.actual_next >= 0 else None
        self._squash_younger(entry.seq, restart)

    def _memdep_squash(self, victim: _Entry) -> None:
        """A resolved store aliased an already-executed younger load:
        squash the load and everything younger, refetch from the load."""
        self.memdep_squashes += 1
        self._squash_younger(victim.seq - 1, victim.idx)

    # ----------------------------------------------------------------- commit
    def _commit(self) -> None:
        result = self.result
        arch_regs = self.arch_regs
        rename = self.rename
        cycle = self.cycle
        for _ in range(self.config.commit_width):
            if not self.rob:
                return
            entry = self.rob[0]
            if not entry.done or entry.complete_cycle >= cycle:
                return
            dec = entry.dec
            if entry.trap is not None:
                entry.trap.instr_uid = entry.instr.uid
                result.trap = entry.trap
                result.cycle_count = cycle
                raise entry.trap
            kind = dec.kind
            if kind == _K_HALT or (kind == _K_JR
                                   and entry.actual_next == -2):
                self.halted = True
                return
            if kind == _K_JR and entry.actual_next == -1:
                trap = Trap(TrapKind.ADDRESS_ERROR, addr=entry.src_values[0])
                result.trap = trap
                raise trap
            self.rob.pop(0)
            if self.lsq is not None and (kind == _K_LOAD
                                         or kind == _K_STORE):
                self.lsq.retire(entry)
            if kind == _K_PRINT:
                result.output.append(s32(entry.value))
            elif kind == _K_STORE:
                data = (entry.store_data & 0xFFFFFFFF).to_bytes(4, "little")
                for i in range(entry.mem_size):
                    self.mem.store_byte(entry.addr + i, data[i])
            elif entry.value is not None and dec.dst_idx >= 0:
                arch_regs[dec.dst_idx] = entry.value
            for di in dec.def_idxs:
                if rename.get(di) is entry:
                    del rename[di]
            if kind != _K_NOP:
                result.instr_count += 1
            else:
                result.nop_count += 1

    # -------------------------------------------------------------------- run
    def run(self) -> ExecutionResult:
        commit = self._commit
        writeback = self._writeback
        issue = self._issue
        dispatch = self._dispatch
        fetch = self._fetch
        max_cycles = self.max_cycles
        st = self._stats_hot
        lsq = self.lsq
        while not self.halted:
            self.cycle += 1
            if self.cycle > max_cycles:
                raise RuntimeError(f"exceeded {max_cycles} cycles")
            if lsq is not None:
                lsq.occupancy_sum += len(lsq.entries)
            if st is not None:
                st.note_dynamic_cycle(len(self.rob), len(self.fetch_queue),
                                      self.cycle < self._fetch_resume)
            commit()
            if self.halted:
                break
            writeback()
            issue()
            dispatch()
            fetch()
            if (not self.rob and not self.fetch_queue
                    and self.fetch_idx is None
                    and self.fetch_stalled_on is None):
                break
        self.result.cycle_count = self.cycle
        if self._stats is not None:
            self._stats.finalize_dynamic(self)
            self.result.sim_stats = self._stats
        return self.result


def run_dynamic(program: Program, rename: bool = True,
                **kwargs) -> ExecutionResult:
    config = DynamicConfig(rename=rename)
    return DynamicSim(program, config=config, **kwargs).run()
