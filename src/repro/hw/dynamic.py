"""The dynamically-scheduled superscalar comparator of Figure 9.

Configuration straight from Section 4.3.2: fetch/decode two instructions per
cycle, 30 reservation-station locations, a 16-entry reorder buffer
implementing speculative out-of-order execution with in-order commit, a
2048-entry 4-way set-associative branch target buffer, the same functional
units as the statically-scheduled machine (two integer ALUs, one shifter,
one branch unit, one multiply/divide unit, one memory port), and up to six
instructions issued to units per cycle.  Register renaming is optional —
Figure 9 reports the machine with and without it; without renaming a
register may have only one write in flight, so anti- and output-dependences
stall dispatch.

The machine consumes the optimized, register-allocated IR directly (the
same input the static schedulers see).  It has no architectural delay
slots — branch effects are handled by speculative fetch plus flush on
misprediction, with stores, PRINTs, and traps deferred to commit so
wrong-path execution can never become architectural.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.hw.alu import branch_taken, execute_alu, s32
from repro.hw.btb import BranchTargetBuffer
from repro.hw.exceptions import ExecutionResult, Trap, TrapKind
from repro.hw.functional import EXIT_TOKEN
from repro.hw.memory import Memory
from repro.isa.instruction import Instruction
from repro.isa.opcodes import FU, Opcode
from repro.isa.registers import RA, SP, Reg
from repro.program.procedure import Program

_TOKEN_STRIDE = 16
_PC_BASE = 0x0040_0000
_FAR_FUTURE = 1 << 60


@dataclass
class DynamicConfig:
    fetch_width: int = 2
    commit_width: int = 2
    issue_width: int = 6              # dispatch-to-FU per cycle
    rob_entries: int = 16
    reservation_stations: int = 30
    rename: bool = True
    fetch_buffer: int = 8
    btb_entries: int = 2048
    btb_ways: int = 4
    #: fetch bubble after any taken (non-sequential) control transfer —
    #: the single-ported instruction fetch of the era cannot follow a
    #: redirect in the same cycle
    taken_fetch_bubble: int = 1
    #: front-end refill after a misprediction flush
    mispredict_restart: int = 2


@dataclass
class _Entry:
    seq: int
    idx: int                          # flat instruction index
    instr: Instruction
    dispatch_cycle: int
    src_entries: list[Optional["_Entry"]]
    src_values: list[Optional[int]]
    started: bool = False
    done: bool = False
    complete_cycle: int = _FAR_FUTURE
    value: Optional[int] = None
    addr: Optional[int] = None        # resolved memory address
    mem_size: int = 4
    store_data: Optional[int] = None
    trap: Optional[Trap] = None
    predicted_next: Optional[int] = None
    actual_next: Optional[int] = None
    flushed: bool = False


class DynamicSim:
    """Execution-driven speculative Tomasulo + ROB simulator."""

    def __init__(self, program: Program, config: Optional[DynamicConfig] = None,
                 max_cycles: int = 100_000_000,
                 input_image: Optional[list[tuple[int, bytes]]] = None) -> None:
        self.program = program
        self.config = config or DynamicConfig()
        self.max_cycles = max_cycles

        # Flatten the program: one global instruction array, 4 bytes per pc.
        self.flat: list[Instruction] = []
        self.entry_idx: dict[str, int] = {}
        self.block_idx: dict[tuple[str, str], int] = {}
        for proc in program.procedures.values():
            self.entry_idx[proc.name] = len(self.flat)
            for block in proc.blocks:
                self.block_idx[(proc.name, block.label)] = len(self.flat)
                for instr in block.instructions():
                    self.flat.append(instr)
        self._proc_of_idx: dict[int, str] = {}
        for proc in program.procedures.values():
            self._proc_of_idx[self.entry_idx[proc.name]] = proc.name
        # Branch targets are resolved within the owning procedure.
        self._owner: list[str] = []
        for proc in program.procedures.values():
            n = sum(1 for b in proc.blocks for _ in b.instructions())
            self._owner.extend([proc.name] * n)

        nregs = max(program.max_register_index() + 1, 32)
        self.arch_regs = [0] * nregs
        self.mem = Memory(program.mem_size)
        self.mem.write_image(program.data.initial_image())
        if input_image:
            self.mem.write_image(input_image)
        self.arch_regs[SP.index] = program.mem_size - 64
        self.arch_regs[RA.index] = EXIT_TOKEN

        self.btb = BranchTargetBuffer(self.config.btb_entries,
                                      self.config.btb_ways)
        self.rename: dict[int, _Entry] = {}
        self.rob: list[_Entry] = []
        self.fetch_queue: list[_Entry] = []
        self.fetch_idx: Optional[int] = self.entry_idx[program.entry]
        self.fetch_stalled_on: Optional[_Entry] = None  # unresolved jr
        self._tokens: dict[int, int] = {}
        self._next_token = EXIT_TOKEN + _TOKEN_STRIDE
        self._seq = 0
        self.cycle = 0
        self._fetch_resume = 0
        self.halted = False
        self.result = ExecutionResult()
        # multiply/divide unit is unpipelined
        self._muldiv_free = 0
        self._mem_free = 0

    # ------------------------------------------------------------ helpers
    def _pc(self, idx: int) -> int:
        return _PC_BASE + 4 * idx

    def _target_idx(self, idx: int, label: str) -> int:
        return self.block_idx[(self._owner[idx], label)]

    def _read_operand(self, reg: Reg) -> tuple[Optional[_Entry], Optional[int]]:
        if reg.is_zero:
            return (None, 0)
        producer = self.rename.get(reg.index)
        if producer is None:
            return (None, self.arch_regs[reg.index])
        if producer.done:
            return (None, producer.value if producer.value is not None
                    else self.arch_regs[reg.index])
        return (producer, None)

    # ---------------------------------------------------------------- fetch
    def _predict_next(self, entry: _Entry) -> Optional[int]:
        """Where fetch continues after this instruction; None = stall."""
        instr = entry.instr
        idx = entry.idx
        op = instr.op
        if not instr.is_terminator:
            return idx + 1
        if op is Opcode.HALT:
            return None
        if op is Opcode.J:
            return self._target_idx(idx, instr.target)
        if op is Opcode.JAL:
            return self.entry_idx[instr.target]
        if op.is_cond_branch:
            hit = self.btb.lookup(self._pc(idx))
            taken_target = self._target_idx(idx, instr.target)
            if hit is None:
                entry.predicted_next = idx + 1  # fall through on a miss
            else:
                predict_taken, _ = hit
                entry.predicted_next = taken_target if predict_taken else idx + 1
            return entry.predicted_next
        if op is Opcode.JR:
            hit = self.btb.lookup(self._pc(idx))
            if hit is None:
                entry.predicted_next = None
                self.fetch_stalled_on = entry
                return None
            entry.predicted_next = hit[1]
            return entry.predicted_next
        raise ValueError(f"unhandled terminator {instr}")

    def _fetch(self) -> None:
        if self.cycle < self._fetch_resume:
            return
        for _ in range(self.config.fetch_width):
            if self.fetch_idx is None or self.fetch_stalled_on is not None:
                return
            if len(self.fetch_queue) >= self.config.fetch_buffer:
                return
            idx = self.fetch_idx
            if idx >= len(self.flat):
                self.fetch_idx = None
                return
            instr = self.flat[idx]
            self._seq += 1
            entry = _Entry(seq=self._seq, idx=idx, instr=instr,
                           dispatch_cycle=-1, src_entries=[], src_values=[])
            self.fetch_queue.append(entry)
            self.fetch_idx = self._predict_next(entry)
            if self.fetch_idx is not None and self.fetch_idx != idx + 1:
                # Redirected fetch: pay the taken-branch bubble.
                self._fetch_resume = (self.cycle + 1
                                      + self.config.taken_fetch_bubble)
                return

    # -------------------------------------------------------------- dispatch
    def _dispatch(self) -> None:
        cfg = self.config
        for _ in range(cfg.fetch_width):
            if not self.fetch_queue:
                return
            if len(self.rob) >= cfg.rob_entries:
                return
            in_flight = sum(1 for e in self.rob if not e.done)
            if in_flight >= cfg.reservation_stations:
                return
            entry = self.fetch_queue[0]
            instr = entry.instr
            if not cfg.rename:
                # Without renaming: one outstanding write per register.
                for d in instr.defs():
                    if d.index in self.rename and not self.rename[d.index].done:
                        return
            self.fetch_queue.pop(0)
            entry.dispatch_cycle = self.cycle
            for reg in instr.srcs:
                producer, value = self._read_operand(reg)
                entry.src_entries.append(producer)
                entry.src_values.append(value)
            for d in instr.defs():
                self.rename[d.index] = entry
            self.rob.append(entry)

    # ----------------------------------------------------------------- issue
    def _operands_ready(self, entry: _Entry) -> bool:
        for i, producer in enumerate(entry.src_entries):
            if producer is None:
                continue
            if producer.flushed:
                # Producer was squashed after we captured it; its register
                # now comes from the architectural file.
                reg = entry.instr.srcs[i]
                entry.src_entries[i] = None
                entry.src_values[i] = self.arch_regs[reg.index]
                continue
            if not producer.done or producer.complete_cycle > self.cycle:
                return False
            entry.src_values[i] = producer.value
            entry.src_entries[i] = None
        return True

    def _earlier_stores_resolved(self, entry: _Entry) -> Optional[int]:
        """None if the load must wait; else the forwarded value or -1 for
        'read memory'."""
        for other in self.rob:
            if other.seq >= entry.seq:
                break
            if not other.instr.op.is_store:
                continue
            if other.addr is None:
                return None  # unknown earlier store address
        value = None
        for other in self.rob:
            if other.seq >= entry.seq:
                break
            if not other.instr.op.is_store or other.addr is None:
                continue
            o_lo, o_hi = other.addr, other.addr + other.mem_size
            lo, hi = entry.addr, entry.addr + entry.mem_size
            if o_hi <= lo or hi <= o_lo:
                continue
            if other.addr == entry.addr and other.mem_size == entry.mem_size:
                value = other.store_data
            else:
                return None  # partial overlap: wait for commit
        return -1 if value is None else value

    def _issue(self) -> None:
        issued = 0
        fu_used = {FU.ALU: 0, FU.SHIFT: 0, FU.BRANCH: 0}
        for entry in self.rob:
            if issued >= self.config.issue_width:
                return
            if entry.started or entry.done:
                continue
            if entry.dispatch_cycle >= self.cycle:
                continue
            if not self._operands_ready(entry):
                continue
            if not self._try_execute(entry, fu_used):
                continue
            issued += 1

    def _try_execute(self, entry: _Entry, fu_used: dict) -> bool:
        instr = entry.instr
        op = instr.op
        fu = op.fu
        if fu is FU.ALU and fu_used[FU.ALU] >= 2:
            return False
        if fu is FU.SHIFT and fu_used[FU.SHIFT] >= 1:
            return False
        if fu is FU.BRANCH and fu_used[FU.BRANCH] >= 1:
            return False
        if fu is FU.MULDIV and self._muldiv_free > self.cycle:
            return False
        if fu is FU.MEM and self._mem_free > self.cycle:
            return False

        vals = entry.src_values
        if op.is_mem:
            base = vals[0] if op.is_load else vals[1]
            entry.addr = (base + (instr.imm or 0)) & 0xFFFFFFFF
            entry.mem_size = 4 if op in (Opcode.LW, Opcode.SW) else 1
            if op.is_store:
                entry.store_data = vals[0]
                try:
                    self.mem.check(entry.addr, entry.mem_size)
                except Trap as trap:
                    entry.trap = trap
                self._finish(entry, 1)
                self._mem_free = self.cycle + 1
                return True
            fwd = self._earlier_stores_resolved(entry)
            if fwd is None:
                return False
            try:
                self.mem.check(entry.addr, entry.mem_size)
            except Trap as trap:
                entry.trap = trap
                self._finish(entry, op.latency)
                self._mem_free = self.cycle + 1
                return True
            if fwd != -1:
                value = fwd & (0xFFFFFFFF if entry.mem_size == 4 else 0xFF)
            else:
                raw = self.mem.read_bytes(entry.addr, entry.mem_size)
                value = int.from_bytes(raw, "little")
            if op is Opcode.LB and value >= 0x80:
                value -= 0x100
            entry.value = value & 0xFFFFFFFF
            self._finish(entry, op.latency)
            self._mem_free = self.cycle + 1
            return True

        if op.is_cond_branch:
            taken = branch_taken(instr, *vals)
            entry.actual_next = (self._target_idx(entry.idx, instr.target)
                                 if taken else entry.idx + 1)
            entry.value = int(taken)
            self._finish(entry, 1)
            fu_used[FU.BRANCH] += 1
            return True
        if op is Opcode.JAL:
            token = self._next_token
            self._next_token += _TOKEN_STRIDE
            self._tokens[token] = entry.idx + 1
            entry.value = token
            self._finish(entry, 1)
            fu_used[FU.BRANCH] += 1
            return True
        if op is Opcode.JR:
            addr = vals[0]
            entry.actual_next = (self._tokens.get(addr, -1)
                                 if addr != EXIT_TOKEN else -2)
            self._finish(entry, 1)
            fu_used[FU.BRANCH] += 1
            return True
        if op in (Opcode.J, Opcode.HALT, Opcode.NOP, Opcode.PRINT):
            # J resolves at fetch; HALT/PRINT act at commit.
            if vals:
                entry.value = vals[0]
            self._finish(entry, 1)
            if op.fu is FU.BRANCH:
                fu_used[FU.BRANCH] += 1
            elif op.fu is FU.ALU:
                fu_used[FU.ALU] += 1
            return True

        try:
            entry.value = execute_alu(instr, *vals)
        except Trap as trap:
            entry.trap = trap
        latency = op.latency
        self._finish(entry, latency)
        if fu is FU.MULDIV:
            self._muldiv_free = self.cycle + latency
        elif fu is FU.SHIFT:
            fu_used[FU.SHIFT] += 1
        else:
            fu_used[FU.ALU] += 1
        return True

    def _finish(self, entry: _Entry, latency: int) -> None:
        entry.started = True
        entry.complete_cycle = self.cycle + latency
        entry.done = True

    # -------------------------------------------------------------- writeback
    def _writeback(self) -> None:
        """Verify resolved control flow; flush on mispredictions."""
        for entry in self.rob:
            if not entry.done or entry.complete_cycle != self.cycle:
                continue
            instr = entry.instr
            if instr.op.is_cond_branch:
                self.result.branch_count += 1
                taken = bool(entry.value)
                self.btb.update(self._pc(entry.idx), taken,
                                self._target_idx(entry.idx, instr.target))
                if entry.predicted_next != entry.actual_next:
                    self.result.mispredict_count += 1
                    self._flush_after(entry)
                    return
            elif instr.op is Opcode.JR:
                if entry.actual_next == -2:
                    continue  # program exit; handled at commit
                self.btb.update(self._pc(entry.idx), True,
                                entry.actual_next if entry.actual_next >= 0
                                else 0)
                if self.fetch_stalled_on is entry:
                    self.fetch_stalled_on = None
                    self.fetch_idx = (entry.actual_next
                                      if entry.actual_next >= 0 else None)
                    self._fetch_resume = (self.cycle + 1
                                          + self.config.taken_fetch_bubble)
                elif entry.predicted_next != entry.actual_next:
                    self.result.mispredict_count += 1
                    self._flush_after(entry)
                    return

    def _flush_after(self, entry: _Entry) -> None:
        keep: list[_Entry] = []
        for other in self.rob:
            if other.seq <= entry.seq:
                keep.append(other)
            else:
                other.flushed = True
        self.rob = keep
        for e in self.fetch_queue:
            e.flushed = True
        self.fetch_queue.clear()
        self.fetch_stalled_on = None
        # Rebuild the rename table from the surviving entries.
        self.rename = {}
        for other in self.rob:
            for d in other.instr.defs():
                self.rename[d.index] = other
        self.fetch_idx = entry.actual_next if entry.actual_next is not None \
            and entry.actual_next >= 0 else None
        self._fetch_resume = self.cycle + self.config.mispredict_restart

    # ----------------------------------------------------------------- commit
    def _commit(self) -> None:
        for _ in range(self.config.commit_width):
            if not self.rob:
                return
            entry = self.rob[0]
            if not entry.done or entry.complete_cycle >= self.cycle:
                return
            instr = entry.instr
            if entry.trap is not None:
                entry.trap.instr_uid = instr.uid
                self.result.trap = entry.trap
                self.result.cycle_count = self.cycle
                raise entry.trap
            op = instr.op
            if op is Opcode.HALT or (op is Opcode.JR
                                     and entry.actual_next == -2):
                self.halted = True
                return
            if op is Opcode.JR and entry.actual_next == -1:
                trap = Trap(TrapKind.ADDRESS_ERROR, addr=entry.src_values[0])
                self.result.trap = trap
                raise trap
            self.rob.pop(0)
            if op is Opcode.PRINT:
                self.result.output.append(s32(entry.value))
            elif op.is_store:
                data = (entry.store_data & 0xFFFFFFFF).to_bytes(4, "little")
                for i in range(entry.mem_size):
                    self.mem.store_byte(entry.addr + i, data[i])
            elif entry.value is not None and instr.dst is not None \
                    and not instr.dst.is_zero:
                self.arch_regs[instr.dst.index] = entry.value
            for d in instr.defs():
                if self.rename.get(d.index) is entry:
                    del self.rename[d.index]
            if op is not Opcode.NOP:
                self.result.instr_count += 1
            else:
                self.result.nop_count += 1

    # -------------------------------------------------------------------- run
    def run(self) -> ExecutionResult:
        while not self.halted:
            self.cycle += 1
            if self.cycle > self.max_cycles:
                raise RuntimeError(f"exceeded {self.max_cycles} cycles")
            self._commit()
            if self.halted:
                break
            self._writeback()
            self._issue()
            self._dispatch()
            self._fetch()
            if (not self.rob and not self.fetch_queue
                    and self.fetch_idx is None
                    and self.fetch_stalled_on is None):
                break
        self.result.cycle_count = self.cycle
        return self.result


def run_dynamic(program: Program, rename: bool = True,
                **kwargs) -> ExecutionResult:
    config = DynamicConfig(rename=rename)
    return DynamicSim(program, config=config, **kwargs).run()
