"""Shadow register files — the speculative register state of Section 4.

Three organisations, matching the machine models:

* :class:`MultiLevelShadowFile` — one shadow location per register per
  boosting level (the "full support" design of Section 4.1, used by Boost7).
  Implemented the way the paper describes: a pool of register/counter pairs
  per architectural register; a commit logically shifts every level down by
  decrementing counters.
* :class:`SingleShadowFile` — Option 2 (Boost1/MinBoost3/Squashing): one
  shadow location per register with a counter holding the boosting level of
  the value.  Two *different-level* outstanding boosted writes to one
  register cannot coexist — attempting it raises
  :class:`ShadowConflictError`, which is how scheduler bugs become loud
  simulator failures (Figure 6b is impossible, 6c is required).
* :class:`NullShadowFile` — the base machine: boosted writes are a
  programming error.

Read semantics: a reader executing with boosting level *L* sees the future
value with the **highest level ≤ L**, falling back to the sequential
register.  A sequential reader (L = 0) never sees speculative state.
"""

from __future__ import annotations

from typing import Optional


class ShadowConflictError(RuntimeError):
    """The schedule required more shadow storage than the hardware has."""


class ShadowFileBase:
    """Interface shared by all shadow register file organisations."""

    def read(self, reg: int, level: int) -> Optional[int]:
        """Speculative value visible to a level-``level`` reader, or None."""
        raise NotImplementedError

    def write(self, reg: int, level: int, value: int) -> None:
        raise NotImplementedError

    def commit(self) -> dict[int, int]:
        """A correctly-predicted branch executed: shift every level down.
        Returns the level-1 values that must update the sequential state."""
        raise NotImplementedError

    def squash(self) -> None:
        """An incorrectly-predicted branch executed: discard everything."""
        raise NotImplementedError

    def outstanding(self) -> int:
        """Number of valid shadow values (for tests/stats)."""
        raise NotImplementedError


class NullShadowFile(ShadowFileBase):
    def read(self, reg: int, level: int) -> Optional[int]:
        return None

    def write(self, reg: int, level: int, value: int) -> None:
        raise ShadowConflictError("this machine has no shadow register file")

    def commit(self) -> dict[int, int]:
        return {}

    def squash(self) -> None:
        pass

    def outstanding(self) -> int:
        return 0


class MultiLevelShadowFile(ShadowFileBase):
    """Distinct storage per level (Section 4.1, Figure 6b is schedulable)."""

    def __init__(self, levels: int) -> None:
        if levels < 1:
            raise ValueError("need at least one level")
        self.levels = levels
        self._state: list[dict[int, int]] = [{} for _ in range(levels + 1)]

    def _check_level(self, level: int) -> None:
        if not 1 <= level <= self.levels:
            raise ShadowConflictError(
                f"boost level {level} exceeds hardware maximum {self.levels}")

    def read(self, reg: int, level: int) -> Optional[int]:
        for lvl in range(min(level, self.levels), 0, -1):
            if reg in self._state[lvl]:
                return self._state[lvl][reg]
        return None

    def write(self, reg: int, level: int, value: int) -> None:
        self._check_level(level)
        self._state[level][reg] = value

    def commit(self) -> dict[int, int]:
        committed = self._state[1]
        self._state[1:] = self._state[2:] + [{}]
        return committed

    def squash(self) -> None:
        for level in range(1, self.levels + 1):
            self._state[level] = {}

    def outstanding(self) -> int:
        return sum(len(s) for s in self._state[1:])


class SingleShadowFile(ShadowFileBase):
    """One shadow register + counter + valid bit per sequential register
    (Option 2, Figure 7).  Holds at most one outstanding level per register."""

    def __init__(self, levels: int) -> None:
        if levels < 1:
            raise ValueError("need at least one level")
        self.levels = levels
        self._value: dict[int, int] = {}
        self._count: dict[int, int] = {}

    def read(self, reg: int, level: int) -> Optional[int]:
        if reg in self._value and self._count[reg] <= level:
            return self._value[reg]
        return None

    def write(self, reg: int, level: int, value: int) -> None:
        if not 1 <= level <= self.levels:
            raise ShadowConflictError(
                f"boost level {level} exceeds hardware maximum {self.levels}")
        if reg in self._value and self._count[reg] != level:
            raise ShadowConflictError(
                f"register r{reg} already holds an outstanding boosted value "
                f"at level {self._count[reg]}; cannot also hold level {level} "
                "in a single shadow register file (Figure 6)")
        self._value[reg] = value
        self._count[reg] = level

    def commit(self) -> dict[int, int]:
        committed: dict[int, int] = {}
        for reg in list(self._value):
            self._count[reg] -= 1
            if self._count[reg] == 0:
                committed[reg] = self._value.pop(reg)
                del self._count[reg]
        return committed

    def squash(self) -> None:
        self._value.clear()
        self._count.clear()

    def outstanding(self) -> int:
        return len(self._value)


def make_shadow_file(max_level: int, multi: bool) -> ShadowFileBase:
    """Factory keyed on a :class:`~repro.sched.boostmodel.BoostModel`."""
    if max_level <= 0:
        return NullShadowFile()
    if multi:
        return MultiLevelShadowFile(max_level)
    return SingleShadowFile(max_level)
