"""Branch target buffer: 2048 entries, 4-way set associative (Section 4.3.2).

Each entry holds a tag, a predicted target, and a 2-bit saturating direction
counter.  LRU replacement within a set.  The dynamically-scheduled machine
uses it for conditional-branch direction prediction and for indirect-jump
(return) target prediction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class _Way:
    tag: int = -1
    target: int = 0
    counter: int = 0        # 0..3; >=2 predicts taken
    lru: int = 0


class BranchTargetBuffer:
    def __init__(self, entries: int = 2048, ways: int = 4) -> None:
        if entries % ways != 0:
            raise ValueError("entries must divide evenly into ways")
        self.sets = entries // ways
        self.ways = ways
        self._table: list[list[_Way]] = [
            [_Way() for _ in range(ways)] for _ in range(self.sets)]
        self._tick = 0
        self.hits = 0
        self.misses = 0

    def _index(self, pc: int) -> int:
        return (pc >> 2) % self.sets

    def _tag(self, pc: int) -> int:
        return pc >> 2

    def _find(self, pc: int) -> Optional[_Way]:
        tag = self._tag(pc)
        for way in self._table[self._index(pc)]:
            if way.tag == tag:
                return way
        return None

    # ----------------------------------------------------------------- lookup
    def lookup(self, pc: int) -> Optional[tuple[bool, int]]:
        """(predict_taken, predicted_target) on a hit, else None (machines
        fall through on a miss)."""
        self._tick += 1
        way = self._find(pc)
        if way is None:
            self.misses += 1
            return None
        self.hits += 1
        way.lru = self._tick
        return (way.counter >= 2, way.target)

    # ------------------------------------------------------------------ train
    def update(self, pc: int, taken: bool, target: int) -> None:
        """Train on a resolved branch (or an indirect jump, taken=True)."""
        self._tick += 1
        way = self._find(pc)
        if way is None:
            if not taken:
                return  # only taken branches allocate
            ways = self._table[self._index(pc)]
            way = min(ways, key=lambda w: w.lru)
            way.tag = self._tag(pc)
            way.counter = 2
            way.target = target
            way.lru = self._tick
            return
        way.lru = self._tick
        if taken:
            way.counter = min(3, way.counter + 1)
            way.target = target
        else:
            way.counter = max(0, way.counter - 1)
