"""Hardware models: memory, traps, shadow state, and the machine simulators."""

from repro.hw.alu import MASK32, branch_taken, execute_alu, s32, u32
from repro.hw.btb import BranchTargetBuffer
from repro.hw.cost import (
    RegisterFileCost, boosting_file, decoder_transistors, plain_file,
    section_432_comparison, select_inputs,
)
from repro.hw.dynamic import DynamicConfig, DynamicSim, run_dynamic
from repro.hw.errors import (
    CycleLimitExceeded, ScheduleError, SimulationError, WallClockExceeded,
)
from repro.hw.exceptions import (
    ExceptionShiftBuffer, ExecutionResult, PendingBoostException, Trap,
    TrapKind,
)
from repro.hw.functional import (
    BranchProfile, EXIT_TOKEN, FuelExhausted, FunctionalSim, profile_program,
    run_functional,
)
from repro.hw.memory import Memory
from repro.hw.shadow import (
    MultiLevelShadowFile, NullShadowFile, ShadowConflictError,
    SingleShadowFile, make_shadow_file,
)
from repro.hw.storebuf import ShadowStoreBuffer, StoreBufferError
from repro.hw.superscalar import SuperscalarSim, run_scheduled

__all__ = [
    "BranchProfile", "BranchTargetBuffer", "CycleLimitExceeded",
    "DynamicConfig", "DynamicSim", "EXIT_TOKEN", "ExceptionShiftBuffer",
    "ExecutionResult", "FuelExhausted", "FunctionalSim", "MASK32", "Memory",
    "MultiLevelShadowFile", "NullShadowFile", "PendingBoostException",
    "RegisterFileCost", "ScheduleError", "ShadowConflictError",
    "ShadowStoreBuffer", "SimulationError", "SingleShadowFile",
    "StoreBufferError", "SuperscalarSim", "Trap", "TrapKind",
    "WallClockExceeded", "boosting_file", "branch_taken",
    "decoder_transistors", "execute_alu", "make_shadow_file", "plain_file",
    "profile_program", "run_dynamic", "run_functional", "run_scheduled",
    "s32", "section_432_comparison", "select_inputs", "u32",
]
