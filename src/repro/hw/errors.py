"""Structured simulation-failure hierarchy.

Everything that can go wrong *inside* a machine model — as opposed to a
program-level :class:`~repro.hw.exceptions.Trap` — derives from
:class:`SimulationError`, so harness layers can isolate a failing run
without blindly catching ``Exception``:

* :class:`ScheduleError` — the schedule asked the hardware for something it
  cannot do (e.g. a boosted store on a model without a shadow store buffer);
* :class:`CycleLimitExceeded` / :class:`FuelExhausted` — the watchdog cycle
  or step budget ran out, almost certainly an infinite loop;
* :class:`WallClockExceeded` — the optional real-time watchdog fired.
"""

from __future__ import annotations


class SimulationError(RuntimeError):
    """Base class: a machine model could not complete a run."""


class ScheduleError(SimulationError):
    """The schedule asked the hardware for something it cannot do."""


class CycleLimitExceeded(SimulationError):
    """The timing simulator ran past its ``max_cycles`` watchdog."""


class FuelExhausted(SimulationError):
    """The functional step budget ran out — almost certainly an infinite
    loop."""


class WallClockExceeded(SimulationError):
    """A simulation exceeded its wall-clock time limit."""
