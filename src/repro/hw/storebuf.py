"""Shadow store buffer: speculative memory state, byte-accurate per level.

Boosted stores are buffered here instead of touching memory; boosted loads
snoop the buffer (highest level ≤ their own wins, else memory).  A commit
writes the level-1 bytes to memory and shifts the deeper levels down; a
squash discards everything (Section 2.2's separation of sequential and
speculative state, applied to memory).
"""

from __future__ import annotations

from repro.hw.memory import Memory


class StoreBufferError(RuntimeError):
    pass


class ShadowStoreBuffer:
    def __init__(self, levels: int) -> None:
        if levels < 1:
            raise ValueError("need at least one level")
        self.levels = levels
        self._bytes: list[dict[int, int]] = [{} for _ in range(levels + 1)]

    # ----------------------------------------------------------------- writes
    def store(self, level: int, addr: int, data: bytes) -> None:
        if not 1 <= level <= self.levels:
            raise StoreBufferError(
                f"boost level {level} exceeds store buffer depth {self.levels}")
        for i, byte in enumerate(data):
            self._bytes[level][addr + i] = byte

    # ------------------------------------------------------------------ reads
    def load_byte(self, addr: int, level: int) -> int | None:
        """Buffered byte visible to a level-``level`` reader, else None."""
        for lvl in range(min(level, self.levels), 0, -1):
            if addr in self._bytes[lvl]:
                return self._bytes[lvl][addr]
        return None

    def load(self, mem: Memory, addr: int, nbytes: int, level: int) -> bytes:
        """``nbytes`` at ``addr`` as seen by a level-``level`` reader:
        buffered bytes merged over memory."""
        raw = bytearray(mem.read_bytes(addr, nbytes))
        if level > 0:
            for i in range(nbytes):
                hit = self.load_byte(addr + i, level)
                if hit is not None:
                    raw[i] = hit
        return bytes(raw)

    # ----------------------------------------------------------- commit/squash
    def commit(self, mem: Memory) -> int:
        """Write level-1 bytes to memory, shift deeper levels down.  Returns
        the number of bytes retired."""
        retiring = self._bytes[1]
        for addr, byte in retiring.items():
            mem.store_byte(addr, byte)
        n = len(retiring)
        self._bytes[1:] = self._bytes[2:] + [{}]
        return n

    def squash(self) -> None:
        for level in range(1, self.levels + 1):
            self._bytes[level] = {}

    def outstanding(self) -> int:
        return sum(len(level) for level in self._bytes[1:])
