"""Global dead-code elimination.

Uses live-variable analysis: an instruction whose destinations are all dead
after it, and which has no side effects, is removed.  Iterates until no more
instructions die (removing one instruction can kill its inputs' producers).
"""

from __future__ import annotations

from repro.analysis.liveness import Liveness, instr_defs, instr_uses
from repro.isa.opcodes import Opcode
from repro.program.cfg import CFG
from repro.program.procedure import Procedure, Program


def _sweep_once(proc: Procedure) -> bool:
    cfg = CFG(proc)
    live = Liveness(cfg)
    changed = False
    for block in proc.blocks:
        live_set = set(live.live_out[block.label])
        if block.terminator is not None:
            live_set -= instr_defs(block.terminator)
            live_set |= instr_uses(block.terminator)
        keep = []
        for instr in reversed(block.body):
            defs = instr_defs(instr)
            dead = (instr.side_effect_free
                    and instr.op is not Opcode.NOP
                    and defs
                    and not any(d in live_set for d in defs))
            is_self_move = (instr.op is Opcode.MOVE
                            and instr.dst is instr.srcs[0])
            if dead or is_self_move:
                changed = True
                continue
            live_set -= defs
            live_set |= instr_uses(instr)
            keep.append(instr)
        keep.reverse()
        if len(keep) != len(block.body):
            block.body = keep
    return changed


def dce_procedure(proc: Procedure) -> bool:
    changed = False
    while _sweep_once(proc):
        changed = True
    return changed


def dce_program(program: Program) -> bool:
    changed = False
    for proc in program.procedures.values():
        changed |= dce_procedure(proc)
    return changed
