"""Local common-subexpression elimination by value numbering.

Within a basic block, pure operations with identical opcodes, operand value
numbers, and immediates are computed once.  Loads participate too, keyed by
a *memory epoch* that advances on every store or call, which keeps the pass
sound without alias analysis.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.liveness import instr_defs
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.registers import Reg
from repro.program.block import BasicBlock
from repro.program.procedure import Procedure, Program

_PURE = {
    Opcode.ADD, Opcode.ADDI, Opcode.SUB, Opcode.AND, Opcode.ANDI, Opcode.OR,
    Opcode.ORI, Opcode.XOR, Opcode.XORI, Opcode.NOR, Opcode.SLT, Opcode.SLTI,
    Opcode.SLTU, Opcode.SLTIU, Opcode.SLL, Opcode.SRL, Opcode.SRA,
    Opcode.SLLV, Opcode.SRLV, Opcode.SRAV, Opcode.MUL, Opcode.LI, Opcode.LUI,
}
_LOADS = {Opcode.LW, Opcode.LB, Opcode.LBU}


def cse_block(block: BasicBlock) -> bool:
    changed = False
    value_num: dict[Reg, int] = {}
    next_vn = [0]
    epoch = [0]
    available: dict[tuple, Reg] = {}  # expression key -> register holding it

    def vn_of(reg: Reg) -> int:
        if reg.is_zero:
            return -1
        if reg not in value_num:
            value_num[reg] = next_vn[0]
            next_vn[0] += 1
        return value_num[reg]

    def kill(reg: Reg) -> None:
        value_num.pop(reg, None)
        for key in [k for k, holder in available.items() if holder is reg]:
            del available[key]

    new_body: list[Instruction] = []
    for instr in block.body:
        op = instr.op
        key: Optional[tuple] = None
        if op in _PURE and instr.dst is not None:
            srcs = instr.srcs
            if op.value.commutative:
                vns = tuple(sorted(vn_of(r) for r in srcs))
            else:
                vns = tuple(vn_of(r) for r in srcs)
            key = (op, vns, instr.imm)
        elif op in _LOADS and instr.dst is not None:
            key = (op, vn_of(instr.srcs[0]), instr.imm, epoch[0])

        if key is not None and key in available:
            holder = available[key]
            replacement = Instruction(Opcode.MOVE, dst=instr.dst,
                                      srcs=(holder,), uid=instr.uid)
            kill(instr.dst)
            value_num[instr.dst] = vn_of(holder)
            new_body.append(replacement)
            changed = True
            continue

        for reg in instr_defs(instr):
            kill(reg)
        if instr.op.is_store or instr.op.is_call:
            epoch[0] += 1
        if key is not None:
            value_num[instr.dst] = next_vn[0]
            next_vn[0] += 1
            available[key] = instr.dst
        new_body.append(instr)
    block.body = new_body
    return changed


def cse_procedure(proc: Procedure) -> bool:
    changed = False
    for block in proc.blocks:
        changed |= cse_block(block)
    return changed


def cse_program(program: Program) -> bool:
    changed = False
    for proc in program.procedures.values():
        changed |= cse_procedure(proc)
    return changed
