"""Local constant folding and algebraic simplification.

Per basic block: track registers with known constant values, fold
fully-constant operations into ``li``, simplify identities (``x+0``,
``x*1``, ``x<<0``, ...), and statically resolve conditional branches whose
operands are known.  Division/remainder by a known zero is left alone — the
trap must still happen at run time.
"""

from __future__ import annotations

from typing import Optional

from repro.hw.alu import branch_taken, execute_alu
from repro.hw.exceptions import Trap
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.registers import Reg
from repro.program.block import BasicBlock
from repro.program.procedure import Procedure, Program
from repro.analysis.liveness import instr_defs

_FOLDABLE = {
    Opcode.ADD, Opcode.ADDI, Opcode.SUB, Opcode.AND, Opcode.ANDI, Opcode.OR,
    Opcode.ORI, Opcode.XOR, Opcode.XORI, Opcode.NOR, Opcode.SLT, Opcode.SLTI,
    Opcode.SLTU, Opcode.SLTIU, Opcode.SLL, Opcode.SRL, Opcode.SRA,
    Opcode.SLLV, Opcode.SRLV, Opcode.SRAV, Opcode.MUL, Opcode.MOVE,
}


def _const_of(consts: dict[Reg, int], reg: Reg) -> Optional[int]:
    if reg.is_zero:
        return 0
    return consts.get(reg)


def _simplify_identity(instr: Instruction,
                       consts: dict[Reg, int]) -> Optional[Instruction]:
    """Rewrite ``x+0``-style identities into a MOVE (or nothing)."""
    op = instr.op
    if op in (Opcode.ADD, Opcode.OR, Opcode.XOR):
        a, b = instr.srcs
        ca, cb = _const_of(consts, a), _const_of(consts, b)
        if cb == 0:
            return Instruction(Opcode.MOVE, dst=instr.dst, srcs=(a,))
        if ca == 0:
            return Instruction(Opcode.MOVE, dst=instr.dst, srcs=(b,))
    if op in (Opcode.ADDI, Opcode.ORI, Opcode.XORI) and (instr.imm or 0) == 0:
        return Instruction(Opcode.MOVE, dst=instr.dst, srcs=(instr.srcs[0],))
    if op is Opcode.SUB and _const_of(consts, instr.srcs[1]) == 0:
        return Instruction(Opcode.MOVE, dst=instr.dst, srcs=(instr.srcs[0],))
    if op in (Opcode.SLL, Opcode.SRL, Opcode.SRA) and (instr.imm or 0) == 0:
        return Instruction(Opcode.MOVE, dst=instr.dst, srcs=(instr.srcs[0],))
    if op is Opcode.MUL:
        a, b = instr.srcs
        if _const_of(consts, b) == 1:
            return Instruction(Opcode.MOVE, dst=instr.dst, srcs=(a,))
        if _const_of(consts, a) == 1:
            return Instruction(Opcode.MOVE, dst=instr.dst, srcs=(b,))
    return None


# reg-reg opcode -> immediate form, when the second operand is a small
# known constant (16-bit signed immediate range on a real MIPS).
_IMM_FORMS = {
    Opcode.ADD: Opcode.ADDI,
    Opcode.AND: Opcode.ANDI,
    Opcode.OR: Opcode.ORI,
    Opcode.XOR: Opcode.XORI,
    Opcode.SLT: Opcode.SLTI,
    Opcode.SLTU: Opcode.SLTIU,
    Opcode.SLLV: Opcode.SLL,
    Opcode.SRLV: Opcode.SRL,
    Opcode.SRAV: Opcode.SRA,
}
_IMM_MIN, _IMM_MAX = -(1 << 15), (1 << 15) - 1


def _to_immediate_form(instr: Instruction,
                       consts: dict[Reg, int]) -> Optional[Instruction]:
    """``add d, a, c`` with c constant becomes ``addi d, a, c`` — removing
    the dependence on the constant's producer."""
    imm_op = _IMM_FORMS.get(instr.op)
    if imm_op is None:
        return None
    a, b = instr.srcs
    cb = _const_of(consts, b)
    if cb is None and instr.op.value.commutative:
        ca = _const_of(consts, a)
        if ca is not None:
            a, cb = b, ca
    if cb is None:
        return None
    value = cb - 0x100000000 if cb >= 0x80000000 else cb
    if imm_op in (Opcode.SLL, Opcode.SRL, Opcode.SRA):
        value &= 31
    elif not _IMM_MIN <= value <= _IMM_MAX:
        return None
    if imm_op is Opcode.SLTIU:
        value = cb  # unsigned comparison keeps the raw value
        if not 0 <= value <= 0xFFFF:
            return None
    return Instruction(imm_op, dst=instr.dst, srcs=(a,), imm=value)


def fold_block(block: BasicBlock) -> bool:
    changed = False
    consts: dict[Reg, int] = {}
    new_body: list[Instruction] = []
    for instr in block.body:
        op = instr.op
        folded = instr
        if op in _FOLDABLE and instr.dst is not None:
            values = [_const_of(consts, r) for r in instr.srcs]
            if all(v is not None for v in values):
                try:
                    result = execute_alu(instr, *values)
                except Trap:
                    result = None
                if result is not None:
                    folded = Instruction(Opcode.LI, dst=instr.dst,
                                         imm=result, uid=instr.uid)
            elif op is not Opcode.MOVE:
                simpler = _simplify_identity(instr, consts)
                if simpler is None:
                    simpler = _to_immediate_form(instr, consts)
                if simpler is not None:
                    simpler.uid = instr.uid
                    folded = simpler
        if folded is not instr:
            changed = True
        # Update the constant environment.
        for reg in instr_defs(folded):
            consts.pop(reg, None)
        if folded.op is Opcode.LI and folded.dst is not None:
            consts[folded.dst] = folded.imm & 0xFFFFFFFF
        elif folded.op is Opcode.LUI and folded.dst is not None:
            consts[folded.dst] = (folded.imm << 16) & 0xFFFFFFFF
        elif folded.op is Opcode.MOVE and folded.dst is not None:
            src_const = _const_of(consts, folded.srcs[0])
            if src_const is not None:
                consts[folded.dst] = src_const
        new_body.append(folded)
    block.body = new_body

    # Statically resolve a conditional branch with constant operands.
    term = block.terminator
    if term is not None and term.op.is_cond_branch:
        values = [_const_of(consts, r) for r in term.srcs]
        if all(v is not None for v in values):
            if branch_taken(term, *values):
                block.terminator = Instruction(Opcode.J, target=term.target,
                                               uid=term.uid)
            else:
                block.terminator = None
            changed = True
    return changed


def fold_procedure(proc: Procedure) -> bool:
    changed = False
    for block in proc.blocks:
        changed |= fold_block(block)
    return changed


def fold_program(program: Program) -> bool:
    changed = False
    for proc in program.procedures.values():
        changed |= fold_procedure(proc)
    return changed
