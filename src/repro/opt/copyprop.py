"""Local copy propagation.

Within a basic block, a ``move d, s`` makes later uses of ``d`` replaceable
by ``s`` until either register is redefined.  This exposes dead moves for
DCE and removes false dependences before scheduling.
"""

from __future__ import annotations

from repro.analysis.liveness import instr_defs
from repro.isa.registers import Reg
from repro.program.block import BasicBlock
from repro.program.procedure import Procedure, Program
from repro.isa.opcodes import Opcode


def propagate_block(block: BasicBlock) -> bool:
    changed = False
    copies: dict[Reg, Reg] = {}  # dst -> original source

    def resolve(reg: Reg) -> Reg:
        seen = set()
        while reg in copies and reg not in seen:
            seen.add(reg)
            reg = copies[reg]
        return reg

    def invalidate(reg: Reg) -> None:
        copies.pop(reg, None)
        for dst in [d for d, s in copies.items() if s is reg]:
            del copies[dst]

    for instr in list(block.body) + (
            [block.terminator] if block.terminator is not None else []):
        if instr.srcs:
            new_srcs = tuple(resolve(r) for r in instr.srcs)
            if new_srcs != instr.srcs:
                instr.srcs = new_srcs
                changed = True
        for reg in instr_defs(instr):
            invalidate(reg)
        if instr.op is Opcode.MOVE and instr.dst is not None \
                and not instr.dst.is_zero and instr.dst is not instr.srcs[0]:
            copies[instr.dst] = instr.srcs[0]
    return changed


def propagate_procedure(proc: Procedure) -> bool:
    changed = False
    for block in proc.blocks:
        changed |= propagate_block(block)
    return changed


def propagate_program(program: Program) -> bool:
    changed = False
    for proc in program.procedures.values():
        changed |= propagate_procedure(proc)
    return changed
