"""Classic optimizations (the paper's "standard optimizations", §4.3) and
register allocation."""

from repro.opt.cfgclean import clean_cfg, clean_program
from repro.opt.constfold import fold_block, fold_procedure, fold_program
from repro.opt.copyprop import (
    propagate_block, propagate_procedure, propagate_program,
)
from repro.opt.cse import cse_block, cse_procedure, cse_program
from repro.opt.dce import dce_procedure, dce_program
from repro.opt.licm import licm_procedure, licm_program
from repro.opt.unroll import unroll_loop, unroll_program
from repro.opt.regalloc import (
    RegPressureError, allocate_infinite_procedure, allocate_procedure,
    allocate_program, verify_no_virtuals,
)
from repro.program.procedure import Program


def optimize_program(program: Program, max_rounds: int = 10) -> Program:
    """Run the scalar optimization pipeline to a fixed point (in place)."""
    program.invalidate_caches()
    clean_program(program)
    for _ in range(max_rounds):
        changed = fold_program(program)
        changed |= propagate_program(program)
        changed |= licm_program(program)
        changed |= cse_program(program)
        changed |= dce_program(program)
        clean_program(program)
        if not changed:
            break
    return program


__all__ = [
    "RegPressureError", "allocate_infinite_procedure", "allocate_procedure",
    "allocate_program", "clean_cfg", "clean_program", "cse_block",
    "cse_procedure", "cse_program", "dce_procedure", "dce_program",
    "fold_block", "fold_procedure", "fold_program", "licm_procedure",
    "licm_program", "optimize_program",
    "propagate_block", "propagate_procedure", "propagate_program",
    "unroll_loop", "unroll_program",
    "verify_no_virtuals",
]
