"""Register allocation.

Two models, matching Section 4.3.1 of the paper:

* **round-robin** — virtual registers are coloured onto the 24 allocatable
  architectural registers.  The allocator walks candidates round-robin (the
  paper's trick for minimising the anti- and output-dependences that
  constrain scheduling-after-allocation) with a move-coalescing preference.
  When colouring fails, the highest-degree conflicting virtual is spilled to
  a stack slot (coordinated with the code generator through
  :class:`~repro.program.procedure.FrameInfo`) and colouring restarts.

* **infinite** — every virtual register receives its own physical index
  above 31.  This is the paper's "infinite register model", used to bound
  the benefit of an integrated allocator/scheduler; the simulators size
  their register files to match.
"""

from __future__ import annotations

from repro.analysis.liveness import Liveness, instr_defs, instr_uses
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.registers import ALLOCATABLE, Reg
from repro.program.cfg import CFG
from repro.program.procedure import Procedure, Program


class RegPressureError(RuntimeError):
    """More values simultaneously live than allocatable registers."""


def _build_interference(proc: Procedure) -> tuple[dict[Reg, set[Reg]],
                                                  dict[Reg, set[Reg]],
                                                  list[Reg]]:
    """Returns (vreg->interfering vregs, vreg->interfering phys regs,
    vregs in order of first appearance)."""
    cfg = CFG(proc)
    live = Liveness(cfg)
    v_edges: dict[Reg, set[Reg]] = {}
    p_edges: dict[Reg, set[Reg]] = {}
    order: list[Reg] = []
    seen: set[Reg] = set()

    def note(reg: Reg) -> None:
        if reg.is_virtual and reg not in seen:
            seen.add(reg)
            order.append(reg)
            v_edges.setdefault(reg, set())
            p_edges.setdefault(reg, set())

    for block in proc.blocks:
        for instr in block.instructions():
            for reg in (*instr_defs(instr), *instr_uses(instr)):
                note(reg)

    for block in proc.blocks:
        live_set = set(live.live_out[block.label])
        for instr in reversed(list(block.instructions())):
            defs = instr_defs(instr)
            # A definition interferes with everything live across it.  For a
            # move, the source is excluded (coalescing-friendly).
            across = set(live_set) - set(defs)
            if instr.op is Opcode.MOVE:
                across.discard(instr.srcs[0])
            for d in defs:
                for other in across:
                    if d is other:
                        continue
                    if d.is_virtual and other.is_virtual:
                        v_edges[d].add(other)
                        v_edges[other].add(d)
                    elif d.is_virtual:
                        p_edges[d].add(other)
                    elif other.is_virtual:
                        p_edges[other].add(d)
            live_set -= set(defs)
            live_set |= set(instr_uses(instr))
    return v_edges, p_edges, order


def _move_preferences(proc: Procedure) -> dict[Reg, list[Reg]]:
    """Registers each vreg is move-related to (for coalescing preference)."""
    prefs: dict[Reg, list[Reg]] = {}
    for block in proc.blocks:
        for instr in block.instructions():
            if instr.op is Opcode.MOVE and instr.dst is not None:
                src = instr.srcs[0]
                prefs.setdefault(instr.dst, []).append(src)
                prefs.setdefault(src, []).append(instr.dst)
    return prefs


def _rewrite(proc: Procedure, mapping: dict[Reg, Reg]) -> None:
    for block in proc.blocks:
        for instr in block.instructions():
            if instr.dst is not None and instr.dst in mapping:
                instr.dst = mapping[instr.dst]
            if instr.srcs:
                instr.srcs = tuple(mapping.get(r, r) for r in instr.srcs)


def _try_color(proc: Procedure) -> dict[Reg, Reg]:
    """One colouring attempt; raises :class:`_NoColor` on failure."""
    v_edges, p_edges, order = _build_interference(proc)
    prefs = _move_preferences(proc)
    mapping: dict[Reg, Reg] = {}
    pool = list(ALLOCATABLE)
    pointer = 0

    for vreg in order:
        forbidden = set(p_edges[vreg])
        for neighbour in v_edges[vreg]:
            if neighbour in mapping:
                forbidden.add(mapping[neighbour])
        choice = None
        for pref in prefs.get(vreg, ()):
            cand = mapping.get(pref, pref if not pref.is_virtual else None)
            if cand is not None and cand in pool and cand not in forbidden:
                choice = cand
                break
        if choice is None:
            for i in range(len(pool)):
                cand = pool[(pointer + i) % len(pool)]
                if cand not in forbidden:
                    choice = cand
                    pointer = (pointer + i + 1) % len(pool)
                    break
        if choice is None:
            raise _NoColor(vreg, v_edges, order)
        mapping[vreg] = choice
    return mapping


class _NoColor(Exception):
    def __init__(self, vreg: Reg, v_edges: dict[Reg, set[Reg]],
                 order: list[Reg]) -> None:
        self.vreg = vreg
        self.v_edges = v_edges
        self.order = order


def _ensure_frame(proc: Procedure) -> None:
    """Create a prologue for frameless procedures so spill slots exist."""
    frame = proc.frame
    if frame.prologue is not None:
        return
    prologue = Instruction(Opcode.ADDI, dst=Reg.named("sp"),
                           srcs=(Reg.named("sp"),), imm=0)
    proc.entry.body.insert(0, prologue)
    frame.prologue = prologue
    # Restores before every return terminator (halt needs none).
    for block in proc.blocks:
        if block.ends_in_return:
            restore = Instruction(Opcode.ADDI, dst=Reg.named("sp"),
                                  srcs=(Reg.named("sp"),), imm=0)
            block.body.append(restore)
            frame.epilogues.append(restore)


def _spill(proc: Procedure, victim: Reg) -> None:
    """Rewrite ``victim`` through a stack slot: loads before uses, stores
    after definitions, each through a fresh short-lived virtual."""
    _ensure_frame(proc)
    frame = proc.frame
    offset = 4 * (frame.base_slots + frame.spill_slots)
    frame.spill_slots += 1
    frame.prologue.imm = -frame.frame_bytes
    for epilogue in frame.epilogues:
        epilogue.imm = frame.frame_bytes
    sp = Reg.named("sp")
    counter = [max(proc.max_register_index(), Reg.VIRTUAL_BASE)]

    def fresh() -> Reg:
        counter[0] += 1
        return Reg(counter[0])

    for block in proc.blocks:
        new_body: list[Instruction] = []
        for instr in block.body:
            uses_victim = victim in instr.uses()
            defs_victim = victim in instr.defs()
            if uses_victim:
                tmp = fresh()
                new_body.append(Instruction(Opcode.LW, dst=tmp, srcs=(sp,),
                                            imm=offset))
                instr.srcs = tuple(tmp if r is victim else r
                                   for r in instr.srcs)
            new_body.append(instr)
            if defs_victim:
                tmp = fresh()
                instr.dst = tmp
                new_body.append(Instruction(Opcode.SW, srcs=(tmp, sp),
                                            imm=offset))
        block.body = new_body
        term = block.terminator
        if term is not None and victim in term.uses():
            tmp = fresh()
            block.body.append(Instruction(Opcode.LW, dst=tmp, srcs=(sp,),
                                          imm=offset))
            term.srcs = tuple(tmp if r is victim else r for r in term.srcs)


def allocate_procedure(proc: Procedure,
                       max_spills: int = 64) -> dict[Reg, Reg]:
    """Round-robin colouring with spilling; returns the applied mapping."""
    spilled: set[Reg] = set()
    for _ in range(max_spills):
        try:
            mapping = _try_color(proc)
        except _NoColor as fail:
            # Spill the highest-degree conflicting virtual that is not
            # itself spill traffic; ties go to the earliest-defined (the
            # longest-lived, e.g. a hoisted loop invariant).
            candidates = [fail.vreg, *(n for n in fail.v_edges[fail.vreg])]
            candidates = [c for c in candidates if c not in spilled]
            if not candidates:
                raise RegPressureError(
                    f"{proc.name}: irreducible register pressure at "
                    f"{fail.vreg}")
            victim = max(candidates,
                         key=lambda c: (len(fail.v_edges.get(c, ())),
                                        -fail.order.index(c)
                                        if c in fail.order else 0))
            _spill(proc, victim)
            spilled.add(victim)
            continue
        _rewrite(proc, mapping)
        return mapping
    raise RegPressureError(f"{proc.name}: spilling did not converge")


def allocate_infinite_procedure(proc: Procedure, base: int = 32) -> dict[Reg, Reg]:
    """Give every virtual register its own physical index (>= ``base``)."""
    mapping: dict[Reg, Reg] = {}
    next_index = base
    for block in proc.blocks:
        for instr in block.instructions():
            for reg in (*instr.defs(), *instr.uses()):
                if reg.is_virtual and reg not in mapping:
                    mapping[reg] = Reg(next_index)
                    next_index += 1
    _rewrite(proc, mapping)
    return mapping


def allocate_program(program: Program, model: str = "round_robin") -> None:
    """Allocate every procedure.  ``model`` is ``round_robin`` or
    ``infinite``."""
    if model not in ("round_robin", "infinite"):
        raise ValueError(f"unknown register model {model!r}")
    program.invalidate_caches()
    for proc in program.procedures.values():
        if model == "round_robin":
            allocate_procedure(proc)
        else:
            allocate_infinite_procedure(proc)


def verify_no_virtuals(program: Program) -> None:
    """Assert allocation is complete (used by the pipeline and tests)."""
    for proc in program.procedures.values():
        for instr in proc.instructions():
            for reg in (*instr.defs(), *instr.uses()):
                if reg.is_virtual:
                    raise AssertionError(
                        f"{proc.name}: unallocated virtual {reg} in {instr}")
