"""Loop-invariant code motion.

Hoists pure, non-trapping instructions whose operands are loop invariant
into a preheader block.  Safety conditions (classic, conservative):

* the instruction is side-effect free, not a load, and cannot except;
* its destination has exactly one definition inside the loop;
* the destination is **not** live into the loop header (so neither an
  outside value nor a loop-carried value is clobbered);
* every source is either not defined in the loop or defined by an
  already-hoisted instruction.

The pass builds preheaders on demand and iterates to a fixed point; it runs
before register allocation, where single-definition temporaries are common.
"""

from __future__ import annotations

from repro.analysis.liveness import Liveness, instr_defs, instr_uses
from repro.analysis.regions import RegionTree
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.registers import Reg
from repro.program.block import BasicBlock
from repro.program.cfg import CFG
from repro.program.procedure import Procedure, Program


def _is_pure(instr: Instruction) -> bool:
    return (instr.side_effect_free
            and not instr.op.is_load
            and not instr.op.can_except
            and instr.op is not Opcode.NOP
            and bool(instr.defs()))


def _make_preheader(proc: Procedure, cfg: CFG, loop) -> BasicBlock | None:
    """Create (and wire up) a preheader for ``loop``; None if the shape is
    too awkward (conditional fall-through backedge)."""
    header = loop.header
    header_idx = proc.blocks.index(proc.block(header))
    prev = proc.blocks[header_idx - 1] if header_idx > 0 else None

    if prev is not None and prev.label in loop.blocks:
        # The layout predecessor is inside the loop.  If it falls through to
        # the header, inserting a preheader would put hoisted code on the
        # backedge.
        if prev.terminator is None:
            prev.terminator = Instruction(Opcode.J, target=header)
        elif prev.ends_in_cond_branch and prev.terminator.target != header:
            return None  # conditional fall-through backedge: skip this loop

    pre_label = proc.fresh_label(f"{header}.pre")
    pre = BasicBlock(pre_label)
    before = proc.blocks[header_idx - 1].label if header_idx > 0 else None
    if before is None:
        proc.blocks.insert(0, pre)
        proc._by_label[pre_label] = pre
    else:
        proc.add_block(pre, after=before)

    # Retarget every outside predecessor that *branches* to the header.
    for pred_label in cfg.preds(header):
        if pred_label in loop.blocks:
            continue
        pred = proc.block(pred_label)
        term = pred.terminator
        if term is not None and term.target == header and not term.op.is_call:
            term.target = pre_label
    return pre


def _hoist_loop(proc: Procedure, loop) -> bool:
    cfg = CFG(proc)
    live = Liveness(cfg)
    header_live_in = live.live_in[loop.header]

    loop_blocks = [b for b in proc.blocks if b.label in loop.blocks]
    # Under the caller-saves-everything convention no register survives a
    # call, so hoisting out of a loop that calls would create live ranges
    # the allocator cannot place.
    if any(b.ends_in_call for b in loop_blocks):
        return False
    def_counts: dict[Reg, int] = {}
    for block in loop_blocks:
        for instr in block.instructions():
            for reg in instr_defs(instr):
                def_counts[reg] = def_counts.get(reg, 0) + 1

    hoisted: list[tuple[BasicBlock, Instruction]] = []
    hoisted_defs: set[Reg] = set()
    progress = True
    while progress:
        progress = False
        for block in loop_blocks:
            for instr in list(block.body):
                if any(instr is h for _, h in hoisted):
                    continue
                if not _is_pure(instr):
                    continue
                dst = instr.dst
                if dst is None or def_counts.get(dst, 0) != 1:
                    continue
                if dst in header_live_in:
                    continue
                invariant = all(
                    def_counts.get(src, 0) == 0 or src in hoisted_defs
                    for src in instr_uses(instr)
                )
                if not invariant:
                    continue
                hoisted.append((block, instr))
                hoisted_defs.add(dst)
                progress = True

    if not hoisted:
        return False
    pre = _make_preheader(proc, cfg, loop)
    if pre is None:
        return False
    for block, instr in hoisted:
        block.remove(instr)
        pre.body.append(instr)
    return True


def licm_procedure(proc: Procedure, max_rounds: int = 100) -> bool:
    changed = False
    for _ in range(max_rounds):
        tree = RegionTree(CFG(proc))
        round_changed = False
        # Innermost loops first: hoisting cascades outward on later rounds.
        for loop in tree.schedule_order():
            if not loop.is_loop:
                continue
            if _hoist_loop(proc, loop):
                round_changed = True
                break  # CFG changed; rebuild the region tree
        if not round_changed:
            break
        changed = True
    return changed


def licm_program(program: Program) -> bool:
    changed = False
    for proc in program.procedures.values():
        changed |= licm_procedure(proc)
    return changed
