"""Loop unrolling (the paper's §4.3.2 extension experiment).

The paper reports preliminary experiments with a loop unroller whose gains
were "well below what we expected"; this pass lets the reproduction ask the
same question.  It unrolls innermost loops by cloning the loop body
``factor - 1`` times, keeping every exit test (no trip-count analysis): the
back edge of copy *i* is rewired to the header of copy *i+1*, and the last
copy jumps back to the original header.  Longer traces and fewer taken
jumps are the intended benefit.

Restrictions (skipped silently when violated): the loop must be innermost,
its blocks contiguous in the layout, its last block terminated, and its
body at most ``max_body_instructions`` long.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.regions import Region, RegionTree
from repro.program.block import BasicBlock
from repro.program.cfg import CFG
from repro.program.procedure import Procedure, Program


def _layout_range(proc: Procedure, loop: Region) -> Optional[tuple[int, int]]:
    """The loop's contiguous [lo, hi] layout span, or None."""
    indices = sorted(proc.blocks.index(proc.block(lab))
                     for lab in loop.blocks)
    lo, hi = indices[0], indices[-1]
    if indices != list(range(lo, hi + 1)):
        return None
    if proc.blocks[lo].label != loop.header:
        return None  # the header must lead the span
    if proc.blocks[hi].terminator is None:
        return None  # the span must not fall out of its own tail
    return lo, hi


def _clone_blocks(proc: Procedure, blocks: list[BasicBlock], header: str,
                  next_header: str, copy_n: int) -> list[BasicBlock]:
    """Clone the loop once; back edges point at ``next_header``."""
    label_map = {b.label: proc.fresh_label(f"{b.label}.u{copy_n}")
                 for b in blocks}

    def map_target(target: Optional[str]) -> Optional[str]:
        if target is None:
            return None
        if target == header:
            return next_header
        return label_map.get(target, target)

    clones = []
    for block in blocks:
        clone = BasicBlock(label_map[block.label])
        for instr in block.body:
            clone.body.append(instr.copy())
        term = block.terminator
        if term is not None:
            new_term = term.copy()
            if not term.op.is_call and term.target is not None:
                new_term.target = map_target(term.target)
            clone.terminator = new_term
        clones.append(clone)
    # Entry into each copy happens at its header clone.
    return clones


def unroll_loop(proc: Procedure, loop: Region, factor: int) -> bool:
    span = _layout_range(proc, loop)
    if span is None or factor < 2:
        return False
    lo, hi = span
    originals = proc.blocks[lo:hi + 1]
    header = loop.header

    # Build the copies back to front so each knows its successor's header.
    all_copies: list[list[BasicBlock]] = []
    next_header = header  # the last copy loops back to the original header
    for n in range(factor - 1, 0, -1):
        clones = _clone_blocks(proc, originals, header, next_header, n)
        all_copies.append(clones)
        next_header = clones[0].label
    all_copies.reverse()  # now in execution order: copy 1, copy 2, ...

    # The original loop's back edges now enter the first copy.
    first_copy_header = all_copies[0][0].label
    for block in originals:
        term = block.terminator
        if term is not None and term.target == header and not term.op.is_call:
            term.target = first_copy_header

    insert_at = hi + 1
    for clones in all_copies:
        for clone in clones:
            proc.blocks.insert(insert_at, clone)
            proc._by_label[clone.label] = clone
            insert_at += 1
    return True


def unroll_program(program: Program, factor: int = 2,
                   max_body_instructions: int = 40) -> int:
    """Unroll every eligible innermost loop; returns how many were
    unrolled."""
    if factor < 2:
        return 0
    count = 0
    for proc in program.procedures.values():
        tree = RegionTree(CFG(proc))
        # Innermost loops only, sized within budget.
        for loop in list(tree.loops):
            if loop.children:
                continue
            size = sum(proc.block(lab).non_branch_count() + 1
                       for lab in loop.blocks)
            if size > max_body_instructions:
                continue
            if unroll_loop(proc, loop, factor):
                count += 1
        # Region tree is stale after the first unroll in this procedure;
        # one eligible loop per procedure per call keeps things simple.
    return count
