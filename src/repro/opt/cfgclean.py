"""CFG cleanup: jump threading, fall-through elimination, block merging,
unreachable-block removal.

The Minic code generator emits structured but jump-heavy code; this pass
brings it to the compact form the paper's scheduler expects (few redundant
jumps, maximal basic blocks).
"""

from __future__ import annotations

from repro.isa.opcodes import Opcode
from repro.program.cfg import CFG
from repro.program.procedure import Procedure, Program


def _thread_jumps(proc: Procedure) -> bool:
    """Retarget branches that point at empty jump-only blocks."""
    changed = False
    # Map: label -> ultimate target through chains of empty `j` blocks.
    forward: dict[str, str] = {}
    for block in proc.blocks:
        if not block.body and block.terminator is not None \
                and block.terminator.op is Opcode.J:
            forward[block.label] = block.terminator.target

    def resolve(label: str) -> str:
        seen = set()
        while label in forward and label not in seen:
            seen.add(label)
            label = forward[label]
        return label

    for block in proc.blocks:
        term = block.terminator
        if term is not None and term.target is not None \
                and not term.op.is_call:
            final = resolve(term.target)
            if final != term.target:
                term.target = final
                changed = True
    return changed


def _drop_jump_to_next(proc: Procedure) -> bool:
    changed = False
    for block in proc.blocks:
        term = block.terminator
        if term is not None and term.op is Opcode.J:
            nxt = proc.layout_successor(block.label)
            if nxt is not None and nxt.label == term.target:
                block.terminator = None
                changed = True
    return changed


def _remove_unreachable(proc: Procedure) -> bool:
    cfg = CFG(proc)
    reachable = cfg.reachable()
    doomed = [b for b in proc.blocks if b.label not in reachable]
    if not doomed:
        return False
    for block in doomed:
        # Removing a fall-through block would rewire its predecessor; that
        # cannot happen because an unreachable block has no predecessors.
        proc.blocks.remove(block)
        del proc._by_label[block.label]
    return True


def _merge_blocks(proc: Procedure) -> bool:
    """Merge B into A when A falls through to B and B has no other preds."""
    cfg = CFG(proc)
    changed = False
    i = 0
    while i < len(proc.blocks) - 1:
        a = proc.blocks[i]
        b = proc.blocks[i + 1]
        falls = a.terminator is None
        only_pred = cfg.preds(b.label) == [a.label]
        if falls and only_pred and a.label != b.label:
            a.body.extend(b.body)
            a.terminator = b.terminator
            proc.blocks.remove(b)
            del proc._by_label[b.label]
            cfg = CFG(proc)
            changed = True
        else:
            i += 1
    return changed


def clean_cfg(proc: Procedure) -> None:
    """Iterate the cleanups to a fixed point."""
    for _ in range(50):
        changed = _thread_jumps(proc)
        changed |= _remove_unreachable(proc)
        changed |= _drop_jump_to_next(proc)
        changed |= _merge_blocks(proc)
        if not changed:
            return


def clean_program(program: Program) -> None:
    for proc in program.procedures.values():
        clean_cfg(proc)
