"""The compile-and-measure pipeline the experiments drive.

Mirrors the paper's flow (Section 4.3): Minic source → standard
optimizations → register allocation (round-robin or infinite) → *branch
profiling on a training input* → scheduling (basic-block or global, under a
boosting model) → execution-driven timing simulation on the evaluation
input.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.frontend import compile_source
from repro.hw.exceptions import ExecutionResult
from repro.hw.functional import FunctionalSim
from repro.hw.superscalar import SuperscalarSim
from repro.opt import (
    allocate_program, clean_program, dce_program, fold_program,
    optimize_program, propagate_program, unroll_program,
)
from repro.obs.stats import record_schedule_occupancy
from repro.program.procedure import Program, clone_program
from repro.sched.bbsched import schedule_program_bb
from repro.sched.boostmodel import BoostModel, NO_BOOST
from repro.sched.globalsched import GlobalScheduleStats, schedule_program_global
from repro.sched.machine import MachineConfig, SCALAR, SUPERSCALAR
from repro.sched.schedprog import ScheduledProgram

InputSet = dict[str, Union[list[int], bytes, int]]


@dataclass(frozen=True)
class CompileConfig:
    """One point in the paper's design space."""

    machine: MachineConfig = SUPERSCALAR
    model: BoostModel = NO_BOOST
    scheduler: str = "global"        # "bb" | "global"
    regalloc: str = "round_robin"    # "round_robin" | "infinite"
    optimize: bool = True
    #: unroll eligible innermost loops this many times (1 = off; §4.3.2)
    unroll: int = 1

    def describe(self) -> str:
        reg = "∞regs" if self.regalloc == "infinite" else "32regs"
        return (f"{self.machine.name}/{self.scheduler}/{self.model.name}/"
                f"{reg}")


#: The scalar R2000 baseline configuration of Table 1.
SCALAR_CONFIG = CompileConfig(machine=SCALAR, model=NO_BOOST, scheduler="bb")


def make_input_image(program: Program, inputs: Optional[InputSet]
                     ) -> list[tuple[int, bytes]]:
    """Turn a {global name: contents} mapping into a memory patch.

    Every name must be a global the program declares, and no two patches may
    overlap — both are caller mistakes that would otherwise surface as a bare
    ``KeyError`` or silent data corruption deep inside the simulator.
    """
    if not inputs:
        return []
    unknown = sorted(name for name in inputs if name not in program.data)
    if unknown:
        known = ", ".join(sorted(program.data.symbols())) or "(none)"
        raise ValueError(
            f"unknown input name(s) {', '.join(repr(n) for n in unknown)}; "
            f"program globals are: {known}")
    image: list[tuple[int, bytes]] = []
    spans: list[tuple[int, int, str]] = []
    for name, contents in inputs.items():
        addr = program.data.address_of(name)
        size = program.data.size_of(name)
        if isinstance(contents, int):
            raw = (contents & 0xFFFFFFFF).to_bytes(4, "little")
        elif isinstance(contents, bytes):
            raw = contents
        else:
            raw = b"".join((v & 0xFFFFFFFF).to_bytes(4, "little")
                           for v in contents)
        if len(raw) > size:
            raise ValueError(
                f"input for {name!r} is {len(raw)} bytes; buffer is {size}")
        for other_addr, other_end, other in spans:
            if addr < other_end and other_addr < addr + len(raw):
                raise ValueError(
                    f"input {name!r} overlaps input {other!r} "
                    f"({addr:#x}..{addr + len(raw):#x} vs "
                    f"{other_addr:#x}..{other_end:#x})")
        spans.append((addr, addr + len(raw), name))
        image.append((addr, raw))
    return image


def annotate_predictions(program: Program, profile) -> None:
    """Write profile-derived static predictions into the branch encodings."""
    program.invalidate_caches()
    for proc in program.procedures.values():
        for block in proc.blocks:
            term = block.terminator
            if term is None or not term.op.is_cond_branch:
                continue
            prob = profile.taken_prob(term.uid) if profile else None
            block.taken_prob = prob
            term.predict_taken = (prob is not None and prob >= 0.5)


@dataclass
class CompiledProgram:
    """A scheduled program plus everything needed to measure it."""

    config: CompileConfig
    program: Program
    sched: ScheduledProgram
    stats: Optional[GlobalScheduleStats] = None
    source_instr_count: int = 0
    #: pre-schedule snapshot of the IR — the functional oracle.  Scheduling
    #: mutates ``program`` in place in ways that are only correct under the
    #: schedule's interpretation, so the reference semantics live here.
    reference: Optional[Program] = None

    def run(self, inputs: Optional[InputSet] = None,
            **kwargs) -> ExecutionResult:
        image = make_input_image(self.program, inputs)
        sim = SuperscalarSim(self.sched, input_image=image, **kwargs)
        return sim.run()

    def run_functional(self, inputs: Optional[InputSet] = None,
                       **kwargs) -> ExecutionResult:
        oracle = self.reference if self.reference is not None else self.program
        image = make_input_image(oracle, inputs)
        return FunctionalSim(oracle, input_image=image, **kwargs).run()


def prepare_ir(
    program: Program,
    config: CompileConfig,
    train_inputs: Optional[InputSet] = None,
    max_profile_steps: int = 50_000_000,
) -> Program:
    """Everything before scheduling, in place: optimize, allocate, clean up,
    profile on the training input, and annotate static predictions.

    The returned program is *schedulable but not yet scheduled* — snapshot it
    with :func:`~repro.program.procedure.clone_program` to schedule the same
    preparation several times (the verification campaign does exactly this).
    """
    if config.optimize:
        optimize_program(program)
    if config.unroll > 1:
        unroll_program(program, factor=config.unroll)
        if config.optimize:
            optimize_program(program)
    allocate_program(program, model=config.regalloc)
    # Post-allocation cleanup: coalescing leaves self-moves behind.
    propagate_program(program)
    fold_program(program)
    dce_program(program)
    clean_program(program)

    image = make_input_image(program, train_inputs)
    profiler = FunctionalSim(program, profile=True, input_image=image,
                             max_steps=max_profile_steps)
    profiler.run()
    annotate_predictions(program, profiler.profile)
    return program


def schedule_ir(program: Program, config: CompileConfig
                ) -> tuple[ScheduledProgram, Optional[GlobalScheduleStats]]:
    """Schedule a prepared IR program (mutates it in place)."""
    if config.scheduler == "bb":
        stats = GlobalScheduleStats()
        sched = schedule_program_bb(program, config.machine, config.model,
                                    stats=stats)
        record_schedule_occupancy(sched, stats)
        return sched, stats
    if config.scheduler == "global":
        return schedule_program_global(program, config.machine, config.model)
    raise ValueError(f"unknown scheduler {config.scheduler!r}")


def compile_ir(
    program: Program,
    config: CompileConfig,
    train_inputs: Optional[InputSet] = None,
    max_profile_steps: int = 50_000_000,
) -> CompiledProgram:
    """Optimize, allocate, profile, and schedule an IR program (in place)."""
    prepare_ir(program, config, train_inputs, max_profile_steps)
    source_count = program.instruction_count()
    reference = clone_program(program)
    sched, stats = schedule_ir(program, config)
    # Build the translating backend's generated code now, so it is part of
    # the compile (and of CompileCache payloads — the units are plain-data
    # attributes on these plain dataclasses) instead of a hidden cost on
    # the first simulator run.
    from repro.hw import translate
    translate.functional_unit(reference)
    translate.superscalar_unit(sched)
    return CompiledProgram(config=config, program=program, sched=sched,
                           stats=stats, source_instr_count=source_count,
                           reference=reference)


def compile_minic(
    source: str,
    config: CompileConfig,
    train_inputs: Optional[InputSet] = None,
    **kwargs,
) -> CompiledProgram:
    """Front-end + pipeline in one call.

    Each call recompiles from source: scheduling mutates the IR (boost
    labels, compensation code), so configurations never share a program.
    """
    return compile_ir(compile_source(source), config, train_inputs, **kwargs)
