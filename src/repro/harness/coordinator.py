"""Sharded campaign coordinator: lease-guarded shards, work stealing,
whole-shard recovery, and shard-level chaos.

PR 3 made a single supervised process pool crash-safe; this module is the
next rung of the resilience ladder.  A campaign's task matrix is split into
``N`` **shards** — deterministic round-robin slices of the task list — and
each shard is farmed to an independent worker process that runs the
existing supervised pool (:mod:`repro.harness.resilience`) over its slice.
The discipline is the same one the paper applies to boosted instructions:
every unit of work either *commits* (a durable, checksummed journal record)
or is *squashed and re-executed* — never half-visible.

Robustness machinery, bottom-up:

* **Leases** (:class:`repro.harness.fsutil.Lease`) — one lease file per
  shard journal grants exactly one writer.  Shards heartbeat their lease
  from a background thread; a dead shard's lease goes stale (dead pid, or
  heartbeat past the TTL) and can be atomically taken over.

* **Work stealing** — a shard that finishes its own slice scans the other
  shards' journals; any incomplete shard whose lease is stale is adopted:
  the thief steals the lease, resumes the *victim's* journal, and computes
  only the records still missing.  Stolen records carry a ``meta``
  provenance tag, so the final report can say who rescued what.

* **Shard-level retry** — the coordinator respawns a crashed shard process
  with the same exponential-backoff + seeded-jitter policy the supervised
  pool applies to tasks, one level up (:class:`SupervisionPolicy` reused
  verbatim).  A respawned shard resumes its journal, so no work repeats.

* **Salvage & graceful degradation** — after every shard process has
  exited (or exhausted its retry budget), the coordinator runs one final
  salvage pass *itself*: it steals any incomplete shard's lease and runs
  the missing tasks in a supervised pool (a pool, not in-process — a
  poison task that kills its host must take out a disposable worker, not
  the coordinator).  Tasks that still fail degrade to structured failure
  records; the campaign completes with a partial report instead of dying.

* **Deterministic merge** — task payloads are pure functions of the task,
  so merging journal records back in serial task order reproduces the
  exact bytes of a serial run regardless of shard count, steals, crashes,
  or chaos.

* **Shard chaos** (:class:`ShardChaosConfig`) — seeded SIGKILLs of whole
  shard processes mid-campaign.  Kills only fire on a shard's first
  ``max_shard_faults`` incarnations; with ``max_shard_faults`` at or below
  the shard retry budget every shard eventually gets an unkilled
  incarnation, which is what lets the chaos self-test demand byte-equality
  against a clean serial oracle.
"""

from __future__ import annotations

import os
import random
import signal
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional, Sequence

from repro.harness.fsutil import Lease
from repro.harness.parallel import run_tasks
from repro.harness.resilience import (
    CampaignInterrupted, ChaosConfig, Journal, SupervisionPolicy,
    run_supervised,
)
from repro.obs.stats import SHARDS_SCHEMA, ShardStats

__all__ = [
    "ShardChaosConfig", "ShardReport", "ShardSpec", "run_sharded",
    "shard_slice",
]

#: exit code a shard uses for "my lease was stolen / I was orphaned": its
#: remaining work is (or will be) owned by someone else, so the coordinator
#: must not respawn it
EXIT_LEASE_LOST = 3


def shard_slice(total: int, shards: int, shard: int) -> list[int]:
    """Task indices owned by ``shard``: deterministic round-robin."""
    return [i for i in range(total) if i % shards == shard]


def _journal_path(campaign_dir: Path, shard: int) -> Path:
    return campaign_dir / f"shard-{shard}.journal"


def _lease_path(campaign_dir: Path, shard: int) -> Path:
    return campaign_dir / f"shard-{shard}.lease"


# -------------------------------------------------------------- shard chaos
@dataclass
class ShardChaosConfig:
    """Seeded whole-shard fault injection.

    Whether (and when) a given shard incarnation is SIGKILLed is a pure
    function of ``seed``, so a chaos run is reproducible.  Kills only fire
    while ``incarnation <= max_shard_faults``; with ``max_shard_faults`` at
    or below the shard retry budget, every shard eventually runs a full
    unkilled incarnation and the campaign converges to clean output.
    """

    seed: int
    kill: float = 0.75            # probability an incarnation is killed
    max_shard_faults: int = 2     # kill only the first N incarnations
    delay_min: float = 0.1        # seconds after spawn before the SIGKILL
    delay_max: float = 1.5

    def kill_after(self, shard: int, incarnation: int) -> Optional[float]:
        """Seconds after spawn at which to SIGKILL this incarnation, or
        ``None`` if it is spared."""
        if incarnation > self.max_shard_faults:
            return None
        rng = random.Random(f"shardchaos:{self.seed}:{shard}:{incarnation}")
        if rng.random() >= self.kill:
            return None
        return self.delay_min + rng.random() * (self.delay_max
                                                - self.delay_min)


# -------------------------------------------------------------- shard spec
@dataclass
class ShardSpec:
    """Everything one shard process needs (picklable; workers must be
    module-level functions, as for :func:`repro.harness.parallel.run_tasks`).
    """

    campaign_dir: str
    shard: int
    shards: int
    worker: Callable[[Any], Any]
    tasks: Sequence[Any]
    keys: Sequence[str]
    fingerprint: str
    facets: Optional[dict] = None
    jobs: int = 1
    policy: Optional[SupervisionPolicy] = None
    task_chaos: Optional[ChaosConfig] = None
    lease_ttl: float = 15.0

    def owner_id(self) -> str:
        return f"shard-{self.shard}"


class _LeaseLostError(RuntimeError):
    """Raised inside a shard when its lease is stolen mid-slice."""


class _Heartbeat(threading.Thread):
    """Refresh a lease in the background; flag loss of ownership."""

    def __init__(self, lease: Lease, interval: float) -> None:
        super().__init__(daemon=True)
        self.lease = lease
        self.interval = interval
        self.lost = threading.Event()
        self._halt = threading.Event()

    def run(self) -> None:
        while not self._halt.wait(self.interval):
            try:
                if not self.lease.refresh():
                    self.lost.set()
                    return
            except OSError:
                continue  # transient fs hiccup: try again next beat

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=5)


class _ParentWatchdog(threading.Thread):
    """Kill the shard the moment its coordinator dies.

    A SIGKILL'd coordinator cannot clean up its children; orphaned shards
    would keep appending to journals a *resumed* coordinator is about to
    adopt.  Reparenting (``getppid`` changes) is the cheap, prompt signal.
    """

    def __init__(self, parent_pid: int, poll: float = 0.5) -> None:
        super().__init__(daemon=True)
        self.parent_pid = parent_pid
        self.poll = poll

    def run(self) -> None:
        while True:
            if os.getppid() != self.parent_pid:
                os._exit(EXIT_LEASE_LOST)
            time.sleep(self.poll)


# ------------------------------------------------------------ shard process
def _missing_keys(spec: ShardSpec, shard: int) -> list[str]:
    """Keys of ``shard``'s slice not yet journaled (read-only peek)."""
    owned = [spec.keys[i]
             for i in shard_slice(len(spec.tasks), spec.shards, shard)]
    path = _journal_path(Path(spec.campaign_dir), shard)
    if not path.exists():
        return owned
    try:
        completed, _ = Journal.peek(path)
    except Exception:
        return owned  # unreadable journal: treat as empty, owner rebuilds
    return [k for k in owned if k not in completed]


def _run_slice(spec: ShardSpec, shard: int, lease: Lease) -> int:
    """Run every not-yet-journaled task of ``shard``'s slice under an
    already-acquired lease.  Heartbeats in the background; aborts the
    moment the lease is lost."""
    heartbeat = _Heartbeat(lease, interval=max(0.05, spec.lease_ttl / 4.0))
    heartbeat.start()
    try:
        path = _journal_path(Path(spec.campaign_dir), shard)
        journal = Journal(path, spec.fingerprint, resume=path.exists(),
                          facets=spec.facets)
        try:
            indices = [i for i in shard_slice(len(spec.tasks), spec.shards,
                                              shard)
                       if spec.keys[i] not in journal.completed]
            meta = {"by": spec.owner_id(), "stolen": shard != spec.shard}

            def checkpoint(outcome) -> None:
                # Same contract as the journal in PR 3: only clean outcomes
                # commit; a failed task stays missing so a resume, a thief,
                # or the salvage pass retries it.
                if outcome.error is not None:
                    return
                if heartbeat.lost.is_set():
                    raise _LeaseLostError(lease.path.name)
                journal.record(spec.keys[indices[outcome.index]],
                               outcome.value, meta=meta)

            run_tasks(spec.worker, [spec.tasks[i] for i in indices],
                      jobs=spec.jobs, policy=spec.policy,
                      chaos=spec.task_chaos, on_result=checkpoint)
        finally:
            journal.close()
    except _LeaseLostError:
        return EXIT_LEASE_LOST
    finally:
        heartbeat.stop()
        if not heartbeat.lost.is_set():
            lease.release()
    return 0


def _run_shard(spec: ShardSpec, parent_pid: Optional[int] = None) -> int:
    """A shard process's whole life: own slice first, then steal scan.

    Scan order rotates from the shard's own index so concurrent finishers
    fan out over different victims instead of racing for the same lease.
    """
    if parent_pid is not None:
        _ParentWatchdog(parent_pid).start()
    handled: set[int] = set()
    order = [(spec.shard + k) % spec.shards for k in range(spec.shards)]
    while True:
        target = None
        for j in order:
            if j in handled:
                continue
            if not _missing_keys(spec, j):
                handled.add(j)
                continue
            lease = Lease(_lease_path(Path(spec.campaign_dir), j),
                          ttl=spec.lease_ttl, owner=None)
            if lease.try_acquire() or lease.try_steal():
                target = (j, lease)
                break
        if target is None:
            # Everything is either journaled or owned by a live writer.
            return 0
        j, lease = target
        rc = _run_slice(spec, j, lease)
        handled.add(j)
        if rc != 0:
            return rc


def _shard_main(spec: ShardSpec) -> None:
    """Entry point of a shard child process."""
    try:
        rc = _run_shard(spec, parent_pid=os.getppid())
    except KeyboardInterrupt:
        rc = 130
    sys.exit(rc)


# -------------------------------------------------------------- coordinator
@dataclass
class ShardReport:
    """What a sharded campaign produced, plus how it got there."""

    total: int
    #: key -> journaled payload, for every task that committed
    completed: dict[str, Any] = field(default_factory=dict)
    #: key -> structured failure record (kind/attempts/error) for every
    #: task that could not be recovered — the graceful-degradation half
    failures: dict[str, dict] = field(default_factory=dict)
    #: key -> provenance ("by": who computed it, "stolen": under a stolen
    #: lease, "shard": whose journal holds it)
    provenance: dict[str, dict] = field(default_factory=dict)
    stats: ShardStats = field(default_factory=ShardStats)

    @property
    def degraded(self) -> bool:
        return bool(self.failures)

    def to_json(self) -> dict:
        """The ``repro-shards/1`` section of ``bench --json``."""
        return {
            "schema": SHARDS_SCHEMA,
            "counters": self.stats.snapshot(),
            "degraded": self.degraded,
            "failures": {k: self.failures[k] for k in sorted(self.failures)},
            "provenance": {k: self.provenance[k]
                           for k in sorted(self.provenance)},
        }


@dataclass
class _ShardState:
    incarnation: int = 1
    proc: Any = None
    kill_at: Optional[float] = None     # monotonic: pending chaos SIGKILL
    respawn_at: Optional[float] = None  # monotonic: pending restart
    abandoned: bool = False             # retry budget exhausted


def _wipe_campaign_dir(campaign_dir: Path) -> None:
    for pattern in ("shard-*.journal", "shard-*.lease", "shard-*.lease.rip-*"):
        for stale in campaign_dir.glob(pattern):
            try:
                stale.unlink()
            except OSError:
                pass


def _merge_journals(campaign_dir: Path, shards: int, fingerprint: str,
                    facets: Optional[dict], stats: Optional[ShardStats] = None
                    ) -> tuple[dict[str, Any], dict[str, dict]]:
    """Union of every shard journal's records (read-only), with provenance.

    Payloads are deterministic functions of their task, so a key appearing
    in two journals (possible only across a lease-steal race) carries equal
    payloads and the union is order-independent.
    """
    completed: dict[str, Any] = {}
    provenance: dict[str, dict] = {}
    for j in range(shards):
        path = _journal_path(campaign_dir, j)
        if not path.exists():
            continue
        records, meta = Journal.peek(path, fingerprint, facets)
        completed.update(records)
        owners = set()
        for key in records:
            info = dict(meta.get(key) or {"by": f"shard-{j}",
                                          "stolen": False})
            info["shard"] = j
            provenance[key] = info
            if info.get("stolen"):
                owners.add(info.get("by"))
                if stats is not None:
                    stats.stolen_tasks += 1
        if stats is not None:
            stats.steals += len(owners)
    return completed, provenance


def _salvage(worker, tasks, keys, campaign_dir: Path, spec_proto: ShardSpec,
             report: ShardReport, jobs: int,
             policy: Optional[SupervisionPolicy],
             progress: Callable[[str], None]) -> None:
    """The coordinator's last line of defense: steal every incomplete
    shard's lease and run the missing tasks in a supervised pool.

    A pool — never in-process — so a poison task that SIGKILLs its host
    process costs a disposable worker and degrades to a structured
    failure, instead of taking the coordinator (and the merged report)
    down with it.
    """
    key_index = {k: i for i, k in enumerate(keys)}
    for j in range(spec_proto.shards):
        missing = [k for k in _missing_keys(spec_proto, j)
                   if k not in report.completed]
        if not missing:
            continue
        lease = Lease(_lease_path(campaign_dir, j), ttl=spec_proto.lease_ttl)
        deadline = time.monotonic() + spec_proto.lease_ttl + 2.0
        acquired = False
        while time.monotonic() < deadline:
            if lease.try_acquire() or lease.try_steal():
                acquired = True
                break
            time.sleep(0.2)
            missing = [k for k in _missing_keys(spec_proto, j)
                       if k not in report.completed]
            if not missing:  # a live owner finished it while we waited
                break
        if not missing:
            continue
        if not acquired:
            for k in missing:
                report.failures[k] = {
                    "kind": "shard", "attempts": 0,
                    "error": f"shard {j} incomplete and its lease is held "
                             f"by a live owner the coordinator cannot wait "
                             f"out"}
            continue
        progress(f"salvage: shard {j} — recovering {len(missing)} task(s)")
        heartbeat = _Heartbeat(lease,
                               interval=max(0.05, spec_proto.lease_ttl / 4.0))
        heartbeat.start()
        try:
            path = _journal_path(campaign_dir, j)
            journal = Journal(path, spec_proto.fingerprint,
                              resume=path.exists(), facets=spec_proto.facets)
            try:
                outcomes = run_supervised(
                    worker, [tasks[key_index[k]] for k in missing],
                    jobs=max(1, jobs), policy=policy or SupervisionPolicy())
                for k, outcome in zip(missing, outcomes):
                    if outcome.error is None:
                        journal.record(k, outcome.value,
                                       meta={"by": "salvage",
                                             "stolen": True})
                        report.completed[k] = outcome.value
                        report.provenance[k] = {"by": "salvage",
                                                "stolen": True, "shard": j}
                        report.stats.salvaged_tasks += 1
                    else:
                        report.failures[k] = {
                            "kind": outcome.kind,
                            "attempts": outcome.attempts,
                            "error": outcome.error}
            finally:
                journal.close()
        finally:
            heartbeat.stop()
            lease.release()


def run_sharded(worker: Callable[[Any], Any], tasks: Sequence[Any],
                keys: Sequence[str], campaign_dir: Path | str,
                fingerprint: str, facets: Optional[dict] = None,
                shards: int = 2, jobs: int = 1,
                policy: Optional[SupervisionPolicy] = None,
                shard_policy: Optional[SupervisionPolicy] = None,
                shard_chaos: Optional[ShardChaosConfig] = None,
                task_chaos: Optional[ChaosConfig] = None,
                lease_ttl: float = 15.0, resume: bool = False,
                salvage: bool = True,
                deadline: Optional[float] = None,
                progress: Optional[Callable[[str], None]] = None,
                ) -> ShardReport:
    """Run ``tasks`` split across ``shards`` lease-guarded worker processes.

    ``keys[i]`` is the stable journal key of ``tasks[i]`` (unique).  Each
    shard owns the round-robin slice ``i % shards == shard``, checkpoints
    into ``<campaign_dir>/shard-<n>.journal``, and steals stale siblings'
    slices when it finishes early.  Crashed shard processes are respawned
    under ``shard_policy`` (retries + seeded backoff, the per-task policy
    reused one level up); ``shard_chaos`` SIGKILLs whole shards on a
    seeded schedule.  Returns a :class:`ShardReport` whose ``completed``
    map merges every journal in a deterministic, order-independent way;
    unrecoverable tasks land in ``failures`` instead of raising.

    ``resume=False`` wipes any prior shard journals in ``campaign_dir``;
    ``resume=True`` adopts them (the coordinator itself can be SIGKILL'd
    and resumed, exactly like a single-journal campaign).

    ``deadline`` bounds the whole sharded campaign in wall-clock seconds:
    when it expires the coordinator SIGKILLs every shard, skips salvage,
    and degrades each unjournaled task to a structured ``kind:"deadline"``
    failure — journaled work survives for a later ``resume=True`` run.
    """
    if len(keys) != len(tasks):
        raise ValueError("keys and tasks must align")
    if len(set(keys)) != len(keys):
        raise ValueError("journal keys must be unique")
    progress = progress or (lambda msg: None)
    shard_policy = shard_policy or SupervisionPolicy(retries=2)
    campaign_dir = Path(campaign_dir)
    campaign_dir.mkdir(parents=True, exist_ok=True)
    if not resume:
        _wipe_campaign_dir(campaign_dir)
    shards = max(1, min(shards, len(tasks))) if tasks else 1
    report = ShardReport(total=len(tasks))
    report.stats.shards = shards
    report.stats.tasks = len(tasks)
    if resume:
        restored, _ = _merge_journals(campaign_dir, shards, fingerprint,
                                      facets)
        report.stats.resumed_tasks = len(restored)
    if not tasks:
        return report

    from repro.harness.resilience import _mp_context
    ctx = _mp_context()
    states = [_ShardState() for _ in range(shards)]

    def spawn(j: int) -> None:
        st = states[j]
        spec = ShardSpec(
            campaign_dir=str(campaign_dir), shard=j, shards=shards,
            worker=worker, tasks=list(tasks), keys=list(keys),
            fingerprint=fingerprint, facets=facets, jobs=jobs,
            policy=policy, task_chaos=task_chaos, lease_ttl=lease_ttl)
        st.proc = ctx.Process(target=_shard_main, args=(spec,))
        st.proc.start()
        st.respawn_at = None
        st.kill_at = None
        if shard_chaos is not None:
            delay = shard_chaos.kill_after(j, st.incarnation)
            if delay is not None:
                st.kill_at = time.monotonic() + delay

    def reap(j: int, st: _ShardState, now: float) -> None:
        code = st.proc.exitcode
        st.proc.join()
        try:
            st.proc.close()
        except Exception:
            pass
        st.proc = None
        if code in (0, EXIT_LEASE_LOST):
            # 0: slice + steal scan done.  EXIT_LEASE_LOST: its work is
            # owned by a live thief — respawning would only contend.
            return
        if st.incarnation <= shard_policy.retries:
            st.respawn_at = now + shard_policy.delay(j, st.incarnation)
            progress(f"shard {j} died (exit {code}); restart "
                     f"{st.incarnation}/{shard_policy.retries} scheduled")
        else:
            st.abandoned = True
            progress(f"shard {j} died (exit {code}); retry budget "
                     f"exhausted — survivors or salvage will adopt it")

    deadline_at = (time.monotonic() + deadline
                   if deadline is not None else None)
    expired = False
    try:
        for j in range(shards):
            spawn(j)
        while True:
            now = time.monotonic()
            if deadline_at is not None and now >= deadline_at:
                expired = True
                progress(f"deadline: campaign budget of {deadline:.1f}s "
                         f"exhausted — killing {shards} shard(s)")
                for st in states:
                    st.respawn_at = None
                    if st.proc is not None and st.proc.is_alive():
                        try:
                            os.kill(st.proc.pid, signal.SIGKILL)
                        except (OSError, TypeError):
                            pass
                for st in states:
                    if st.proc is not None:
                        st.proc.join(timeout=5)
                        try:
                            st.proc.close()
                        except Exception:
                            pass
                        st.proc = None
                break
            live = False
            for j, st in enumerate(states):
                if st.proc is not None:
                    if (st.kill_at is not None and now >= st.kill_at
                            and st.proc.is_alive()):
                        try:
                            os.kill(st.proc.pid, signal.SIGKILL)
                            report.stats.chaos_kills += 1
                            progress(f"chaos: SIGKILL shard {j} "
                                     f"(incarnation {st.incarnation})")
                        except (OSError, TypeError):
                            pass
                        st.kill_at = None
                    if st.proc.is_alive():
                        live = True
                    else:
                        reap(j, st, now)
                        live = live or st.respawn_at is not None
                elif st.respawn_at is not None:
                    live = True
                    if now >= st.respawn_at:
                        st.incarnation += 1
                        report.stats.restarts += 1
                        spawn(j)
            if not live:
                break
            time.sleep(0.05)
    except KeyboardInterrupt:
        for st in states:
            if st.proc is not None and st.proc.is_alive():
                st.proc.terminate()
        for st in states:
            if st.proc is not None:
                st.proc.join(timeout=2)
                if st.proc.is_alive():
                    st.proc.kill()
                    st.proc.join(timeout=5)
        try:
            done, _ = _merge_journals(campaign_dir, shards, fingerprint,
                                      facets)
            completed = len(done)
        except Exception:
            completed = 0
        raise CampaignInterrupted(completed, len(tasks)) from None

    report.completed, report.provenance = _merge_journals(
        campaign_dir, shards, fingerprint, facets, report.stats)
    missing = [k for k in keys if k not in report.completed]
    if expired:
        for k in missing:
            report.failures[k] = {
                "kind": "deadline", "attempts": 0,
                "error": f"deadline expired: campaign budget of "
                         f"{deadline:.1f}s exhausted before this task "
                         f"was journaled"}
        report.stats.failed_tasks = len(report.failures)
        return report
    if missing and salvage:
        spec_proto = ShardSpec(
            campaign_dir=str(campaign_dir), shard=0, shards=shards,
            worker=worker, tasks=list(tasks), keys=list(keys),
            fingerprint=fingerprint, facets=facets, lease_ttl=lease_ttl)
        _salvage(worker, list(tasks), list(keys), campaign_dir, spec_proto,
                 report, jobs, policy, progress)
        missing = [k for k in keys if k not in report.completed
                   and k not in report.failures]
    for k in missing:
        if k not in report.failures:
            j = list(keys).index(k) % shards
            report.failures[k] = {
                "kind": "shard", "attempts": states[j].incarnation,
                "error": f"shard {j} unrecoverable after "
                         f"{states[j].incarnation} incarnation(s)"}
    report.stats.failed_tasks = len(report.failures)
    return report
