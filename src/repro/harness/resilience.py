"""Crash-safe campaign machinery: supervision, retries, journals, chaos.

The experiment drivers (``bench``/``verify``) run long campaigns whose unit
of work — compile a workload, simulate hundreds of thousands of cycles — can
wedge or die: a mispredict storm makes a cell pathological, a worker process
is OOM-killed, the whole campaign catches a SIGKILL.  PR 1 hardened the
*simulated architecture* against injected faults; this module hardens the
*harness running it*:

* :class:`SupervisionPolicy` + :func:`run_supervised` — a supervision layer
  over :func:`repro.harness.parallel.run_tasks`: per-task wall-clock
  timeouts, detection and replacement of hung or killed workers, and
  bounded retries with exponential backoff + deterministic seeded jitter.
  Results merge in task order, so a supervised run is byte-identical to a
  clean serial run whenever every task eventually succeeds.

* :class:`Journal` — a crash-safe, append-only checkpoint file.  Each
  completed task is one self-checking JSON line (payload pickled, base64'd,
  SHA-256 guarded), flushed and fsync'd before the campaign moves on.  A
  SIGKILL mid-write leaves a torn tail that loading detects and truncates;
  ``--resume`` then skips every journaled task and re-runs only the rest,
  producing output byte-identical to an uninterrupted run.

* :class:`ChaosConfig` — seeded fault injection *into the harness itself*:
  workers randomly die (``os._exit``), hang (sleep past the watchdog), or
  corrupt their state (raise mid-task).  The chaos self-test asserts the
  supervised run still converges to the same bytes as a clean run — the
  harness-level analogue of the verify campaign's broken-shift-buffer
  self-test.

* :class:`CampaignInterrupted` + :func:`graceful_signals` — clean
  SIGINT/SIGTERM shutdown: the pool is drained, the journal is already
  durable, and the CLI reports partial progress and exits 130.
"""

from __future__ import annotations

import base64
import hashlib
import heapq
import json
import os
import pickle
import random
import signal
import time
import warnings
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import get_context
from multiprocessing.connection import wait as _conn_wait
from pathlib import Path
from typing import Any, Callable, Optional, Sequence

from repro.harness.fsutil import atomic_write_text
from repro.harness.parallel import TaskOutcome, _guarded

__all__ = [
    "CampaignInterrupted", "ChaosConfig", "ChaosError", "Journal",
    "JournalError", "SupervisionPolicy", "graceful_signals",
    "run_supervised",
]


class CampaignInterrupted(KeyboardInterrupt):
    """A campaign was interrupted (SIGINT/SIGTERM) after ``completed`` of
    ``total`` tasks; subclasses KeyboardInterrupt so an uncaught one still
    reaches the CLI's exit-130 path."""

    def __init__(self, completed: int, total: int) -> None:
        super().__init__(f"interrupted after {completed}/{total} tasks")
        self.completed = completed
        self.total = total


@contextmanager
def graceful_signals():
    """Route SIGTERM to the KeyboardInterrupt path for the enclosed block.

    ``kill <pid>`` then behaves like Ctrl-C: the supervised pool tears its
    workers down, the journal stays durable, and the CLI exits 130.
    """
    def _raise(signum, frame):
        raise KeyboardInterrupt

    try:
        previous = signal.signal(signal.SIGTERM, _raise)
    except ValueError:  # not in the main thread — leave signals alone
        yield
        return
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


# --------------------------------------------------------------- supervision
@dataclass
class SupervisionPolicy:
    """Knobs for supervised execution.

    ``retries`` bounds *additional* attempts after the first; a task is
    retried on any failure kind (timeout, killed worker, exception) until
    attempts are exhausted, then recorded as a failed outcome.  Backoff
    before attempt ``n+1`` is ``backoff * 2**(n-1)`` capped at
    ``backoff_cap``, stretched by up to ``jitter`` of itself.  The jitter is
    drawn from a generator seeded by ``(seed, task index, attempt)`` — fully
    deterministic, so a retried campaign replays the exact same schedule and
    stays byte-identical.

    ``deadline`` bounds the whole *batch*, not one task: once that many
    wall-clock seconds have elapsed since the pool started, in-flight tasks
    are cancelled (their workers killed) and every unfinished task is
    recorded as a structured ``kind:"deadline"`` failure instead of running.
    This is the cancellation path the campaign service's per-request
    deadlines propagate into.
    """

    timeout: Optional[float] = None   # per-task wall-clock seconds
    retries: int = 0                  # additional attempts after the first
    backoff: float = 0.5              # base delay before a retry, seconds
    backoff_cap: float = 30.0
    jitter: float = 0.5               # max extra delay, as a fraction
    seed: int = 0                     # jitter determinism
    deadline: Optional[float] = None  # whole-batch wall-clock seconds

    def attempts_allowed(self) -> int:
        return self.retries + 1

    @property
    def preemptive(self) -> bool:
        """Does this policy need capabilities only a child process pool can
        provide (killing a task mid-run)?  True when a per-task timeout or
        a batch deadline is set."""
        return self.timeout is not None or self.deadline is not None

    def delay(self, index: int, attempt: int) -> float:
        """Seconds to wait before re-dispatching ``index`` after failed
        attempt number ``attempt`` (1-based).  Deterministic."""
        rng = random.Random(f"{self.seed}:{index}:{attempt}")
        base = min(self.backoff_cap, self.backoff * (2 ** (attempt - 1)))
        return base * (1.0 + self.jitter * rng.random())


class ChaosError(RuntimeError):
    """Raised by a chaos-corrupted worker mid-task."""


@dataclass
class ChaosConfig:
    """Seeded harness-fault injection for the chaos self-test.

    Whether a given (task, attempt) misbehaves — and how — is a pure
    function of ``seed``, so a chaos run is reproducible.  Faults only fire
    while ``attempt <= max_faults``; with ``max_faults`` at or below the
    policy's retry budget every task eventually gets a clean attempt, which
    is what lets the self-test demand byte-identical output.
    """

    seed: int
    kill: float = 0.25       # probability: worker dies silently (os._exit)
    hang: float = 0.20       # probability: worker hangs past the watchdog
    corrupt: float = 0.15    # probability: worker raises mid-task
    max_faults: int = 2      # misbehave only on the first N attempts
    hang_seconds: float = 3600.0

    def misbehave(self, index: int, attempt: int) -> None:
        """Maybe kill/hang/corrupt the calling worker.  Runs in the child."""
        if attempt > self.max_faults:
            return
        roll = random.Random(f"chaos:{self.seed}:{index}:{attempt}").random()
        if roll < self.kill:
            os._exit(77)
        if roll < self.kill + self.hang:
            time.sleep(self.hang_seconds)
            return
        if roll < self.kill + self.hang + self.corrupt:
            raise ChaosError(
                f"injected worker corruption (task {index} attempt {attempt})")


def _worker_main(conn, worker: Callable[[Any], Any],
                 chaos: Optional[ChaosConfig]) -> None:
    """Child process: serve (index, attempt, task) requests until EOF.

    SIGINT is ignored — shutdown is the supervisor's job (it closes the
    pipe or kills the process), so a Ctrl-C hitting the whole process group
    cannot produce worker tracebacks racing the supervisor's own teardown.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except ValueError:
        pass
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return  # supervisor is gone
        if message is None:
            return
        index, attempt, task = message
        if chaos is not None:
            outcome = _guarded(
                lambda t: (chaos.misbehave(index, attempt), worker(t))[1],
                index, task)
        else:
            outcome = _guarded(worker, index, task)
        outcome.attempts = attempt
        try:
            conn.send(outcome)
        except (EOFError, OSError, BrokenPipeError):
            return
        except Exception as err:  # outcome.value not picklable
            conn.send(TaskOutcome(
                index, kind="unpicklable", attempts=attempt,
                error=f"task result not picklable: "
                      f"{type(err).__name__}: {err}"))


class _Slot:
    """One supervised worker process and what it is currently running."""

    __slots__ = ("proc", "conn", "index", "attempt", "deadline")

    def __init__(self, ctx, worker, chaos) -> None:
        parent_conn, child_conn = ctx.Pipe()
        self.proc = ctx.Process(target=_worker_main,
                                args=(child_conn, worker, chaos), daemon=True)
        self.proc.start()
        child_conn.close()
        self.conn = parent_conn
        self.index: Optional[int] = None
        self.attempt = 0
        self.deadline: Optional[float] = None

    @property
    def busy(self) -> bool:
        return self.index is not None

    def assign(self, index: int, attempt: int, task: Any,
               timeout: Optional[float]) -> None:
        self.conn.send((index, attempt, task))
        self.index = index
        self.attempt = attempt
        self.deadline = (time.monotonic() + timeout
                         if timeout is not None else None)

    def release(self) -> None:
        self.index = None
        self.attempt = 0
        self.deadline = None

    def destroy(self, graceful: bool = False) -> None:
        if graceful and self.proc.is_alive():
            try:
                self.conn.send(None)
            except (OSError, BrokenPipeError, ValueError):
                pass
        try:
            self.conn.close()
        except OSError:
            pass
        if self.proc.is_alive():
            self.proc.join(timeout=0.25 if graceful else 0)
        if self.proc.is_alive():
            self.proc.kill()
            self.proc.join(timeout=5)
        # Release the process object's resources (pidfd etc.) promptly.
        try:
            self.proc.close()
        except Exception:
            pass


def _mp_context():
    try:
        return get_context("fork")
    except ValueError:
        return get_context()


def run_supervised(worker: Callable[[Any], Any], tasks: Sequence[Any],
                   jobs: int = 1, policy: Optional[SupervisionPolicy] = None,
                   chaos: Optional[ChaosConfig] = None,
                   on_result: Optional[Callable[[TaskOutcome], None]] = None,
                   ) -> list[TaskOutcome]:
    """Supervised process-pool execution of ``tasks``.

    Workers that exceed the policy's wall-clock timeout are killed and
    replaced; workers that die mid-task (OOM kill, crash, chaos) are
    detected via pipe EOF and replaced; failed attempts are retried with
    seeded exponential backoff until the retry budget runs out, at which
    point the task's outcome records the failure (kind ``timeout`` /
    ``killed`` / ``exception`` / ``unpicklable``) for the caller's
    graceful-degradation machinery.  A policy ``deadline`` cancels the whole
    batch when it expires: busy workers are killed and every unfinished task
    degrades to a ``kind:"deadline"`` outcome.  Outcomes return in task
    order.
    """
    policy = policy or SupervisionPolicy()
    total = len(tasks)
    if total == 0:
        return []
    ctx = _mp_context()
    results: dict[int, TaskOutcome] = {}
    ready: deque[tuple[int, int]] = deque((i, 1) for i in range(total))
    delayed: list[tuple[float, int, int]] = []  # (ready_at, index, attempt)
    slots: list[_Slot] = []
    batch_deadline = (time.monotonic() + policy.deadline
                      if policy.deadline is not None else None)

    def finish(outcome: TaskOutcome) -> None:
        results[outcome.index] = outcome
        if on_result is not None:
            on_result(outcome)

    def failed(index: int, attempt: int, kind: str, detail: str,
               tb: Optional[str] = None) -> None:
        """Retry a failed attempt, or record the exhausted outcome."""
        if attempt < policy.attempts_allowed():
            ready_at = time.monotonic() + policy.delay(index, attempt)
            heapq.heappush(delayed, (ready_at, index, attempt + 1))
            return
        budget = (f" (attempt {attempt}/{policy.attempts_allowed()})"
                  if policy.retries else "")
        finish(TaskOutcome(index, error=f"{detail}{budget}", kind=kind,
                           attempts=attempt, traceback=tb))

    def replace(slot: _Slot) -> _Slot:
        slot.destroy()
        fresh = _Slot(ctx, worker, chaos)
        slots[slots.index(slot)] = fresh
        return fresh

    def dispatch() -> None:
        now = time.monotonic()
        while delayed and delayed[0][0] <= now:
            _, index, attempt = heapq.heappop(delayed)
            ready.append((index, attempt))
        for slot in list(slots):
            if not ready:
                return
            if slot.busy:
                continue
            index, attempt = ready.popleft()
            try:
                slot.assign(index, attempt, tasks[index], policy.timeout)
            except (OSError, BrokenPipeError, EOFError):
                # The idle worker died between tasks — replace it and put
                # the task back without charging an attempt.
                replace(slot)
                ready.appendleft((index, attempt))
            except Exception as err:
                # The *task* would not pickle; no worker can ever run it.
                finish(TaskOutcome(
                    index, kind="unpicklable", attempts=attempt,
                    error=f"task not picklable: {type(err).__name__}: {err}"))

    def expire_batch() -> None:
        """The batch deadline passed: record every unfinished task as a
        structured ``deadline`` failure.  Teardown of the (possibly still
        busy) workers is the ``finally`` block's job."""
        attempts_seen = {index: attempt - 1 for index, attempt in ready}
        for _, index, attempt in delayed:
            attempts_seen[index] = attempt - 1
        running = {slot.index: slot.attempt for slot in slots if slot.busy}
        attempts_seen.update(running)
        for index in range(total):
            if index in results:
                continue
            finish(TaskOutcome(
                index, kind="deadline",
                attempts=attempts_seen.get(index, 0),
                error=f"deadline expired: batch budget of "
                      f"{policy.deadline:.1f}s exhausted "
                      + ("mid-task" if index in running
                         else "before the task ran")))

    try:
        slots.extend(_Slot(ctx, worker, chaos)
                     for _ in range(max(1, min(jobs, total))))
        while len(results) < total:
            now = time.monotonic()
            if batch_deadline is not None and now >= batch_deadline:
                expire_batch()
                break
            dispatch()
            busy = [s for s in slots if s.busy]
            now = time.monotonic()
            if not busy:
                if delayed:
                    wake_at = delayed[0][0]
                    if batch_deadline is not None:
                        wake_at = min(wake_at, batch_deadline)
                    time.sleep(max(0.0, wake_at - now))
                continue
            waits = [s.deadline - now for s in busy if s.deadline is not None]
            if delayed:
                waits.append(delayed[0][0] - now)
            if batch_deadline is not None:
                waits.append(batch_deadline - now)
            wait_for = max(0.0, min(waits)) if waits else None
            arrived = _conn_wait([s.conn for s in busy], wait_for)
            now = time.monotonic()
            for slot in busy:
                if slot.conn in arrived:
                    index, attempt = slot.index, slot.attempt
                    try:
                        outcome = slot.conn.recv()
                    except (EOFError, OSError):
                        # Worker died mid-task: SIGKILL, os._exit, segfault.
                        replace(slot)
                        failed(index, attempt, "killed",
                               "worker killed: process died mid-task")
                        continue
                    slot.release()
                    if outcome.error is not None:
                        failed(index, attempt, outcome.kind, outcome.error,
                               outcome.traceback)
                    else:
                        finish(outcome)
                elif slot.deadline is not None and slot.deadline <= now:
                    index, attempt = slot.index, slot.attempt
                    replace(slot)
                    failed(index, attempt, "timeout",
                           f"worker timeout: no result within "
                           f"{policy.timeout:.1f}s wall clock")
        return [results[i] for i in range(total)]
    except KeyboardInterrupt:
        raise CampaignInterrupted(completed=len(results), total=total
                                  ) from None
    finally:
        for slot in slots:
            slot.destroy(graceful=not slot.busy)


# ------------------------------------------------------------------- journal
class JournalError(Exception):
    """The journal cannot be used: wrong campaign, unreadable header."""


def _jsonable_facets(facets: dict) -> dict:
    """Facets as they round-trip through the JSON header (default=str
    matches :meth:`Journal.make_fingerprint`)."""
    return json.loads(json.dumps(facets, sort_keys=True, default=str))


def _facet_divergence(theirs: Optional[dict], ours: Optional[dict]) -> str:
    """Name the campaign facets that differ between a journal header and
    the current invocation — the actionable half of a fingerprint
    mismatch."""
    if not isinstance(theirs, dict) or not isinstance(ours, dict):
        return "workloads/models/seeds changed?"
    diverged = sorted(k for k in (theirs.keys() | ours.keys())
                      if theirs.get(k) != ours.get(k))
    if not diverged:
        return "workloads/models/seeds changed?"
    details = []
    for key in diverged:
        details.append(f"{key}: {theirs.get(key)!r} -> {ours.get(key)!r}")
    return "diverged " + "; ".join(details)


class Journal:
    """Append-only, crash-safe checkpoint log for a campaign.

    Layout: line one is a JSON header carrying a campaign ``fingerprint``
    (so ``--resume`` refuses to splice results from a *different* campaign
    into this one) and, when provided, the plain ``facets`` dict the
    fingerprint was derived from — which lets a mismatch name the exact
    field that diverged instead of shrugging at a hash.  Every further line
    is one completed task::

        {"key": "grep/minboost3", "sha": <sha256 of data>, "data": <base64
         pickle of the task's result payload>, "meta": {...optional...}}

    Appends are flushed and fsync'd before :meth:`record` returns, so a
    journaled task survives any crash of the campaign process.  A crash
    *during* an append leaves a torn final line; loading verifies each line
    (newline-terminated, valid JSON, checksum match, payload unpickles) and
    truncates the file back to the last good record, warning once with the
    kept/dropped record counts.  The header itself is written atomically
    (temp + fsync + rename).
    """

    VERSION = 1

    def __init__(self, path: Path | str, fingerprint: str,
                 resume: bool = False,
                 facets: Optional[dict] = None) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint
        self.facets = facets
        #: key -> unpickled payload for every journaled task
        self.completed: dict[str, Any] = {}
        #: key -> the record's ``meta`` dict (shard provenance etc.), for
        #: every journaled task that carried one
        self.meta: dict[str, dict] = {}
        self.recovered_bytes = 0  # torn bytes truncated during load
        if resume and self.path.exists():
            good_offset = self._load()
            self._fh = open(self.path, "r+b")
            self._fh.seek(good_offset)
            self._fh.truncate()
        else:
            header = {"journal": "repro-campaign", "version": self.VERSION,
                      "fingerprint": fingerprint}
            if facets is not None:
                header["facets"] = _jsonable_facets(facets)
            if self.path.parent != Path(""):
                self.path.parent.mkdir(parents=True, exist_ok=True)
            atomic_write_text(self.path, json.dumps(header) + "\n")
            self._fh = open(self.path, "ab")

    @classmethod
    def _check_header(cls, path: Path, header: dict, fingerprint: str,
                      facets: Optional[dict]) -> None:
        if header.get("journal") != "repro-campaign":
            raise JournalError(f"{path}: not a campaign journal")
        if header.get("version") != cls.VERSION:
            raise JournalError(f"{path}: journal version "
                               f"{header.get('version')} != {cls.VERSION}")
        if header.get("fingerprint") != fingerprint:
            diverged = _facet_divergence(header.get("facets"),
                                         _jsonable_facets(facets)
                                         if facets is not None else None)
            raise JournalError(
                f"{path}: journal belongs to a different campaign "
                f"({diverged}) — delete it or drop --resume to start over")

    def _load(self) -> int:
        """Parse the journal, fill :attr:`completed`, and return the byte
        offset just past the last intact record."""
        raw = self.path.read_bytes()
        header, completed, meta, good, dropped = self._scan(raw, self.path)
        self._check_header(self.path, header, self.fingerprint, self.facets)
        self.completed = completed
        self.meta = meta
        self.recovered_bytes = len(raw) - good
        if dropped:
            warnings.warn(
                f"{self.path}: journal tail torn or corrupt — kept "
                f"{len(completed)} record(s), dropped {dropped} "
                f"({self.recovered_bytes} bytes truncated); the dropped "
                f"task(s) will be recomputed")
        return good

    @classmethod
    def _scan(cls, raw: bytes, path: Path
              ) -> tuple[dict, dict[str, Any], dict[str, dict], int, int]:
        """Parse header + records out of ``raw``.

        Returns ``(header, completed, meta, good_offset, dropped)`` where
        ``good_offset`` is the byte offset just past the last intact record
        and ``dropped`` counts discarded (torn/corrupt) record lines.
        """
        offset = raw.find(b"\n")
        if offset < 0:
            raise JournalError(f"{path}: no journal header")
        try:
            header = json.loads(raw[:offset].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as err:
            raise JournalError(f"{path}: unreadable journal header "
                               f"({err})") from None
        if not isinstance(header, dict):
            raise JournalError(f"{path}: not a campaign journal")
        good = offset + 1
        rest = raw[good:]
        completed: dict[str, Any] = {}
        meta: dict[str, dict] = {}
        pos = 0
        while True:
            newline = rest.find(b"\n", pos)
            if newline < 0:
                break  # torn tail: final line lost its newline to a crash
            payload = cls._parse_record(rest[pos:newline])
            if payload is None:
                break  # torn or corrupt record: discard it and the rest
            completed[payload[0]] = payload[1]
            if payload[2] is not None:
                meta[payload[0]] = payload[2]
            pos = newline + 1
        remainder = rest[pos:]
        dropped = remainder.count(b"\n")
        if remainder and not remainder.endswith(b"\n"):
            dropped += 1
        return header, completed, meta, good + pos, dropped

    @classmethod
    def peek(cls, path: Path | str, fingerprint: Optional[str] = None,
             facets: Optional[dict] = None
             ) -> tuple[dict[str, Any], dict[str, dict]]:
        """Read a journal's records without opening it for writing.

        Unlike resuming, ``peek`` never truncates (the journal may belong
        to a live writer mid-append — a torn tail is simply ignored) and
        never warns.  Returns ``(completed, meta)``.  When ``fingerprint``
        is given the header is verified against it.
        """
        raw = Path(path).read_bytes()
        header, completed, meta, _, _ = cls._scan(raw, Path(path))
        if fingerprint is not None:
            cls._check_header(Path(path), header, fingerprint, facets)
        return completed, meta

    @staticmethod
    def _parse_record(line: bytes
                      ) -> Optional[tuple[str, Any, Optional[dict]]]:
        try:
            record = json.loads(line.decode("utf-8"))
            data = record["data"]
            if hashlib.sha256(data.encode()).hexdigest() != record["sha"]:
                return None
            return (record["key"], pickle.loads(base64.b64decode(data)),
                    record.get("meta"))
        except Exception:
            return None

    def record(self, key: str, payload: Any,
               meta: Optional[dict] = None) -> None:
        """Durably append one completed task.  Safe to call from signal-
        interrupted contexts: the line is fully written + fsync'd or the
        torn tail is discarded on the next load.  ``meta`` (a small
        JSON-serialisable dict — shard provenance, steal attribution) rides
        along outside the checksummed payload."""
        data = base64.b64encode(
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)).decode()
        record = {"key": key,
                  "sha": hashlib.sha256(data.encode()).hexdigest(),
                  "data": data}
        if meta is not None:
            record["meta"] = meta
        self._fh.write(json.dumps(record).encode("utf-8") + b"\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        try:
            self._fh.close()
        except OSError:
            pass

    @staticmethod
    def make_fingerprint(**facets) -> str:
        """Stable fingerprint of the facets that define a campaign."""
        text = json.dumps(facets, sort_keys=True, default=str)
        return hashlib.sha256(text.encode()).hexdigest()
