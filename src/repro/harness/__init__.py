"""Experiment harness: compile pipeline, experiment drivers, reporting."""

from repro.harness.coordinator import (
    ShardChaosConfig, ShardReport, run_sharded,
)
from repro.harness.experiments import (
    CONFIGS, DYNAMIC_CONFIGS, DynamicMatrixRow, Figure8Row, Figure9Row, Lab,
    Table1Row, Table2Row, dynamic_matrix, figure8, figure9, geometric_mean,
    table1, table2,
)
from repro.harness.fsutil import Lease, LeaseInfo
from repro.harness.pipeline import (
    CompileConfig, CompiledProgram, SCALAR_CONFIG, annotate_predictions,
    compile_ir, compile_minic, make_input_image,
)
from repro.harness.report import (
    render_all, render_dynamic_matrix, render_figure8, render_figure9,
    render_table1, render_table2, write_experiments_md,
)
from repro.harness.resilience import (
    CampaignInterrupted, ChaosConfig, Journal, JournalError,
    SupervisionPolicy, graceful_signals,
)

__all__ = [
    "CONFIGS", "CampaignInterrupted", "ChaosConfig", "CompileConfig",
    "CompiledProgram", "DYNAMIC_CONFIGS", "DynamicMatrixRow", "Figure8Row",
    "Figure9Row", "Journal", "JournalError", "Lab", "Lease", "LeaseInfo",
    "SCALAR_CONFIG", "ShardChaosConfig", "ShardReport", "SupervisionPolicy",
    "Table1Row", "Table2Row", "annotate_predictions", "compile_ir",
    "compile_minic", "dynamic_matrix", "figure8", "figure9",
    "geometric_mean", "graceful_signals", "make_input_image", "render_all",
    "render_dynamic_matrix", "render_figure8", "render_figure9",
    "render_table1", "render_table2", "run_sharded", "table1", "table2",
    "write_experiments_md",
]
