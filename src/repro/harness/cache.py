"""On-disk compile cache.

``bench`` and ``verify`` recompile the same (workload source, config) cells
from Minic on every run — and, with the parallel executor, once per worker
process.  Compilation dominates an end-to-end sweep, so the results are
memoized on disk, keyed by everything that could change the output:

* :data:`CODE_VERSION` — bumped whenever the compiler/scheduler/simulator
  semantics change, invalidating every prior entry;
* the kind of artifact ("compiled" for a full :class:`CompiledProgram`,
  "reference" for a functional-reference run);
* a SHA-256 of the Minic source text;
* a fingerprint of the :class:`CompileConfig` (machine, model, scheduler,
  register allocator, optimization and unroll settings);
* a fingerprint of the training inputs used for profiling.

Entries are pickled to ``<cache_dir>/<key>.pkl`` with an atomic
tempfile-fsync-rename write, so concurrent workers never observe a partial
file and a crash never leaves a torn entry.  A file that fails to load —
truncated, corrupted, or written by an incompatible pickle — is **discarded
with a warning and deleted**, never trusted.

A key whose entry fails to load repeatedly (:data:`CompileCache.
QUARANTINE_STRIKES` consecutive failures, tracked in a ``<key>.strikes``
sidecar) is **quarantined**: loads short-circuit to a miss without touching
the file and stores become no-ops, so a systematically corrupting entry —
bad disk sector, hostile tmpfs, chaos testing — degrades to "compile every
time" instead of hot-looping on store → corrupt → discard → store.  One
clean load clears the strikes.

Instruction uids are process-local counters, so a cached program's uids can
collide with instructions created later in a loading process (corrupting
fault-plan and recovery-code indexing).  Each entry therefore records the
maximum uid it contains, and loading bumps the global counter past it via
:func:`~repro.isa.instruction.ensure_uid_floor`.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import sys
import warnings
from pathlib import Path
from typing import Optional

from repro.frontend import compile_source
from repro.harness.fsutil import atomic_write_bytes, atomic_write_text
from repro.harness.pipeline import (
    CompileConfig, CompiledProgram, InputSet, compile_ir, prepare_ir,
)
from repro.isa.instruction import ensure_uid_floor
from repro.program.procedure import Program

__all__ = ["CODE_VERSION", "CompileCache", "default_cache_dir"]

#: Version tag of the whole compile pipeline.  Bump on any change to the
#: front end, optimizer, register allocator, profiler, or schedulers that
#: can alter their output for unchanged source + config.
CODE_VERSION = 4

_ENV_DIR = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-boost``."""
    env = os.environ.get(_ENV_DIR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-boost"


def _fingerprint_config(config: CompileConfig) -> str:
    """A stable text form of every semantically relevant config field."""
    return "|".join([
        config.machine.name, str(config.machine.issue_width),
        str(config.machine.recovery_overhead),
        config.model.name, str(config.model.max_level),
        str(config.model.boost_stores), str(config.model.multi_shadow_files),
        str(config.model.squash_only),
        config.scheduler, config.regalloc,
        str(config.optimize), str(config.unroll),
    ])


def _fingerprint_prepare(config: CompileConfig) -> str:
    """Fingerprint of only the fields :func:`prepare_ir` depends on.

    Preparation (optimize, allocate, profile) is independent of the machine
    model and scheduler, so every model in a campaign shares one entry.
    """
    return "|".join([config.regalloc, str(config.optimize),
                     str(config.unroll)])


def _fingerprint_inputs(inputs: Optional[InputSet]) -> str:
    if not inputs:
        return "-"
    parts = []
    for name in sorted(inputs):
        value = inputs[name]
        if isinstance(value, bytes):
            parts.append(f"{name}=b:{value.hex()}")
        elif isinstance(value, int):
            parts.append(f"{name}=i:{value}")
        else:
            parts.append(f"{name}=l:{','.join(str(v) for v in value)}")
    return ";".join(parts)


def _max_uid(*programs) -> int:
    """Largest instruction uid reachable from the given programs/schedules."""
    best = 0
    for obj in programs:
        if obj is None:
            continue
        if isinstance(obj, Program):
            for proc in obj.procedures.values():
                for instr in proc.instructions():
                    if instr.uid > best:
                        best = instr.uid
            continue
        # ScheduledProgram: issue rows plus recovery code.
        for proc in obj.procedures.values():
            for block in proc.blocks:
                for row in block.cycles:
                    for instr in row:
                        if instr is not None and instr.uid > best:
                            best = instr.uid
            for recov in proc.recovery.values():
                for instr in recov.instructions:
                    if instr.uid > best:
                        best = instr.uid
    return best


class CompileCache:
    """Pickle-on-disk memoization of the compile pipeline.

    ``hits``/``misses`` count lookups; ``discarded`` counts cache files that
    existed but could not be trusted (and were deleted); ``quarantined``
    counts lookups that skipped a key with too many consecutive load
    failures.
    """

    #: consecutive load failures after which a key is quarantined
    QUARANTINE_STRIKES = 3

    def __init__(self, cache_dir: Optional[Path | str] = None) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.discarded = 0
        self.quarantined = 0
        self.purged = 0
        self._version_checked = False

    # --------------------------------------------------------------- versions
    def _check_version(self) -> None:
        """Purge entries left behind by an older :data:`CODE_VERSION`.

        The version participates in every key hash, so stale entries can
        never be *loaded* — but without this sweep a version bump leaves
        them on disk forever, silently unreachable.  The cache directory
        carries a ``VERSION`` marker; on mismatch every entry is deleted
        with a one-line stderr note.
        """
        if self._version_checked:
            return
        self._version_checked = True
        marker = self.cache_dir / "VERSION"
        try:
            on_disk = marker.read_text().strip()
        except OSError:
            on_disk = None
        if on_disk == str(CODE_VERSION):
            return
        entries = list(self.cache_dir.glob("*.pkl"))
        if entries and on_disk != str(CODE_VERSION):
            for path in entries:
                try:
                    path.unlink()
                except OSError:
                    continue
                self.purged += 1
            for path in self.cache_dir.glob("*.strikes"):
                try:
                    path.unlink()
                except OSError:
                    pass
            print(f"compile cache: purged {self.purged} entr"
                  f"{'y' if self.purged == 1 else 'ies'} from code version "
                  f"{on_disk or 'unknown'} (now {CODE_VERSION})",
                  file=sys.stderr)
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            atomic_write_text(marker, f"{CODE_VERSION}\n")
        except OSError:
            pass

    # ------------------------------------------------------------------ keys
    def key(self, kind: str, source: str, config: Optional[CompileConfig],
            train_inputs: Optional[InputSet] = None, extra: str = "") -> str:
        text = "\x00".join([
            f"v{CODE_VERSION}", kind,
            hashlib.sha256(source.encode()).hexdigest(),
            _fingerprint_config(config) if config is not None else "-",
            _fingerprint_inputs(train_inputs),
            extra,
        ])
        return hashlib.sha256(text.encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.pkl"

    # ------------------------------------------------------------ quarantine
    def _strikes_path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.strikes"

    def _strikes(self, key: str) -> int:
        try:
            return int(self._strikes_path(key).read_text().strip() or 0)
        except (OSError, ValueError):
            return 0

    def _record_strike(self, key: str) -> None:
        strikes = self._strikes(key) + 1
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            atomic_write_text(self._strikes_path(key), f"{strikes}\n")
        except OSError:
            return
        if strikes >= self.QUARANTINE_STRIKES:
            warnings.warn(f"quarantining compile-cache key {key[:12]}… after "
                          f"{strikes} consecutive load failures; it will be "
                          "recompiled uncached from now on")

    def _clear_strikes(self, key: str) -> None:
        try:
            self._strikes_path(key).unlink()
        except OSError:
            pass

    def is_quarantined(self, key: str) -> bool:
        return self._strikes(key) >= self.QUARANTINE_STRIKES

    # ------------------------------------------------------------- load/store
    def load(self, key: str):
        """The cached payload for ``key``, or None on miss.

        Any failure to read or unpickle discards the file: a cache entry
        that cannot be loaded cleanly must not be trusted.  A key that
        keeps failing is quarantined — skipped entirely — instead of being
        discarded and rebuilt forever.
        """
        self._check_version()
        if self.is_quarantined(key):
            self.quarantined += 1
            self.misses += 1
            return None
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                payload, max_uid = pickle.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception as exc:  # corrupted / truncated / incompatible
            self.discarded += 1
            self.misses += 1
            warnings.warn(f"discarding corrupted compile-cache entry "
                          f"{path.name}: {exc}")
            self._record_strike(key)
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        if self._strikes(key):
            self._clear_strikes(key)
        ensure_uid_floor(max_uid + 1)
        return payload

    def store(self, key: str, payload) -> None:
        """Atomically persist ``payload`` under ``key`` (temp, fsync,
        rename — a crash mid-store can never leave a torn entry).

        Best effort: an unwritable cache directory degrades to a no-op
        rather than failing the experiment, and a quarantined key is not
        rewritten (writing it again is what a corruption hot-loop is made
        of).
        """
        self._check_version()
        if self.is_quarantined(key):
            return
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            atomic_write_bytes(
                self._path(key),
                pickle.dumps((payload, self._payload_max_uid(payload)),
                             protocol=pickle.HIGHEST_PROTOCOL))
        except OSError as exc:
            warnings.warn(f"compile cache write failed ({exc}); continuing "
                          "uncached")

    @staticmethod
    def _payload_max_uid(payload) -> int:
        if isinstance(payload, CompiledProgram):
            return _max_uid(payload.program, payload.reference, payload.sched)
        if isinstance(payload, Program):
            return _max_uid(payload)
        return 0

    # ------------------------------------------------------------ memoization
    def compile_minic(self, source: str, config: CompileConfig,
                      train_inputs: Optional[InputSet] = None,
                      ) -> CompiledProgram:
        """Memoized :func:`repro.harness.pipeline.compile_minic`."""
        key = self.key("compiled", source, config, train_inputs)
        cached = self.load(key)
        if cached is not None:
            return cached
        compiled = compile_ir(compile_source(source), config, train_inputs)
        self.store(key, compiled)
        return compiled

    def prepare_ir(self, source: str, config: CompileConfig,
                   train_inputs: Optional[InputSet] = None) -> Program:
        """Memoized front-end + :func:`prepare_ir` (schedulable, unscheduled).

        Returns a program the caller may mutate: the cache keeps its own
        pickled copy, so each load materializes a fresh object graph.
        """
        key = self.key("prepared", source, None, train_inputs,
                       extra=_fingerprint_prepare(config))
        cached = self.load(key)
        if cached is not None:
            return cached
        prepared = prepare_ir(compile_source(source), config, train_inputs)
        self.store(key, prepared)
        return prepared

    def stats(self) -> dict:
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "discarded": self.discarded,
            "quarantined": self.quarantined,
            "purged": self.purged,
            "hit_rate": self.hits / total if total else 0.0,
        }
