"""Experiment drivers: regenerate every table and figure of Section 4.3.

All experiments share a :class:`Lab`, which memoises the expensive
compile+simulate steps per (workload, configuration):

* **Table 1** — per-benchmark scalar cycles, scalar IPC, and static
  branch-prediction accuracy (profile trained on the *train* input,
  measured on the *eval* input);
* **Figure 8** — speedup of the base 2-issue superscalar over the scalar
  machine, basic-block scheduling vs global scheduling (no boosting), with
  register allocation before scheduling and under the infinite register
  model;
* **Table 2** — percentage cycle-count improvement over global scheduling
  for the Squashing / Boost1 / MinBoost3 / Boost7 hardware models;
* **Figure 9** — speedup over scalar of MinBoost3 (32 regs / infinite regs)
  versus the dynamically-scheduled machine (without / with register
  renaming).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.harness.cache import CompileCache
from repro.harness.parallel import run_tasks
from repro.harness.pipeline import (
    CompileConfig, CompiledProgram, SCALAR_CONFIG, compile_minic,
    make_input_image,
)
from repro.hw.dynamic import DynamicConfig, DynamicSim
from repro.hw.exceptions import ExecutionResult, Trap
from repro.obs.stats import SimStats
from repro.verify.errors import Divergence, DivergenceError
from repro.sched.boostmodel import (
    BOOST1, BOOST7, MINBOOST3, NO_BOOST, SQUASHING,
)
from repro.sched.machine import SUPERSCALAR
from repro.workloads import Workload, all_workloads

#: named configurations used by the experiments
CONFIGS: dict[str, CompileConfig] = {
    "scalar": SCALAR_CONFIG,
    "bb": CompileConfig(machine=SUPERSCALAR, model=NO_BOOST, scheduler="bb"),
    "global": CompileConfig(machine=SUPERSCALAR, model=NO_BOOST),
    "global_inf": CompileConfig(machine=SUPERSCALAR, model=NO_BOOST,
                                regalloc="infinite"),
    "squashing": CompileConfig(machine=SUPERSCALAR, model=SQUASHING),
    "boost1": CompileConfig(machine=SUPERSCALAR, model=BOOST1),
    "minboost3": CompileConfig(machine=SUPERSCALAR, model=MINBOOST3),
    "boost7": CompileConfig(machine=SUPERSCALAR, model=BOOST7),
    "minboost3_inf": CompileConfig(machine=SUPERSCALAR, model=MINBOOST3,
                                   regalloc="infinite"),
}

#: dynamically-scheduled machine variants measured by the bench report, in
#: report order — the two paper-era comparators plus the memory-speculative
#: baselines layered on them (see docs/memory-speculation.md): a 16-entry
#: load/store queue with store-to-load forwarding, the same plus
#: memory-dependence speculation, and the speculative machine with a
#: variable-rate (4-wide refill) front end
DYNAMIC_CONFIGS: dict[str, DynamicConfig] = {
    "dynamic": DynamicConfig(rename=False),
    "dynamic_rename": DynamicConfig(rename=True),
    "dynamic_lsq": DynamicConfig(rename=True, lsq_size=16, stlf=True),
    "dynamic_memdep": DynamicConfig(rename=True, lsq_size=16, stlf=True,
                                    memdep_speculate=True),
    "dynamic_vfr": DynamicConfig(rename=True, lsq_size=16, stlf=True,
                                 memdep_speculate=True, fetch_rate=4),
}

#: every configuration the bench report measures, in report order — the
#: static compile configs plus the dynamically-scheduled machine variants
BENCH_CONFIG_KEYS: list[str] = list(CONFIGS) + list(DYNAMIC_CONFIGS)


def geometric_mean(values: list[float]) -> Optional[float]:
    if not values:
        return None  # every contributing cell failed — render as ERR
    return math.exp(sum(math.log(v) for v in values) / len(values))


class Lab:
    """Memoising compile-and-measure service shared by all experiments.

    :meth:`measure` is strict (raises on any failure); :meth:`cell` and
    :meth:`speedup` degrade gracefully, returning ``None`` and recording the
    failure in :attr:`errors` so one broken (workload, configuration) pair
    costs its own table cells, not the whole benchmark report.

    ``sabotage`` names a workload whose non-scalar simulations are
    deliberately strangled (a 1000-cycle watchdog) — the mechanism behind
    ``bench --sabotage``, which demonstrates and tests that degradation.
    """

    #: cycle budget for sabotaged runs — far below any real workload
    SABOTAGE_CYCLES = 1000

    def __init__(self, workloads: Optional[list[Workload]] = None,
                 sabotage: Optional[str] = None,
                 cache: Optional[CompileCache] = None,
                 collect_stats: bool = False) -> None:
        self.workloads = workloads if workloads is not None else all_workloads()
        self.sabotage = sabotage
        self.cache = cache
        #: attach repro.obs scheduler/simulator counters to every cell
        self.collect_stats = collect_stats
        self._compiled: dict[tuple[str, str], CompiledProgram] = {}
        self._measured: dict[tuple[str, str], ExecutionResult] = {}
        self._reference: dict[str, list[int]] = {}
        #: (workload, config) -> error text for every degraded cell
        self.errors: dict[tuple[str, str], str] = {}
        #: (workload, config) -> structured supervision-failure record
        #: (kind: timeout/killed/exception/unpicklable, attempts, error) for
        #: cells that degraded at the *harness* level rather than inside the
        #: simulation
        self.failures: dict[tuple[str, str], dict] = {}
        #: journal keys of cells restored by ``populate(journal=...)``
        self.resumed: set[tuple[str, str]] = set()
        #: :class:`repro.harness.coordinator.ShardReport` from the last
        #: :meth:`populate_sharded` call, for report provenance sections
        self.shard_report = None

    def workload(self, name: str) -> Workload:
        for w in self.workloads:
            if w.name == name:
                return w
        raise KeyError(name)

    def compiled(self, wname: str, config_key: str) -> CompiledProgram:
        key = (wname, config_key)
        if key not in self._compiled:
            w = self.workload(wname)
            if self.cache is not None:
                self._compiled[key] = self.cache.compile_minic(
                    w.source, CONFIGS[config_key], w.train)
            else:
                self._compiled[key] = compile_minic(
                    w.source, CONFIGS[config_key], w.train)
        return self._compiled[key]

    def reference_output(self, wname: str) -> list[int]:
        if wname not in self._reference:
            w = self.workload(wname)
            cp = self.compiled(wname, "scalar")
            self._reference[wname] = cp.run_functional(w.eval).output
        return self._reference[wname]

    def measure(self, wname: str, config_key: str) -> ExecutionResult:
        """Run one configuration on the eval input, checking correctness
        against the functional reference."""
        key = (wname, config_key)
        if key in self._measured:
            return self._measured[key]
        w = self.workload(wname)
        sabotaged = (self.sabotage == wname and config_key != "scalar")
        if config_key in DYNAMIC_CONFIGS:
            base = self.compiled(wname, "scalar")
            image = make_input_image(base.program, w.eval)
            # DynamicSim never mutates its config, so sharing the
            # registry instances across cells is safe.
            config = DYNAMIC_CONFIGS[config_key]
            kwargs = {"max_cycles": self.SABOTAGE_CYCLES} if sabotaged else {}
            if self.collect_stats:
                kwargs["stats"] = SimStats()
            result = DynamicSim(base.program, config=config,
                                input_image=image, **kwargs).run()
        else:
            cp = self.compiled(wname, config_key)
            kwargs = {"max_cycles": self.SABOTAGE_CYCLES} if sabotaged else {}
            if self.collect_stats:
                kwargs["stats"] = SimStats()
            result = cp.run(w.eval, **kwargs)
            if self.collect_stats:
                result.sched_stats = cp.stats
        expected = self.reference_output(wname)
        if result.output != expected:
            raise DivergenceError(
                divergences=[Divergence(
                    "output", f"{expected[:4]}...", f"{result.output[:4]}...",
                    f"lengths {len(expected)} vs {len(result.output)}")],
                workload=wname, config=config_key,
                plan_text="(benchmark run, no faults injected)")
        self._measured[key] = result
        return result

    def cell(self, wname: str, config_key: str) -> Optional[ExecutionResult]:
        """:meth:`measure`, degraded: a failed cell returns ``None`` and is
        recorded in :attr:`errors` instead of aborting the experiment."""
        key = (wname, config_key)
        if key in self.errors:
            return None
        try:
            return self.measure(wname, config_key)
        except (Trap, RuntimeError, ValueError, KeyError) as err:
            # ValueError/KeyError cover caller mistakes surfacing inside the
            # pipeline — a bad input image from make_input_image, an unknown
            # configuration key — which must cost one cell, not the report.
            self.errors[key] = f"{type(err).__name__}: {err}"
            return None

    def speedup(self, wname: str, config_key: str) -> Optional[float]:
        """Cycle-count speedup of a configuration over the scalar machine;
        ``None`` if either measurement failed."""
        scalar = self.cell(wname, "scalar")
        other = self.cell(wname, config_key)
        if scalar is None or other is None:
            return None
        return scalar.cycle_count / other.cycle_count

    # ------------------------------------------------------------- parallelism
    def populate(self, jobs: int = 1, policy=None, chaos=None,
                 journal=None) -> None:
        """Pre-compute every bench cell, optionally across worker processes.

        With ``jobs=1`` this simply warms the in-process memo the way the
        report renderers would.  With ``jobs>1`` (or a supervision
        ``policy`` carrying a timeout, or ``chaos``) each (workload, config)
        cell runs in a supervised worker that replays the exact serial code
        path (including error recording), and the outcomes are merged back
        in serial task order — so the rendered report is byte-identical to
        a serial run.  The on-disk compile cache (when configured) keeps the
        workers from recompiling what siblings already built.

        ``journal`` (a :class:`repro.harness.resilience.Journal`) makes the
        campaign crash-safe: cells already journaled are restored instead of
        re-run, and each newly completed cell is durably appended the moment
        it finishes.  Harness-level failures (timeout, killed worker,
        exhausted retries) are *not* journaled — a resumed campaign retries
        them — and are recorded in :attr:`errors` (rendered as ``ERR``
        cells) plus, structured, in :attr:`failures`.
        """
        cells = [(w.name, key)
                 for w in self.workloads for key in BENCH_CONFIG_KEYS]
        todo: list[tuple[str, str]] = []
        for wname, key in cells:
            jkey = f"{wname}/{key}"
            if (wname, key) in self.errors:
                # Pre-failed cell (e.g. the campaign service's circuit
                # breaker): never runs, never journaled — a later run with
                # the circuit closed must be free to compute it.
                continue
            if journal is not None and jkey in journal.completed:
                result, cell_error = journal.completed[jkey]
                self.resumed.add((wname, key))
                if cell_error is not None:
                    self.errors[(wname, key)] = cell_error
                elif result is not None:
                    self._measured[(wname, key)] = result
                continue
            todo.append((wname, key))

        from repro.harness.resilience import CampaignInterrupted

        restored = len(cells) - len(todo)
        supervised = (jobs > 1 or chaos is not None
                      or (policy is not None and policy.preemptive))
        if not supervised:
            done = restored
            try:
                for wname, key in todo:
                    self.cell(wname, key)
                    if journal is not None:
                        journal.record(f"{wname}/{key}",
                                       (self._measured.get((wname, key)),
                                        self.errors.get((wname, key))))
                    done += 1
            except KeyboardInterrupt:
                raise CampaignInterrupted(done, len(cells)) from None
            return

        cache_dir = (str(self.cache.cache_dir) if self.cache is not None
                     else None)
        tasks = [(wname, key, self.sabotage, cache_dir, self.collect_stats)
                 for wname, key in todo]

        def checkpoint(outcome) -> None:
            # Journal as each cell completes (completion order): only clean
            # worker outcomes — a supervision failure must be retried by a
            # resumed run, not replayed from the journal.
            if journal is None or outcome.error is not None:
                return
            wname, key = todo[outcome.index]
            journal.record(f"{wname}/{key}", outcome.value)

        try:
            outcomes = run_tasks(_cell_worker, tasks, jobs, policy=policy,
                                 chaos=chaos, on_result=checkpoint)
        except CampaignInterrupted as intr:
            raise CampaignInterrupted(restored + intr.completed,
                                      len(cells)) from None
        for (wname, key), outcome in zip(todo, outcomes):
            if outcome.error is not None:
                # Worker infrastructure failure (not a recorded cell error) —
                # degrade exactly like any other broken cell.
                self.errors[(wname, key)] = outcome.error
                self.failures[(wname, key)] = {
                    "kind": outcome.kind, "attempts": outcome.attempts,
                    "error": outcome.error}
                continue
            result, cell_error = outcome.value
            if cell_error is not None:
                self.errors[(wname, key)] = cell_error
            elif result is not None:
                self._measured[(wname, key)] = result


    def populate_sharded(self, shards: int, campaign_dir, fingerprint: str,
                         facets: Optional[dict] = None, jobs: int = 1,
                         policy=None, shard_policy=None, shard_chaos=None,
                         resume: bool = False, lease_ttl: float = 15.0,
                         progress=None):
        """Pre-compute every bench cell across ``shards`` independent
        lease-guarded worker processes (see
        :mod:`repro.harness.coordinator`).

        Each shard runs the supervised pool over its round-robin slice of
        the cell matrix, checkpointing into its own journal under
        ``campaign_dir``; crashed shards are respawned or their journals
        stolen by survivors, and the merge back into this lab is in serial
        cell order — so the rendered report is byte-identical to a serial
        run.  Cells a shard could not recover degrade to structured
        :attr:`failures` (kind ``shard`` when the whole shard was lost)
        and ``ERR`` cells.  Returns the
        :class:`~repro.harness.coordinator.ShardReport` (also stored on
        :attr:`shard_report`).
        """
        from repro.harness.coordinator import run_sharded

        cells = [(w.name, key)
                 for w in self.workloads for key in BENCH_CONFIG_KEYS]
        keys = [f"{wname}/{key}" for wname, key in cells]
        cache_dir = (str(self.cache.cache_dir) if self.cache is not None
                     else None)
        tasks = [(wname, key, self.sabotage, cache_dir, self.collect_stats)
                 for wname, key in cells]
        report = run_sharded(
            _cell_worker, tasks, keys, campaign_dir, fingerprint,
            facets=facets, shards=shards, jobs=jobs, policy=policy,
            shard_policy=shard_policy, shard_chaos=shard_chaos,
            lease_ttl=lease_ttl, resume=resume, progress=progress)
        for (wname, key), jkey in zip(cells, keys):
            if jkey in report.completed:
                result, cell_error = report.completed[jkey]
                if cell_error is not None:
                    self.errors[(wname, key)] = cell_error
                elif result is not None:
                    self._measured[(wname, key)] = result
            else:
                info = report.failures.get(jkey) or {
                    "kind": "shard", "attempts": 0,
                    "error": "cell missing from every shard journal"}
                self.errors[(wname, key)] = info["error"]
                self.failures[(wname, key)] = info
        self.shard_report = report
        return report


def _cell_worker(task: tuple) -> tuple[Optional[ExecutionResult],
                                       Optional[str]]:
    """One bench cell in a worker process: replay ``Lab.cell`` for a single
    (workload, config) pair and return (result, recorded-error-text)."""
    wname, config_key, sabotage, cache_dir, collect_stats = task
    lab = Lab(sabotage=sabotage,
              cache=CompileCache(cache_dir) if cache_dir else None,
              collect_stats=collect_stats)
    result = lab.cell(wname, config_key)
    return result, lab.errors.get((wname, config_key))


# ------------------------------------------------------------------ Table 1
@dataclass
class Table1Row:
    name: str
    cycles: Optional[int]
    ipc: Optional[float]
    prediction_accuracy: Optional[float]


def table1(lab: Lab) -> list[Table1Row]:
    rows = []
    for w in lab.workloads:
        res = lab.cell(w.name, "scalar")
        if res is None:
            rows.append(Table1Row(w.name, None, None, None))
            continue
        rows.append(Table1Row(
            name=w.name,
            cycles=res.cycle_count,
            ipc=res.ipc,
            prediction_accuracy=res.prediction_accuracy,
        ))
    return rows


# ----------------------------------------------------------------- Figure 8
@dataclass
class Figure8Row:
    name: str
    bb_speedup: Optional[float]
    global_speedup: Optional[float]
    global_inf_speedup: Optional[float]


def figure8(lab: Lab) -> tuple[list[Figure8Row], dict[str, float]]:
    rows = []
    for w in lab.workloads:
        rows.append(Figure8Row(
            name=w.name,
            bb_speedup=lab.speedup(w.name, "bb"),
            global_speedup=lab.speedup(w.name, "global"),
            global_inf_speedup=lab.speedup(w.name, "global_inf"),
        ))
    means = {
        "bb": geometric_mean([r.bb_speedup for r in rows
                              if r.bb_speedup is not None]),
        "global": geometric_mean([r.global_speedup for r in rows
                                  if r.global_speedup is not None]),
        "global_inf": geometric_mean([r.global_inf_speedup for r in rows
                                      if r.global_inf_speedup is not None]),
    }
    return rows, means


# ------------------------------------------------------------------ Table 2
TABLE2_MODELS = ("squashing", "boost1", "minboost3", "boost7")


@dataclass
class Table2Row:
    name: str
    #: model key -> % improvement over global; None where a run failed
    improvements: dict[str, Optional[float]]


def table2(lab: Lab) -> tuple[list[Table2Row], dict[str, float]]:
    rows = []
    for w in lab.workloads:
        base_res = lab.cell(w.name, "global")
        improvements: dict[str, Optional[float]] = {}
        for key in TABLE2_MODELS:
            res = lab.cell(w.name, key)
            if base_res is None or res is None:
                improvements[key] = None
            else:
                improvements[key] = (base_res.cycle_count
                                     / res.cycle_count - 1.0) * 100.0
        rows.append(Table2Row(name=w.name, improvements=improvements))
    means = {}
    for key in TABLE2_MODELS:
        gm = geometric_mean([1.0 + r.improvements[key] / 100.0 for r in rows
                             if r.improvements[key] is not None])
        means[key] = None if gm is None else (gm - 1.0) * 100.0
    return rows, means


# ----------------------------------------------------------------- Figure 9
@dataclass
class Figure9Row:
    name: str
    minboost3_speedup: Optional[float]
    minboost3_inf_speedup: Optional[float]
    dynamic_speedup: Optional[float]
    dynamic_rename_speedup: Optional[float]


def figure9(lab: Lab) -> tuple[list[Figure9Row], dict[str, float]]:
    rows = []
    for w in lab.workloads:
        rows.append(Figure9Row(
            name=w.name,
            minboost3_speedup=lab.speedup(w.name, "minboost3"),
            minboost3_inf_speedup=lab.speedup(w.name, "minboost3_inf"),
            dynamic_speedup=lab.speedup(w.name, "dynamic"),
            dynamic_rename_speedup=lab.speedup(w.name, "dynamic_rename"),
        ))
    means = {
        "minboost3": geometric_mean(
            [r.minboost3_speedup for r in rows
             if r.minboost3_speedup is not None]),
        "minboost3_inf": geometric_mean(
            [r.minboost3_inf_speedup for r in rows
             if r.minboost3_inf_speedup is not None]),
        "dynamic": geometric_mean(
            [r.dynamic_speedup for r in rows
             if r.dynamic_speedup is not None]),
        "dynamic_rename": geometric_mean(
            [r.dynamic_rename_speedup for r in rows
             if r.dynamic_rename_speedup is not None]),
    }
    return rows, means


# ------------------------------------------------- Figure 9 under stronger
# baselines: the memory-speculative dynamic-machine matrix
@dataclass
class DynamicMatrixRow:
    name: str
    minboost3_speedup: Optional[float]
    #: dynamic-variant key -> speedup over scalar; None where a run failed
    speedups: dict[str, Optional[float]]


def dynamic_matrix(lab: Lab) -> tuple[list[DynamicMatrixRow],
                                      dict[str, Optional[float]]]:
    """Speedup over scalar for every dynamic-machine variant, next to
    MinBoost3 — the paper's Figure 9 comparison re-run against baselines
    the paper never had to beat (LSQ forwarding, memory-dependence
    speculation, variable fetch rate)."""
    rows = []
    for w in lab.workloads:
        rows.append(DynamicMatrixRow(
            name=w.name,
            minboost3_speedup=lab.speedup(w.name, "minboost3"),
            speedups={key: lab.speedup(w.name, key)
                      for key in DYNAMIC_CONFIGS},
        ))
    means: dict[str, Optional[float]] = {
        "minboost3": geometric_mean(
            [r.minboost3_speedup for r in rows
             if r.minboost3_speedup is not None]),
    }
    for key in DYNAMIC_CONFIGS:
        means[key] = geometric_mean(
            [r.speedups[key] for r in rows
             if r.speedups[key] is not None])
    return rows, means
