"""Experiment drivers: regenerate every table and figure of Section 4.3.

All experiments share a :class:`Lab`, which memoises the expensive
compile+simulate steps per (workload, configuration):

* **Table 1** — per-benchmark scalar cycles, scalar IPC, and static
  branch-prediction accuracy (profile trained on the *train* input,
  measured on the *eval* input);
* **Figure 8** — speedup of the base 2-issue superscalar over the scalar
  machine, basic-block scheduling vs global scheduling (no boosting), with
  register allocation before scheduling and under the infinite register
  model;
* **Table 2** — percentage cycle-count improvement over global scheduling
  for the Squashing / Boost1 / MinBoost3 / Boost7 hardware models;
* **Figure 9** — speedup over scalar of MinBoost3 (32 regs / infinite regs)
  versus the dynamically-scheduled machine (without / with register
  renaming).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.harness.pipeline import (
    CompileConfig, CompiledProgram, SCALAR_CONFIG, compile_minic,
    make_input_image,
)
from repro.hw.dynamic import DynamicConfig, DynamicSim
from repro.hw.exceptions import ExecutionResult
from repro.sched.boostmodel import (
    BOOST1, BOOST7, MINBOOST3, NO_BOOST, SQUASHING,
)
from repro.sched.machine import SUPERSCALAR
from repro.workloads import Workload, all_workloads

#: named configurations used by the experiments
CONFIGS: dict[str, CompileConfig] = {
    "scalar": SCALAR_CONFIG,
    "bb": CompileConfig(machine=SUPERSCALAR, model=NO_BOOST, scheduler="bb"),
    "global": CompileConfig(machine=SUPERSCALAR, model=NO_BOOST),
    "global_inf": CompileConfig(machine=SUPERSCALAR, model=NO_BOOST,
                                regalloc="infinite"),
    "squashing": CompileConfig(machine=SUPERSCALAR, model=SQUASHING),
    "boost1": CompileConfig(machine=SUPERSCALAR, model=BOOST1),
    "minboost3": CompileConfig(machine=SUPERSCALAR, model=MINBOOST3),
    "boost7": CompileConfig(machine=SUPERSCALAR, model=BOOST7),
    "minboost3_inf": CompileConfig(machine=SUPERSCALAR, model=MINBOOST3,
                                   regalloc="infinite"),
}


def geometric_mean(values: list[float]) -> float:
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


class Lab:
    """Memoising compile-and-measure service shared by all experiments."""

    def __init__(self, workloads: Optional[list[Workload]] = None) -> None:
        self.workloads = workloads if workloads is not None else all_workloads()
        self._compiled: dict[tuple[str, str], CompiledProgram] = {}
        self._measured: dict[tuple[str, str], ExecutionResult] = {}
        self._reference: dict[str, list[int]] = {}

    def workload(self, name: str) -> Workload:
        for w in self.workloads:
            if w.name == name:
                return w
        raise KeyError(name)

    def compiled(self, wname: str, config_key: str) -> CompiledProgram:
        key = (wname, config_key)
        if key not in self._compiled:
            w = self.workload(wname)
            self._compiled[key] = compile_minic(w.source, CONFIGS[config_key],
                                                w.train)
        return self._compiled[key]

    def reference_output(self, wname: str) -> list[int]:
        if wname not in self._reference:
            w = self.workload(wname)
            cp = self.compiled(wname, "scalar")
            self._reference[wname] = cp.run_functional(w.eval).output
        return self._reference[wname]

    def measure(self, wname: str, config_key: str) -> ExecutionResult:
        """Run one configuration on the eval input, checking correctness
        against the functional reference."""
        key = (wname, config_key)
        if key in self._measured:
            return self._measured[key]
        w = self.workload(wname)
        if config_key in ("dynamic", "dynamic_rename"):
            base = self.compiled(wname, "scalar")
            image = make_input_image(base.program, w.eval)
            config = DynamicConfig(rename=(config_key == "dynamic_rename"))
            result = DynamicSim(base.program, config=config,
                                input_image=image).run()
        else:
            cp = self.compiled(wname, config_key)
            result = cp.run(w.eval)
        expected = self.reference_output(wname)
        if result.output != expected:
            raise AssertionError(
                f"{wname}/{config_key}: output mismatch "
                f"(got {result.output[:4]}..., want {expected[:4]}...)")
        self._measured[key] = result
        return result

    def speedup(self, wname: str, config_key: str) -> float:
        """Cycle-count speedup of a configuration over the scalar machine."""
        scalar = self.measure(wname, "scalar")
        other = self.measure(wname, config_key)
        return scalar.cycle_count / other.cycle_count


# ------------------------------------------------------------------ Table 1
@dataclass
class Table1Row:
    name: str
    cycles: int
    ipc: float
    prediction_accuracy: float


def table1(lab: Lab) -> list[Table1Row]:
    rows = []
    for w in lab.workloads:
        res = lab.measure(w.name, "scalar")
        rows.append(Table1Row(
            name=w.name,
            cycles=res.cycle_count,
            ipc=res.ipc,
            prediction_accuracy=res.prediction_accuracy,
        ))
    return rows


# ----------------------------------------------------------------- Figure 8
@dataclass
class Figure8Row:
    name: str
    bb_speedup: float
    global_speedup: float
    global_inf_speedup: float


def figure8(lab: Lab) -> tuple[list[Figure8Row], dict[str, float]]:
    rows = []
    for w in lab.workloads:
        rows.append(Figure8Row(
            name=w.name,
            bb_speedup=lab.speedup(w.name, "bb"),
            global_speedup=lab.speedup(w.name, "global"),
            global_inf_speedup=lab.speedup(w.name, "global_inf"),
        ))
    means = {
        "bb": geometric_mean([r.bb_speedup for r in rows]),
        "global": geometric_mean([r.global_speedup for r in rows]),
        "global_inf": geometric_mean([r.global_inf_speedup for r in rows]),
    }
    return rows, means


# ------------------------------------------------------------------ Table 2
TABLE2_MODELS = ("squashing", "boost1", "minboost3", "boost7")


@dataclass
class Table2Row:
    name: str
    improvements: dict[str, float]  # model key -> % improvement over global


def table2(lab: Lab) -> tuple[list[Table2Row], dict[str, float]]:
    rows = []
    for w in lab.workloads:
        base = lab.measure(w.name, "global").cycle_count
        improvements = {}
        for key in TABLE2_MODELS:
            cycles = lab.measure(w.name, key).cycle_count
            improvements[key] = (base / cycles - 1.0) * 100.0
        rows.append(Table2Row(name=w.name, improvements=improvements))
    means = {
        key: (geometric_mean(
            [1.0 + r.improvements[key] / 100.0 for r in rows]) - 1.0) * 100.0
        for key in TABLE2_MODELS
    }
    return rows, means


# ----------------------------------------------------------------- Figure 9
@dataclass
class Figure9Row:
    name: str
    minboost3_speedup: float
    minboost3_inf_speedup: float
    dynamic_speedup: float
    dynamic_rename_speedup: float


def figure9(lab: Lab) -> tuple[list[Figure9Row], dict[str, float]]:
    rows = []
    for w in lab.workloads:
        rows.append(Figure9Row(
            name=w.name,
            minboost3_speedup=lab.speedup(w.name, "minboost3"),
            minboost3_inf_speedup=lab.speedup(w.name, "minboost3_inf"),
            dynamic_speedup=lab.speedup(w.name, "dynamic"),
            dynamic_rename_speedup=lab.speedup(w.name, "dynamic_rename"),
        ))
    means = {
        "minboost3": geometric_mean([r.minboost3_speedup for r in rows]),
        "minboost3_inf": geometric_mean(
            [r.minboost3_inf_speedup for r in rows]),
        "dynamic": geometric_mean([r.dynamic_speedup for r in rows]),
        "dynamic_rename": geometric_mean(
            [r.dynamic_rename_speedup for r in rows]),
    }
    return rows, means
