"""Human-readable rendering of the experiment results, in the same shape as
the paper's tables and figures."""

from __future__ import annotations

from dataclasses import asdict

from repro.harness.experiments import (
    BENCH_CONFIG_KEYS, DYNAMIC_CONFIGS, Lab, TABLE2_MODELS, dynamic_matrix,
    figure8, figure9, table1, table2,
)
from repro.harness.fsutil import atomic_write_text
from repro.obs.stats import STATS_SCHEMA

#: schema tag shared by ``bench --json`` and ``benchmarks/perf_smoke.py``
BENCH_SCHEMA = "repro-bench/1"

#: the paper's published values, for side-by-side comparison
PAPER_TABLE1 = {
    "awk": (0.89, 82.0), "compress": (0.87, 82.7), "eqntott": (0.95, 72.1),
    "espresso": (0.89, 75.7), "grep": (0.81, 97.9), "nroff": (0.82, 96.7),
    "xlisp": (0.89, 83.5),
}
PAPER_TABLE2 = {
    "awk": (11.2, 16.4, 17.2, 18.1),
    "compress": (9.1, 10.6, 10.6, 10.6),
    "eqntott": (8.0, 14.4, 16.0, 16.0),
    "espresso": (9.8, 18.0, 21.3, 23.0),
    "grep": (15.4, 27.7, 40.8, 40.8),
    "nroff": (11.4, 24.4, 31.7, 36.6),
    "xlisp": (6.7, 13.3, 12.5, 14.2),
}
PAPER_TABLE2_GM = (9.9, 17.0, 19.3, 20.5)
PAPER_FIGURE8_GM = {"bb": 1.14, "global": 1.24}


def _f(value, spec: str, width: int = 0) -> str:
    """Format a measurement that may have degraded to ``None`` (-> ERR)."""
    text = "ERR" if value is None else spec.format(value)
    return f"{text:>{width}s}" if width else text


def render_table1(lab: Lab) -> str:
    lines = [
        "Table 1: benchmark programs and their simulation information",
        f"{'':10s} {'Total Cycles':>13s} {'IPC':>6s} {'Pred.Acc':>9s} "
        f"{'paper IPC':>10s} {'paper acc':>10s}",
    ]
    for row in table1(lab):
        # Fuzz-promoted workloads have no paper column to compare against.
        paper = PAPER_TABLE1.get(row.name)
        p_ipc = f"{paper[0]:.2f}" if paper else "—"
        p_acc = f"{paper[1]:.1f}%" if paper else "—"
        acc = (None if row.prediction_accuracy is None
               else row.prediction_accuracy * 100)
        lines.append(
            f"{row.name:10s} {_f(row.cycles, '{:,}', 13)} "
            f"{_f(row.ipc, '{:.2f}', 6)} {_f(acc, '{:.1f}%', 9)} "
            f"{p_ipc:>10s} {p_acc:>10s}")
    return "\n".join(lines)


def _speedup_bar(value, full: float = 2.5, width: int = 30) -> str:
    """A one-line bar for a speedup value (the paper's figures are bars)."""
    if value is None:
        return "E" * 3 + "·" * (width - 3)
    filled = max(0, min(width, round((value - 1.0) / (full - 1.0) * width)))
    return "█" * filled + "·" * (width - filled)


def render_figure8(lab: Lab) -> str:
    rows, means = figure8(lab)
    lines = [
        "Figure 8: speedup over scalar without speculative-execution hardware",
        f"{'':10s} {'bb sched':>9s} {'global':>8s} {'global+∞regs':>13s}",
    ]
    for row in rows:
        lines.append(f"{row.name:10s} {_f(row.bb_speedup, '{:.2f}', 9)} "
                     f"{_f(row.global_speedup, '{:.2f}', 8)} "
                     f"{_f(row.global_inf_speedup, '{:.2f}', 13)}")
    lines.append(
        f"{'G.M.':10s} {_f(means['bb'], '{:.2f}', 9)} "
        f"{_f(means['global'], '{:.2f}', 8)} "
        f"{_f(means['global_inf'], '{:.2f}', 13)}")
    lines.append(
        f"{'paper G.M.':10s} {PAPER_FIGURE8_GM['bb']:>9.2f} "
        f"{PAPER_FIGURE8_GM['global']:>8.2f} {'—':>13s}")
    lines.append("")
    for row in rows:
        lines.append(f"  {row.name:10s} bb     {_speedup_bar(row.bb_speedup)}"
                     f" {_f(row.bb_speedup, '{:.2f}x')}")
        lines.append(f"  {'':10s} global {_speedup_bar(row.global_speedup)}"
                     f" {_f(row.global_speedup, '{:.2f}x')}")
    return "\n".join(lines)


def render_table2(lab: Lab) -> str:
    rows, means = table2(lab)
    header = " ".join(f"{m:>10s}" for m in
                      ("Squashing", "Boost1", "MinBoost3", "Boost7"))
    lines = [
        "Table 2: % improvement over global scheduling",
        f"{'':10s} {header}",
    ]
    for row in rows:
        cells = " ".join(_f(row.improvements[k], "{:.1f}%", 10)
                         for k in TABLE2_MODELS)
        paper = PAPER_TABLE2.get(row.name)
        note = ("/".join(f"{v:.1f}" for v in paper) if paper else "—")
        lines.append(f"{row.name:10s} {cells}   (paper: {note})")
    cells = " ".join(_f(means[k], "{:.1f}%", 10) for k in TABLE2_MODELS)
    lines.append(f"{'G.M.':10s} {cells}   (paper: "
                 + "/".join(f"{v:.1f}" for v in PAPER_TABLE2_GM) + ")")
    return "\n".join(lines)


def render_figure9(lab: Lab) -> str:
    rows, means = figure9(lab)
    lines = [
        "Figure 9: speedup over scalar — MinBoost3 vs dynamic scheduler",
        f"{'':10s} {'MinBoost3':>10s} {'MB3+∞regs':>10s} "
        f"{'dynamic':>9s} {'dyn+rename':>11s}",
    ]
    for row in rows:
        lines.append(
            f"{row.name:10s} {_f(row.minboost3_speedup, '{:.2f}', 10)} "
            f"{_f(row.minboost3_inf_speedup, '{:.2f}', 10)} "
            f"{_f(row.dynamic_speedup, '{:.2f}', 9)} "
            f"{_f(row.dynamic_rename_speedup, '{:.2f}', 11)}")
    lines.append(
        f"{'G.M.':10s} {_f(means['minboost3'], '{:.2f}', 10)} "
        f"{_f(means['minboost3_inf'], '{:.2f}', 10)} "
        f"{_f(means['dynamic'], '{:.2f}', 9)} "
        f"{_f(means['dynamic_rename'], '{:.2f}', 11)}")
    lines.append(f"{'paper':10s} {'≈1.5x':>10s} {'':>10s} {'≈1.5x':>9s}")
    lines.append("")
    for row in rows:
        lines.append(f"  {row.name:10s} MinBoost3 "
                     f"{_speedup_bar(row.minboost3_speedup)} "
                     f"{_f(row.minboost3_speedup, '{:.2f}x')}")
        lines.append(f"  {'':10s} dynamic   "
                     f"{_speedup_bar(row.dynamic_speedup)} "
                     f"{_f(row.dynamic_speedup, '{:.2f}x')}")
    return "\n".join(lines)


#: column headers for the dynamic-machine matrix, keyed like
#: ``DYNAMIC_CONFIGS``
_DYN_LABELS = {
    "dynamic": "dyn",
    "dynamic_rename": "+rename",
    "dynamic_lsq": "+lsq",
    "dynamic_memdep": "+memdep",
    "dynamic_vfr": "+vfr",
}


def render_dynamic_matrix(lab: Lab) -> str:
    rows, means = dynamic_matrix(lab)
    header = " ".join(f"{_DYN_LABELS[k]:>8s}" for k in DYNAMIC_CONFIGS)
    lines = [
        "Dynamic-machine matrix: speedup over scalar under stronger "
        "baselines",
        "(lsq = 16-entry load/store queue + store-to-load forwarding, "
        "memdep = dependence speculation, vfr = variable fetch rate)",
        f"{'':10s} {'MinBoost3':>9s} {header}",
    ]
    for row in rows:
        cells = " ".join(_f(row.speedups[k], "{:.2f}", 8)
                         for k in DYNAMIC_CONFIGS)
        lines.append(f"{row.name:10s} "
                     f"{_f(row.minboost3_speedup, '{:.2f}', 9)} {cells}")
    cells = " ".join(_f(means[k], "{:.2f}", 8) for k in DYNAMIC_CONFIGS)
    lines.append(f"{'G.M.':10s} {_f(means['minboost3'], '{:.2f}', 9)} "
                 f"{cells}")
    return "\n".join(lines)


def render_errors(lab: Lab) -> str:
    """Error summary for every degraded cell (empty string when clean).

    Cells that failed at the *harness* level (worker timeout, killed
    worker, exhausted retries) carry their structured record in
    ``lab.failures`` and are totalled by kind here, so a partial report
    states exactly how it degraded.
    """
    if not lab.errors:
        return ""
    lines = [f"Errors: {len(lab.errors)} (workload, configuration) cell(s) "
             "failed; geometric means cover the successful rows only"]
    for (wname, config_key), text in sorted(lab.errors.items()):
        lines.append(f"  {wname}/{config_key}: {text}")
    if lab.failures:
        kinds: dict[str, int] = {}
        for info in lab.failures.values():
            kinds[info["kind"]] = kinds.get(info["kind"], 0) + 1
        summary = ", ".join(f"{kind}: {count}"
                            for kind, count in sorted(kinds.items()))
        lines.append(f"  harness failures by kind — {summary}")
    return "\n".join(lines)


def _boost_histogram(by_level: dict, total: int) -> str:
    """``.B1:36% .B2:64%`` — boost-distance distribution of executions."""
    if not by_level or not total:
        return "—"
    return " ".join(f".B{level}:{100 * by_level[level] / total:.1f}%"
                    for level in sorted(by_level, key=int))


def render_stats(lab: Lab) -> str:
    """The paper-style statistics table behind ``bench --stats``.

    Dynamic behaviour per workload × boosting model — fraction of executed
    instructions that were boosted, the boost-distance (``.Bn``) histogram,
    and the squash rate (Figures 6–7 territory) — followed by the static
    scheduler counters that produced each schedule.
    """
    lines = [
        "Boosting statistics: dynamic behaviour per workload × model",
        f"{'':10s} {'model':>10s} {'%boosted':>9s} {'squash%':>8s} "
        f"{'recov':>6s}  boost-distance histogram",
    ]
    for w in lab.workloads:
        for key in TABLE2_MODELS:
            res = lab.cell(w.name, key)
            st = res.sim_stats if res is not None else None
            name = w.name if key == TABLE2_MODELS[0] else ""
            if st is None:
                lines.append(f"{name:10s} {key:>10s} {'ERR':>9s} {'ERR':>8s} "
                             f"{'ERR':>6s}  —")
                continue
            pct = (100 * st.boosted_executed / st.instrs
                   if st.instrs else 0.0)
            hist = _boost_histogram(st.boosted_by_level, st.boosted_executed)
            lines.append(
                f"{name:10s} {key:>10s} {pct:>8.1f}% "
                f"{100 * st.squash_rate:>7.1f}% "
                f"{st.recovery_invocations:>6d}  {hist}")
    lines += [
        "",
        "Scheduler statistics: static counters per workload × model",
        f"{'':10s} {'model':>10s} {'traces':>7s} {'motions':>12s} "
        f"{'boosted':>8s} {'dups':>5s} {'recov.blk':>10s} {'occup':>6s}",
    ]
    for w in lab.workloads:
        for key in TABLE2_MODELS:
            res = lab.cell(w.name, key)
            st = res.sched_stats if res is not None else None
            name = w.name if key == TABLE2_MODELS[0] else ""
            if st is None:
                lines.append(f"{name:10s} {key:>10s} {'ERR':>7s} {'ERR':>12s} "
                             f"{'ERR':>8s} {'ERR':>5s} {'ERR':>10s} "
                             f"{'ERR':>6s}")
                continue
            motions = f"{st.motions_accepted}/{st.motions_attempted}"
            lines.append(
                f"{name:10s} {key:>10s} {st.traces:>7d} {motions:>12s} "
                f"{st.boosted:>8d} {st.duplicates:>5d} "
                f"{st.recovery_blocks:>10d} "
                f"{100 * st.issue_slot_occupancy:>5.1f}%")
    lsq_keys = [k for k in DYNAMIC_CONFIGS
                if DYNAMIC_CONFIGS[k].lsq_size > 0]
    lines += [
        "",
        "Memory speculation: dynamic-machine counters per workload × "
        "variant",
        f"{'':10s} {'variant':>8s} {'stlf':>7s} {'mdsquash':>9s} "
        f"{'mdstall':>8s} {'lsq hw':>7s} {'lsq avg':>8s} {'flushes':>8s}",
    ]
    for w in lab.workloads:
        for key in lsq_keys:
            res = lab.cell(w.name, key)
            st = res.sim_stats if res is not None else None
            name = w.name if key == lsq_keys[0] else ""
            label = _DYN_LABELS[key]
            if st is None:
                lines.append(f"{name:10s} {label:>8s} {'ERR':>7s} "
                             f"{'ERR':>9s} {'ERR':>8s} {'ERR':>7s} "
                             f"{'ERR':>8s} {'ERR':>8s}")
                continue
            lines.append(
                f"{name:10s} {label:>8s} {st.stlf_hits:>7d} "
                f"{st.memdep_squashes:>9d} {st.memdep_stall_cycles:>8d} "
                f"{st.lsq_high_water:>7d} {st.lsq_occupancy:>8.2f} "
                f"{st.flushes:>8d}")
    return "\n".join(lines)


def stats_json(lab: Lab) -> dict:
    """The ``repro-stats/1`` section of ``bench --json``.

    Deterministic (sorted histogram keys, fixed rounding), so CI can demand
    an exact match against a committed baseline.
    """
    workloads: dict[str, dict] = {}
    for w in lab.workloads:
        per: dict[str, object] = {}
        for key in BENCH_CONFIG_KEYS:
            res = lab.cell(w.name, key)
            if res is None:
                per[key] = None
                continue
            per[key] = {
                "sched": (res.sched_stats.snapshot()
                          if res.sched_stats is not None else None),
                "sim": (res.sim_stats.snapshot()
                        if res.sim_stats is not None else None),
            }
        workloads[w.name] = per
    return {
        "schema": STATS_SCHEMA,
        "collected": lab.collect_stats,
        "workloads": workloads,
    }


def render_all(lab: Lab) -> str:
    parts = [
        render_table1(lab),
        render_figure8(lab),
        render_table2(lab),
        render_figure9(lab),
        render_dynamic_matrix(lab),
    ]
    errors = render_errors(lab)
    if errors:
        parts.append(errors)
    return "\n\n".join(parts)


def bench_json(lab: Lab) -> dict:
    """The tables/figures as one JSON-serializable structure.

    Numbers are raw (no formatting/rounding); degraded cells are ``null``
    with the failure text under ``errors`` — so CI can diff perf/accuracy
    trajectories without parsing the human-readable report.
    """
    f8_rows, f8_means = figure8(lab)
    t2_rows, t2_means = table2(lab)
    f9_rows, f9_means = figure9(lab)
    dm_rows, dm_means = dynamic_matrix(lab)
    return {
        "schema": BENCH_SCHEMA,
        "table1": [asdict(r) for r in table1(lab)],
        "figure8": {"rows": [asdict(r) for r in f8_rows],
                    "geomeans": f8_means},
        "table2": {"rows": [asdict(r) for r in t2_rows],
                   "geomeans": t2_means},
        "figure9": {"rows": [asdict(r) for r in f9_rows],
                    "geomeans": f9_means},
        "dynamic_matrix": {"rows": [asdict(r) for r in dm_rows],
                           "geomeans": dm_means},
        "stats": stats_json(lab),
        "shards": (lab.shard_report.to_json()
                   if lab.shard_report is not None else None),
        "errors": {f"{w}/{c}": text
                   for (w, c), text in sorted(lab.errors.items())},
        "failures": {f"{w}/{c}": info
                     for (w, c), info in sorted(lab.failures.items())},
    }


def _md_table(headers: list[str], rows: list[list[str]]) -> str:
    out = ["| " + " | ".join(headers) + " |",
           "|" + "|".join("---" for _ in headers) + "|"]
    out.extend("| " + " | ".join(row) + " |" for row in rows)
    return "\n".join(out)


def write_experiments_md(lab: Lab, path: str) -> str:
    """Generate EXPERIMENTS.md: measured-vs-paper for every table/figure."""
    from repro.harness.experiments import TABLE2_MODELS

    t1 = table1(lab)
    f8_rows, f8_means = figure8(lab)
    t2_rows, t2_means = table2(lab)
    f9_rows, f9_means = figure9(lab)

    parts = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "Generated by `repro.harness.report.write_experiments_md` "
        "(`python examples/paper_experiments.py` prints the same data).",
        "",
        "Absolute numbers differ from the paper — the workloads are "
        "reimplementations sized for cycle-level simulation in Python, and "
        "the substrate is our own compiler and machine models — so the "
        "comparison to read is the *shape*: orderings, rough ratios, and "
        "where returns diminish.",
        "",
        "## Table 1 — benchmark programs and simulation information",
        "",
    ]
    rows = []
    for r in t1:
        paper = PAPER_TABLE1.get(r.name)
        acc = (None if r.prediction_accuracy is None
               else 100 * r.prediction_accuracy)
        rows.append([r.name, _f(r.cycles, "{:,}"), _f(r.ipc, "{:.2f}"),
                     f"{paper[0]:.2f}" if paper else "—",
                     _f(acc, "{:.1f}%"),
                     f"{paper[1]:.1f}%" if paper else "—"])
    parts.append(_md_table(
        ["benchmark", "cycles (measured)", "IPC", "IPC (paper)",
         "pred. acc.", "pred. acc. (paper)"], rows))
    parts += [
        "",
        "Shape check: every benchmark sustains a bit under one IPC on the "
        "scalar machine; grep/nroff are the most predictable and eqntott "
        "the least, as in the paper.",
        "",
        "## Figure 8 — speedup without speculative-execution hardware",
        "",
    ]
    rows = [[r.name, _f(r.bb_speedup, "{:.2f}x"),
             _f(r.global_speedup, "{:.2f}x"),
             _f(r.global_inf_speedup, "{:.2f}x")] for r in f8_rows]
    rows.append(["**G.M.**",
                 f"**{_f(f8_means['bb'], '{:.2f}x')}**",
                 f"**{_f(f8_means['global'], '{:.2f}x')}**",
                 f"**{_f(f8_means['global_inf'], '{:.2f}x')}**"])
    rows.append(["paper G.M.", "1.14x", "1.24x", "—"])
    parts.append(_md_table(
        ["benchmark", "bb sched", "global sched", "global + ∞ regs"], rows))
    parts += [
        "",
        "Shape check: global scheduling beats basic-block scheduling on "
        "every benchmark; the infinite-register model bounds what an "
        "integrated allocator/scheduler could add.",
        "",
        "## Table 2 — % improvement over global scheduling",
        "",
    ]
    rows = []
    for r in t2_rows:
        paper = PAPER_TABLE2.get(r.name)
        rows.append([r.name]
                    + [_f(r.improvements[k], "{:.1f}%")
                       for k in TABLE2_MODELS]
                    + ["/".join(f"{v:.1f}" for v in paper)
                       if paper else "—"])
    rows.append(["**G.M.**"]
                + [f"**{_f(t2_means[k], '{:.1f}%')}**" for k in TABLE2_MODELS]
                + ["/".join(f"{v:.1f}" for v in PAPER_TABLE2_GM)])
    parts.append(_md_table(
        ["benchmark", "Squashing", "Boost1", "MinBoost3", "Boost7",
         "paper (Sq/B1/MB3/B7)"], rows))
    parts += [
        "",
        "Shape check: every model improves on global scheduling; the "
        "ordering Squashing ≤ Boost1 ≤ MinBoost3 ≤ Boost7 holds in the "
        "mean; and the paper's punchline survives — Boost7's 'obviously "
        "unreasonable' hardware adds almost nothing over MinBoost3.",
        "",
        "## Figure 9 — MinBoost3 vs the dynamically-scheduled machine",
        "",
    ]
    rows = [[r.name, _f(r.minboost3_speedup, "{:.2f}x"),
             _f(r.minboost3_inf_speedup, "{:.2f}x"),
             _f(r.dynamic_speedup, "{:.2f}x"),
             _f(r.dynamic_rename_speedup, "{:.2f}x")] for r in f9_rows]
    rows.append(["**G.M.**",
                 f"**{_f(f9_means['minboost3'], '{:.2f}x')}**",
                 f"**{_f(f9_means['minboost3_inf'], '{:.2f}x')}**",
                 f"**{_f(f9_means['dynamic'], '{:.2f}x')}**",
                 f"**{_f(f9_means['dynamic_rename'], '{:.2f}x')}**"])
    rows.append(["paper", "≈1.5x", "—", "≈1.5x", "—"])
    parts.append(_md_table(
        ["benchmark", "MinBoost3", "MinBoost3 + ∞ regs", "dynamic",
         "dynamic + rename"], rows))
    parts += [
        "",
        "Shape check: both machines land in the same band — the "
        "statically-scheduled machine with minimal boosting hardware keeps "
        "pace with the reservation-station/reorder-buffer/BTB design.",
        "",
        "## Dynamic-machine matrix — Figure 9 under stronger baselines",
        "",
        "The paper's comparator orders memory conservatively.  These "
        "variants add a 16-entry load/store queue with store-to-load "
        "forwarding (`+lsq`), memory-dependence speculation (`+memdep`), "
        "and a variable-rate front end (`+vfr`) — see "
        "[docs/memory-speculation.md](docs/memory-speculation.md).",
        "",
    ]
    dm_rows, dm_means = dynamic_matrix(lab)
    rows = [[r.name, _f(r.minboost3_speedup, "{:.2f}x")]
            + [_f(r.speedups[k], "{:.2f}x") for k in DYNAMIC_CONFIGS]
            for r in dm_rows]
    rows.append(["**G.M.**", f"**{_f(dm_means['minboost3'], '{:.2f}x')}**"]
                + [f"**{_f(dm_means[k], '{:.2f}x')}**"
                   for k in DYNAMIC_CONFIGS])
    parts.append(_md_table(
        ["benchmark", "MinBoost3"]
        + [_DYN_LABELS[k] for k in DYNAMIC_CONFIGS], rows))
    parts += [
        "",
        "Shape check: forwarding alone never hurts (the conservative LSQ "
        "is architecturally identical and no slower); dependence "
        "speculation and the wider refill front end push the dynamic "
        "machine ahead on memory- and branch-bound workloads, which is "
        "exactly the gap a paper-era comparison could not see.",
        "",
        "## Figure 7 / §4.3.2 — hardware cost",
        "",
    ]
    from repro.hw.cost import section_432_comparison
    ratios = section_432_comparison()
    parts.append(_md_table(
        ["design", "decoder overhead vs plain 64-reg file", "paper"],
        [["Boost1", f"+{100 * ratios['Boost1']:.0f}%", "+33%"],
         ["MinBoost3", f"+{100 * ratios['MinBoost3']:.0f}%", "+50%"]]))
    parts += [
        "",
        "## Known deviations",
        "",
        "* Workloads are reimplementations: prediction accuracies track the "
        "paper's ordering but sit a few points higher on compress/espresso "
        "(real SPEC inputs are messier than our generators).",
        "* The scalar baseline models a load-interlocked pipeline rather "
        "than undefined stale reads, and `li` is a single-cycle "
        "pseudo-instruction; both shift absolute IPC slightly.",
        "* Traces stop at loop back edges (the paper extends them one block "
        "for lookahead); cross-iteration boosting is therefore absent, "
        "which mostly compresses the Squashing→Boost7 spread on "
        "loop-bound workloads.",
        "* The dynamic comparator is execution-driven with a 1-cycle taken-"
        "fetch bubble and 2-cycle mispredict restart (Johnson-style), not "
        "the authors' trace-driven simulator.",
        "",
    ]
    errors = render_errors(lab)
    if errors:
        parts += ["## Errors", "", "```", errors, "```", ""]
    text = "\n".join(parts)
    atomic_write_text(path, text)
    return text
