"""Crash-safe filesystem primitives shared by the harness.

Every artifact the harness persists — ``BENCH_*.json`` records, generated
reports, compile-cache entries, checkpoint journals — goes through the same
discipline: write the full content to a temporary file *in the same
directory*, fsync it, then atomically rename over the destination.  A crash
(or SIGKILL) at any instant leaves either the old complete file or the new
complete file, never a torn one.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

__all__ = ["atomic_write_bytes", "atomic_write_text", "atomic_write_json",
           "fsync_dir"]


def fsync_dir(path: Path) -> None:
    """Best-effort fsync of a directory, making a rename durable.

    Not all platforms/filesystems allow opening a directory for fsync; a
    failure here costs durability of the *rename* (not file contents) and is
    deliberately ignored.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: Path | str, data: bytes) -> None:
    """Atomically replace ``path`` with ``data`` (temp + fsync + rename)."""
    path = Path(path)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name,
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    fsync_dir(path.parent)


def atomic_write_text(path: Path | str, text: str) -> None:
    atomic_write_bytes(path, text.encode("utf-8"))


def atomic_write_json(path: Path | str, obj, indent: int = 2) -> None:
    """Atomically write ``obj`` as JSON with a trailing newline."""
    atomic_write_text(path, json.dumps(obj, indent=indent) + "\n")
