"""Crash-safe filesystem primitives shared by the harness.

Every artifact the harness persists — ``BENCH_*.json`` records, generated
reports, compile-cache entries, checkpoint journals — goes through the same
discipline: write the full content to a temporary file *in the same
directory*, fsync it, then atomically rename over the destination.  A crash
(or SIGKILL) at any instant leaves either the old complete file or the new
complete file, never a torn one.

The same directory-level atomicity carries a second primitive: the
:class:`Lease`, a filesystem mutual-exclusion token used by the sharded
campaign coordinator (:mod:`repro.harness.coordinator`).  A lease is one
JSON file naming its owner (host, pid, random token) and the time of its
last heartbeat.  Acquisition is an ``O_CREAT|O_EXCL`` create (atomic on
every filesystem that matters); takeover of a *stale* lease — dead owner
pid, or a heartbeat older than the TTL — renames the stale file to a
tombstone first, which exactly one stealer can win, then re-acquires.
"""

from __future__ import annotations

import json
import os
import socket
import tempfile
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

__all__ = ["Lease", "LeaseInfo", "atomic_write_bytes", "atomic_write_text",
           "atomic_write_json", "fsync_dir"]


def fsync_dir(path: Path) -> None:
    """Best-effort fsync of a directory, making a rename durable.

    Not all platforms/filesystems allow opening a directory for fsync; a
    failure here costs durability of the *rename* (not file contents) and is
    deliberately ignored.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: Path | str, data: bytes) -> None:
    """Atomically replace ``path`` with ``data`` (temp + fsync + rename)."""
    path = Path(path)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name,
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    fsync_dir(path.parent)


def atomic_write_text(path: Path | str, text: str) -> None:
    atomic_write_bytes(path, text.encode("utf-8"))


def atomic_write_json(path: Path | str, obj, indent: int = 2) -> None:
    """Atomically write ``obj`` as JSON with a trailing newline."""
    atomic_write_text(path, json.dumps(obj, indent=indent) + "\n")


# -------------------------------------------------------------------- leases
@dataclass
class LeaseInfo:
    """The decoded contents of a lease file."""

    owner: str      # unique owner token ("host:pid:uuid")
    host: str
    pid: int
    stamp: float    # unix time of the last heartbeat (diagnostics only)
    #: monotonic-clock reading at the last heartbeat — the staleness basis.
    #: ``None`` for lease files written by older code (wall-clock only).
    mono: Optional[float] = None


class Lease:
    """A heartbeat-refreshed filesystem lease: one writer per resource.

    The sharded campaign coordinator grants each shard journal exactly one
    writer at a time through a lease file next to the journal.  The
    protocol:

    * **acquire** — create the lease file with ``O_CREAT|O_EXCL``.  Exactly
      one process can win; everyone else sees the file exist and backs off.
    * **heartbeat** — the owner periodically rewrites the file (atomic
      temp+rename) with a fresh timestamp via :meth:`refresh`.  ``refresh``
      re-reads the file afterwards and reports ``False`` if the lease was
      stolen out from under the owner — the owner's cue to stop writing the
      guarded resource immediately.
    * **steal** — a lease is *stale* when its owner pid is dead (same-host
      check, free and instant) or its heartbeat is older than ``ttl``
      seconds.  Stealing renames the stale file to a tombstone — an atomic
      operation exactly one stealer can win, because the source vanishes
      for everyone else — then acquires fresh.

    Ties between a slow-but-alive owner's in-flight refresh and a stealer
    resolve in the owner's favor: refresh uses ``os.replace`` (recreating
    the path even if a thief just renamed it away), and a thief verifies
    ownership with :meth:`held` after acquiring and on every heartbeat.
    """

    #: clock used for heartbeat staleness — monotonic, so a wall-clock jump
    #: (NTP step, manual reset) can never mass-expire live leases.  Class
    #: attribute so tests can substitute a mocked clock.  CLOCK_MONOTONIC is
    #: system-wide per boot, so readings compare across processes on a host;
    #: cross-boot leases are caught by the dead-pid check and the
    #: negative-delta guard in :meth:`is_stale`.
    _monotonic = staticmethod(time.monotonic)

    def __init__(self, path: Path | str, ttl: float = 15.0,
                 owner: Optional[str] = None) -> None:
        self.path = Path(path)
        self.ttl = ttl
        self.host = socket.gethostname()
        self.pid = os.getpid()
        self.owner = owner or f"{self.host}:{self.pid}:{uuid.uuid4().hex[:8]}"

    # ---------------------------------------------------------------- decode
    @staticmethod
    def read(path: Path | str) -> Optional[LeaseInfo]:
        """Decode a lease file; ``None`` if absent or unreadable (a torn or
        garbage lease is treated as absent — it guards nothing)."""
        try:
            record = json.loads(Path(path).read_text(encoding="utf-8"))
            mono = record.get("mono")
            return LeaseInfo(owner=record["owner"], host=record["host"],
                             pid=int(record["pid"]),
                             stamp=float(record["stamp"]),
                             mono=float(mono) if mono is not None else None)
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def is_stale(self, info: Optional[LeaseInfo],
                 now: Optional[float] = None) -> bool:
        """A missing lease is stale; so is a dead same-host owner or one
        whose heartbeat is older than the TTL.

        Heartbeat age is measured on the *monotonic* clock (``now``, when
        given, is a monotonic reading): stepping the wall clock forward
        cannot mass-expire live leases, and stepping it back cannot keep a
        dead one alive.  The wall-clock ``stamp`` in the file is
        diagnostics only.  A negative monotonic delta means the lease was
        written in a different boot — stale.  Legacy leases without a
        monotonic reading fall back to the wall-clock stamp.
        """
        if info is None:
            return True
        if info.host == self.host:
            try:
                os.kill(info.pid, 0)
            except ProcessLookupError:
                return True
            except OSError:
                pass  # e.g. EPERM: the pid exists, trust the heartbeat
        if info.mono is None:  # legacy lease file: wall clock is all we have
            return time.time() - info.stamp > self.ttl
        delta = (now if now is not None else self._monotonic()) - info.mono
        return delta > self.ttl or delta < 0

    # --------------------------------------------------------------- protocol
    def _payload(self) -> bytes:
        return (json.dumps({"owner": self.owner, "host": self.host,
                            "pid": self.pid, "stamp": time.time(),
                            "mono": self._monotonic()})
                + "\n").encode("utf-8")

    def try_acquire(self) -> bool:
        """Atomically create the lease; ``False`` if someone holds it."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        try:
            os.write(fd, self._payload())
            os.fsync(fd)
        finally:
            os.close(fd)
        return True

    def try_steal(self) -> bool:
        """Take over a stale lease.  ``False`` if the lease is live, or if
        another stealer won the takeover race."""
        info = self.read(self.path)
        if info is None and not self.path.exists():
            return self.try_acquire()
        if info is not None and not self.is_stale(info):
            return False
        # Stale — or a garbage file (info is None but the path exists),
        # which guards nothing and must not block takeover forever.
        tombstone = self.path.with_name(
            f"{self.path.name}.rip-{uuid.uuid4().hex[:8]}")
        try:
            os.rename(self.path, tombstone)  # exactly one stealer succeeds
        except OSError:
            return False
        try:
            tombstone.unlink()
        except OSError:
            pass
        return self.try_acquire() and self.held()

    def held(self) -> bool:
        """Does the file on disk still name *us* as the owner?"""
        info = self.read(self.path)
        return info is not None and info.owner == self.owner

    def refresh(self) -> bool:
        """Heartbeat: rewrite the lease with a fresh timestamp.

        Returns ``False`` — and writes nothing further — when the lease no
        longer names us, meaning it was stolen: the caller must stop
        touching the guarded resource.
        """
        if not self.held():
            return False
        atomic_write_bytes(self.path, self._payload())
        return self.held()

    def release(self) -> None:
        """Drop the lease if we still hold it (best effort)."""
        try:
            if self.held():
                self.path.unlink()
        except OSError:
            pass
