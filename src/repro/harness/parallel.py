"""Deterministic task execution for the experiment drivers.

``bench`` and ``verify`` fan independent cells — (workload, configuration)
and (workload, model) buckets respectively — across worker processes.  Two
properties make the parallel reports byte-identical to the serial ones:

* **ordered merging** — outcomes are returned in task submission order
  regardless of completion order, so aggregation happens in exactly the
  order the serial loop would have used;
* **per-task error capture** — a worker never lets an exception escape; it
  returns the same one-line rendering the serial path would have recorded,
  and the caller feeds it into the existing degradation machinery
  (``Lab.errors``, campaign oracle errors).

``jobs=1`` runs tasks in-process, preserving debuggable single-process
behavior (breakpoints, shared state, no pickling) — unless the supervision
policy demands capabilities only a child process can provide (wall-clock
timeouts, chaos injection), in which case a one-worker supervised pool is
used instead.

Supervision (timeouts, hung/killed-worker replacement, bounded retries with
seeded backoff) lives in :mod:`repro.harness.resilience`; this module is the
stable entry point both drivers call.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

__all__ = ["TaskOutcome", "run_tasks"]


@dataclass
class TaskOutcome:
    """What one task produced: a value, or the error that replaced it."""

    index: int
    value: Any = None
    #: one-line ``TypeName: message`` rendering, None on success
    error: Optional[str] = None
    #: failure taxonomy: ok | exception | timeout | killed | unpicklable
    kind: str = "ok"
    #: how many attempts this outcome consumed (retries count)
    attempts: int = 1
    #: full traceback text for ``exception`` outcomes (workers cannot ship
    #: the exception object itself — it may not be picklable)
    traceback: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


def _guarded(worker: Callable[[Any], Any], index: int, task: Any
             ) -> TaskOutcome:
    """Run one task, converting any exception into a picklable outcome.

    The exception object never crosses a process boundary — only its type
    name, message, and formatted traceback do — so exceptions holding
    unpicklable state (open files, locks, lambdas) degrade to one failed
    task instead of crashing the pool.
    """
    try:
        return TaskOutcome(index, value=worker(task))
    except Exception as err:
        try:
            message = f"{type(err).__name__}: {err}"
        except Exception:  # a __str__ that itself raises
            message = f"{type(err).__name__}: <unprintable exception>"
        try:
            tb = traceback.format_exc()
        except Exception:
            tb = None
        return TaskOutcome(index, error=message, kind="exception",
                           traceback=tb)


def _run_serial(worker: Callable[[Any], Any], tasks: Sequence[Any],
                on_result: Optional[Callable[[TaskOutcome], None]] = None,
                ) -> list[TaskOutcome]:
    outcomes: list[TaskOutcome] = []
    for i, t in enumerate(tasks):
        try:
            outcome = _guarded(worker, i, t)
        except KeyboardInterrupt:
            from repro.harness.resilience import CampaignInterrupted
            raise CampaignInterrupted(completed=i, total=len(tasks)) from None
        outcomes.append(outcome)
        if on_result is not None:
            on_result(outcome)
    return outcomes


def run_tasks(worker: Callable[[Any], Any], tasks: Sequence[Any],
              jobs: int = 1, policy=None, chaos=None,
              on_result: Optional[Callable[[TaskOutcome], None]] = None,
              ) -> list[TaskOutcome]:
    """Run ``worker`` over ``tasks``, returning outcomes in task order.

    ``worker`` must be a module-level function and each task picklable when
    execution crosses a process boundary (``jobs > 1``, a ``policy`` with a
    wall-clock timeout or batch deadline, or ``chaos``).  Worker processes
    use the ``fork`` start method where available so they inherit imported
    modules instead of re-importing them.

    ``policy`` is a :class:`repro.harness.resilience.SupervisionPolicy`
    (per-task timeouts, bounded retries with seeded backoff); ``chaos`` a
    :class:`repro.harness.resilience.ChaosConfig` for fault-injection
    self-tests.  ``on_result`` is invoked once per task *as it completes*
    (in completion order, not task order) — the hook the checkpoint journal
    hangs off.

    A ``KeyboardInterrupt`` (SIGINT, or SIGTERM routed through
    :func:`repro.harness.resilience.graceful_signals`) terminates every
    worker and raises
    :class:`repro.harness.resilience.CampaignInterrupted`.
    """
    needs_pool = ((jobs > 1 and len(tasks) > 1) or chaos is not None
                  or (policy is not None and policy.preemptive))
    if not needs_pool:
        return _run_serial(worker, tasks, on_result)
    from repro.harness.resilience import run_supervised
    return run_supervised(worker, tasks, jobs=jobs, policy=policy,
                          chaos=chaos, on_result=on_result)
