"""Deterministic process-pool execution for the experiment drivers.

``bench`` and ``verify`` fan independent cells — (workload, configuration)
and (workload, model) buckets respectively — across worker processes.  Two
properties make the parallel reports byte-identical to the serial ones:

* **ordered merging** — results come back via ``Pool.map``, which preserves
  task submission order, so aggregation happens in exactly the order the
  serial loop would have used;
* **per-task error capture** — a worker never lets an exception escape; it
  returns the same one-line rendering the serial path would have recorded,
  and the caller feeds it into the existing degradation machinery
  (``Lab.errors``, campaign oracle errors).

``jobs=1`` bypasses the pool entirely and runs tasks in-process, preserving
today's debuggable single-process behavior (breakpoints, shared state,
no pickling).
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

__all__ = ["TaskOutcome", "run_tasks"]


@dataclass
class TaskOutcome:
    """What one task produced: a value, or the error that replaced it."""

    index: int
    value: Any = None
    #: one-line ``TypeName: message`` rendering, None on success
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


def _guarded(worker: Callable[[Any], Any], index: int, task: Any
             ) -> TaskOutcome:
    try:
        return TaskOutcome(index, value=worker(task))
    except Exception as err:
        return TaskOutcome(index, error=f"{type(err).__name__}: {err}")


def _pool_entry(packed: tuple) -> TaskOutcome:
    worker, index, task = packed
    return _guarded(worker, index, task)


def run_tasks(worker: Callable[[Any], Any], tasks: Sequence[Any],
              jobs: int = 1) -> list[TaskOutcome]:
    """Run ``worker`` over ``tasks``, returning outcomes in task order.

    ``worker`` must be a module-level function and each task picklable when
    ``jobs > 1`` (tasks cross a process boundary).  The pool uses the
    ``fork`` start method where available so workers inherit imported
    modules instead of re-importing them.
    """
    if jobs <= 1 or len(tasks) <= 1:
        return [_guarded(worker, i, t) for i, t in enumerate(tasks)]
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:
        ctx = multiprocessing.get_context()
    nproc = min(jobs, len(tasks))
    packed = [(worker, i, t) for i, t in enumerate(tasks)]
    with ctx.Pool(processes=nproc) as pool:
        return pool.map(_pool_entry, packed)
